#!/usr/bin/env bash
# Documentation consistency check, run by CI's lints job.
#
# Broken intra-doc links in rustdoc are already caught by the
# `RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps` step; this
# script covers what rustdoc cannot see: markdown docs referring to
# experiment binaries that do not exist (e.g. a bin was renamed but
# README/docs still advertise the old name).
set -euo pipefail
cd "$(dirname "$0")/.."

status=0

# Every `--bin <name>` in README.md and docs/*.md must be a real binary.
for doc in README.md docs/*.md; do
  for bin in $(grep -oE '\-\-bin [a-z0-9_]+' "$doc" | awk '{print $2}' | sort -u); do
    if ! ls crates/*/src/bin/"$bin".rs >/dev/null 2>&1; then
      echo "ERROR: $doc references missing binary '$bin'"
      status=1
    fi
  done
done

# Every backtick-quoted bench-bin-looking name (figN_*, tableN_*,
# ablation_*, bench_*) must exist too — these are how the docs' tables
# name binaries outside full cargo commands.
for doc in README.md docs/*.md; do
  for bin in $(grep -oE '`(fig[0-9]+|table[0-9]+|ablation|bench)_[a-z0-9_]+`' "$doc" \
               | tr -d '`' | sort -u); do
    case "$bin" in
      # Non-binary artifacts that share the prefix.
      bench_report) continue ;;
    esac
    if ! ls crates/*/src/bin/"$bin".rs >/dev/null 2>&1; then
      echo "ERROR: $doc references missing binary '$bin'"
      status=1
    fi
  done
done

# Every binary must be documented somewhere (docs stay complete as bins
# are added).
for path in crates/*/src/bin/*.rs; do
  bin=$(basename "$path" .rs)
  if ! grep -qr -- "$bin" README.md docs/; then
    echo "ERROR: binary '$bin' is not mentioned in README.md or docs/"
    status=1
  fi
done

# Every experiment binary must have its own table row in
# docs/EXPERIMENTS.md (a line starting "| `<bin>`"), so the bin↔metric
# mapping there stays exhaustive — a passing mention elsewhere is not
# enough.
for path in crates/bench/src/bin/*.rs; do
  bin=$(basename "$path" .rs)
  if ! grep -qE "^\| \`$bin\`" docs/EXPERIMENTS.md; then
    echo "ERROR: binary '$bin' has no table row in docs/EXPERIMENTS.md"
    status=1
  fi
done

# Every shipped scenario file must have its row in docs/EXPERIMENTS.md's
# scenario-library table (a line starting "| `<file>.toml`"), so the
# library stays documented as scenarios are added.
for path in config/scenarios/*.toml; do
  file=$(basename "$path")
  if ! grep -qE "^\| \`$file\`" docs/EXPERIMENTS.md; then
    echo "ERROR: scenario '$path' has no table row in docs/EXPERIMENTS.md"
    status=1
  fi
done

# The lint rule table in docs/ARCHITECTURE.md (between the
# lint-rule-table markers) must list exactly the rule ids the linter
# registers in crates/lint/src/lib.rs — both directions.
lint_src=crates/lint/src/lib.rs
table=$(sed -n '/<!-- lint-rule-table:begin -->/,/<!-- lint-rule-table:end -->/p' \
        docs/ARCHITECTURE.md)
for id in $(grep -oE 'id: "[a-z-]+"' "$lint_src" | cut -d'"' -f2 | sort -u); do
  if ! printf '%s\n' "$table" | grep -qE "^\| \`$id\`"; then
    echo "ERROR: lint rule '$id' has no row in docs/ARCHITECTURE.md's rule table"
    status=1
  fi
done
for id in $(printf '%s\n' "$table" | grep -oE '^\| `[a-z-]+`' | tr -d '|` ' | sort -u); do
  if ! grep -qE "id: \"$id\"" "$lint_src"; then
    echo "ERROR: docs/ARCHITECTURE.md documents unknown lint rule '$id'"
    status=1
  fi
done

if [ "$status" -eq 0 ]; then
  echo "check_docs: OK — all documented binaries exist and all binaries are documented"
fi
exit "$status"
