//! Umbrella package for the Tangram reproduction workspace.
//!
//! This crate exists to host the workspace-level integration tests
//! (`tests/`) and runnable examples (`examples/`). The actual library
//! lives in the `tangram-*` crates under `crates/`; start with
//! [`tangram_core`].

pub use tangram_core as core;
pub use tangram_infer as infer;
pub use tangram_lint as lint;
pub use tangram_model as model;
pub use tangram_net as net;
pub use tangram_partition as partition;
pub use tangram_serverless as serverless;
pub use tangram_sim as sim;
pub use tangram_stitch as stitch;
pub use tangram_types as types;
pub use tangram_video as video;
pub use tangram_vision as vision;
