//! Offline stand-in for `serde`.
//!
//! The workspace derives `Serialize`/`Deserialize` on its wire-facing
//! types but never actually serialises anything (there is no `serde_json`
//! or similar in the tree). This stub keeps those derives compiling
//! without network access to crates.io: the traits are empty markers with
//! blanket impls, and the re-exported derive macros expand to nothing.
//!
//! If a future change needs real serialisation, replace this vendored
//! stub with the genuine crate and delete `vendor/serde*`.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize`. Blanket-implemented for
/// every type so `T: Serialize` bounds always hold.
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker trait mirroring `serde::Deserialize<'de>`. Blanket-implemented
/// for every sized type so `T: Deserialize<'de>` bounds always hold.
pub trait Deserialize<'de>: Sized {}

impl<'de, T> Deserialize<'de> for T {}
