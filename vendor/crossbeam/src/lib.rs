//! Offline stand-in for the subset of `crossbeam` this workspace uses.
//!
//! Only `channel::{unbounded, Sender, Receiver, RecvTimeoutError}` is
//! needed (single-producer hand-off into the live runtime's worker
//! thread), and `std::sync::mpsc` provides an API-compatible
//! implementation of exactly that subset. MPMC features of the real
//! crossbeam (cloneable receivers, `select!`) are not provided.

pub mod channel {
    pub use std::sync::mpsc::{Receiver, RecvTimeoutError, SendError, Sender};

    /// Creates an unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        std::sync::mpsc::channel()
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{unbounded, RecvTimeoutError};
    use std::time::Duration;

    #[test]
    fn send_recv_and_timeout() {
        let (tx, rx) = unbounded();
        tx.send(7u32).unwrap();
        assert_eq!(rx.recv().unwrap(), 7);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Timeout)
        );
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Disconnected)
        );
    }
}
