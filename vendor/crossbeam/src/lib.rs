//! Offline stand-in for the subset of `crossbeam` this workspace uses.
//!
//! `channel` is a genuine MPMC channel (Condvar-based, unbounded): both
//! [`channel::Sender`] and [`channel::Receiver`] are cloneable, so it
//! serves the live runtime's single-consumer hand-off *and* the
//! experiment harness's shared work queue, where N workers pull sweep
//! cells from one receiver. `select!` and bounded channels are not
//! provided.
//!
//! # Notification discipline (model-checked)
//!
//! The channel uses a single `ready` condvar with exactly two
//! notification sites, and `tangram-model` explores both exhaustively
//! (the `channel r*` rows of `model_tool check`), so this discipline is
//! pinned by a regression suite, not just by this comment:
//!
//! * [`Sender::send`](channel::Sender::send) calls `notify_one` after
//!   pushing. One is enough:
//!   each send adds exactly one value, every receiver rechecks the
//!   queue under the mutex before sleeping (a condvar wait releases
//!   the lock atomically, so the push either lands before the recheck
//!   or the notify lands after the park — there is no lost-update
//!   window), and a woken receiver has left the wait set, so a later
//!   send's `notify_one` targets a *different* sleeper.
//! * `Sender::drop` calls `notify_all` when the last sender
//!   disconnects. The broadcast is load-bearing: disconnect is a
//!   one-shot edge with no follow-up notifications, so every parked
//!   receiver must learn of it from this single site. Weakening it to
//!   `notify_one` strands all but one of the parked receivers forever
//!   — the model checker's `disconnect-notify-one` mutant reproduces
//!   that lost wakeup with three receivers and one in-flight value.
//! * `Receiver::drop` notifies nobody, which is sound because
//!   senders never block: `send` is non-blocking on an unbounded
//!   queue, so there is no one to wake on the consumer side.

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    /// Error returned by [`Sender::send`] when every receiver is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// every sender is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Errors returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The deadline passed with the channel still empty.
        Timeout,
        /// The channel is empty and every sender is gone.
        Disconnected,
    }

    /// Errors returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// The channel is empty and every sender is gone.
        Disconnected,
    }

    struct State<T> {
        queue: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        state: Mutex<State<T>>,
        ready: Condvar,
    }

    /// The sending half; cloneable (multi-producer).
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half; cloneable (multi-consumer).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Creates an unbounded FIFO channel.
    #[must_use]
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            ready: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Enqueues a value, failing only if every receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = self.shared.state.lock().expect("channel poisoned");
            if state.receivers == 0 {
                return Err(SendError(value));
            }
            state.queue.push_back(value);
            drop(state);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.state.lock().expect("channel poisoned").senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.shared.state.lock().expect("channel poisoned");
            state.senders -= 1;
            if state.senders == 0 {
                drop(state);
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a value arrives or every sender is gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.shared.state.lock().expect("channel poisoned");
            loop {
                if let Some(value) = state.queue.pop_front() {
                    return Ok(value);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self.shared.ready.wait(state).expect("channel poisoned");
            }
        }

        /// Blocks up to `timeout` for a value.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut state = self.shared.state.lock().expect("channel poisoned");
            loop {
                if let Some(value) = state.queue.pop_front() {
                    return Ok(value);
                }
                if state.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let remaining = deadline.saturating_duration_since(Instant::now());
                if remaining.is_zero() {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (next, result) = self
                    .shared
                    .ready
                    .wait_timeout(state, remaining)
                    .expect("channel poisoned");
                state = next;
                if result.timed_out() && state.queue.is_empty() {
                    return if state.senders == 0 {
                        Err(RecvTimeoutError::Disconnected)
                    } else {
                        Err(RecvTimeoutError::Timeout)
                    };
                }
            }
        }

        /// Pops a value if one is queued right now.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut state = self.shared.state.lock().expect("channel poisoned");
            if let Some(value) = state.queue.pop_front() {
                return Ok(value);
            }
            if state.senders == 0 {
                return Err(TryRecvError::Disconnected);
            }
            Err(TryRecvError::Empty)
        }

        /// Number of values currently queued.
        #[must_use]
        pub fn len(&self) -> usize {
            self.shared
                .state
                .lock()
                .expect("channel poisoned")
                .queue
                .len()
        }

        /// Whether the queue is currently empty.
        #[must_use]
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared
                .state
                .lock()
                .expect("channel poisoned")
                .receivers += 1;
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared
                .state
                .lock()
                .expect("channel poisoned")
                .receivers -= 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{unbounded, RecvTimeoutError, TryRecvError};
    use std::time::Duration;

    #[test]
    fn send_recv_and_timeout() {
        let (tx, rx) = unbounded();
        tx.send(7u32).unwrap();
        assert_eq!(rx.recv().unwrap(), 7);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Timeout)
        );
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn try_recv_reports_empty_then_disconnected() {
        let (tx, rx) = unbounded::<u32>();
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        tx.send(1).unwrap();
        assert_eq!(rx.try_recv(), Ok(1));
        drop(tx);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn send_fails_once_all_receivers_dropped() {
        let (tx, rx) = unbounded::<u32>();
        let rx2 = rx.clone();
        drop(rx);
        drop(rx2);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn multiple_consumers_drain_disjointly() {
        let (tx, rx) = unbounded::<usize>();
        for i in 0..64 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let rx = rx.clone();
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Ok(v) = rx.recv() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        let mut all: Vec<usize> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn fifo_order_with_single_consumer() {
        let (tx, rx) = unbounded::<u32>();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        for i in 0..10 {
            assert_eq!(rx.recv().unwrap(), i);
        }
    }
}
