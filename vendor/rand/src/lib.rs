//! Offline stand-in for the subset of `rand` this workspace uses.
//!
//! `tangram_sim::rng::DetRng` needs exactly three things: a small, fast,
//! seedable generator (`rngs::SmallRng`), `SeedableRng::seed_from_u64`,
//! and `RngExt` with `random::<f64>()` / `random_range(0..n)`. Everything
//! else (distributions, thread-local RNGs, OS entropy) is intentionally
//! absent — determinism is the whole point of the simulation, so ambient
//! entropy sources would be a bug, not a missing feature.
//!
//! The generator is xoshiro256++ seeded through SplitMix64, the same
//! construction the real `rand` crate uses for `SmallRng` on 64-bit
//! targets. Streams are stable across platforms and runs.

use std::ops::Range;

pub mod rngs {
    pub use crate::SmallRng;
}

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable uniformly from an [`RngCore`] ("standard" values).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable uniformly from an [`RngCore`].
pub trait SampleRange {
    /// The element type produced.
    type Output;
    /// Draws one value from `rng` uniformly over the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;

            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                // Lemire-style widening multiply with rejection: unbiased
                // and branch-light for the small spans used here.
                let mut x = rng.next_u64();
                let mut m = (x as u128) * (span as u128);
                let mut lo = m as u64;
                if lo < span {
                    let t = span.wrapping_neg() % span;
                    while lo < t {
                        x = rng.next_u64();
                        m = (x as u128) * (span as u128);
                        lo = m as u64;
                    }
                }
                self.start + ((m >> 64) as u64) as $t
            }
        }
    )*};
}

impl_sample_range_uint!(usize, u64, u32);

/// Convenience sampling methods, blanket-implemented for every generator
/// (mirrors `rand`'s `Rng`/`RngExt` extension trait).
pub trait RngExt: RngCore {
    /// Draws a standard value: `f64`/`f32` uniform in `[0, 1)`, full-range
    /// integers, fair `bool`.
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws uniformly from `range`. Panics if the range is empty.
    fn random_range<Rg: SampleRange>(&mut self, range: Rg) -> Rg::Output {
        range.sample_from(self)
    }
}

impl<T: RngCore + ?Sized> RngExt for T {}

/// A small-state, fast generator: xoshiro256++ (Blackman & Vigna).
#[derive(Debug, Clone)]
pub struct SmallRng {
    s: [u64; 4],
}

impl RngCore for SmallRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for SmallRng {
    fn seed_from_u64(state: u64) -> Self {
        // Expand the seed through SplitMix64 so related seeds yield
        // unrelated states (and an all-zero state is unreachable).
        let mut sm = state;
        let mut next = || {
            sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        Self {
            s: [next(), next(), next(), next()],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn unit_interval_bounds() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = r.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_bounds_and_coverage() {
        let mut r = SmallRng::seed_from_u64(9);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[r.random_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut r = SmallRng::seed_from_u64(1);
        let _ = r.random_range(3usize..3);
    }
}
