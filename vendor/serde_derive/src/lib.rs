//! Offline stand-in for `serde_derive`.
//!
//! The build environment has no access to crates.io, and nothing in this
//! workspace performs runtime (de)serialisation — `#[derive(Serialize,
//! Deserialize)]` only marks types as wire-representable. The companion
//! `serde` stub blanket-implements both traits, so these derives simply
//! accept the input and expand to nothing.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` and expands to nothing; the `serde`
/// stub's blanket impl already covers every type.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` and expands to nothing; the `serde`
/// stub's blanket impl already covers every type.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
