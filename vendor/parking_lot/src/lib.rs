//! Offline stand-in for `parking_lot`, backed by `std::sync`.
//!
//! Only the API surface the workspace touches is provided: `Mutex` and
//! `RwLock` with panic-free, non-poisoning `lock()`/`read()`/`write()`.
//! Poisoning is deliberately swallowed (a panicking holder propagates its
//! panic anyway; the next locker just proceeds), which matches
//! `parking_lot` semantics closely enough for the runtime and tests.

use std::fmt;
use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock whose `lock()` never returns a poison error.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Ignores poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Attempts the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the data (no locking needed).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

/// A reader–writer lock whose accessors never return poison errors.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new lock holding `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access. Ignores poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Acquires exclusive write access. Ignores poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1u32);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn lock_survives_holder_panic() {
        let m = Arc::new(Mutex::new(0u32));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison the std mutex");
        })
        .join();
        // parking_lot semantics: the next locker proceeds normally.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let l = RwLock::new(5u32);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(*a + *b, 10);
        }
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }
}
