//! Offline stand-in for `criterion`.
//!
//! Implements the slice of the criterion API the workspace benches use
//! (`bench_function`, `benchmark_group`, `iter`, `iter_batched`,
//! `Throughput`, `BatchSize`, the `criterion_group!`/`criterion_main!`
//! macros) on a deliberately small timing harness: a short warm-up, a
//! fixed number of timed samples, and a one-line median/min/mean report
//! per benchmark. No statistics engine, no plotting, no disk state — the
//! goal is that `cargo bench` runs in seconds and ranks alternatives,
//! not publication-grade confidence intervals.

use std::time::{Duration, Instant};

/// Opaque value barrier, re-exported like criterion's.
pub use std::hint::black_box;

/// How batched inputs are grouped between timings (accepted, ignored).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Work-per-iteration annotation used to report throughput.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Per-benchmark timing driver handed to the closure.
pub struct Bencher {
    samples: usize,
    durations: Vec<Duration>,
}

impl Bencher {
    fn new(samples: usize) -> Self {
        Self {
            samples,
            durations: Vec::with_capacity(samples),
        }
    }

    /// Times `routine` over the configured number of samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One warm-up pass outside the timings.
        black_box(routine());
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            self.durations.push(start.elapsed());
        }
    }

    /// Times `routine` with a fresh `setup()` input per sample; setup time
    /// is excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.durations.push(start.elapsed());
        }
    }
}

fn report(name: &str, durations: &mut [Duration], throughput: Option<Throughput>) {
    if durations.is_empty() {
        println!("{name:<40} (no samples)");
        return;
    }
    durations.sort_unstable();
    let median = durations[durations.len() / 2];
    let min = durations[0];
    let mean = durations.iter().sum::<Duration>() / durations.len() as u32;
    let rate = match throughput {
        Some(Throughput::Elements(n)) if median > Duration::ZERO => {
            format!("  {:>12.0} elem/s", n as f64 / median.as_secs_f64())
        }
        Some(Throughput::Bytes(n)) if median > Duration::ZERO => {
            format!("  {:>12.0} B/s", n as f64 / median.as_secs_f64())
        }
        _ => String::new(),
    };
    println!("{name:<40} median {median:>12.3?}  min {min:>12.3?}  mean {mean:>12.3?}{rate}");
}

/// Top-level harness, one per bench binary.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 10 }
    }
}

impl Criterion {
    /// Runs and reports one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl AsRef<str>,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        report(name.as_ref(), &mut b.durations, None);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl AsRef<str>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            prefix: name.as_ref().to_string(),
            sample_size: self.sample_size,
            throughput: None,
            _parent: self,
        }
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    prefix: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the throughput annotation for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs and reports one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl AsRef<str>,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        let full = format!("{}/{}", self.prefix, name.as_ref());
        report(&full, &mut b.durations, self.throughput);
        self
    }

    /// Ends the group (no-op; kept for API compatibility).
    pub fn finish(self) {}
}

/// Declares a bench group function, like criterion's macro of the same
/// name (simple `criterion_group!(name, target, ...)` form only).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut c = Criterion::default();
        let mut runs = 0u32;
        c.bench_function("counter", |b| b.iter(|| runs += 1));
        // 1 warm-up + sample_size timed runs.
        assert_eq!(runs, 11);
    }

    #[test]
    fn group_respects_sample_size() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3).throughput(Throughput::Elements(4));
        let mut runs = 0u32;
        group.bench_function("counted", |b| {
            b.iter_batched(|| (), |()| runs += 1, BatchSize::SmallInput)
        });
        group.finish();
        assert_eq!(runs, 4);
    }
}
