//! The streaming refactor's central contract: replaying a recorded trace
//! through the event-driven [`tangram_core::online::OnlineEngine`]
//! produces a `RunSummary` digest identical to the legacy batch entry
//! point (`EngineConfig::run`), for every policy — and streaming runs
//! themselves are bit-for-bit reproducible.

use tangram_core::engine::{EngineConfig, PolicyKind};
use tangram_core::online::{ArrivalProcess, GeneratedSource, OnlineEngine, TraceReplaySource};
use tangram_core::workload::{CameraTrace, TraceConfig};
use tangram_sim::rng::DetRng;
use tangram_types::ids::SceneId;
use tangram_types::time::SimTime;

const ALL_POLICIES: [PolicyKind; 6] = [
    PolicyKind::Tangram,
    PolicyKind::Clipper,
    PolicyKind::Elf,
    PolicyKind::Mark,
    PolicyKind::FullFrame,
    PolicyKind::MaskedFrame,
];

fn traces() -> Vec<CameraTrace> {
    vec![
        TraceConfig::proxy_extractor(SceneId::new(1), 10, 7).build(),
        TraceConfig::proxy_extractor(SceneId::new(2), 10, 8).build(),
    ]
}

fn config(policy: PolicyKind) -> EngineConfig {
    EngineConfig {
        policy,
        seed: 7,
        ..EngineConfig::default()
    }
}

/// Mounts `traces` on an [`OnlineEngine`] exactly as the batch entry
/// point does: one replay source per trace, staggered 1 ms apart.
fn run_streamed(cfg: &EngineConfig, traces: &[CameraTrace]) -> tangram_core::RunReport {
    let mut engine = OnlineEngine::new(cfg);
    for (cam, trace) in traces.iter().enumerate() {
        engine.add_camera_at(
            SimTime::from_micros(cam as u64 * 1_000),
            Box::new(TraceReplaySource::new(trace.clone())),
        );
    }
    engine.run()
}

#[test]
fn replay_digest_matches_batch_path_for_every_policy() {
    let traces = traces();
    for policy in ALL_POLICIES {
        let cfg = config(policy);
        let batch = cfg.run(&traces).summarize();
        let streamed = run_streamed(&cfg, &traces).summarize();
        assert_eq!(
            batch,
            streamed,
            "{}: event-loop replay must reproduce the batch digest",
            policy.name()
        );
    }
}

#[test]
fn streaming_runs_are_reproducible_per_seed() {
    let trace = TraceConfig::proxy_extractor(SceneId::new(3), 6, 5).build();
    for policy in [PolicyKind::Tangram, PolicyKind::Clipper] {
        let run = |seed: u64| {
            let cfg = EngineConfig {
                policy,
                seed,
                ..EngineConfig::default()
            };
            let mut engine = OnlineEngine::new(&cfg);
            for cam in 0..2u64 {
                engine.add_camera_at(
                    SimTime::from_micros(cam * 1_000),
                    Box::new(GeneratedSource::new(
                        &trace,
                        15,
                        ArrivalProcess::Poisson { fps: 8.0 },
                        DetRng::new(seed).fork_indexed("determinism", cam),
                    )),
                );
            }
            engine.run().summarize()
        };
        assert_eq!(run(7), run(7), "{}: same seed, same digest", policy.name());
    }
}
