//! Focused semantic tests of Algorithm 2's timing decisions, driven as a
//! pure state machine (no engine, no threads).

use tangram_core::scheduler::{SchedulerConfig, TangramScheduler};
use tangram_infer::estimator::LatencyEstimator;
use tangram_infer::latency::InferenceLatencyModel;
use tangram_types::geometry::{Rect, Size};
use tangram_types::ids::{CameraId, FrameId, PatchId};
use tangram_types::patch::PatchInfo;
use tangram_types::time::{SimDuration, SimTime};

fn scheduler(k: f64) -> TangramScheduler {
    let estimator = LatencyEstimator::profile(
        &InferenceLatencyModel::rtx4090_yolov8x(),
        Size::CANVAS_1024,
        9,
        1000,
        k,
        7,
    );
    TangramScheduler::new(SchedulerConfig::paper_default(), estimator)
}

fn patch(id: u64, camera: u32, gen_ms: u64, slo_ms: u64, side: u32) -> PatchInfo {
    PatchInfo::new(
        PatchId::new((u64::from(camera) << 40) | id),
        CameraId::new(camera),
        FrameId::new(id / 8),
        Rect::new(0, 0, side, side),
        SimTime::from_micros(gen_ms * 1000),
        SimDuration::from_millis(slo_ms),
    )
}

fn t(ms: u64) -> SimTime {
    SimTime::from_micros(ms * 1000)
}

#[test]
fn invoke_by_equals_deadline_minus_slack() {
    let mut s = scheduler(3.0);
    let _ = s.on_patch(t(0), patch(1, 0, 0, 1000, 300));
    let invoke_by = s.invoke_by().expect("armed");
    // One canvas: t_remain = 1000 ms − T_slack(1).
    // T_slack(1) ≈ 83 ms mean + 3σ ≈ 105–115 ms.
    let remain_ms = invoke_by.as_micros() / 1000;
    assert!(
        (870..=920).contains(&remain_ms),
        "invoke_by at {remain_ms} ms"
    );
}

#[test]
fn growing_batch_pulls_invoke_by_earlier() {
    // As canvases accumulate, the slack grows, so the same deadline forces
    // an earlier invocation.
    let mut s = scheduler(3.0);
    let _ = s.on_patch(t(0), patch(1, 0, 0, 2000, 1000)); // 1 canvas
    let one = s.invoke_by().unwrap();
    let _ = s.on_patch(t(1), patch(2, 0, 0, 2000, 1000)); // 2 canvases
    let two = s.invoke_by().unwrap();
    let _ = s.on_patch(t(2), patch(3, 0, 0, 2000, 1000)); // 3 canvases
    let three = s.invoke_by().unwrap();
    assert!(two < one, "{two} !< {one}");
    assert!(three < two);
}

#[test]
fn cross_camera_patches_share_batches() {
    let mut s = scheduler(3.0);
    let _ = s.on_patch(t(0), patch(1, 0, 0, 1500, 400));
    let _ = s.on_patch(t(5), patch(1, 1, 5, 1500, 400));
    let _ = s.on_patch(t(9), patch(1, 2, 9, 1500, 400));
    let out = s.on_timer(s.invoke_by().unwrap());
    assert_eq!(out.dispatches.len(), 1);
    let batch = &out.dispatches[0];
    assert_eq!(batch.patch_count(), 3);
    let cameras: std::collections::HashSet<u32> =
        batch.patches.iter().map(|p| p.camera.raw()).collect();
    assert_eq!(cameras.len(), 3, "three cameras in one batch");
    assert_eq!(batch.inputs, 1, "three 400² patches share one canvas");
}

#[test]
fn zero_sigma_multiplier_still_reserves_mean_execution() {
    // Even with k = 0, T_slack = µ > 0: the invoker never waits past
    // deadline − mean execution time.
    let mut s = scheduler(0.0);
    let _ = s.on_patch(t(0), patch(1, 0, 0, 500, 300));
    let invoke_by = s.invoke_by().unwrap();
    assert!(invoke_by < t(500));
    assert!(invoke_by > t(380), "µ(1 canvas) ≈ 83 ms: {invoke_by}");
}

#[test]
fn timer_then_new_patch_starts_fresh_cycle() {
    let mut s = scheduler(3.0);
    let _ = s.on_patch(t(0), patch(1, 0, 0, 1000, 300));
    let fire_at = s.invoke_by().unwrap();
    let fired = s.on_timer(fire_at);
    assert_eq!(fired.dispatches.len(), 1);
    assert_eq!(s.queue_len(), 0);
    assert_eq!(s.invoke_by(), None);
    // A new patch re-arms from scratch.
    let gen2 = fire_at.as_micros() / 1000 + 10;
    let _ = s.on_patch(t(gen2), patch(2, 0, gen2, 1000, 300));
    let second = s.invoke_by().expect("re-armed");
    assert!(second > fire_at);
}

#[test]
fn queue_survives_exact_memory_boundary() {
    let mut s = scheduler(3.0);
    // Exactly nine canvas-filling patches: no overflow dispatch.
    for i in 0..9 {
        let out = s.on_patch(t(i), patch(i, 0, i, 60_000, 1024));
        assert!(out.dispatches.is_empty(), "patch {i} dispatched early");
    }
    assert_eq!(s.open_canvases(), 9);
    // Drain returns all nine as one batch at the GPU bound.
    let out = s.drain();
    assert_eq!(out.dispatches.len(), 1);
    assert_eq!(out.dispatches[0].inputs, 9);
}

#[test]
fn interleaved_slos_respect_the_tightest() {
    let mut s = scheduler(3.0);
    let _ = s.on_patch(t(0), patch(1, 0, 0, 5000, 300)); // lax
    let _ = s.on_patch(t(1), patch(2, 0, 1, 400, 300)); // tight
    let invoke_by = s.invoke_by().unwrap();
    assert!(invoke_by < t(401), "tightest deadline governs: {invoke_by}");
    // Firing the timer dispatches BOTH patches together.
    let out = s.on_timer(invoke_by);
    assert_eq!(out.dispatches[0].patch_count(), 2);
}
