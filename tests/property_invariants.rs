//! Property-based tests (proptest) of the core invariants.

use proptest::prelude::*;
use tangram_core::scheduler::{SchedulerConfig, TangramScheduler};
use tangram_infer::ap::{ap50, Detection, FrameEval};
use tangram_infer::estimator::LatencyEstimator;
use tangram_infer::latency::InferenceLatencyModel;
use tangram_partition::algorithm::{partition_detailed, PartitionConfig};
use tangram_stitch::canvas::PlacedPatch;
use tangram_stitch::solver::{split_to_fit, PatchStitchingSolver};
use tangram_types::geometry::{Rect, Size};
use tangram_types::ids::{CameraId, FrameId, PatchId};
use tangram_types::patch::PatchInfo;
use tangram_types::time::{SimDuration, SimTime};

fn arb_rect() -> impl Strategy<Value = Rect> {
    (0u32..3700, 0u32..2000, 8u32..500, 8u32..600)
        .prop_map(|(x, y, w, h)| Rect::new(x.min(3839), y.min(2159), w.min(3840 - x.min(3839)).max(1), h.min(2160 - y.min(2159)).max(1)))
}

fn patch_info(i: usize, rect: Rect) -> PatchInfo {
    PatchInfo::new(
        PatchId::new(i as u64),
        CameraId::new(0),
        FrameId::new(0),
        rect,
        SimTime::ZERO,
        SimDuration::from_secs(60),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn stitch_places_everything_disjointly(rects in prop::collection::vec(arb_rect(), 1..40)) {
        let solver = PatchStitchingSolver::new(Size::CANVAS_1024);
        let patches: Vec<PatchInfo> = rects
            .iter()
            .enumerate()
            .flat_map(|(i, r)| {
                split_to_fit(*r, Size::CANVAS_1024)
                    .into_iter()
                    .map(move |tile| patch_info(i, tile))
            })
            .collect();
        let canvases = solver.stitch(&patches).expect("normalised patches fit");
        // Every patch placed exactly once.
        let placed: usize = canvases.iter().map(|c| c.placements.len()).sum();
        prop_assert_eq!(placed, patches.len());
        // No overlaps, all in bounds, efficiency ≤ 1.
        for canvas in &canvases {
            let bounds = Rect::from_size(canvas.size);
            let rects: Vec<Rect> = canvas.placements.iter().map(PlacedPatch::canvas_rect).collect();
            for (i, r) in rects.iter().enumerate() {
                prop_assert!(bounds.contains_rect(r));
                for o in &rects[..i] {
                    prop_assert!(!r.intersects(o));
                }
            }
            prop_assert!(canvas.efficiency() <= 1.0 + 1e-12);
        }
    }

    #[test]
    fn partition_covers_every_roi(rects in prop::collection::vec(arb_rect(), 0..60),
                                  zx in 1u32..8, zy in 1u32..8) {
        let config = PartitionConfig::new(zx, zy);
        let detailed = partition_detailed(Size::UHD_4K, config, &rects);
        // Patch count bounded by zones; every RoI fully inside its patch.
        prop_assert!(detailed.len() <= (zx * zy) as usize);
        let mut assigned = 0usize;
        for zp in &detailed {
            for &ri in &zp.roi_indices {
                prop_assert!(zp.rect.contains_rect(&rects[ri]));
                assigned += 1;
            }
        }
        let nonempty = rects.iter().filter(|r| !r.is_empty()).count();
        prop_assert_eq!(assigned, nonempty);
    }

    #[test]
    fn split_to_fit_partitions_exactly(rect in arb_rect()) {
        let tiles = split_to_fit(rect, Size::CANVAS_1024);
        let total: u64 = tiles.iter().map(Rect::area).sum();
        prop_assert_eq!(total, rect.area());
        for (i, t) in tiles.iter().enumerate() {
            prop_assert!(rect.contains_rect(t));
            prop_assert!(Size::CANVAS_1024.fits(t.size()));
            for o in &tiles[..i] {
                prop_assert!(!t.intersects(o));
            }
        }
    }

    #[test]
    fn scheduler_batches_respect_gpu_bound(
        sizes in prop::collection::vec((50u32..1024, 50u32..1024), 1..60),
        slo_ms in 200u64..5000,
    ) {
        let estimator = LatencyEstimator::paper_default(
            &InferenceLatencyModel::rtx4090_yolov8x(),
            Size::CANVAS_1024,
            9,
        );
        let mut scheduler =
            TangramScheduler::new(SchedulerConfig::paper_default(), estimator);
        let mut dispatched = Vec::new();
        for (i, (w, h)) in sizes.iter().enumerate() {
            let info = PatchInfo::new(
                PatchId::new(i as u64),
                CameraId::new(0),
                FrameId::new(i as u64 / 8),
                Rect::new(0, 0, *w, *h),
                SimTime::from_micros(i as u64 * 5_000),
                SimDuration::from_millis(slo_ms),
            );
            let out = scheduler.on_patch(SimTime::from_micros(i as u64 * 5_000), info);
            dispatched.extend(out.dispatches);
        }
        dispatched.extend(scheduler.drain().dispatches);
        // Constraint (5): never more canvases than the GPU holds; every
        // patch appears in exactly one batch.
        let total: usize = dispatched.iter().map(|b| b.patches.len()).sum();
        prop_assert_eq!(total, sizes.len());
        for b in &dispatched {
            prop_assert!(b.inputs <= 9, "batch of {} canvases", b.inputs);
            prop_assert_eq!(b.canvas_efficiencies.len(), b.inputs);
        }
    }

    #[test]
    fn ap_increases_with_true_positives(n_truth in 1usize..20, hits in 0usize..20) {
        let truths: Vec<Rect> = (0..n_truth)
            .map(|i| Rect::new(i as u32 * 150, 100, 80, 120))
            .collect();
        let make_eval = |k: usize| {
            let dets: Vec<Detection> = truths
                .iter()
                .take(k)
                .map(|&rect| Detection { rect, confidence: 0.9 })
                .collect();
            vec![FrameEval::new(truths.clone(), dets)]
        };
        let fewer = ap50(&make_eval(hits.min(n_truth).saturating_sub(1)));
        let more = ap50(&make_eval(hits.min(n_truth)));
        prop_assert!(more >= fewer);
    }

    #[test]
    fn event_queue_pops_sorted(times in prop::collection::vec(0u64..1_000_000, 1..200)) {
        let mut q = tangram_sim::event::EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime::from_micros(t), i);
        }
        let mut last = SimTime::ZERO;
        while let Some((t, _)) = q.pop() {
            prop_assert!(t >= last);
            last = t;
        }
    }

    #[test]
    fn deadlines_never_regress_under_waiting(gen in 0u64..1_000_000, slo in 1u64..5_000_000) {
        let info = PatchInfo::new(
            PatchId::new(0),
            CameraId::new(0),
            FrameId::new(0),
            Rect::new(0, 0, 10, 10),
            SimTime::from_micros(gen),
            SimDuration::from_micros(slo),
        );
        let d = info.deadline();
        prop_assert_eq!(d.since(SimTime::from_micros(gen)), SimDuration::from_micros(slo));
        // Budget is monotone non-increasing in time.
        let b1 = info.remaining_budget(SimTime::from_micros(gen + 1));
        let b2 = info.remaining_budget(SimTime::from_micros(gen + 2));
        prop_assert!(b2 <= b1);
    }
}
