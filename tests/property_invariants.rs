//! Randomized property tests of the core invariants.
//!
//! Formerly written against `proptest`; now driven by `tangram_sim`'s
//! seeded [`DetRng`] so every case is deterministic and reproducible —
//! each property forks a per-case stream from a fixed root seed, and a
//! failure message names the case index that produced it. Re-running the
//! suite replays the identical inputs on every platform.

use tangram_core::scheduler::{SchedulerConfig, TangramScheduler};
use tangram_infer::ap::{ap50, Detection, FrameEval};
use tangram_infer::estimator::LatencyEstimator;
use tangram_infer::latency::InferenceLatencyModel;
use tangram_partition::algorithm::{partition_detailed, PartitionConfig};
use tangram_sim::rng::DetRng;
use tangram_stitch::canvas::PlacedPatch;
use tangram_stitch::solver::{split_to_fit, PatchStitchingSolver};
use tangram_types::geometry::{Rect, Size};
use tangram_types::ids::{CameraId, FrameId, PatchId};
use tangram_types::patch::PatchInfo;
use tangram_types::time::{SimDuration, SimTime};

/// Root seed for the whole suite; each property + case forks from it.
const ROOT_SEED: u64 = 0x7a6e_6772_616d_0001;

/// Number of random cases per property (matches the old proptest config).
const CASES: u64 = 64;

/// Returns the deterministic stream for one case of one property.
fn case_rng(property: &str, case: u64) -> DetRng {
    DetRng::new(ROOT_SEED).fork_indexed(property, case)
}

/// Draws a rectangle inside a 4K frame, mirroring the old `arb_rect`
/// strategy: x in [0, 3700), y in [0, 2000), w in [8, 500), h in [8, 600),
/// clamped to stay within 3840×2160.
fn arb_rect(rng: &mut DetRng) -> Rect {
    let x = rng.index(3700) as u32;
    let y = rng.index(2000) as u32;
    let w = (8 + rng.index(492)) as u32;
    let h = (8 + rng.index(592)) as u32;
    let x = x.min(3839);
    let y = y.min(2159);
    Rect::new(x, y, w.min(3840 - x).max(1), h.min(2160 - y).max(1))
}

fn arb_rect_vec(rng: &mut DetRng, lo: usize, hi: usize) -> Vec<Rect> {
    let n = lo + rng.index(hi - lo);
    (0..n).map(|_| arb_rect(rng)).collect()
}

fn patch_info(i: usize, rect: Rect) -> PatchInfo {
    PatchInfo::new(
        PatchId::new(i as u64),
        CameraId::new(0),
        FrameId::new(0),
        rect,
        SimTime::ZERO,
        SimDuration::from_secs(60),
    )
}

#[test]
fn stitch_places_everything_disjointly() {
    for case in 0..CASES {
        let mut rng = case_rng("stitch_places_everything_disjointly", case);
        let rects = arb_rect_vec(&mut rng, 1, 40);
        let solver = PatchStitchingSolver::new(Size::CANVAS_1024);
        let patches: Vec<PatchInfo> = rects
            .iter()
            .enumerate()
            .flat_map(|(i, r)| {
                split_to_fit(*r, Size::CANVAS_1024)
                    .into_iter()
                    .map(move |tile| patch_info(i, tile))
            })
            .collect();
        let canvases = solver.stitch(&patches).expect("normalised patches fit");
        // Every patch placed exactly once.
        let placed: usize = canvases.iter().map(|c| c.placements.len()).sum();
        assert_eq!(placed, patches.len(), "case {case}");
        // No overlaps, all in bounds, efficiency ≤ 1.
        for canvas in &canvases {
            let bounds = Rect::from_size(canvas.size);
            let rects: Vec<Rect> = canvas
                .placements
                .iter()
                .map(PlacedPatch::canvas_rect)
                .collect();
            for (i, r) in rects.iter().enumerate() {
                assert!(bounds.contains_rect(r), "case {case}: {r:?} out of bounds");
                for o in &rects[..i] {
                    assert!(!r.intersects(o), "case {case}: {r:?} overlaps {o:?}");
                }
            }
            assert!(canvas.efficiency() <= 1.0 + 1e-12, "case {case}");
        }
    }
}

#[test]
fn partition_covers_every_roi() {
    for case in 0..CASES {
        let mut rng = case_rng("partition_covers_every_roi", case);
        let rects = arb_rect_vec(&mut rng, 0, 60);
        let zx = (1 + rng.index(7)) as u32;
        let zy = (1 + rng.index(7)) as u32;
        let config = PartitionConfig::new(zx, zy);
        let detailed = partition_detailed(Size::UHD_4K, config, &rects);
        // Patch count bounded by zones; every RoI fully inside its patch.
        assert!(detailed.len() <= (zx * zy) as usize, "case {case}");
        let mut assigned = 0usize;
        for zp in &detailed {
            for &ri in &zp.roi_indices {
                assert!(
                    zp.rect.contains_rect(&rects[ri]),
                    "case {case}: roi {ri} escapes its patch"
                );
                assigned += 1;
            }
        }
        let nonempty = rects.iter().filter(|r| !r.is_empty()).count();
        assert_eq!(assigned, nonempty, "case {case}");
    }
}

#[test]
fn split_to_fit_partitions_exactly() {
    for case in 0..CASES {
        let mut rng = case_rng("split_to_fit_partitions_exactly", case);
        let rect = arb_rect(&mut rng);
        let tiles = split_to_fit(rect, Size::CANVAS_1024);
        let total: u64 = tiles.iter().map(Rect::area).sum();
        assert_eq!(total, rect.area(), "case {case}");
        for (i, t) in tiles.iter().enumerate() {
            assert!(rect.contains_rect(t), "case {case}");
            assert!(Size::CANVAS_1024.fits(t.size()), "case {case}");
            for o in &tiles[..i] {
                assert!(!t.intersects(o), "case {case}");
            }
        }
    }
}

#[test]
fn scheduler_batches_respect_gpu_bound() {
    let estimator = LatencyEstimator::paper_default(
        &InferenceLatencyModel::rtx4090_yolov8x(),
        Size::CANVAS_1024,
        9,
    );
    for case in 0..CASES {
        let mut rng = case_rng("scheduler_batches_respect_gpu_bound", case);
        let n = 1 + rng.index(59);
        let sizes: Vec<(u32, u32)> = (0..n)
            .map(|_| ((50 + rng.index(974)) as u32, (50 + rng.index(974)) as u32))
            .collect();
        let slo_ms = (200 + rng.index(4800)) as u64;
        let mut scheduler =
            TangramScheduler::new(SchedulerConfig::paper_default(), estimator.clone());
        let mut dispatched = Vec::new();
        for (i, (w, h)) in sizes.iter().enumerate() {
            let info = PatchInfo::new(
                PatchId::new(i as u64),
                CameraId::new(0),
                FrameId::new(i as u64 / 8),
                Rect::new(0, 0, *w, *h),
                SimTime::from_micros(i as u64 * 5_000),
                SimDuration::from_millis(slo_ms),
            );
            let out = scheduler.on_patch(SimTime::from_micros(i as u64 * 5_000), info);
            dispatched.extend(out.dispatches);
        }
        dispatched.extend(scheduler.drain().dispatches);
        // Constraint (5): never more canvases than the GPU holds; every
        // patch appears in exactly one batch.
        let total: usize = dispatched.iter().map(|b| b.patches.len()).sum();
        assert_eq!(total, sizes.len(), "case {case}");
        for b in &dispatched {
            assert!(b.inputs <= 9, "case {case}: batch of {} canvases", b.inputs);
            assert_eq!(b.canvas_efficiencies.len(), b.inputs, "case {case}");
        }
    }
}

#[test]
fn ap_increases_with_true_positives() {
    for case in 0..CASES {
        let mut rng = case_rng("ap_increases_with_true_positives", case);
        let n_truth = 1 + rng.index(19);
        let hits = rng.index(20);
        let truths: Vec<Rect> = (0..n_truth)
            .map(|i| Rect::new(i as u32 * 150, 100, 80, 120))
            .collect();
        let make_eval = |k: usize| {
            let dets: Vec<Detection> = truths
                .iter()
                .take(k)
                .map(|&rect| Detection {
                    rect,
                    confidence: 0.9,
                })
                .collect();
            vec![FrameEval::new(truths.clone(), dets)]
        };
        let fewer = ap50(&make_eval(hits.min(n_truth).saturating_sub(1)));
        let more = ap50(&make_eval(hits.min(n_truth)));
        assert!(more >= fewer, "case {case}: {more} < {fewer}");
    }
}

#[test]
fn event_queue_pops_sorted() {
    for case in 0..CASES {
        let mut rng = case_rng("event_queue_pops_sorted", case);
        let n = 1 + rng.index(199);
        let mut q = tangram_sim::event::EventQueue::new();
        for i in 0..n {
            q.push(SimTime::from_micros(rng.index(1_000_000) as u64), i);
        }
        let mut last = SimTime::ZERO;
        while let Some((t, _)) = q.pop() {
            assert!(t >= last, "case {case}");
            last = t;
        }
    }
}

#[test]
fn deadlines_never_regress_under_waiting() {
    for case in 0..CASES {
        let mut rng = case_rng("deadlines_never_regress_under_waiting", case);
        let generated = rng.index(1_000_000) as u64;
        let slo = (1 + rng.index(4_999_999)) as u64;
        let info = PatchInfo::new(
            PatchId::new(0),
            CameraId::new(0),
            FrameId::new(0),
            Rect::new(0, 0, 10, 10),
            SimTime::from_micros(generated),
            SimDuration::from_micros(slo),
        );
        let d = info.deadline();
        assert_eq!(
            d.since(SimTime::from_micros(generated)),
            SimDuration::from_micros(slo),
            "case {case}"
        );
        // Budget is monotone non-increasing in time.
        let b1 = info.remaining_budget(SimTime::from_micros(generated + 1));
        let b2 = info.remaining_budget(SimTime::from_micros(generated + 2));
        assert!(b2 <= b1, "case {case}");
    }
}
