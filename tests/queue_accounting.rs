//! Regression coverage for the queue-depth accounting fix: the engine's
//! standing-work counter is kept in post-normalize units (tiles), so an
//! admission policy reading `AdmissionSignals::queued` sees the true
//! backlog even when oversized patches fan out into several tiles.
//!
//! The historical bug counted `+1` per arrival but subtracted the
//! tile count per dispatched batch — arrivals whose patches tiled 4:1
//! under-reported the queue 4×, so depth-bounded shedders admitted far
//! past their threshold (and the counter only survived dispatch through
//! a masking `saturating_sub`).

use tangram_core::admission::QueueDepthThreshold;
use tangram_core::engine::{EngineConfig, PolicyKind};
use tangram_core::online::{OnlineEngine, TraceReplaySource};
use tangram_core::workload::{CameraTrace, TraceFrame};
use tangram_types::geometry::Rect;
use tangram_types::ids::{CameraId, FrameId, PatchId, SceneId};
use tangram_types::patch::{Patch, PatchInfo};
use tangram_types::time::{SimDuration, SimTime};
use tangram_types::units::Bytes;

/// A trace of `frames` frames, each carrying exactly one oversized
/// 2000×1500 patch — larger than the default 1024×1024 canvas on both
/// axes, so the scheduler tiles every arrival into 4 standing items.
fn oversized_trace(frames: usize) -> CameraTrace {
    let frames = (0..frames)
        .map(|i| {
            let info = PatchInfo::new(
                PatchId::new(100 + i as u64),
                CameraId::new(1),
                FrameId::new(i as u64),
                Rect::new(0, 0, 2000, 1500),
                SimTime::ZERO, // re-stamped at capture
                SimDuration::from_secs_f64(10.0),
            );
            TraceFrame {
                frame: FrameId::new(i as u64),
                patches: vec![Patch::new(info, Bytes(1_000))],
                elf_patch_bytes: vec![Bytes(4_000)],
                full_frame_bytes: Bytes(50_000),
                masked_frame_bytes: Bytes(20_000),
                full_megapixels: 8.3,
                masked_megapixels: 3.0,
                roi_count: 1,
            }
        })
        .collect();
    CameraTrace {
        camera: CameraId::new(1),
        scene: SceneId::new(1),
        frames,
    }
}

/// Three oversized arrivals against a depth-5 shedder. In tile units
/// the standing queue is 0 → 4 → 8 across the three admission checks,
/// so exactly the third arrival is shed. The pre-fix per-arrival
/// accounting saw 0 → 1 → 2 and admitted everything.
#[test]
fn queue_depth_signal_counts_tiles_not_arrivals() {
    let config = EngineConfig {
        policy: PolicyKind::Tangram,
        slo: SimDuration::from_secs_f64(10.0),
        seed: 11,
        ..EngineConfig::default()
    };
    let mut engine = OnlineEngine::new(&config);
    engine.add_camera_at(
        SimTime::ZERO,
        Box::new(TraceReplaySource::new(oversized_trace(3))),
    );
    engine.set_admission_policy(Box::new(QueueDepthThreshold::new(5)));
    let report = engine.run();

    assert_eq!(
        report.dropped_arrivals, 1,
        "the third oversized arrival must be shed: the first two stand \
         as 8 tiles, past the depth-5 bound"
    );
    // The two admitted arrivals tile 4:1 and all dispatched work
    // completes within the lax SLO.
    assert_eq!(report.patches.len(), 8, "2 admitted arrivals × 4 tiles");
    assert_eq!(report.frames, 3);
}

/// With the bound lifted just past the true two-arrival backlog, the
/// same workload is admitted in full — pinning the threshold semantics
/// (shed at `queued >= max_queued`, in tile units) from both sides.
#[test]
fn queue_depth_bound_is_exact_in_tile_units() {
    let config = EngineConfig {
        policy: PolicyKind::Tangram,
        slo: SimDuration::from_secs_f64(10.0),
        seed: 11,
        ..EngineConfig::default()
    };
    let mut engine = OnlineEngine::new(&config);
    engine.add_camera_at(
        SimTime::ZERO,
        Box::new(TraceReplaySource::new(oversized_trace(3))),
    );
    engine.set_admission_policy(Box::new(QueueDepthThreshold::new(9)));
    let report = engine.run();

    assert_eq!(
        report.dropped_arrivals, 0,
        "a depth-9 bound clears the 8-tile standing queue"
    );
    assert_eq!(report.patches.len(), 12, "3 admitted arrivals × 4 tiles");
}
