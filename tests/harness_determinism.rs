//! Workspace-level guarantees of the experiment harness: a parallel
//! sweep is bit-for-bit identical to a sequential one, and the
//! `BENCH_*.json` schema round-trips losslessly.

use tangram_core::engine::PolicyKind;
use tangram_harness::{run_grid, BenchReport, SweepGrid, TraceKind, WorkloadSpec};
use tangram_types::ids::SceneId;

/// A two-axis grid (policy × bandwidth) over one small proxy workload —
/// big enough to exercise batching, small enough for a debug-build test.
fn two_axis_grid() -> SweepGrid {
    let mut grid = SweepGrid::named("determinism");
    grid.policies = vec![PolicyKind::Tangram, PolicyKind::Clipper];
    grid.seeds = vec![42];
    grid.slos_s = vec![1.0];
    grid.bandwidths_mbps = vec![20.0, 40.0];
    grid.workloads = vec![WorkloadSpec::single(SceneId::new(1), 8, TraceKind::Proxy)];
    grid
}

#[test]
fn one_worker_and_many_workers_agree_exactly() {
    let grid = two_axis_grid();
    let sequential = run_grid(&grid, 1);
    let parallel = run_grid(&grid, 4);
    // Structural equality…
    assert_eq!(sequential, parallel);
    // …and byte equality of the serialized artifact, which is what the
    // CI gate ultimately compares.
    assert_eq!(sequential.to_json(), parallel.to_json());
}

#[test]
fn report_json_round_trips() {
    let grid = two_axis_grid();
    let report = run_grid(&grid, 2);
    assert_eq!(report.cells.len(), grid.cell_count());

    let text = report.to_json();
    let parsed = BenchReport::from_json(&text).expect("valid BENCH json");
    // Cells (metrics included) survive exactly.
    assert_eq!(parsed.cells, report.cells);
    assert_eq!(parsed.name, report.name);
    // The grid echo keeps every axis.
    assert_eq!(parsed.grid.policies, report.grid.policies);
    assert_eq!(parsed.grid.bandwidths_mbps, report.grid.bandwidths_mbps);
    assert_eq!(parsed.grid.workloads, report.grid.workloads);
    // Serialisation is a fixed point: render(parse(x)) == x.
    assert_eq!(parsed.to_json(), text);
}

#[test]
fn reruns_are_reproducible() {
    let grid = two_axis_grid();
    let first = run_grid(&grid, 3);
    let second = run_grid(&grid, 2);
    assert_eq!(first.to_json(), second.to_json());
}

#[test]
fn churn_scenario_grid_is_parallel_deterministic() {
    // The streaming path (open-loop arrivals, camera churn, tenant SLO
    // mix) must hold the same guarantee as trace replay: any worker
    // count, byte-identical BENCH json — and it must round-trip,
    // scenario block included.
    let mut grid = tangram_harness::presets::churn_grid(42, 40);
    // Shorten the sessions so churn is guaranteed to bite: ~6 fps for
    // 3 s ≈ 18 frames per camera, well under the 40-frame budget (and
    // cheap enough for a debug-build test).
    grid.scenarios[0].session_s = Some(3.0);
    let sequential = run_grid(&grid, 1);
    let parallel = run_grid(&grid, 4);
    assert_eq!(sequential.to_json(), parallel.to_json());

    let parsed = BenchReport::from_json(&sequential.to_json()).expect("valid BENCH json");
    assert_eq!(parsed.grid.scenarios, grid.scenarios);
    assert_eq!(parsed.to_json(), sequential.to_json());
    // Churn truncates: every camera leaves before reaching its budget,
    // so strictly fewer frames complete than cameras × budget.
    let cameras = grid.workloads[0].scenes.len() as u64;
    for cell in &parsed.cells {
        assert!(cell.metrics.frames > 0);
        assert!(
            cell.metrics.frames < cameras * 40,
            "cell {}: CameraLeave must cut streams short ({} frames)",
            cell.index,
            cell.metrics.frames
        );
    }
}

#[test]
fn overload_grid_is_parallel_deterministic_and_sheds_under_slo_shedder() {
    // The overload sweep (scenario axis × admission axis) must hold the
    // worker-count guarantee like every other grid — and its whole point
    // is that shedding is *visible*: the SLO-shedder cells past the
    // capacity knee record non-zero drops, per tenant class, in the
    // serialized report.
    let grid = tangram_harness::presets::overload_grid(42, 12, true);
    assert_eq!(
        grid.cell_count(),
        grid.scenarios.len() * grid.admission.len()
    );
    let sequential = run_grid(&grid, 1);
    let parallel = run_grid(&grid, 4);
    assert_eq!(sequential.to_json(), parallel.to_json());

    let parsed = BenchReport::from_json(&sequential.to_json()).expect("valid BENCH json");
    assert_eq!(parsed.grid.scenarios, grid.scenarios);
    assert_eq!(parsed.grid.admission, grid.admission);
    assert_eq!(parsed.to_json(), sequential.to_json());

    for cell in &parsed.cells {
        // Multi-scenario grids stamp both axes on every cell.
        assert!(cell.scenario.is_some(), "cell {}", cell.index);
        assert!(cell.admission.is_some(), "cell {}", cell.index);
        // Gold and best-effort are accounted separately.
        assert_eq!(cell.metrics.tenants.len(), 2, "cell {}", cell.index);
        let drops: u64 = cell.metrics.tenants.iter().map(|t| t.dropped).sum();
        assert_eq!(
            drops, cell.metrics.dropped_arrivals,
            "cell {}: per-class drops must sum to the total",
            cell.index
        );
        if cell.admission.as_deref() == Some("always") {
            assert_eq!(cell.metrics.dropped_arrivals, 0, "cell {}", cell.index);
        }
    }
    // The overloaded SLO-shedder cell sheds — and the drops are visible.
    let shed: Vec<_> = parsed
        .cells
        .iter()
        .filter(|c| c.admission.as_deref() == Some("slo-shedder"))
        .collect();
    assert!(
        shed.iter().any(|c| c.metrics.dropped_arrivals > 0),
        "the overload ramp must push the shedder past its threshold"
    );
}

#[test]
fn fairness_grid_is_parallel_deterministic_and_holds_weighted_shares() {
    // The fairness sweep (scenario axis × fairness axis) is what
    // `bench_fairness --smoke` runs: `--workers N` output must be
    // byte-identical to `--workers 1`, the fairness block must round-trip,
    // and the 2×-overload cell must show the weighted-DRR property —
    // overflow sheds on both classes while the *admitted* mix tracks the
    // 3:1 weights instead of collapsing to one class.
    let grid = tangram_harness::presets::fairness_grid(42, 48, true);
    assert_eq!(grid.cell_count(), grid.scenarios.len());
    let sequential = run_grid(&grid, 1);
    let parallel = run_grid(&grid, 4);
    assert_eq!(sequential.to_json(), parallel.to_json());

    let parsed = BenchReport::from_json(&sequential.to_json()).expect("valid BENCH json");
    assert_eq!(parsed.grid.fairness, grid.fairness);
    assert_eq!(parsed.to_json(), sequential.to_json());

    for cell in &parsed.cells {
        assert_eq!(cell.fairness.as_deref(), Some("drr"), "cell {}", cell.index);
        assert_eq!(cell.metrics.tenants.len(), 2, "cell {}", cell.index);
        let drops: u64 = cell.metrics.tenants.iter().map(|t| t.dropped).sum();
        assert_eq!(
            drops, cell.metrics.dropped_arrivals,
            "cell {}: per-class sheds must sum to the total",
            cell.index
        );
        // Queue-depth accounting reaches the serialized report.
        assert!(
            cell.metrics.tenants.iter().any(|t| t.peak_queued > 0),
            "cell {}: ingress queue peaks recorded",
            cell.index
        );
        // Past the ingress knee both classes shed, yet the admitted mix
        // stays near the configured 3:1 ratio. The band is wider than the
        // weights alone would suggest because the DRR is work-conserving:
        // a transiently dry class donates its credit to the backlogged
        // one instead of idling the round.
        if cell.metrics.dropped_arrivals > 0 {
            let admitted: u64 = cell.metrics.tenants.iter().map(|t| t.admitted).sum();
            let gold = &cell.metrics.tenants[0];
            let share = gold.admitted as f64 / admitted as f64;
            assert!(
                (share - 0.75).abs() < 0.11,
                "cell {}: gold admitted share {share:.3}",
                cell.index
            );
        }
    }
    assert!(
        parsed.cells.iter().any(|c| c.metrics.dropped_arrivals > 0),
        "the ramp must cross the DRR ingress capacity"
    );
}

#[test]
fn sharded_scenario_grid_matches_the_single_shard_bytes() {
    // The sharded runtime is a pure execution strategy: a scenario grid
    // run at any shard count must serialize to the exact bytes of the
    // single-shard oracle — same digests, same drop accounting, same
    // grid echo. This is the workspace-level form of the guarantee
    // `bench_throughput` asserts per run.
    let mut grid = tangram_harness::presets::churn_grid(42, 24);
    grid.scenarios[0].session_s = Some(3.0);
    let oracle = run_grid(&grid, 2).to_json();
    for shards in [2, 8] {
        grid.shards = shards;
        let sharded = run_grid(&grid, 2).to_json();
        assert_eq!(sharded, oracle, "{shards} shards diverged from 1 shard");
    }
    // `shards` is execution-only: it must never leak into the artifact,
    // so baselines stay valid no matter how the producer was sharded.
    assert!(!oracle.contains("\"shards\""));
}

#[test]
fn minimum_credit_window_grid_matches_the_oracle_bytes() {
    // CREDIT_WINDOW = 1 is the most adversarial legal window: every
    // shard capture blocks until the coordinator returns its one
    // credit, so the merge interleaving is maximally serialized — the
    // exact regime the model checker's `credit s* w1` rows explore.
    // The end-to-end guarantee must not depend on the window: a grid
    // run with the window pinned to 1 serializes to the same bytes as
    // the default-window run, at every shard count. `credit_window` is
    // execution-only (like `shards`), so it must never reach the
    // artifact either.
    let mut grid = tangram_harness::presets::churn_grid(42, 24);
    grid.scenarios[0].session_s = Some(3.0);
    let oracle = run_grid(&grid, 2).to_json();
    grid.credit_window = Some(1);
    for shards in [1, 2, 8] {
        grid.shards = shards;
        let starved = run_grid(&grid, 2).to_json();
        assert_eq!(
            starved, oracle,
            "window 1 at {shards} shard(s) diverged from the default window"
        );
    }
    assert!(!oracle.contains("\"credit_window\""));
}

#[test]
fn faulted_scenario_grid_matches_the_single_shard_bytes() {
    // Fault injection must not weaken the sharding guarantee: a scenario
    // carrying declarative fault windows (a brownout across most of the
    // run, a link outage inside it) serializes to the exact bytes of the
    // single-shard oracle at any shard count — the faulted form of
    // `sharded_scenario_grid_matches_the_single_shard_bytes`, and the
    // workspace-level mirror of what `bench_scenarios` asserts per run.
    use tangram_core::{FaultKind, FaultSpec};
    let mut grid = tangram_harness::presets::churn_grid(42, 24);
    grid.scenarios[0].session_s = Some(3.0);
    grid.scenarios[0].faults = vec![
        FaultSpec {
            kind: FaultKind::Brownout { factor: 2.0 },
            at_s: 0.5,
            duration_s: 3.0,
        },
        FaultSpec {
            kind: FaultKind::LinkOutage,
            at_s: 1.0,
            duration_s: 0.5,
        },
    ];
    let oracle = run_grid(&grid, 2).to_json();
    for shards in [2, 8] {
        grid.shards = shards;
        let sharded = run_grid(&grid, 2).to_json();
        assert_eq!(sharded, oracle, "{shards} shards diverged under faults");
    }
    // The fault schedule is part of the artifact (schema v4): it must
    // round-trip with the grid echo.
    let parsed = BenchReport::from_json(&oracle).expect("valid BENCH json");
    assert_eq!(parsed.grid.scenarios, grid.scenarios);
    assert!(oracle.contains("\"faults\""));
    assert!(oracle.contains("\"brownout\""));
}

#[test]
fn legacy_grid_emission_is_byte_stable_under_the_new_axes() {
    // PR 4 turned `scenario: Option<ScenarioSpec>` into the `scenarios`
    // axis (plus `admission`). Legacy shapes must keep their exact
    // serialization: no key at all without scenarios, the singular
    // `"scenario"` object form with exactly one, and no admission key
    // without an admission axis — so pre-existing BENCH consumers and
    // checked-in baselines only change where drop accounting was added.
    let plain = run_grid(&two_axis_grid(), 2).to_json();
    assert!(!plain.contains("\"scenario"));
    assert!(!plain.contains("\"admission\""));
    assert!(!plain.contains("\"fairness\""));

    let single = run_grid(&tangram_harness::presets::churn_grid(42, 6), 2).to_json();
    assert!(single.contains("\"scenario\": {"));
    assert!(!single.contains("\"scenarios\""));
    assert!(!single.contains("\"admission\""));
    // Single-scenario cells carry no per-cell scenario index either: the
    // cell keys are exactly the legacy eight.
    let parsed = BenchReport::from_json(&single).expect("valid BENCH json");
    for cell in &parsed.cells {
        assert_eq!(cell.scenario, None);
        assert_eq!(cell.admission, None);
    }
}
