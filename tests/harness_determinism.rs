//! Workspace-level guarantees of the experiment harness: a parallel
//! sweep is bit-for-bit identical to a sequential one, and the
//! `BENCH_*.json` schema round-trips losslessly.

use tangram_core::engine::PolicyKind;
use tangram_harness::{run_grid, BenchReport, SweepGrid, TraceKind, WorkloadSpec};
use tangram_types::ids::SceneId;

/// A two-axis grid (policy × bandwidth) over one small proxy workload —
/// big enough to exercise batching, small enough for a debug-build test.
fn two_axis_grid() -> SweepGrid {
    let mut grid = SweepGrid::named("determinism");
    grid.policies = vec![PolicyKind::Tangram, PolicyKind::Clipper];
    grid.seeds = vec![42];
    grid.slos_s = vec![1.0];
    grid.bandwidths_mbps = vec![20.0, 40.0];
    grid.workloads = vec![WorkloadSpec::single(SceneId::new(1), 8, TraceKind::Proxy)];
    grid
}

#[test]
fn one_worker_and_many_workers_agree_exactly() {
    let grid = two_axis_grid();
    let sequential = run_grid(&grid, 1);
    let parallel = run_grid(&grid, 4);
    // Structural equality…
    assert_eq!(sequential, parallel);
    // …and byte equality of the serialized artifact, which is what the
    // CI gate ultimately compares.
    assert_eq!(sequential.to_json(), parallel.to_json());
}

#[test]
fn report_json_round_trips() {
    let grid = two_axis_grid();
    let report = run_grid(&grid, 2);
    assert_eq!(report.cells.len(), grid.cell_count());

    let text = report.to_json();
    let parsed = BenchReport::from_json(&text).expect("valid BENCH json");
    // Cells (metrics included) survive exactly.
    assert_eq!(parsed.cells, report.cells);
    assert_eq!(parsed.name, report.name);
    // The grid echo keeps every axis.
    assert_eq!(parsed.grid.policies, report.grid.policies);
    assert_eq!(parsed.grid.bandwidths_mbps, report.grid.bandwidths_mbps);
    assert_eq!(parsed.grid.workloads, report.grid.workloads);
    // Serialisation is a fixed point: render(parse(x)) == x.
    assert_eq!(parsed.to_json(), text);
}

#[test]
fn reruns_are_reproducible() {
    let grid = two_axis_grid();
    let first = run_grid(&grid, 3);
    let second = run_grid(&grid, 2);
    assert_eq!(first.to_json(), second.to_json());
}

#[test]
fn churn_scenario_grid_is_parallel_deterministic() {
    // The streaming path (open-loop arrivals, camera churn, tenant SLO
    // mix) must hold the same guarantee as trace replay: any worker
    // count, byte-identical BENCH json — and it must round-trip,
    // scenario block included.
    let mut grid = tangram_harness::presets::churn_grid(42, 40);
    // Shorten the sessions so churn is guaranteed to bite: ~6 fps for
    // 3 s ≈ 18 frames per camera, well under the 40-frame budget (and
    // cheap enough for a debug-build test).
    grid.scenario.as_mut().expect("streaming grid").session_s = Some(3.0);
    let sequential = run_grid(&grid, 1);
    let parallel = run_grid(&grid, 4);
    assert_eq!(sequential.to_json(), parallel.to_json());

    let parsed = BenchReport::from_json(&sequential.to_json()).expect("valid BENCH json");
    assert_eq!(parsed.grid.scenario, grid.scenario);
    assert_eq!(parsed.to_json(), sequential.to_json());
    // Churn truncates: every camera leaves before reaching its budget,
    // so strictly fewer frames complete than cameras × budget.
    let cameras = grid.workloads[0].scenes.len() as u64;
    for cell in &parsed.cells {
        assert!(cell.metrics.frames > 0);
        assert!(
            cell.metrics.frames < cameras * 40,
            "cell {}: CameraLeave must cut streams short ({} frames)",
            cell.index,
            cell.metrics.frames
        );
    }
}
