//! Integration tests of the accuracy pipeline: extraction → partitioning
//! → presentation → detection → AP, the path behind Tables III/IV and
//! Figs. 2a/4b.

use tangram_infer::accuracy::{DetectionSimulator, PresentedObject, ResolutionProfile};
use tangram_infer::ap::{ap50, FrameEval};
use tangram_partition::algorithm::{partition, PartitionConfig};
use tangram_sim::rng::DetRng;
use tangram_types::geometry::Rect;
use tangram_types::ids::SceneId;
use tangram_video::generator::{FrameTruth, SceneSimulation, VideoConfig};
use tangram_video::scene::SceneProfile;
use tangram_vision::detector::DetectorProxy;
use tangram_vision::extractor::{ProxyExtractor, RoiExtractor};

fn covered_fraction(object: &Rect, regions: &[Rect]) -> f64 {
    let covered: u64 = regions
        .iter()
        .filter_map(|r| r.intersect(object))
        .map(|p| p.area())
        .sum();
    (covered as f64 / object.area() as f64).min(1.0)
}

fn present(frame: &FrameTruth, regions: &[Rect]) -> Vec<PresentedObject> {
    frame
        .objects
        .iter()
        .filter_map(|o| {
            let c = covered_fraction(&o.rect, regions);
            (c > 0.0).then(|| PresentedObject {
                track: o.track,
                true_rect: o.rect,
                presented_area: o.rect.area() as f64 * c,
                visible_fraction: c,
            })
        })
        .collect()
}

fn scene_aps(scene: SceneId, frames: usize, seed: u64) -> (f64, f64) {
    let profile = SceneProfile::panda(scene);
    let simulator = DetectionSimulator::new(ResolutionProfile::yolov8x_4k());
    let mut rng = DetRng::new(seed).fork("acc-test");
    let mut sim = SceneSimulation::new(scene, VideoConfig::default(), seed);
    let mut extractor =
        ProxyExtractor::new(DetectorProxy::ssdlite_mobilenet_v2(), rng.fork("edge"));
    let mut full_evals = Vec::new();
    let mut part_evals = Vec::new();
    for frame in sim.frames(frames) {
        let bounds = Rect::from_size(frame.frame_size);
        let truths = frame.object_rects();
        let native: Vec<PresentedObject> = frame
            .objects
            .iter()
            .map(|o| PresentedObject::native(o.track, o.rect))
            .collect();
        let dets = simulator.detect(
            &native,
            frame.frame_size.megapixels(),
            profile.full_frame_ap,
            bounds,
            &mut rng,
        );
        full_evals.push(FrameEval::new(truths.clone(), dets));

        let rois = extractor.extract(&frame);
        let patches = partition(frame.frame_size, PartitionConfig::default(), &rois);
        let presented = present(&frame, &patches);
        let mpx = patches.iter().map(|p| p.area() as f64).sum::<f64>() / 1.0e6;
        let dets = simulator.detect(&presented, mpx, profile.full_frame_ap, bounds, &mut rng);
        part_evals.push(FrameEval::new(truths, dets));
    }
    (ap50(&full_evals), ap50(&part_evals))
}

#[test]
fn full_frame_ap_matches_calibration() {
    // The detection simulator's per-scene base difficulty is calibrated to
    // Table III's full-frame column; simulated AP must land near it.
    for scene_idx in [1u8, 2, 4] {
        let scene = SceneId::new(scene_idx);
        let expected = SceneProfile::panda(scene).full_frame_ap;
        let (full_ap, _) = scene_aps(scene, 40, 77);
        assert!(
            (full_ap - expected).abs() < 0.08,
            "scene {scene_idx}: AP {full_ap:.3} vs calibration {expected:.3}"
        );
    }
}

#[test]
fn partitioning_loss_is_bounded() {
    // Table III: partitioned accuracy trails full-frame accuracy only
    // slightly (the proxy extractor is lossier than the paper's GMM, so
    // the bound here is looser than the paper's ≤5%).
    let (full_ap, part_ap) = scene_aps(SceneId::new(2), 40, 78);
    assert!(part_ap > 0.0);
    assert!(
        part_ap >= full_ap - 0.25,
        "partition loss too large: {full_ap:.3} → {part_ap:.3}"
    );
}

#[test]
fn downsizing_hurts_accuracy() {
    // Fig. 4b's monotone downsize curve, end to end.
    let scene = SceneId::new(2);
    let profile = SceneProfile::panda(scene);
    let simulator = DetectionSimulator::new(ResolutionProfile::yolov8x_4k());
    let mut aps = Vec::new();
    for scale in [1.0, 0.5, 2.0 / 9.0] {
        let mut rng = DetRng::new(5).fork("downsize");
        let mut sim = SceneSimulation::new(scene, VideoConfig::default(), 5);
        let mut evals = Vec::new();
        for frame in sim.frames(30) {
            let bounds = Rect::from_size(frame.frame_size);
            let presented: Vec<PresentedObject> = frame
                .objects
                .iter()
                .map(|o| PresentedObject::scaled(o.track, o.rect, scale))
                .collect();
            let dets = simulator.detect(
                &presented,
                frame.frame_size.megapixels() * scale * scale,
                profile.full_frame_ap,
                bounds,
                &mut rng,
            );
            evals.push(FrameEval::new(frame.object_rects(), dets));
        }
        aps.push(ap50(&evals));
    }
    assert!(
        aps[0] > aps[1] && aps[1] > aps[2],
        "downsize curve not monotone: {aps:?}"
    );
    assert!(aps[0] - aps[2] > 0.2, "480P cliff too shallow: {aps:?}");
}

#[test]
fn stitched_presentation_beats_downsized_presentation() {
    // The paper's core accuracy claim: transmitting patches at native
    // scale (stitching) preserves accuracy that downsizing the full frame
    // to a comparable pixel budget destroys.
    let scene = SceneId::new(1);
    let profile = SceneProfile::panda(scene);
    let simulator = DetectionSimulator::new(ResolutionProfile::yolov8x_4k());
    let mut rng = DetRng::new(9).fork("stitch-vs-resize");
    let mut sim = SceneSimulation::new(scene, VideoConfig::default(), 9);
    let mut extractor =
        ProxyExtractor::new(DetectorProxy::ssdlite_mobilenet_v2(), rng.fork("edge"));
    let mut stitched = Vec::new();
    let mut downsized = Vec::new();
    for frame in sim.frames(40) {
        let bounds = Rect::from_size(frame.frame_size);
        let truths = frame.object_rects();
        let rois = extractor.extract(&frame);
        let patches = partition(frame.frame_size, PartitionConfig::default(), &rois);
        let coverage =
            patches.iter().map(|p| p.area() as f64).sum::<f64>() / frame.frame_size.area() as f64;
        // Native-scale patches.
        let presented = present(&frame, &patches);
        let dets = simulator.detect(
            &presented,
            frame.frame_size.megapixels() * coverage,
            profile.full_frame_ap,
            bounds,
            &mut rng,
        );
        stitched.push(FrameEval::new(truths.clone(), dets));
        // Same pixel budget spent on a uniformly downsized full frame.
        let scale = coverage.sqrt().clamp(0.05, 1.0);
        let presented: Vec<PresentedObject> = frame
            .objects
            .iter()
            .map(|o| PresentedObject::scaled(o.track, o.rect, scale))
            .collect();
        let dets = simulator.detect(
            &presented,
            frame.frame_size.megapixels() * coverage,
            profile.full_frame_ap,
            bounds,
            &mut rng,
        );
        downsized.push(FrameEval::new(truths, dets));
    }
    let stitched_ap = ap50(&stitched);
    let downsized_ap = ap50(&downsized);
    assert!(
        stitched_ap > downsized_ap + 0.05,
        "stitching {stitched_ap:.3} must clearly beat downsizing {downsized_ap:.3}"
    );
}
