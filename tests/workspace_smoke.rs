//! Workspace smoke test: drives one tiny end-to-end run entirely through
//! the umbrella crate's re-exports (`tangram::core`, `tangram::types`, …)
//! so a regression in `src/lib.rs`'s public surface — a dropped
//! re-export, a renamed module — fails here even if the underlying
//! crates still pass their own suites.

use tangram::core::engine::{EngineConfig, PolicyKind};
use tangram::core::workload::TraceConfig;
use tangram::sim::rng::DetRng;
use tangram::stitch::solver::PatchStitchingSolver;
use tangram::types::geometry::Size;
use tangram::types::ids::SceneId;
use tangram::types::time::SimDuration;

#[test]
fn umbrella_reexports_drive_an_end_to_end_run() {
    let trace = TraceConfig::proxy_extractor(SceneId::new(1), 12, 3).build();
    let config = EngineConfig {
        policy: PolicyKind::Tangram,
        slo: SimDuration::from_secs_f64(1.0),
        bandwidth_mbps: 40.0,
        seed: 3,
        ..EngineConfig::default()
    };
    let report = config.run(std::slice::from_ref(&trace));

    // The tiny workload completes, meets its SLO, and actually stitched:
    // canvases carry nonzero utilization and billing accrued.
    assert!(report.patches_completed() > 0, "no patches completed");
    assert!(
        report.slo_violation_rate() < 0.05,
        "SLO violation rate {:.3} on the smoke workload",
        report.slo_violation_rate()
    );
    let efficiencies = report.canvas_efficiencies();
    assert!(!efficiencies.is_empty(), "no stitched canvases recorded");
    let mean_eff = efficiencies.iter().sum::<f64>() / efficiencies.len() as f64;
    assert!(
        mean_eff > 0.0 && mean_eff <= 1.0 + 1e-12,
        "mean canvas utilization {mean_eff} out of range"
    );
    assert!(report.total_cost().get() > 0.0, "run accrued no cost");

    // Sibling re-exports stay usable together: the deterministic RNG and
    // the stitching solver compose with `types` geometry.
    let mut rng = DetRng::new(42).fork("smoke");
    let solver = PatchStitchingSolver::new(Size::CANVAS_1024);
    let sizes: Vec<Size> = (0..6)
        .map(|_| Size::new((64 + rng.index(400)) as u32, (64 + rng.index(400)) as u32))
        .collect();
    let canvases = solver.stitch_sizes(&sizes).expect("small patches fit");
    assert!(!canvases.is_empty());
    assert!(canvases.iter().all(|c| c.efficiency() > 0.0));
}
