//! Property tests for the weighted-DRR fair ingress: under a 2× Poisson
//! overload with 3:1 weights, the *admitted* per-class traffic mix must
//! track the configured weights — the whole point of fair shedding — and
//! it must do so for every root seed, not one lucky draw.

use tangram_core::engine::{EngineConfig, PolicyKind};
use tangram_core::fairness::{DrrConfig, DrrIngress};
use tangram_core::online::{ArrivalProcess, GeneratedSource, OnlineEngine, TenantClass};
use tangram_core::workload::TraceConfig;
use tangram_sim::rng::DetRng;
use tangram_types::ids::SceneId;
use tangram_types::time::{SimDuration, SimTime};

const GOLD_SLO: SimDuration = SimDuration::from_millis(800);
const BE_SLO: SimDuration = SimDuration::from_millis(1500);

/// Runs four cameras (two gold, two best-effort) at roughly twice the
/// DRR ingress service rate and returns the per-class admitted counts.
fn overloaded_run(root_seed: u64) -> (u64, u64) {
    let config = EngineConfig {
        policy: PolicyKind::Tangram,
        // Wide uplink: the fair ingress, not the link, must be the
        // bottleneck for the overload to land on the DRR stage.
        bandwidth_mbps: 400.0,
        seed: root_seed,
        ..EngineConfig::default()
    };
    let root = DetRng::new(root_seed);
    let mut engine = OnlineEngine::new(&config);
    for cam in 0..4u8 {
        let tenant = if cam % 2 == 0 {
            TenantClass::new("gold", GOLD_SLO)
        } else {
            TenantClass::new("best-effort", BE_SLO)
        };
        let trace = TraceConfig::proxy_extractor(SceneId::new(1 + cam), 6, 7).build();
        // ~7.8 patches/frame × 4 cameras × 16 fps ≈ 500 patches/s offered
        // against the 200 item/s DRR service rate below — a sustained
        // ≥2× overload on both classes.
        let source = GeneratedSource::new(
            &trace,
            300,
            ArrivalProcess::Poisson { fps: 16.0 },
            root.fork_indexed("fairness-overload", u64::from(cam)),
        )
        .with_tenant(&tenant);
        engine.add_camera_at(SimTime::ZERO, Box::new(source));
    }
    engine.set_fair_ingress(DrrIngress::new(&DrrConfig {
        classes: vec![(GOLD_SLO, 3.0), (BE_SLO, 1.0)],
        queue_capacity: 32,
        quantum: 1.0,
        tick: SimDuration::from_millis(20),
    }));
    let report = engine.run();
    let tenants = report.tenant_breakdown();
    assert_eq!(tenants.len(), 2, "gold and best-effort accounted");
    assert_eq!(
        report.dropped_arrivals,
        tenants.iter().map(|t| t.dropped).sum::<u64>(),
        "per-class sheds sum to the total"
    );
    assert!(
        tenants.iter().all(|t| t.dropped > 0),
        "2x overload must overflow both classes"
    );
    (tenants[0].admitted, tenants[1].admitted)
}

/// Work conservation, end to end: a DRR configured with an extra class
/// that never receives traffic must admit the active class's work at the
/// same throughput as the no-idle-class oracle (same total weight), to
/// within ±2% — the idle class's credit is redistributed each round, not
/// wasted on an empty queue.
#[test]
fn idle_class_credit_is_work_conserved_end_to_end() {
    let run = |classes: Vec<(SimDuration, f64)>| -> u64 {
        let config = EngineConfig {
            policy: PolicyKind::Tangram,
            bandwidth_mbps: 400.0,
            seed: 11,
            ..EngineConfig::default()
        };
        let root = DetRng::new(11);
        let mut engine = OnlineEngine::new(&config);
        // Every camera is gold: the best-effort class (when configured)
        // stays idle for the whole run.
        for cam in 0..4u8 {
            let trace = TraceConfig::proxy_extractor(SceneId::new(1 + cam), 6, 7).build();
            let source = GeneratedSource::new(
                &trace,
                300,
                ArrivalProcess::Poisson { fps: 16.0 },
                root.fork_indexed("fairness-overload", u64::from(cam)),
            )
            .with_tenant(&TenantClass::new("gold", GOLD_SLO));
            engine.add_camera_at(SimTime::ZERO, Box::new(source));
        }
        engine.set_fair_ingress(DrrIngress::new(&DrrConfig {
            classes,
            queue_capacity: 32,
            quantum: 1.0,
            tick: SimDuration::from_millis(20),
        }));
        let report = engine.run();
        let tenants = report.tenant_breakdown();
        tenants
            .iter()
            .find(|t| (t.slo_s - GOLD_SLO.as_secs_f64()).abs() < 1e-9)
            .expect("gold class accounted")
            .admitted
    };
    // 3+1 with the 1-weight class idle vs a single class holding the
    // full weight of 4: same arrivals, same per-round budget.
    let with_idle = run(vec![(GOLD_SLO, 3.0), (BE_SLO, 1.0)]);
    let oracle = run(vec![(GOLD_SLO, 4.0)]);
    assert!(with_idle > 0 && oracle > 0);
    let ratio = with_idle as f64 / oracle as f64;
    assert!(
        (ratio - 1.0).abs() <= 0.02,
        "idle-class credit must be redistributed: admitted {with_idle} vs oracle {oracle} \
         (ratio {ratio:.4})"
    );
}

#[test]
fn admitted_shares_track_drr_weights_across_seeds() {
    for root_seed in [11, 12, 13] {
        let (gold, be) = overloaded_run(root_seed);
        let total = (gold + be) as f64;
        let gold_share = gold as f64 / total;
        let be_share = be as f64 / total;
        // Weights 3:1 → target shares 0.75 / 0.25. The DRR is
        // work-conserving: whenever a class's queue transiently runs dry
        // its credit goes to the backlogged class instead of idling the
        // round, so admitted shares drift a few points off the pure
        // weight ratio — hence the band is wider than the weights alone
        // would suggest.
        assert!(
            (gold_share - 0.75).abs() <= 0.11,
            "seed {root_seed}: gold share {gold_share:.3} off the 3:1 weights"
        );
        assert!(
            (be_share - 0.25).abs() <= 0.11,
            "seed {root_seed}: best-effort share {be_share:.3} off the 3:1 weights"
        );
    }
}
