//! Cross-crate integration tests: the full pipeline from synthetic scenes
//! through extraction, partitioning, scheduling and the serverless
//! platform, compared across policies.

use tangram_core::engine::{EngineConfig, PolicyKind};
use tangram_core::workload::{CameraTrace, TraceConfig};
use tangram_types::ids::SceneId;
use tangram_types::time::SimDuration;

fn trace(scene: u8, frames: usize, seed: u64) -> CameraTrace {
    TraceConfig::proxy_extractor(SceneId::new(scene), frames, seed).build()
}

fn run(policy: PolicyKind, trace: &CameraTrace, slo_s: f64, bw: f64) -> tangram_core::RunReport {
    EngineConfig {
        policy,
        slo: SimDuration::from_secs_f64(slo_s),
        bandwidth_mbps: bw,
        seed: 99,
        ..EngineConfig::default()
    }
    .run(std::slice::from_ref(trace))
}

#[test]
fn every_patch_is_accounted_exactly_once() {
    let t = trace(2, 20, 5);
    for policy in [
        PolicyKind::Tangram,
        PolicyKind::Clipper,
        PolicyKind::Elf,
        PolicyKind::Mark,
    ] {
        let report = run(policy, &t, 1.0, 40.0);
        // Conservation: batches carry exactly the completed patches.
        let batched: usize = report.batches.iter().map(|b| b.patch_count).sum();
        assert_eq!(
            batched,
            report.patches_completed(),
            "{policy:?}: batches vs patch records disagree"
        );
        // No duplicate patch completions (ids unique per camera; Tangram
        // may split oversized patches into tiles that share an id, so we
        // compare against the per-policy batch totals instead).
        assert!(report.patches_completed() >= t.patch_count());
    }
}

#[test]
fn tangram_dominates_cost_across_policies() {
    let t = trace(1, 30, 7);
    let tangram = run(PolicyKind::Tangram, &t, 1.0, 40.0);
    for policy in [PolicyKind::Clipper, PolicyKind::Elf, PolicyKind::Mark] {
        let other = run(policy, &t, 1.0, 40.0);
        assert!(
            tangram.total_cost() < other.total_cost(),
            "Tangram {} should undercut {policy:?} {}",
            tangram.total_cost(),
            other.total_cost()
        );
    }
}

#[test]
fn tangram_meets_slo_under_paper_settings() {
    for scene in [1u8, 3] {
        let t = trace(scene, 40, 11);
        for bw in [20.0, 40.0, 80.0] {
            let report = run(PolicyKind::Tangram, &t, 1.0, bw);
            assert!(
                report.slo_violation_rate() < 0.05,
                "scene {scene} at {bw} Mbps: violation {:.3}",
                report.slo_violation_rate()
            );
        }
    }
}

#[test]
fn looser_slo_never_costs_more_for_tangram() {
    let t = trace(2, 40, 13);
    let tight = run(PolicyKind::Tangram, &t, 0.8, 40.0);
    let loose = run(PolicyKind::Tangram, &t, 1.6, 40.0);
    // More batching headroom ⇒ fewer, fuller invocations.
    assert!(loose.batches.len() <= tight.batches.len());
    assert!(loose.total_cost().get() <= tight.total_cost().get() * 1.05);
}

#[test]
fn bandwidth_reduction_vs_full_frame_matches_paper_band() {
    let t = trace(1, 25, 17);
    let tangram = run(PolicyKind::Tangram, &t, 1.0, 40.0);
    let full = run(PolicyKind::FullFrame, &t, 1.0, 40.0);
    let ratio = tangram.total_bytes().get() as f64 / full.total_bytes().get() as f64;
    // Paper Table II / Fig. 9: Tangram uploads 10–90% of Full Frame.
    assert!(
        (0.05..0.95).contains(&ratio),
        "bandwidth ratio {ratio} outside the paper band"
    );
}

#[test]
fn masked_frame_close_to_full_frame_bytes() {
    let t = trace(4, 15, 19);
    let masked = run(PolicyKind::MaskedFrame, &t, 1.0, 40.0);
    let full = run(PolicyKind::FullFrame, &t, 1.0, 40.0);
    let ratio = masked.total_bytes().get() as f64 / full.total_bytes().get() as f64;
    assert!((0.9..1.25).contains(&ratio), "masked/full ratio {ratio}");
}

#[test]
fn determinism_across_identical_runs() {
    let t = trace(5, 25, 23);
    let a = run(PolicyKind::Tangram, &t, 1.0, 20.0);
    let b = run(PolicyKind::Tangram, &t, 1.0, 20.0);
    assert_eq!(a.total_cost().get(), b.total_cost().get());
    assert_eq!(a.batches.len(), b.batches.len());
    assert_eq!(a.makespan, b.makespan);
    assert_eq!(a.link.bytes, b.link.bytes);
}

#[test]
fn multi_camera_shared_uplink() {
    let traces: Vec<CameraTrace> = (1u8..=3)
        .map(|s| TraceConfig::proxy_extractor(SceneId::new(s), 15, 29).build())
        .collect();
    let report = EngineConfig {
        policy: PolicyKind::Tangram,
        slo: SimDuration::from_secs(2),
        bandwidth_mbps: 80.0,
        seed: 29,
        ..EngineConfig::default()
    }
    .run(&traces);
    assert_eq!(report.frames, 45);
    assert!(report.slo_violation_rate() < 0.05);
    // Batches may mix patches from different cameras — the scheduler
    // stitches across sources (the paper's multi-camera design).
    let mixed = report.batches.iter().any(|b| b.patch_count > 1);
    assert!(mixed);
}

#[test]
fn canvas_efficiency_improves_with_bandwidth() {
    let t = trace(3, 50, 31);
    let slow = run(PolicyKind::Tangram, &t, 1.0, 20.0);
    let fast = run(PolicyKind::Tangram, &t, 1.0, 80.0);
    let mean = |r: &tangram_core::RunReport| {
        let e = r.canvas_efficiencies();
        e.iter().sum::<f64>() / e.len().max(1) as f64
    };
    // Fig. 13(d): more patches arrive per unit time at higher bandwidth,
    // filling canvases better.
    assert!(
        mean(&fast) >= mean(&slow) * 0.9,
        "efficiency collapsed with bandwidth: {} vs {}",
        mean(&fast),
        mean(&slow)
    );
}

#[test]
fn gpu_memory_bound_respected_in_every_batch() {
    let t = trace(10, 30, 37); // densest scene
    for policy in [PolicyKind::Tangram, PolicyKind::Clipper, PolicyKind::Mark] {
        let report = run(policy, &t, 2.0, 80.0);
        for b in &report.batches {
            assert!(
                b.inputs <= 9,
                "{policy:?} dispatched {} inputs > GPU bound",
                b.inputs
            );
        }
    }
}
