//! Integration tests of the live (wall-clock) runtime against the same
//! scheduler semantics the simulation uses.

use parking_lot::Mutex;
use std::sync::Arc;
use std::time::{Duration, Instant};
use tangram_core::policy::BatchSpec;
use tangram_core::runtime::LiveTangram;
use tangram_core::scheduler::SchedulerConfig;
use tangram_infer::estimator::LatencyEstimator;
use tangram_infer::latency::InferenceLatencyModel;
use tangram_types::geometry::{Rect, Size};
use tangram_types::ids::{CameraId, FrameId, PatchId};
use tangram_types::patch::PatchInfo;
use tangram_types::time::{SimDuration, SimTime};

fn estimator() -> LatencyEstimator {
    LatencyEstimator::paper_default(
        &InferenceLatencyModel::rtx4090_yolov8x(),
        Size::CANVAS_1024,
        9,
    )
}

fn patch(id: u64, generated: SimTime, slo_ms: u64, side: u32) -> PatchInfo {
    PatchInfo::new(
        PatchId::new(id),
        CameraId::new(0),
        FrameId::new(id / 8),
        Rect::new(0, 0, side, side),
        generated,
        SimDuration::from_millis(slo_ms),
    )
}

#[test]
fn batches_fire_before_their_deadlines() {
    let dispatches: Arc<Mutex<Vec<(BatchSpec, Instant)>>> = Arc::new(Mutex::new(Vec::new()));
    let sink = Arc::clone(&dispatches);
    let start = Instant::now();
    let runtime = LiveTangram::start(
        SchedulerConfig::paper_default(),
        estimator(),
        Box::new(move |spec| sink.lock().push((spec, Instant::now()))),
    );
    // Stream patches over ~200 ms with a 450 ms SLO.
    for i in 0..12u64 {
        let now = SimTime::from_micros(start.elapsed().as_micros() as u64);
        runtime.receive_patch(patch(i, now, 450, 280));
        std::thread::sleep(Duration::from_millis(15));
    }
    std::thread::sleep(Duration::from_millis(600));
    runtime.shutdown();
    let fired = dispatches.lock();
    assert!(!fired.is_empty(), "the invoker must have fired");
    let total: usize = fired.iter().map(|(b, _)| b.patch_count()).sum();
    assert_eq!(total, 12, "every patch dispatched exactly once");
    // Dispatch moments respect the earliest deadline of each batch, with
    // slack to spare for (simulated) execution.
    for (spec, at) in fired.iter() {
        let fired_ms = at.duration_since(start).as_millis() as u64;
        let deadline_ms = spec
            .earliest_deadline()
            .expect("non-empty batch")
            .as_micros()
            / 1000;
        assert!(
            fired_ms <= deadline_ms,
            "batch fired at {fired_ms} ms, after its deadline {deadline_ms} ms"
        );
    }
}

#[test]
fn gpu_bound_respected_under_burst() {
    let dispatches: Arc<Mutex<Vec<usize>>> = Arc::new(Mutex::new(Vec::new()));
    let sink = Arc::clone(&dispatches);
    let runtime = LiveTangram::start(
        SchedulerConfig::paper_default(),
        estimator(),
        Box::new(move |spec| sink.lock().push(spec.inputs)),
    );
    // A burst of 15 huge patches (one canvas each): the 9-canvas GPU bound
    // must split them across invocations.
    for i in 0..15u64 {
        runtime.receive_patch(patch(i, SimTime::ZERO, 60_000, 1000));
    }
    std::thread::sleep(Duration::from_millis(200));
    runtime.shutdown();
    let inputs = dispatches.lock();
    assert!(
        inputs.iter().all(|&n| n <= 9),
        "batch exceeded GPU bound: {inputs:?}"
    );
    assert_eq!(inputs.iter().sum::<usize>(), 15);
}
