//! Failure-injection tests: the system must degrade gracefully — no
//! panics, conserved accounting — under link outages, latency-tail
//! inflation, cold-start storms and starved capacity.

use tangram_core::engine::{EngineConfig, PolicyKind};
use tangram_core::workload::TraceConfig;
use tangram_infer::latency::InferenceLatencyModel;
use tangram_net::{Link, LinkConfig};
use tangram_serverless::function::FunctionSpec;
use tangram_serverless::platform::{InvocationRequest, ServerlessPlatform};
use tangram_types::ids::SceneId;
use tangram_types::time::{SimDuration, SimTime};
use tangram_types::units::Bytes;

#[test]
fn link_outage_delays_but_preserves_messages() {
    let mut link = Link::new(LinkConfig::mbps(40.0));
    let before = link.enqueue(SimTime::ZERO, Bytes::new(100_000));
    link.outage_until(SimTime::from_secs_f64(5.0));
    let after = link.enqueue(SimTime::from_secs_f64(0.1), Bytes::new(100_000));
    assert!(after > SimTime::from_secs_f64(5.0));
    assert!(after > before);
    assert_eq!(link.stats().messages, 2, "no message lost in the outage");
}

#[test]
fn latency_tail_inflation_raises_violations_not_panics() {
    let trace = TraceConfig::proxy_extractor(SceneId::new(3), 30, 41).build();
    let mut noisy_model = InferenceLatencyModel::rtx4090_yolov8x();
    noisy_model.noise_sigma = 0.8; // brutal tail
    let calm = EngineConfig {
        policy: PolicyKind::Tangram,
        slo: SimDuration::from_millis(700),
        seed: 41,
        ..EngineConfig::default()
    };
    let mut stormy = calm.clone();
    stormy.latency_model = noisy_model;
    let calm_report = calm.run(std::slice::from_ref(&trace));
    let stormy_report = stormy.run(std::slice::from_ref(&trace));
    assert_eq!(
        calm_report.patches_completed(),
        stormy_report.patches_completed(),
        "every patch still completes"
    );
    assert!(
        stormy_report.slo_violation_rate() >= calm_report.slo_violation_rate(),
        "tail inflation cannot reduce violations"
    );
}

#[test]
fn cold_start_storm_from_zero_keep_alive() {
    let mut platform = ServerlessPlatform::new(
        FunctionSpec::paper_default(),
        InferenceLatencyModel::rtx4090_yolov8x(),
        5,
    );
    platform.keep_alive = SimDuration::from_millis(1); // everything expires
    let mut at = SimTime::ZERO;
    for _ in 0..20 {
        let outcome = platform
            .invoke(InvocationRequest {
                canvases: 1,
                megapixels: 1.05,
                submitted: at,
            })
            .expect("fits");
        at = outcome.finished + SimDuration::from_millis(50);
    }
    let stats = platform.stats();
    assert_eq!(stats.invocations, 20);
    assert_eq!(stats.cold_starts, 20, "every invocation cold-starts");
}

#[test]
fn starved_capacity_queues_instead_of_dropping() {
    let mut platform = ServerlessPlatform::new(
        FunctionSpec::paper_default(),
        InferenceLatencyModel::rtx4090_yolov8x(),
        5,
    );
    platform.max_instances = Some(1);
    // Ten simultaneous batches through one instance: all served, strictly
    // serialised.
    let mut finishes = Vec::new();
    for _ in 0..10 {
        let outcome = platform
            .invoke(InvocationRequest {
                canvases: 2,
                megapixels: 2.1,
                submitted: SimTime::ZERO,
            })
            .expect("fits");
        finishes.push(outcome.finished);
    }
    assert_eq!(platform.stats().invocations, 10);
    assert_eq!(platform.stats().peak_instances, 1);
    for w in finishes.windows(2) {
        assert!(w[1] > w[0], "executions must serialise on one instance");
    }
}

#[test]
fn tiny_bandwidth_still_completes_the_run() {
    // 2 Mbps: the uplink crawls; the closed loop slows capture instead of
    // exploding queues, and the run still terminates with all patches.
    let trace = TraceConfig::proxy_extractor(SceneId::new(1), 10, 43).build();
    let report = EngineConfig {
        policy: PolicyKind::Tangram,
        slo: SimDuration::from_secs(1),
        bandwidth_mbps: 2.0,
        seed: 43,
        ..EngineConfig::default()
    }
    .run(&[trace]);
    assert_eq!(report.frames, 10);
    assert!(report.patches_completed() > 0);
    assert!(report.makespan > SimDuration::from_secs(5), "crawling link");
}
