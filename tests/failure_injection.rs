//! Failure injection, declaratively: every fault kind in the
//! [`tangram_core::faults`] axis is exercised through a scenario file —
//! the same TOML grammar `config/scenarios/` uses — instead of
//! hand-wiring links and platforms. Under every fault the system must
//! degrade gracefully: no panics, conserved accounting (every arrival is
//! either admitted and completed or shed, and the two sides sum), and a
//! runtime trace whose hash chain still verifies end to end.

use tangram_core::report::RunReport;
use tangram_harness::ScenarioFile;
use tangram_trace::{TraceEvent, TraceLog};

/// The shared fault-free base: a small two-camera Poisson run with the
/// SLO shedder installed so every arrival receives an admission verdict
/// (the conservation check counts them).
const BASE: &str = r#"
name = "failure-injection"
description = "base scenario the fault axes splice into"

[run]
cameras = 2
pool_frames = 6
bandwidth_mbps = 40.0
slo_s = 1.0
seed = 41

[scenario]
frames_per_camera = 12
join_stagger_s = 0.0

[arrival]
kind = "poisson"
fps = 6.0

[admission]
kind = "slo-shedder"
per_item_s = 0.02
pressure = 0.5
"#;

/// Parses the base scenario with `fault_block` appended.
fn scenario(fault_block: &str) -> ScenarioFile {
    ScenarioFile::parse_str(&format!("{BASE}{fault_block}")).expect("valid scenario")
}

/// The fault-free twin of `file`, for before/after comparisons.
fn fault_free(file: &ScenarioFile) -> ScenarioFile {
    let mut clean = file.clone();
    clean.scenario.faults.clear();
    clean
}

/// Runs `file` with trace capture and asserts the invariants every
/// faulted run must keep: a verifying hash chain, and conservation —
/// arrivals = admitted + dropped, with the admitted side completing and
/// the dropped side matching the report's shed counter.
fn run_checked(file: &ScenarioFile) -> (RunReport, TraceLog) {
    let (report, trace) = file.run(true, 1);
    let trace = trace.expect("capture requested");
    trace.verify().expect("hash chain must verify under faults");
    let (mut arrivals, mut admitted, mut dropped) = (0u64, 0u64, 0u64);
    for record in &trace.records {
        if let TraceEvent::AdmissionVerdict { admitted: ok, .. } = &record.event {
            arrivals += 1;
            if *ok {
                admitted += 1;
            } else {
                dropped += 1;
            }
        }
    }
    assert_eq!(
        arrivals,
        admitted + dropped,
        "every arrival gets one verdict"
    );
    assert_eq!(
        dropped, report.dropped_arrivals,
        "shed accounting conserved"
    );
    // Admitted arrivals may normalize into several patch units before
    // batching — they can split, never vanish.
    assert!(
        admitted <= report.patches.len() as u64,
        "admitted arrivals must all complete ({admitted} > {})",
        report.patches.len()
    );
    // And the trace is a faithful account: patches dispatched equal
    // patches completed, batch for batch.
    let counts = trace.replay_counts();
    assert_eq!(counts.patches, report.patches.len() as u64);
    assert_eq!(counts.batches, report.batches.len() as u64);
    assert_eq!(
        counts.completions, counts.batches,
        "every dispatch completes"
    );
    (report, trace)
}

/// The declarative windows for each fault kind, spliced into `BASE`.
const FAULT_BLOCKS: [(&str, &str); 5] = [
    (
        "link_outage",
        "\n[[fault]]\nkind = \"link_outage\"\nat_s = 0.5\nduration_s = 1.0\n",
    ),
    (
        "latency_tail",
        "\n[[fault]]\nkind = \"latency_tail\"\nfactor = 4.0\nat_s = 0.2\nduration_s = 3.0\n",
    ),
    (
        "cold_start_storm",
        "\n[[fault]]\nkind = \"cold_start_storm\"\nat_s = 0.2\nduration_s = 2.0\n",
    ),
    (
        "camera_flap",
        "\n[[fault]]\nkind = \"camera_flap\"\nmean_up_s = 0.5\nmean_down_s = 0.3\n\
         at_s = 0.2\nduration_s = 3.0\n",
    ),
    (
        "brownout",
        "\n[[fault]]\nkind = \"brownout\"\nfactor = 3.0\nat_s = 0.2\nduration_s = 3.0\n",
    ),
];

/// Every fault kind runs without panicking, conserves accounting, keeps
/// a verifying chain, and announces its window in the trace.
#[test]
fn every_fault_kind_conserves_accounting_and_the_trace_chain() {
    for (kind, block) in FAULT_BLOCKS {
        let file = scenario(block);
        let (report, trace) = run_checked(&file);
        assert!(report.frames > 0, "{kind}: the run must make progress");
        assert!(
            trace.records.iter().any(|r| matches!(
                &r.event,
                TraceEvent::FaultWindow { kind: k, .. } if k == kind
            )),
            "{kind}: the trace must record the fault window opening"
        );
    }
}

/// An uplink outage delays traffic but loses nothing: the same frames
/// are captured, and everything still completes or is shed — never
/// silently vanishes.
#[test]
fn link_outage_delays_but_preserves_accounting() {
    let file = scenario(FAULT_BLOCKS[0].1);
    let (faulted, _) = run_checked(&file);
    let (clean, _) = run_checked(&fault_free(&file));
    assert_eq!(
        faulted.frames, clean.frames,
        "capture is upstream of the link"
    );
    assert_eq!(
        faulted.patches.len() as u64 + faulted.dropped_arrivals,
        clean.patches.len() as u64 + clean.dropped_arrivals,
        "the outage may reshuffle admitted vs shed, not the total"
    );
}

/// Latency-tail inflation raises SLO violations; it must never make the
/// run lose work or panic.
#[test]
fn latency_tail_inflation_raises_violations_not_panics() {
    let file = scenario(FAULT_BLOCKS[1].1);
    let (faulted, _) = run_checked(&file);
    let (clean, _) = run_checked(&fault_free(&file));
    assert!(
        faulted.slo_violation_rate() >= clean.slo_violation_rate(),
        "tail inflation cannot reduce violations ({} < {})",
        faulted.slo_violation_rate(),
        clean.slo_violation_rate()
    );
}

/// A cold-start storm keeps evicting warm instances, so the faulted run
/// pays strictly more cold starts than its fault-free twin.
#[test]
fn cold_start_storm_forces_repeated_cold_starts() {
    let file = scenario(FAULT_BLOCKS[2].1);
    let (faulted, _) = run_checked(&file);
    let (clean, _) = run_checked(&fault_free(&file));
    assert!(
        faulted.platform.cold_starts > clean.platform.cold_starts,
        "the storm must force re-warming ({} <= {})",
        faulted.platform.cold_starts,
        clean.platform.cold_starts
    );
}

/// Camera flapping mutes frames at the edge: the mutes are counted, and
/// the frames that did get through still obey conservation.
#[test]
fn camera_flap_mutes_frames_without_breaking_accounting() {
    let file = scenario(FAULT_BLOCKS[3].1);
    let (faulted, _) = run_checked(&file);
    let (clean, _) = run_checked(&fault_free(&file));
    assert!(faulted.frames_muted > 0, "the flap window must mute frames");
    assert_eq!(clean.frames_muted, 0, "no mutes without the fault");
    assert_eq!(
        faulted.frames, clean.frames,
        "muted frames still count as captured"
    );
}

/// A brownout stretches execution while it is active; the work itself is
/// untouched.
#[test]
fn brownout_stretches_execution_not_correctness() {
    let file = scenario(FAULT_BLOCKS[4].1);
    let (faulted, _) = run_checked(&file);
    let (clean, _) = run_checked(&fault_free(&file));
    let faulted_exec: u64 = faulted
        .batches
        .iter()
        .map(|b| b.execution.as_micros())
        .sum();
    let clean_exec: u64 = clean.batches.iter().map(|b| b.execution.as_micros()).sum();
    assert!(
        faulted_exec > clean_exec,
        "browned-out executions must run longer ({faulted_exec} <= {clean_exec})"
    );
}

/// Starved capacity, declared in the file (`max_instances = 1`): the
/// backend serialises instead of dropping.
#[test]
fn starved_capacity_queues_instead_of_dropping() {
    let mut file = scenario("");
    file.run.max_instances = Some(Some(1));
    file.admission = None; // nothing sheds: every patch must queue
    let (report, trace) = file.run(true, 1);
    trace
        .expect("capture requested")
        .verify()
        .expect("chain verifies");
    assert_eq!(report.dropped_arrivals, 0, "no admission stage, no sheds");
    assert!(!report.patches.is_empty(), "work still completes");
    assert_eq!(
        report.platform.peak_instances, 1,
        "one instance serves it all"
    );
}

/// A crawling 2 Mbps uplink, declared in the file: the closed loop slows
/// capture instead of exploding queues, and the run still terminates.
#[test]
fn tiny_bandwidth_still_completes_the_run() {
    let mut file = scenario("");
    file.run.bandwidth_mbps = 2.0;
    file.admission = None;
    let (report, trace) = file.run(true, 1);
    trace
        .expect("capture requested")
        .verify()
        .expect("chain verifies");
    assert_eq!(report.frames, 24, "both cameras reach their frame budget");
    assert!(!report.patches.is_empty());
}
