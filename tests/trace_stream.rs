//! Contracts of the runtime event trace (`tangram_trace`): capture is
//! deterministic across worker counts, inert with respect to the run
//! itself, faithful to the report's counters, and — through the hash
//! chain — able to name the exact event where two runs diverge.

use tangram_harness::presets::golden_trace_grid;
use tangram_harness::run_grid_full;
use tangram_trace::{TraceEvent, TraceLog, TraceSink};
use tangram_types::time::SimTime;

fn capture(which: &str, workers: usize) -> (tangram_core::RunReport, TraceLog) {
    let grid = golden_trace_grid(which, 42).expect("known golden cell");
    let mut outcomes = run_grid_full(&grid, workers);
    assert_eq!(outcomes.len(), 1, "golden grids are single-cell");
    let outcome = outcomes.pop().expect("one cell");
    let trace = outcome.trace.expect("golden grids opt into capture");
    (outcome.report, trace)
}

/// The chain verifies, sequence numbers are dense from 1, and the
/// stream is bracketed by session start/end events.
#[test]
fn captured_trace_has_a_valid_monotonic_chain() {
    for which in ["smoke", "overload"] {
        let (_, trace) = capture(which, 2);
        trace.verify().expect("chain must verify");
        for (i, record) in trace.records.iter().enumerate() {
            assert_eq!(record.seq, i as u64 + 1, "{which}: dense 1-based seq");
        }
        assert_eq!(
            trace.records.first().map(|r| r.event.kind()),
            Some("session.start")
        );
        assert_eq!(
            trace.records.last().map(|r| r.event.kind()),
            Some("session.end")
        );
    }
}

/// One worker or four: the captured JSONL is byte-identical — the trace
/// inherits the engine's determinism contract.
#[test]
fn capture_is_byte_identical_across_worker_counts() {
    for which in ["smoke", "overload"] {
        let (_, sequential) = capture(which, 1);
        let (_, parallel) = capture(which, 4);
        assert_eq!(
            sequential.to_jsonl(),
            parallel.to_jsonl(),
            "{which}: golden trace must not depend on worker count"
        );
    }
}

/// Sharding the producer must not move a single byte of the golden
/// trace: the event stream — hash chain included — is identical at any
/// shard count. The overload cell is a streaming scenario (sharding
/// engages); the smoke cell is trace replay (closed-loop cameras stay
/// inline), so both the sharded path and its fallback are covered.
#[test]
fn capture_is_byte_identical_across_shard_counts() {
    for which in ["smoke", "overload"] {
        let (oracle_report, oracle) = capture(which, 2);
        for shards in [2, 8] {
            let mut grid = golden_trace_grid(which, 42).expect("known golden cell");
            grid.shards = shards;
            let mut outcomes = run_grid_full(&grid, 2);
            let outcome = outcomes.pop().expect("one cell");
            let trace = outcome.trace.expect("golden grids opt into capture");
            assert_eq!(
                trace.to_jsonl(),
                oracle.to_jsonl(),
                "{which}: {shards} shards diverged from the 1-shard golden trace"
            );
            assert_eq!(
                outcome.report.events_processed, oracle_report.events_processed,
                "{which}: event count must not depend on shard count"
            );
        }
    }
}

/// A faulted run's golden trace holds the same guarantee: with a
/// brownout window injected into the overload cell, the captured JSONL
/// — `fault.window` record and hash chain included — is byte-identical
/// at any shard count, and the chain still verifies.
#[test]
fn faulted_capture_is_byte_identical_across_shard_counts() {
    use tangram_core::{FaultKind, FaultSpec};
    let faulted_grid = || {
        let mut grid = golden_trace_grid("overload", 42).expect("known golden cell");
        grid.scenarios[0].faults = vec![FaultSpec {
            kind: FaultKind::Brownout { factor: 2.0 },
            at_s: 0.5,
            duration_s: 2.0,
        }];
        grid
    };
    let capture_at = |shards: usize| -> TraceLog {
        let mut grid = faulted_grid();
        grid.shards = shards;
        let mut outcomes = run_grid_full(&grid, 2);
        let outcome = outcomes.pop().expect("one cell");
        outcome.trace.expect("golden grids opt into capture")
    };
    let oracle = capture_at(1);
    oracle.verify().expect("faulted chain must verify");
    assert!(
        oracle.records.iter().any(|r| matches!(
            &r.event,
            TraceEvent::FaultWindow { kind, .. } if kind == "brownout"
        )),
        "the golden trace must record the brownout window"
    );
    for shards in [2, 8] {
        assert_eq!(
            capture_at(shards).to_jsonl(),
            oracle.to_jsonl(),
            "{shards} shards diverged from the 1-shard faulted golden trace"
        );
    }
}

/// Recording a trace never perturbs the run: the report digest with the
/// sink installed equals the digest of the same cell without it.
#[test]
fn capture_does_not_perturb_the_run_digest() {
    for which in ["smoke", "overload"] {
        let (traced_report, _) = capture(which, 2);
        let mut grid = golden_trace_grid(which, 42).expect("known golden cell");
        grid.capture_traces = false;
        let mut outcomes = run_grid_full(&grid, 2);
        let outcome = outcomes.pop().expect("one cell");
        assert!(outcome.trace.is_none(), "capture off ⇒ no trace");
        assert_eq!(
            outcome.report.summarize(),
            traced_report.summarize(),
            "{which}: the trace sink must be observation-only"
        );
    }
}

/// Replaying the event stream reproduces the run's counters — the trace
/// is a faithful account of the run, not a parallel bookkeeping.
#[test]
fn replaying_the_trace_reproduces_the_run_counters() {
    for which in ["smoke", "overload"] {
        let (report, trace) = capture(which, 2);
        let counts = trace.replay_counts();
        assert_eq!(counts.batches, report.batches.len() as u64, "{which}");
        assert_eq!(counts.patches, report.patches.len() as u64, "{which}");
        assert_eq!(counts.completions, report.batches.len() as u64, "{which}");
        assert_eq!(counts.dropped, report.dropped_arrivals, "{which}");
    }
}

/// The JSONL round-trips losslessly: parse(to_jsonl(log)) == log.
#[test]
fn trace_round_trips_through_jsonl() {
    let (_, trace) = capture("overload", 2);
    let reparsed = TraceLog::from_jsonl(&trace.to_jsonl()).expect("round-trip parses");
    reparsed.verify().expect("round-trip chain verifies");
    assert_eq!(reparsed, trace);
}

/// A deliberately perturbed copy of a golden trace is pinned to its
/// first divergent event by sequence number and kind — the event-level
/// gate's contract (`bench_gate --trace`).
#[test]
fn divergence_names_the_first_differing_event() {
    let (_, golden) = capture("overload", 2);
    // Rebuild the stream through a fresh sink, flipping the verdict of
    // the first admission drop: a valid chain that disagrees with the
    // golden trace at exactly that record.
    let mut sink = TraceSink::new();
    let mut flipped_at = None;
    for record in &golden.records {
        let mut event = record.event.clone();
        if flipped_at.is_none() {
            if let TraceEvent::AdmissionVerdict { admitted, .. } = &mut event {
                if !*admitted {
                    *admitted = true;
                    flipped_at = Some(record.seq);
                }
            }
        }
        sink.emit(SimTime::from_micros(record.at_us), event);
    }
    let candidate = sink.finish();
    candidate.verify().expect("perturbed chain still verifies");
    let flipped_at = flipped_at.expect("the overload golden cell sheds work");

    let divergence = golden
        .first_divergence(&candidate)
        .expect("flipping a verdict must diverge");
    assert_eq!(divergence.seq, flipped_at, "first divergence at the flip");
    let description = divergence.describe();
    assert!(
        description.contains(&format!("seq {flipped_at}")),
        "description names the sequence number: {description}"
    );
    assert!(
        description.contains("admission.verdict"),
        "description names the event kind: {description}"
    );
}
