//! Contracts of the declarative scenario format: every file in the
//! shipped `config/scenarios/` library loads, validates and round-trips
//! through its canonical TOML form, and the invalid fixtures under
//! `tests/fixtures/invalid_scenarios/` are rejected with an error that
//! names the offending line.

use std::path::{Path, PathBuf};
use tangram_harness::ScenarioFile;

fn repo_path(rel: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join(rel)
}

fn library() -> Vec<(PathBuf, ScenarioFile)> {
    ScenarioFile::load_dir(&repo_path("config/scenarios")).expect("library loads")
}

/// The shipped library is non-trivial and every file names itself
/// uniquely — `BENCH_scenarios.json` rows key on the name.
#[test]
fn the_shipped_library_loads_and_names_are_unique() {
    let library = library();
    assert!(
        library.len() >= 6,
        "the hard-scenario library must not shrink ({} files)",
        library.len()
    );
    let mut names: Vec<&str> = library.iter().map(|(_, f)| f.name.as_str()).collect();
    names.sort_unstable();
    let before = names.len();
    names.dedup();
    assert_eq!(before, names.len(), "duplicate scenario names");
}

/// Every library file round-trips through the canonical writer: parsing
/// `to_toml()` reproduces the scenario exactly, and the canonical form
/// is a fixed point.
#[test]
fn every_library_file_round_trips_through_canonical_toml() {
    for (path, file) in library() {
        let canonical = file.to_toml();
        let back = ScenarioFile::parse_str(&canonical)
            .unwrap_or_else(|e| panic!("{}: canonical form fails to parse: {e}", path.display()));
        assert_eq!(
            back,
            file,
            "{}: round-trip changed the scenario",
            path.display()
        );
        assert_eq!(
            back.to_toml(),
            canonical,
            "{}: canonical form is not a fixed point",
            path.display()
        );
    }
}

/// The library exercises the whole fault axis: collectively the shipped
/// scenarios must cover every fault kind at least once.
#[test]
fn the_library_covers_every_fault_kind() {
    let mut kinds: Vec<&'static str> = library()
        .iter()
        .flat_map(|(_, f)| f.scenario.faults.iter().map(|fault| fault.kind.name()))
        .collect();
    kinds.sort_unstable();
    kinds.dedup();
    for expected in [
        "brownout",
        "camera_flap",
        "cold_start_storm",
        "latency_tail",
        "link_outage",
    ] {
        assert!(
            kinds.contains(&expected),
            "no shipped scenario injects `{expected}`"
        );
    }
}

/// Loads an invalid fixture, asserting rejection; returns the error.
fn rejected(fixture: &str) -> String {
    let path = repo_path("tests/fixtures/invalid_scenarios").join(fixture);
    ScenarioFile::load(&path).expect_err("fixture must be rejected")
}

/// Finds the 1-based line number of the first line satisfying `pred`.
fn line_of(fixture: &str, pred: impl Fn(&str) -> bool) -> usize {
    let path = repo_path("tests/fixtures/invalid_scenarios").join(fixture);
    let text = std::fs::read_to_string(path).expect("fixture readable");
    text.lines().position(pred).expect("line present") + 1
}

/// An unknown key is rejected, and the error names the exact line the
/// key sits on (errors read `path:line: message`).
#[test]
fn unknown_keys_are_rejected_with_their_line() {
    let err = rejected("unknown_key.toml");
    assert!(
        err.contains("unknown key `jitter_fps` in [arrival]"),
        "{err}"
    );
    let line = line_of("unknown_key.toml", |l| l.starts_with("jitter_fps"));
    assert!(
        err.contains(&format!("unknown_key.toml:{line}:")),
        "error must name line {line}: {err}"
    );
}

/// An out-of-range arrival rate is rejected with the rate's own line.
#[test]
fn out_of_range_rates_are_rejected_with_their_line() {
    let err = rejected("bad_rate.toml");
    assert!(err.contains("out of range"), "{err}");
    let line = line_of("bad_rate.toml", |l| l.starts_with("fps = 900.0"));
    assert!(
        err.contains(&format!("bad_rate.toml:{line}:")),
        "error must name line {line}: {err}"
    );
}

/// Overlapping same-kind fault windows are rejected; the error names
/// the second window's header line and points back at the first.
#[test]
fn overlapping_fault_windows_are_rejected_with_both_lines() {
    let err = rejected("overlapping_faults.toml");
    assert!(err.contains("overlaps"), "{err}");
    assert!(err.contains("link_outage"), "{err}");
    let path = repo_path("tests/fixtures/invalid_scenarios/overlapping_faults.toml");
    let text = std::fs::read_to_string(path).expect("fixture readable");
    let headers: Vec<usize> = text
        .lines()
        .enumerate()
        .filter(|(_, l)| *l == "[[fault]]")
        .map(|(i, _)| i + 1)
        .collect();
    assert_eq!(headers.len(), 2, "fixture declares two windows");
    assert!(
        err.contains(&format!("overlapping_faults.toml:{}:", headers[1])),
        "error anchors on the second window (line {}): {err}",
        headers[1]
    );
    assert!(
        err.contains(&format!("line {}", headers[0])),
        "error points back at the first window (line {}): {err}",
        headers[0]
    );
}
