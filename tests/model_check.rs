//! Integration gate for the bounded model checker (`crates/model`).
//!
//! The smoke test is the same suite CI's lints job runs via
//! `model_tool check --smoke`, asserted from the library API so a
//! regression fails `cargo test` even where the CLI step is skipped:
//! every healthy config must be *exhaustively* proved within its
//! preemption bound (a truncated proof is no proof), every seeded
//! mutant must die with its documented violation class and a non-empty
//! counter-example, and the total schedule count must clear the
//! [`SMOKE_SCHEDULE_FLOOR`] so the suite cannot silently shrink.
//!
//! The full-mode sweep explores deeper preemption bounds (minutes in a
//! debug build) and is `#[ignore]`d; run it with
//! `cargo test --test model_check -- --ignored --nocapture`.

use tangram::model::check::{run_suite, Mode, RowOutcome, SMOKE_SCHEDULE_FLOOR};
use tangram::model::check::{RowResult, SuiteResult};

/// Prints the per-row schedule counts — the test-log mirror of the
/// CLI table, so truncation is visible even from `cargo test` output.
fn print_rows(suite: &SuiteResult) {
    for row in &suite.rows {
        println!(
            "{} | bound {} | {} schedule(s) | exhaustive: {}",
            row.name, row.bound, row.schedules, row.exhaustive
        );
    }
    println!(
        "total: {} schedules across {} rows ({} mode)",
        suite.total_schedules,
        suite.rows.len(),
        suite.mode.label()
    );
}

/// Shared assertions for both modes.
fn assert_suite(suite: &SuiteResult) {
    let mut mutants_caught = 0;
    for row in &suite.rows {
        match &row.outcome {
            RowOutcome::Proved => {
                assert!(
                    row.exhaustive,
                    "{}: proof truncated at {} schedules — raise the budget or lower the bound",
                    row.name, row.schedules
                );
            }
            RowOutcome::MutantCaught(ce) => {
                mutants_caught += 1;
                assert!(
                    !ce.schedule.is_empty(),
                    "{}: counter-example lost its schedule",
                    row.name
                );
                assert!(
                    !ce.log.is_empty(),
                    "{}: counter-example lost its step log",
                    row.name
                );
            }
            RowOutcome::Violated(ce) => panic!(
                "{}: healthy model violated {} — {}\n{}",
                row.name,
                ce.kind.label(),
                ce.detail,
                ce.log.join("\n")
            ),
            RowOutcome::MutantMissed(why) => {
                panic!("{}: mutant survived — {why}", row.name);
            }
        }
    }
    assert_eq!(
        mutants_caught, 4,
        "the roster seeds four mutants and every one must be caught"
    );
    assert!(suite.rows.iter().all(RowResult::ok));
}

#[test]
fn smoke_suite_proves_the_protocol_and_kills_every_mutant() {
    let suite = run_suite(Mode::Smoke);
    print_rows(&suite);
    // 9 healthy grid rows + 2 demux + 2 channel + 4 mutants.
    assert_eq!(suite.rows.len(), 17, "roster shape drifted");
    assert_suite(&suite);
    assert!(
        suite.total_schedules >= SMOKE_SCHEDULE_FLOOR,
        "smoke explored only {} schedules (floor {SMOKE_SCHEDULE_FLOOR})",
        suite.total_schedules
    );
    assert!(suite.ok());
}

#[test]
#[ignore = "exhaustive full-mode sweep: deeper preemption bounds, minutes in a debug build"]
fn full_suite_is_exhaustive_at_deeper_bounds() {
    let suite = run_suite(Mode::Full);
    print_rows(&suite);
    assert_eq!(suite.rows.len(), 17, "roster shape drifted");
    assert_suite(&suite);
    assert!(suite.ok());
}
