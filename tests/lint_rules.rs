//! Fixture suite for `tangram-lint`: every rule family demonstrated
//! against the deliberately-broken tree under
//! `tests/fixtures/lint/bad_tree`, with exact `path:line: rule-id`
//! output pinned, plus a clean run over the real workspace — the same
//! invocation CI's `lint_tool check` step performs.

use std::path::PathBuf;
use tangram::lint::waiver::WaiverSet;
use tangram::lint::{conc, dag, lint_workspace, rules, schema, Violation};

/// The real workspace root (the umbrella package's manifest dir).
fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

/// The fixture tree with one violation per rule at pinned lines.
fn bad_tree() -> PathBuf {
    repo_root().join("tests/fixtures/lint/bad_tree")
}

/// `(path, line, rule)` triples, in the linter's sorted output order.
fn triples(violations: &[Violation]) -> Vec<(String, usize, &'static str)> {
    violations
        .iter()
        .map(|v| (v.path.clone(), v.line, v.rule))
        .collect()
}

/// Every rule family fires on the bad tree, each at its exact line.
#[test]
fn bad_tree_reports_every_family_at_exact_lines() {
    let violations = lint_workspace(&bad_tree()).expect("lint bad tree");
    let expected: Vec<(String, usize, &'static str)> = [
        ("baselines/BENCH_smoke.json", 2, "schema-sync"),
        ("config/lint_allow.toml", 8, "stale-waiver"),
        ("config/lint_allow.toml", 13, "waiver-format"),
        ("crates/alpha/Cargo.toml", 2, "dag-unlisted"),
        ("crates/beta/Cargo.toml", 2, "dag-unlisted"),
        ("crates/beta/Cargo.toml", 5, "dag-cycle"),
        (
            "crates/harness/src/conc_abuse.rs",
            4,
            "conc-unbounded-channel",
        ),
        ("crates/harness/src/conc_abuse.rs", 5, "conc-raw-thread"),
        (
            "crates/harness/src/conc_abuse.rs",
            7,
            "conc-lock-across-send",
        ),
        ("crates/sim/src/clock_abuse.rs", 3, "det-hash-order"),
        ("crates/sim/src/clock_abuse.rs", 4, "det-wall-clock"),
        ("crates/sim/src/clock_abuse.rs", 8, "det-wall-clock"),
        ("crates/sim/src/clock_abuse.rs", 9, "det-hash-order"),
        ("crates/sim/src/clock_abuse.rs", 10, "det-entropy"),
        ("crates/trace/src/event.rs", 15, "trace-kinds"),
        ("crates/trace/src/event.rs", 15, "trace-kinds"),
        ("crates/trace/src/event.rs", 22, "trace-kinds"),
        ("crates/trace/src/writer.rs", 8, "det-float-format"),
        ("crates/types/Cargo.toml", 5, "dag-edge"),
        ("crates/types/Cargo.toml", 6, "dag-edge"),
    ]
    .into_iter()
    .map(|(p, l, r)| (p.to_string(), l, r))
    .collect();
    assert_eq!(
        triples(&violations),
        expected,
        "full output:\n{}",
        violations
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}

/// The `Display` form is exactly `path:line: rule-id: message` — what
/// `lint_tool check` prints and editors can jump to.
#[test]
fn violations_render_as_path_line_rule_message() {
    let violations = lint_workspace(&bad_tree()).expect("lint bad tree");
    let entropy = violations
        .iter()
        .find(|v| v.rule == "det-entropy")
        .expect("entropy violation");
    assert_eq!(
        entropy.to_string(),
        "crates/sim/src/clock_abuse.rs:10: det-entropy: `thread_rng` draws ambient entropy; \
         every random path must fork DetRng"
    );
}

/// The cycle report names the loop and fires exactly once.
#[test]
fn cycle_report_names_the_loop_once() {
    let violations = lint_workspace(&bad_tree()).expect("lint bad tree");
    let cycles: Vec<&Violation> = violations
        .iter()
        .filter(|v| v.rule == "dag-cycle")
        .collect();
    assert_eq!(cycles.len(), 1);
    assert!(
        cycles[0].message.contains("alpha -> beta -> alpha"),
        "{}",
        cycles[0].message
    );
}

/// `schema-sync` names the drifted writer constant so the diagnostic
/// says where the truth lives and what to do.
#[test]
fn schema_sync_points_at_the_writer_constant() {
    let violations = lint_workspace(&bad_tree()).expect("lint bad tree");
    let sync = violations
        .iter()
        .find(|v| v.rule == "schema-sync")
        .expect("schema-sync violation");
    assert!(
        sync.message.contains("crates/harness/src/report.rs:4"),
        "{}",
        sync.message
    );
    assert!(
        sync.message.contains("regenerate the baseline"),
        "{}",
        sync.message
    );
}

/// The live fixture waivers suppress both `det-hash-order` hits in
/// `crates/stitch/src/noise.rs` and the `conc-raw-thread` hit in
/// `crates/harness/src/pool_abuse.rs` — none survive to the output.
#[test]
fn live_waiver_suppresses_its_violations() {
    let violations = lint_workspace(&bad_tree()).expect("lint bad tree");
    assert!(
        !violations.iter().any(|v| v.path.contains("stitch")),
        "waived stitch violations leaked: {violations:?}"
    );
    assert!(
        !violations.iter().any(|v| v.path.contains("pool_abuse")),
        "waived conc violations leaked: {violations:?}"
    );
    // And the rejected (empty-justification) waiver does NOT suppress:
    // the sim wall-clock hits are still present per the full-list test.
    assert!(violations
        .iter()
        .any(|v| v.path == "crates/sim/src/clock_abuse.rs" && v.rule == "det-wall-clock"));
}

/// The committed workspace lints clean — the exact check CI runs. An
/// exit-0 run also proves every waiver in `config/lint_allow.toml` is
/// load-bearing, because an unused waiver surfaces as `stale-waiver`.
#[test]
fn real_tree_is_clean() {
    let violations = lint_workspace(&repo_root()).expect("lint real tree");
    assert!(
        violations.is_empty(),
        "committed tree has lint violations:\n{}",
        violations
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}

/// Deleting any entry from the real `config/lint_allow.toml` fails the
/// run: each waiver suppresses at least one raw violation, so its
/// removal resurfaces that violation.
#[test]
fn every_real_waiver_is_load_bearing() {
    let root = repo_root();
    let mut raw = rules::check_determinism(&root).expect("determinism");
    raw.extend(conc::check_concurrency(&root).expect("concurrency"));
    raw.extend(dag::check_dag(&root).expect("dag"));
    raw.extend(schema::check_schema(&root).expect("schema"));
    let (waivers, format_errors) = WaiverSet::load(&root).expect("allowlist");
    assert!(format_errors.is_empty(), "{format_errors:?}");
    assert!(!waivers.entries.is_empty(), "real allowlist is empty");
    for entry in &waivers.entries {
        assert!(
            raw.iter()
                .any(|v| v.path == entry.file && v.rule == entry.rule),
            "waiver for {} / {} suppresses nothing — it must be deleted",
            entry.file,
            entry.rule
        );
    }
}

/// Adding an unused waiver to the real allowlist fails the run as
/// `stale-waiver`.
#[test]
fn unused_waiver_added_to_real_allowlist_goes_stale() {
    let root = repo_root();
    let mut raw = rules::check_determinism(&root).expect("determinism");
    raw.extend(conc::check_concurrency(&root).expect("concurrency"));
    raw.extend(dag::check_dag(&root).expect("dag"));
    raw.extend(schema::check_schema(&root).expect("schema"));
    let (mut waivers, _) = WaiverSet::load(&root).expect("allowlist");
    let (extra, errors) = WaiverSet::parse(
        "[[allow]]\nfile = \"crates/sim/src/no_such_file.rs\"\nrule = \"det-entropy\"\n\
         justification = \"synthetic: must go stale\"\n",
    );
    assert!(errors.is_empty(), "{errors:?}");
    waivers.entries.extend(extra.entries);
    let stale = waivers.apply(&mut raw);
    assert_eq!(stale.len(), 1, "{stale:?}");
    assert_eq!(stale[0].rule, "stale-waiver");
    assert!(stale[0].message.contains("crates/sim/src/no_such_file.rs"));
}
