//! Fixture: determinism violations at pinned lines.

use std::collections::HashMap;
use std::time::Instant;

/// Reads the wall clock, builds an unordered map, draws ambient entropy.
pub fn naughty() -> usize {
    let start = Instant::now();
    let map: HashMap<u32, u32> = HashMap::new();
    let _ = thread_rng();
    map.len() + start.elapsed().as_secs() as usize
}
