//! Concurrency-discipline abuse: one pinned violation per conc rule.

pub fn abuse(state: &std::sync::Mutex<u32>) {
    let (tx, rx) = crossbeam::channel::unbounded::<u32>();
    std::thread::spawn(move || drop(rx));
    let guard = state.lock().unwrap();
    tx.send(*guard).unwrap();
}
