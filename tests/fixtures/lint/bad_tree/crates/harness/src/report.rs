//! Fixture: the harness schema constant, bumped without regenerating.

/// Report schema version.
pub const SCHEMA_VERSION: u64 = 9;
