//! A sanctioned-looking spawn site: covered by the fixture allowlist's
//! live `conc-raw-thread` waiver, so nothing here reaches the output.

pub fn waived_spawn() {
    std::thread::scope(|_| {});
}
