//! Fixture: a hash-order hit that the allowlist waives.

use std::collections::HashMap;

/// Counts via an unordered map (waived in config/lint_allow.toml).
pub fn count() -> usize {
    HashMap::<u8, u8>::new().len()
}
