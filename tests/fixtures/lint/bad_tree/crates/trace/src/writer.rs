//! Fixture: a trace writer that debug-formats a float.

use std::fmt::Write as _;

/// Renders a float into the record the bad way.
pub fn render(value: f64) -> String {
    let mut out = String::new();
    let _ = write!(out, "{value:?}");
    out
}
