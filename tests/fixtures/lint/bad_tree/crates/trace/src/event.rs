//! Fixture: a trace-kind registry that has drifted out of sync.

/// Stand-in event enum.
pub enum TraceEvent {
    /// First kind.
    Alpha,
    /// Second kind.
    Beta,
}

impl TraceEvent {
    /// Registered kinds.
    pub const KINDS: [&'static str; 2] = [
        "alpha.start",
        "gamma.end",
    ];

    /// Kind tag.
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::Alpha => "alpha.start",
            TraceEvent::Beta => "beta.tick",
        }
    }

    /// Parses a tag back.
    pub fn from_fields(kind: &str) -> Option<TraceEvent> {
        match kind {
            "alpha.start" => Some(TraceEvent::Alpha),
            _ => None,
        }
    }
}
