//! Campus surveillance: choosing the partition granularity.
//!
//! The `X × Y` zone grid is the paper's accuracy-vs-bandwidth knob
//! (Tables II/III). This example runs the full pixel pipeline (rendered
//! frames + Stauffer–Grimson GMM) on the University Campus scene and
//! reports, per grid: uploaded bytes, patches per frame, and detection
//! AP — the data an operator needs to pick a setting.
//!
//! Run with: `cargo run --release --example campus_surveillance`

use tangram_infer::accuracy::{DetectionSimulator, PresentedObject, ResolutionProfile};
use tangram_infer::ap::{ap50, FrameEval};
use tangram_partition::algorithm::{partition, PartitionConfig};
use tangram_sim::rng::DetRng;
use tangram_types::geometry::Rect;
use tangram_types::ids::SceneId;
use tangram_video::codec::CodecModel;
use tangram_video::generator::{SceneSimulation, VideoConfig};
use tangram_video::scene::SceneProfile;
use tangram_vision::extractor::{GmmExtractor, RoiExtractor};

fn main() {
    let scene = SceneId::new(7); // University Campus
    let profile = SceneProfile::panda(scene);
    println!("Scene: {} ({})\n", scene, profile.name);

    let video = VideoConfig {
        render: true,
        raster_scale: 0.2,
        ..VideoConfig::default()
    };
    let mut sim = SceneSimulation::new(scene, video, 7);
    let mut extractor = GmmExtractor::default();
    // Warm the background model.
    for _ in 0..30 {
        let f = sim.next_frame();
        let _ = extractor.extract(&f);
    }

    let frames = 40;
    let codec = CodecModel::default();
    let simulator = DetectionSimulator::new(ResolutionProfile::yolov8x_4k());
    let grids = [
        PartitionConfig::new(2, 2),
        PartitionConfig::new(4, 4),
        PartitionConfig::new(6, 6),
    ];
    let mut stats = vec![(0u64, 0usize, Vec::<FrameEval>::new()); grids.len()];
    let mut full_bytes = 0u64;
    let mut rng = DetRng::new(7).fork("campus");

    for _ in 0..frames {
        let frame = sim.next_frame();
        let rois = extractor.extract(&frame);
        full_bytes += codec.full_frame_bytes(frame.frame_size).get();
        let bounds = Rect::from_size(frame.frame_size);
        for (gi, grid) in grids.iter().enumerate() {
            let patches = partition(frame.frame_size, *grid, &rois);
            stats[gi].0 += codec.patches_bytes(patches.iter()).get();
            stats[gi].1 += patches.len();
            let presented: Vec<PresentedObject> = frame
                .objects
                .iter()
                .filter_map(|o| {
                    let covered: u64 = patches
                        .iter()
                        .filter_map(|p| p.intersect(&o.rect))
                        .map(|r| r.area())
                        .sum();
                    let c = (covered as f64 / o.rect.area() as f64).min(1.0);
                    (c > 0.0).then_some(PresentedObject {
                        track: o.track,
                        true_rect: o.rect,
                        presented_area: o.rect.area() as f64 * c,
                        visible_fraction: c,
                    })
                })
                .collect();
            let mpx = patches.iter().map(|p| p.area() as f64).sum::<f64>() / 1.0e6;
            let dets = simulator.detect(&presented, mpx, profile.full_frame_ap, bounds, &mut rng);
            stats[gi].2.push(FrameEval::new(frame.object_rects(), dets));
        }
    }

    println!(
        "{:<6} {:>14} {:>16} {:>10}",
        "grid", "bandwidth %", "patches/frame", "AP@0.5"
    );
    for (gi, grid) in grids.iter().enumerate() {
        println!(
            "{:<6} {:>13.1}% {:>16.1} {:>10.3}",
            format!("{}x{}", grid.zones_x, grid.zones_y),
            stats[gi].0 as f64 / full_bytes as f64 * 100.0,
            stats[gi].1 as f64 / frames as f64,
            ap50(&stats[gi].2),
        );
    }
    println!(
        "\nFull-frame reference AP: {:.3}. Finer grids save bandwidth but clip more\nobjects at zone boundaries — the paper (and this campus) settles on 4x4.",
        profile.full_frame_ap
    );
}
