//! Traffic-junction monitoring: three cameras on one uplink with a hard
//! 1-second SLO, comparing Tangram against the per-patch (ELF) and
//! batch+timeout (MArk) deployments an operator would otherwise choose.
//!
//! Run with: `cargo run --release --example traffic_junction`

use tangram_core::engine::{EngineConfig, PolicyKind};
use tangram_core::workload::{CameraTrace, TraceConfig};
use tangram_types::ids::SceneId;
use tangram_types::time::SimDuration;

fn main() {
    // Three simultaneous viewpoints: a crossroad and two street cameras.
    let scenes = [3u8, 8, 9];
    let traces: Vec<CameraTrace> = scenes
        .iter()
        .map(|&s| TraceConfig::proxy_extractor(SceneId::new(s), 60, 2024).build())
        .collect();
    println!(
        "Workload: {} cameras, {} frames, {} patches total\n",
        traces.len(),
        traces.iter().map(|t| t.frames.len()).sum::<usize>(),
        traces.iter().map(CameraTrace::patch_count).sum::<usize>()
    );

    println!(
        "{:<10} {:>10} {:>8} {:>10} {:>10} {:>12} {:>10}",
        "policy", "cost $", "viol %", "mean lat", "p99 lat", "batches", "MiB sent"
    );
    for policy in [PolicyKind::Tangram, PolicyKind::Elf, PolicyKind::Mark] {
        let config = EngineConfig {
            policy,
            slo: SimDuration::from_secs(1),
            bandwidth_mbps: 40.0,
            seed: 2024,
            ..EngineConfig::default()
        };
        let report = config.run(&traces);
        println!(
            "{:<10} {:>10.4} {:>8.2} {:>10} {:>10} {:>12} {:>10.1}",
            report.policy,
            report.total_cost().get(),
            report.slo_violation_rate() * 100.0,
            report.mean_latency().to_string(),
            report.latency_quantile(0.99).to_string(),
            report.batches.len(),
            report.total_bytes().as_mib_f64(),
        );
    }
    println!(
        "\nTangram stitches all three cameras' patches into shared canvases, so the\njunction runs at a fraction of the invocation cost with the SLO intact."
    );
}
