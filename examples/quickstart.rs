//! Quickstart: the paper's deployment API in five minutes.
//!
//! Builds the offline latency profile, starts the live Tangram runtime
//! (`receive_patch` / `invoke`), streams one synthetic scene's patches
//! into it in real time (compressed to ~3 s), and prints every batch the
//! SLO-aware invoker dispatches.
//!
//! Run with: `cargo run --release --example quickstart`

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use tangram_core::runtime::LiveTangram;
use tangram_core::scheduler::SchedulerConfig;
use tangram_infer::estimator::LatencyEstimator;
use tangram_infer::latency::InferenceLatencyModel;
use tangram_partition::pipeline::{EdgePipeline, EdgePipelineConfig};
use tangram_sim::rng::DetRng;
use tangram_types::geometry::Size;
use tangram_types::ids::{CameraId, SceneId};
use tangram_types::patch::PatchInfo;
use tangram_types::time::{SimDuration, SimTime};
use tangram_video::generator::{SceneSimulation, VideoConfig};
use tangram_vision::detector::DetectorProxy;
use tangram_vision::extractor::ProxyExtractor;

fn main() {
    println!("1. Offline profiling: 1000 inference iterations per batch size (Eqn. 9)…");
    let model = InferenceLatencyModel::rtx4090_yolov8x();
    let estimator = LatencyEstimator::paper_default(&model, Size::CANVAS_1024, 9);
    for b in [1usize, 4, 9] {
        println!(
            "   batch {b}: T_slack = {} (mean {})",
            estimator.slack_for(b),
            estimator.mean_for(b)
        );
    }

    println!("\n2. Starting the live runtime (SLO = 400 ms wall-clock)…");
    let batches = Arc::new(AtomicUsize::new(0));
    let batches_cb = Arc::clone(&batches);
    let started = Instant::now();
    let runtime = LiveTangram::start(
        SchedulerConfig::paper_default(),
        estimator,
        Box::new(move |spec| {
            println!(
                "   -> invoke: {} patches on {} canvas(es), efficiencies {:?} (t = {:?})",
                spec.patch_count(),
                spec.inputs,
                spec.canvas_efficiencies
                    .iter()
                    .map(|e| (e * 100.0).round() / 100.0)
                    .collect::<Vec<_>>(),
                started.elapsed()
            );
            batches_cb.fetch_add(1, Ordering::SeqCst);
        }),
    );

    println!("\n3. Streaming scene_01 patches through the edge pipeline…");
    let mut scene = SceneSimulation::new(SceneId::new(1), VideoConfig::default(), 42);
    let mut edge = EdgePipeline::new(
        EdgePipelineConfig::new(CameraId::new(1), SimDuration::from_millis(400)),
        ProxyExtractor::new(
            DetectorProxy::ssdlite_mobilenet_v2(),
            DetRng::new(42).fork("quickstart"),
        ),
    );
    let epoch = Instant::now();
    for i in 0..10 {
        let frame = scene.next_frame();
        let out = edge.process(&frame);
        let now = SimTime::from_micros(epoch.elapsed().as_micros() as u64);
        println!(
            "   frame {i}: {} RoIs -> {} patches ({} on the wire)",
            out.rois.len(),
            out.patches.len(),
            out.uploaded
        );
        for patch in out.patches {
            // Re-stamp generation time onto the runtime's wall clock.
            let info = PatchInfo {
                generated_at: now,
                ..patch.info
            };
            runtime.receive_patch(info);
        }
        std::thread::sleep(Duration::from_millis(120));
    }

    std::thread::sleep(Duration::from_millis(500));
    runtime.shutdown();
    println!(
        "\nDone: {} batches dispatched — each fired at its t_remain = t_DDL − T_slack,\nnever by a tuned timeout.",
        batches.load(Ordering::SeqCst)
    );
}
