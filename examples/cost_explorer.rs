//! Cost explorer: sweep SLO × bandwidth for one scene and print the cost
//! and violation heat-maps an operator would use for capacity planning.
//!
//! Run with: `cargo run --release --example cost_explorer`

use tangram_core::engine::{EngineConfig, PolicyKind};
use tangram_core::workload::TraceConfig;
use tangram_types::ids::SceneId;
use tangram_types::time::SimDuration;

fn main() {
    let trace = TraceConfig::proxy_extractor(SceneId::new(2), 60, 11).build();
    let slos = [0.6, 0.8, 1.0, 1.2, 1.4];
    let bandwidths = [20.0, 40.0, 80.0];

    println!("Scene: scene_02 (OCT Habour), 60 frames, Tangram scheduler\n");
    println!("-- cost ($ per clip) --");
    print!("{:>10}", "SLO \\ bw");
    for bw in bandwidths {
        print!("{bw:>10.0}");
    }
    println!();
    let mut grids: Vec<Vec<(f64, f64)>> = Vec::new();
    for slo in slos {
        let mut row = Vec::new();
        for bw in bandwidths {
            let report = EngineConfig {
                policy: PolicyKind::Tangram,
                slo: SimDuration::from_secs_f64(slo),
                bandwidth_mbps: bw,
                seed: 11,
                ..EngineConfig::default()
            }
            .run(std::slice::from_ref(&trace));
            row.push((
                report.total_cost().get(),
                report.slo_violation_rate() * 100.0,
            ));
        }
        grids.push(row);
    }
    for (si, slo) in slos.iter().enumerate() {
        print!("{slo:>9.1}s");
        for (c, _) in &grids[si] {
            print!("{c:>10.4}");
        }
        println!();
    }
    println!("\n-- SLO violation (%) --");
    print!("{:>10}", "SLO \\ bw");
    for bw in bandwidths {
        print!("{bw:>10.0}");
    }
    println!();
    for (si, slo) in slos.iter().enumerate() {
        print!("{slo:>9.1}s");
        for (_, v) in &grids[si] {
            print!("{v:>10.1}");
        }
        println!();
    }
    println!(
        "\nReading the map: looser SLOs cut cost (fuller canvases per invocation);\nhigher bandwidth pushes patches in faster, raising efficiency further. The\noperator only ever supplies the SLO — Tangram does the rest (§V-B)."
    );
}
