//! The patch-stitching solver — Algorithm 2 (lines 24–39) of the paper.
//!
//! Variable-size patches are packed ("stitched") onto fixed-size canvases
//! without resizing, padding, rotation or overlap, so a batch of canvases
//! can be fed to the DNN as uniform inputs with no information loss.
//!
//! * [`packer`] — single-canvas rectangle packers: the paper's
//!   [`packer::GuillotinePacker`] (best-short-side-fit choice, shorter-axis
//!   split) plus [`packer::ShelfPacker`] and [`packer::SkylinePacker`] as
//!   ablation baselines;
//! * [`canvas`] — the canvas data model and efficiency accounting
//!   (Fig. 10b / Fig. 13 plot the efficiency CDFs);
//! * [`solver`] — the multi-canvas [`solver::PatchStitchingSolver`] that
//!   Algorithm 2 invokes on every patch arrival;
//! * [`compose`] — coordinate mapping between canvas space and source
//!   frames, used when detections are projected back to cameras.
//!
//! # Example
//!
//! ```
//! use tangram_stitch::solver::PatchStitchingSolver;
//! use tangram_types::geometry::Size;
//!
//! let solver = PatchStitchingSolver::new(Size::CANVAS_1024);
//! let sizes = [Size::new(400, 700), Size::new(600, 300), Size::new(500, 500)];
//! let canvases = solver.stitch_sizes(&sizes).expect("all fit the canvas");
//! assert_eq!(canvases.len(), 1, "three small patches share one canvas");
//! ```

pub mod canvas;
pub mod compose;
pub mod packer;
pub mod solver;

pub use canvas::{Canvas, PlacedPatch};
pub use compose::CanvasMapping;
pub use packer::{GuillotinePacker, Packer, ShelfPacker, SkylinePacker};
pub use solver::{PatchStitchingSolver, StitchError};
