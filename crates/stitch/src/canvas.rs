//! The canvas data model.
//!
//! A canvas is one fixed-size DNN input holding stitched patches. Batches
//! of canvases are what the scheduler dispatches to the serverless
//! function; canvas *efficiency* (patch area / canvas area) is the
//! utilisation metric the paper plots in Fig. 10b and Fig. 13.

use serde::{Deserialize, Serialize};
use tangram_types::geometry::{Point, Rect, Size};
use tangram_types::ids::CanvasId;
use tangram_types::patch::PatchInfo;
use tangram_types::time::SimTime;

/// One patch placed at a position on a canvas.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlacedPatch {
    /// The patch's metadata (including its source-frame rectangle).
    pub patch: PatchInfo,
    /// Top-left corner of the patch on the canvas.
    pub position: Point,
}

impl PlacedPatch {
    /// The rectangle this patch occupies on the canvas.
    #[must_use]
    pub fn canvas_rect(&self) -> Rect {
        Rect::new(
            self.position.x,
            self.position.y,
            self.patch.rect.width,
            self.patch.rect.height,
        )
    }
}

/// A fixed-size canvas with stitched patches.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Canvas {
    /// Canvas identity.
    pub id: CanvasId,
    /// Canvas extent (`M × N`; the paper uses 1024×1024).
    pub size: Size,
    /// The placements, in stitching order.
    pub placements: Vec<PlacedPatch>,
}

impl Canvas {
    /// Creates an empty canvas.
    ///
    /// # Panics
    ///
    /// Panics if `size` is empty.
    #[must_use]
    pub fn new(id: CanvasId, size: Size) -> Self {
        assert!(!size.is_empty(), "canvas must be non-empty");
        Self {
            id,
            size,
            placements: Vec::new(),
        }
    }

    /// Adds a placement.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if the placement escapes the canvas or
    /// overlaps an existing placement — the packer must prevent both.
    pub fn place(&mut self, patch: PatchInfo, position: Point) {
        let placed = PlacedPatch { patch, position };
        debug_assert!(
            Rect::from_size(self.size).contains_rect(&placed.canvas_rect()),
            "placement escapes canvas"
        );
        debug_assert!(
            self.placements
                .iter()
                .all(|p| !p.canvas_rect().intersects(&placed.canvas_rect())),
            "placement overlaps"
        );
        self.placements.push(placed);
    }

    /// Number of patches on the canvas.
    #[must_use]
    pub fn patch_count(&self) -> usize {
        self.placements.len()
    }

    /// Whether the canvas holds no patches.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.placements.is_empty()
    }

    /// Total patch area on the canvas.
    #[must_use]
    pub fn used_area(&self) -> u64 {
        self.placements.iter().map(|p| p.patch.rect.area()).sum()
    }

    /// Canvas efficiency: patch area over canvas area (Fig. 10b).
    #[must_use]
    pub fn efficiency(&self) -> f64 {
        self.used_area() as f64 / self.size.area() as f64
    }

    /// The earliest deadline among the canvas's patches (`None` if empty).
    #[must_use]
    pub fn earliest_deadline(&self) -> Option<SimTime> {
        self.placements.iter().map(|p| p.patch.deadline()).min()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tangram_types::ids::{CameraId, FrameId, PatchId};
    use tangram_types::time::SimDuration;

    fn patch(id: u64, w: u32, h: u32, gen_us: u64) -> PatchInfo {
        PatchInfo::new(
            PatchId::new(id),
            CameraId::new(0),
            FrameId::new(0),
            Rect::new(0, 0, w, h),
            SimTime::from_micros(gen_us),
            SimDuration::from_secs(1),
        )
    }

    #[test]
    fn efficiency_accumulates() {
        let mut c = Canvas::new(CanvasId::new(1), Size::new(100, 100));
        assert!(c.is_empty());
        c.place(patch(1, 50, 50, 0), Point::new(0, 0));
        c.place(patch(2, 50, 50, 0), Point::new(50, 0));
        assert_eq!(c.patch_count(), 2);
        assert_eq!(c.used_area(), 5000);
        assert!((c.efficiency() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn earliest_deadline_is_min() {
        let mut c = Canvas::new(CanvasId::new(1), Size::new(100, 100));
        assert_eq!(c.earliest_deadline(), None);
        c.place(patch(1, 10, 10, 500_000), Point::new(0, 0));
        c.place(patch(2, 10, 10, 100_000), Point::new(20, 0));
        assert_eq!(c.earliest_deadline(), Some(SimTime::from_micros(1_100_000)));
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "placement overlaps")]
    fn overlapping_placement_caught() {
        let mut c = Canvas::new(CanvasId::new(1), Size::new(100, 100));
        c.place(patch(1, 60, 60, 0), Point::new(0, 0));
        c.place(patch(2, 60, 60, 0), Point::new(30, 30));
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "escapes canvas")]
    fn out_of_bounds_placement_caught() {
        let mut c = Canvas::new(CanvasId::new(1), Size::new(100, 100));
        c.place(patch(1, 60, 60, 0), Point::new(50, 50));
    }
}
