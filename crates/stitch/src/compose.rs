//! Coordinate mapping between canvas space and source frames.
//!
//! Detections come back from the model in *canvas* coordinates; the
//! scheduler must project them into the originating camera's frame. The
//! mapping is lossless because stitching never resizes patches.

use crate::canvas::Canvas;
use tangram_types::geometry::Rect;
use tangram_types::ids::{CameraId, FrameId};
use tangram_types::patch::PatchInfo;

/// Bidirectional mapping for one canvas.
#[derive(Debug, Clone)]
pub struct CanvasMapping<'a> {
    canvas: &'a Canvas,
}

impl<'a> CanvasMapping<'a> {
    /// Wraps a canvas.
    #[must_use]
    pub fn new(canvas: &'a Canvas) -> Self {
        Self { canvas }
    }

    /// Projects a frame-space rectangle into canvas coordinates, clipped to
    /// the patch that carries it. Returns one entry per placement that
    /// overlaps `rect` in the given camera/frame (an object straddling two
    /// patches appears clipped in both).
    #[must_use]
    pub fn frame_to_canvas(&self, camera: CameraId, frame: FrameId, rect: Rect) -> Vec<Rect> {
        let mut out = Vec::new();
        for p in &self.canvas.placements {
            if p.patch.camera != camera || p.patch.frame != frame {
                continue;
            }
            let Some(visible) = rect.intersect(&p.patch.rect) else {
                continue;
            };
            // Translate from frame space into this placement's canvas spot.
            let dx = i64::from(p.position.x) - i64::from(p.patch.rect.x);
            let dy = i64::from(p.position.y) - i64::from(p.patch.rect.y);
            out.push(visible.translated(dx, dy));
        }
        out
    }

    /// Projects a canvas-space rectangle back to its source frame. The
    /// placement owning the rectangle's centre wins; returns the patch
    /// metadata and the frame-space rectangle (clipped to the patch).
    #[must_use]
    pub fn canvas_to_frame(&self, rect: Rect) -> Option<(PatchInfo, Rect)> {
        let center = rect.center();
        let p = self
            .canvas
            .placements
            .iter()
            .find(|p| p.canvas_rect().contains_point(center))?;
        let dx = i64::from(p.patch.rect.x) - i64::from(p.position.x);
        let dy = i64::from(p.patch.rect.y) - i64::from(p.position.y);
        let mapped = rect.translated(dx, dy);
        Some((p.patch, mapped.intersect(&p.patch.rect)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tangram_types::geometry::{Point, Size};
    use tangram_types::ids::{CanvasId, PatchId};
    use tangram_types::time::{SimDuration, SimTime};

    fn canvas_with_patch() -> Canvas {
        let mut c = Canvas::new(CanvasId::new(0), Size::new(1024, 1024));
        let patch = PatchInfo::new(
            PatchId::new(1),
            CameraId::new(2),
            FrameId::new(3),
            Rect::new(1000, 500, 400, 300), // source-frame location
            SimTime::ZERO,
            SimDuration::from_secs(1),
        );
        c.place(patch, Point::new(100, 200)); // canvas location
        c
    }

    #[test]
    fn frame_to_canvas_translates() {
        let c = canvas_with_patch();
        let m = CanvasMapping::new(&c);
        // An object at (1100, 600, 50, 60) in the frame sits at offset
        // (100, 100) inside the patch → canvas (200, 300).
        let mapped = m.frame_to_canvas(
            CameraId::new(2),
            FrameId::new(3),
            Rect::new(1100, 600, 50, 60),
        );
        assert_eq!(mapped, vec![Rect::new(200, 300, 50, 60)]);
    }

    #[test]
    fn frame_to_canvas_clips_to_patch() {
        let c = canvas_with_patch();
        let m = CanvasMapping::new(&c);
        // Object half outside the patch: only the covered part maps.
        let mapped = m.frame_to_canvas(
            CameraId::new(2),
            FrameId::new(3),
            Rect::new(950, 550, 100, 50),
        );
        assert_eq!(mapped, vec![Rect::new(100, 250, 50, 50)]);
    }

    #[test]
    fn wrong_camera_or_frame_maps_nothing() {
        let c = canvas_with_patch();
        let m = CanvasMapping::new(&c);
        assert!(m
            .frame_to_canvas(
                CameraId::new(9),
                FrameId::new(3),
                Rect::new(1100, 600, 10, 10)
            )
            .is_empty());
        assert!(m
            .frame_to_canvas(
                CameraId::new(2),
                FrameId::new(9),
                Rect::new(1100, 600, 10, 10)
            )
            .is_empty());
    }

    #[test]
    fn canvas_to_frame_roundtrip() {
        let c = canvas_with_patch();
        let m = CanvasMapping::new(&c);
        let frame_rect = Rect::new(1150, 620, 40, 50);
        let on_canvas = m.frame_to_canvas(CameraId::new(2), FrameId::new(3), frame_rect)[0];
        let (patch, back) = m.canvas_to_frame(on_canvas).expect("maps back");
        assert_eq!(patch.id, PatchId::new(1));
        assert_eq!(back, frame_rect);
    }

    #[test]
    fn canvas_to_frame_outside_placements_is_none() {
        let c = canvas_with_patch();
        let m = CanvasMapping::new(&c);
        assert!(m.canvas_to_frame(Rect::new(900, 900, 20, 20)).is_none());
    }
}
