//! The multi-canvas Patch-stitching Solver.
//!
//! Algorithm 2 re-runs the solver over the whole queue on every patch
//! arrival: patches are stitched onto a growing sequence of canvases;
//! when no free space fits a patch, a fresh canvas is opened (line 36).
//! Free space is pooled across all open canvases so a later small patch
//! can still fill an earlier canvas's gap.

use crate::canvas::Canvas;
use crate::packer::{GuillotinePacker, Packer};
use std::error::Error;
use std::fmt;
use tangram_types::geometry::{Point, Rect, Size};
use tangram_types::ids::CanvasId;
use tangram_types::patch::PatchInfo;

/// Error returned when a patch cannot be stitched at all.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StitchError {
    /// The patch is larger than an empty canvas; it must be pre-split
    /// (see [`split_to_fit`]).
    PatchTooLarge {
        /// The offending patch size.
        patch: Size,
        /// The canvas size it must fit into.
        canvas: Size,
    },
}

impl fmt::Display for StitchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StitchError::PatchTooLarge { patch, canvas } => {
                write!(f, "patch {patch} exceeds canvas {canvas}; split it first")
            }
        }
    }
}

impl Error for StitchError {}

/// Splits `rect` into tiles no larger than `canvas`, cutting along both
/// axes as needed. Oversized patches occur when a zone's enclosing
/// rectangle outgrows the canvas (dense scenes with spread-out RoIs);
/// real deployments must make the same choice, trading one stitched
/// boundary for uniform inputs.
#[must_use]
pub fn split_to_fit(rect: Rect, canvas: Size) -> Vec<Rect> {
    assert!(!canvas.is_empty(), "canvas must be non-empty");
    let mut tiles = Vec::new();
    let mut y = rect.y;
    while y < rect.bottom() {
        let h = canvas.height.min(rect.bottom() - y);
        let mut x = rect.x;
        while x < rect.right() {
            let w = canvas.width.min(rect.right() - x);
            tiles.push(Rect::new(x, y, w, h));
            x += w;
        }
        y += h;
    }
    tiles
}

/// Stateless multi-canvas stitching: every call packs a queue of patches
/// from scratch, exactly as Algorithm 2 does on each arrival.
#[derive(Debug, Clone)]
pub struct PatchStitchingSolver {
    canvas_size: Size,
}

impl PatchStitchingSolver {
    /// Creates a solver producing canvases of `canvas_size`.
    ///
    /// # Panics
    ///
    /// Panics if `canvas_size` is empty.
    #[must_use]
    pub fn new(canvas_size: Size) -> Self {
        assert!(!canvas_size.is_empty(), "canvas must be non-empty");
        Self { canvas_size }
    }

    /// The canvas extent this solver packs into.
    #[must_use]
    pub fn canvas_size(&self) -> Size {
        self.canvas_size
    }

    /// Stitches the queue of patches onto canvases, in queue order.
    ///
    /// # Errors
    ///
    /// Returns [`StitchError::PatchTooLarge`] if any patch exceeds the
    /// canvas; pre-split such patches with [`split_to_fit`].
    pub fn stitch(&self, patches: &[PatchInfo]) -> Result<Vec<Canvas>, StitchError> {
        for p in patches {
            if !self.canvas_size.fits(p.rect.size()) {
                return Err(StitchError::PatchTooLarge {
                    patch: p.rect.size(),
                    canvas: self.canvas_size,
                });
            }
        }
        let mut packers: Vec<GuillotinePacker> = Vec::new();
        let mut canvases: Vec<Canvas> = Vec::new();
        'patches: for p in patches {
            // Try the pooled free space of every open canvas, oldest first,
            // choosing the first canvas whose packer accepts the patch.
            for (packer, canvas) in packers.iter_mut().zip(canvases.iter_mut()) {
                if let Some(pos) = packer.insert(p.rect.size()) {
                    canvas.place(*p, pos);
                    continue 'patches;
                }
            }
            // No space anywhere: open a new canvas (Algorithm 2, line 36).
            let mut packer = GuillotinePacker::new(self.canvas_size);
            let pos = packer
                .insert(p.rect.size())
                .expect("patch fits an empty canvas (checked above)");
            let mut canvas = Canvas::new(CanvasId::new(canvases.len() as u64), self.canvas_size);
            canvas.place(*p, pos);
            packers.push(packer);
            canvases.push(canvas);
        }
        Ok(canvases)
    }

    /// Convenience for tests and benches: stitch bare sizes (metadata is
    /// synthesised).
    ///
    /// # Errors
    ///
    /// Same as [`Self::stitch`].
    pub fn stitch_sizes(&self, sizes: &[Size]) -> Result<Vec<Canvas>, StitchError> {
        use tangram_types::ids::{CameraId, FrameId, PatchId};
        use tangram_types::time::{SimDuration, SimTime};
        let patches: Vec<PatchInfo> = sizes
            .iter()
            .enumerate()
            .map(|(i, s)| {
                PatchInfo::new(
                    PatchId::new(i as u64),
                    CameraId::new(0),
                    FrameId::new(0),
                    Rect::new(0, 0, s.width, s.height),
                    SimTime::ZERO,
                    SimDuration::from_secs(1),
                )
            })
            .collect();
        self.stitch(&patches)
    }

    /// Would the queue still fit on at most `max_canvases` canvases?
    /// (Constraint (5): the batch must fit the function's GPU memory.)
    ///
    /// # Errors
    ///
    /// Same as [`Self::stitch`].
    pub fn fits_within(
        &self,
        patches: &[PatchInfo],
        max_canvases: usize,
    ) -> Result<bool, StitchError> {
        Ok(self.stitch(patches)?.len() <= max_canvases)
    }
}

/// Placement helper shared by tests: validates the canvases of a stitch.
#[doc(hidden)]
pub fn validate_canvases(canvases: &[Canvas]) {
    for canvas in canvases {
        let bounds = Rect::from_size(canvas.size);
        let rects: Vec<Rect> = canvas
            .placements
            .iter()
            .map(crate::canvas::PlacedPatch::canvas_rect)
            .collect();
        for (i, r) in rects.iter().enumerate() {
            assert!(bounds.contains_rect(r), "placement {r} escapes canvas");
            for o in &rects[..i] {
                assert!(!r.intersects(o), "overlap {r} vs {o}");
            }
        }
    }
}

/// Returns the canvas position of a patch, if present.
#[must_use]
pub fn find_placement(canvases: &[Canvas], patch: &PatchInfo) -> Option<(CanvasId, Point)> {
    for c in canvases {
        for p in &c.placements {
            if p.patch.id == patch.id {
                return Some((c.id, p.position));
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    const CANVAS: Size = Size::new(1024, 1024);

    fn solver() -> PatchStitchingSolver {
        PatchStitchingSolver::new(CANVAS)
    }

    #[test]
    fn single_small_patch_single_canvas() {
        let canvases = solver().stitch_sizes(&[Size::new(100, 100)]).unwrap();
        assert_eq!(canvases.len(), 1);
        assert_eq!(canvases[0].patch_count(), 1);
        validate_canvases(&canvases);
    }

    #[test]
    fn all_patches_placed_exactly_once() {
        let sizes: Vec<Size> = (0..30)
            .map(|i| Size::new(150 + (i * 37) % 300, 200 + (i * 53) % 350))
            .collect();
        let canvases = solver().stitch_sizes(&sizes).unwrap();
        let placed: usize = canvases.iter().map(Canvas::patch_count).sum();
        assert_eq!(placed, sizes.len());
        validate_canvases(&canvases);
    }

    #[test]
    fn overflow_opens_new_canvas() {
        // Three 700x700 patches cannot share a 1024 canvas.
        let sizes = [Size::new(700, 700); 3];
        let canvases = solver().stitch_sizes(&sizes).unwrap();
        assert_eq!(canvases.len(), 3);
    }

    #[test]
    fn later_small_patch_fills_earlier_gap() {
        // Big patch leaves a 1024x324 strip on canvas 0; after a second
        // canvas opens, a small patch must still land in that strip.
        let sizes = vec![
            Size::new(1024, 700), // canvas 0, leaves bottom strip
            Size::new(1024, 700), // canvas 1
            Size::new(300, 300),  // fits canvas 0's strip
        ];
        let canvases = solver().stitch_sizes(&sizes).unwrap();
        assert_eq!(canvases.len(), 2);
        assert_eq!(canvases[0].patch_count(), 2);
        validate_canvases(&canvases);
    }

    #[test]
    fn oversized_patch_is_an_error() {
        let err = solver().stitch_sizes(&[Size::new(2000, 100)]).unwrap_err();
        assert!(matches!(err, StitchError::PatchTooLarge { .. }));
        assert!(err.to_string().contains("split it first"));
    }

    #[test]
    fn split_to_fit_tiles_cover_exactly() {
        let rect = Rect::new(100, 200, 2500, 1800);
        let tiles = split_to_fit(rect, CANVAS);
        // Tiles are disjoint and cover the rect.
        let total: u64 = tiles.iter().map(Rect::area).sum();
        assert_eq!(total, rect.area());
        for (i, t) in tiles.iter().enumerate() {
            assert!(rect.contains_rect(t));
            assert!(CANVAS.fits(t.size()), "tile {t} too big");
            for o in &tiles[..i] {
                assert!(!t.intersects(o), "tiles overlap");
            }
        }
        // 2500/1024 → 3 columns, 1800/1024 → 2 rows.
        assert_eq!(tiles.len(), 6);
    }

    #[test]
    fn split_to_fit_noop_for_small() {
        let rect = Rect::new(5, 5, 100, 100);
        assert_eq!(split_to_fit(rect, CANVAS), vec![rect]);
    }

    #[test]
    fn fits_within_reflects_canvas_count() {
        let sizes = [Size::new(700, 700); 3];
        let s = solver();
        let patches: Vec<PatchInfo> = {
            use tangram_types::ids::{CameraId, FrameId, PatchId};
            use tangram_types::time::{SimDuration, SimTime};
            sizes
                .iter()
                .enumerate()
                .map(|(i, sz)| {
                    PatchInfo::new(
                        PatchId::new(i as u64),
                        CameraId::new(0),
                        FrameId::new(0),
                        Rect::new(0, 0, sz.width, sz.height),
                        SimTime::ZERO,
                        SimDuration::from_secs(1),
                    )
                })
                .collect()
        };
        assert!(s.fits_within(&patches, 3).unwrap());
        assert!(!s.fits_within(&patches, 2).unwrap());
    }

    #[test]
    fn stitch_is_deterministic() {
        let sizes: Vec<Size> = (0..25)
            .map(|i| Size::new(100 + (i * 97) % 500, 100 + (i * 61) % 400))
            .collect();
        let a = solver().stitch_sizes(&sizes).unwrap();
        let b = solver().stitch_sizes(&sizes).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn find_placement_locates_patches() {
        use tangram_types::ids::{CameraId, FrameId, PatchId};
        use tangram_types::time::{SimDuration, SimTime};
        let patch = PatchInfo::new(
            PatchId::new(42),
            CameraId::new(1),
            FrameId::new(2),
            Rect::new(0, 0, 128, 256),
            SimTime::ZERO,
            SimDuration::from_secs(1),
        );
        let canvases = solver().stitch(&[patch]).unwrap();
        let (cid, pos) = find_placement(&canvases, &patch).expect("patch placed");
        assert_eq!(cid, CanvasId::new(0));
        assert_eq!(pos, Point::new(0, 0));
        let other = PatchInfo::new(
            PatchId::new(43),
            CameraId::new(1),
            FrameId::new(2),
            Rect::new(0, 0, 1, 1),
            SimTime::ZERO,
            SimDuration::from_secs(1),
        );
        assert_eq!(find_placement(&canvases, &other), None);
    }
}
