//! Single-canvas rectangle packers.
//!
//! The paper's Patch-stitching Solver is a guillotine packer: among the
//! free rectangles that fit the incoming patch it picks the one minimising
//! `min(w_c − w_i, h_c − h_i)` (best short side fit), places the patch in
//! the corner, and splits the remaining space into two disjoint free
//! rectangles along the shorter axis. [`ShelfPacker`] and
//! [`SkylinePacker`] implement the classic alternatives for the packing
//! ablation bench.

use tangram_types::geometry::{Point, Rect, Size};

/// Places rectangles into one fixed-size canvas. No rotation, no overlap.
pub trait Packer {
    /// Attempts to place a `size`-shaped patch; returns its top-left
    /// corner, or `None` when no free space fits it.
    fn insert(&mut self, size: Size) -> Option<Point>;

    /// Clears all placements.
    fn reset(&mut self);

    /// The canvas extent this packer packs into.
    fn canvas_size(&self) -> Size;

    /// Total area placed so far.
    fn used_area(&self) -> u64;

    /// Fraction of the canvas covered by placed patches.
    fn efficiency(&self) -> f64 {
        self.used_area() as f64 / self.canvas_size().area() as f64
    }
}

/// The paper's guillotine packer (best-short-side-fit + shorter-axis
/// split).
#[derive(Debug, Clone)]
pub struct GuillotinePacker {
    size: Size,
    free: Vec<Rect>,
    used: u64,
}

impl GuillotinePacker {
    /// Creates an empty packer for a canvas of `size`.
    ///
    /// # Panics
    ///
    /// Panics if `size` is empty.
    #[must_use]
    pub fn new(size: Size) -> Self {
        assert!(!size.is_empty(), "canvas must be non-empty");
        Self {
            size,
            free: vec![Rect::from_size(size)],
            used: 0,
        }
    }

    /// The current free rectangles (diagnostics).
    #[must_use]
    pub fn free_rects(&self) -> &[Rect] {
        &self.free
    }
}

impl Packer for GuillotinePacker {
    fn insert(&mut self, size: Size) -> Option<Point> {
        if size.is_empty() {
            return None;
        }
        // Best short side fit: minimise min(wc - wi, hc - hi) (line 30).
        let (idx, _) = self
            .free
            .iter()
            .enumerate()
            .filter(|(_, c)| c.size().fits(size))
            .min_by_key(|(_, c)| (c.width - size.width).min(c.height - size.height))?;
        let cell = self.free.swap_remove(idx);
        let origin = cell.origin();
        // Remaining space after placing at the corner: a right strip of
        // (W−w) × ? and a bottom strip of ? × (H−h). Splitting "on the
        // shorter axis" (line 32) gives the smaller leftover its own thin
        // rectangle and keeps the larger leftover wide.
        let rem_w = cell.width - size.width;
        let rem_h = cell.height - size.height;
        let (c1, c2) = if rem_w <= rem_h {
            // Horizontal cut: thin right strip next to the patch, full-width
            // bottom rectangle.
            (
                Rect::new(cell.x + size.width, cell.y, rem_w, size.height),
                Rect::new(cell.x, cell.y + size.height, cell.width, rem_h),
            )
        } else {
            // Vertical cut: full-height right rectangle, thin bottom strip
            // under the patch.
            (
                Rect::new(cell.x + size.width, cell.y, rem_w, cell.height),
                Rect::new(cell.x, cell.y + size.height, size.width, rem_h),
            )
        };
        for c in [c1, c2] {
            if !c.is_empty() {
                self.free.push(c);
            }
        }
        self.used += size.area();
        Some(origin)
    }

    fn reset(&mut self) {
        self.free.clear();
        self.free.push(Rect::from_size(self.size));
        self.used = 0;
    }

    fn canvas_size(&self) -> Size {
        self.size
    }

    fn used_area(&self) -> u64 {
        self.used
    }
}

/// First-fit shelf packer: patches fill left-to-right shelves whose height
/// is set by their first patch. Simple and fast, but wastes the space
/// above short patches — the packing ablation's lower bar.
#[derive(Debug, Clone)]
pub struct ShelfPacker {
    size: Size,
    shelves: Vec<(u32, u32, u32)>, // (y, height, used_width)
    next_y: u32,
    used: u64,
}

impl ShelfPacker {
    /// Creates an empty shelf packer.
    ///
    /// # Panics
    ///
    /// Panics if `size` is empty.
    #[must_use]
    pub fn new(size: Size) -> Self {
        assert!(!size.is_empty(), "canvas must be non-empty");
        Self {
            size,
            shelves: Vec::new(),
            next_y: 0,
            used: 0,
        }
    }
}

impl Packer for ShelfPacker {
    fn insert(&mut self, size: Size) -> Option<Point> {
        if size.is_empty() || size.width > self.size.width {
            return None;
        }
        // Try existing shelves first (first fit).
        for (y, height, used_width) in &mut self.shelves {
            if size.height <= *height && *used_width + size.width <= self.size.width {
                let p = Point::new(*used_width, *y);
                *used_width += size.width;
                self.used += size.area();
                return Some(p);
            }
        }
        // Open a new shelf.
        if self.next_y + size.height > self.size.height {
            return None;
        }
        let p = Point::new(0, self.next_y);
        self.shelves.push((self.next_y, size.height, size.width));
        self.next_y += size.height;
        self.used += size.area();
        Some(p)
    }

    fn reset(&mut self) {
        self.shelves.clear();
        self.next_y = 0;
        self.used = 0;
    }

    fn canvas_size(&self) -> Size {
        self.size
    }

    fn used_area(&self) -> u64 {
        self.used
    }
}

/// Bottom-left skyline packer: maintains the skyline profile and drops
/// each patch at the lowest (then leftmost) position. Often close to
/// guillotine quality; the packing ablation's second baseline.
#[derive(Debug, Clone)]
pub struct SkylinePacker {
    size: Size,
    /// `(x, y, width)` segments covering the canvas width, left to right.
    skyline: Vec<(u32, u32, u32)>,
    used: u64,
}

impl SkylinePacker {
    /// Creates an empty skyline packer.
    ///
    /// # Panics
    ///
    /// Panics if `size` is empty.
    #[must_use]
    pub fn new(size: Size) -> Self {
        assert!(!size.is_empty(), "canvas must be non-empty");
        Self {
            size,
            skyline: vec![(0, 0, size.width)],
            used: 0,
        }
    }

    /// The y the patch would rest at when left-aligned to segment `i`, or
    /// `None` if it would not fit horizontally or vertically.
    fn fit_at(&self, i: usize, size: Size) -> Option<u32> {
        let (x, _, _) = self.skyline[i];
        if x + size.width > self.size.width {
            return None;
        }
        let mut rest_y = 0u32;
        let mut remaining = size.width;
        let mut j = i;
        while remaining > 0 {
            let (_, sy, sw) = *self.skyline.get(j)?;
            rest_y = rest_y.max(sy);
            if sw >= remaining {
                remaining = 0;
            } else {
                remaining -= sw;
                j += 1;
            }
        }
        (rest_y + size.height <= self.size.height).then_some(rest_y)
    }

    fn place_at(&mut self, i: usize, x: u32, y: u32, size: Size) {
        // Replace the covered span with a single raised segment.
        let new_seg = (x, y + size.height, size.width);
        let mut rebuilt: Vec<(u32, u32, u32)> = Vec::with_capacity(self.skyline.len() + 2);
        rebuilt.extend_from_slice(&self.skyline[..i]);
        rebuilt.push(new_seg);
        let end_x = x + size.width;
        for &(sx, sy, sw) in &self.skyline[i..] {
            let seg_end = sx + sw;
            if seg_end <= end_x {
                continue; // fully covered
            }
            if sx >= end_x {
                rebuilt.push((sx, sy, sw));
            } else {
                rebuilt.push((end_x, sy, seg_end - end_x));
            }
        }
        // Merge adjacent segments of equal height.
        let mut merged: Vec<(u32, u32, u32)> = Vec::with_capacity(rebuilt.len());
        for seg in rebuilt {
            if let Some(last) = merged.last_mut() {
                if last.1 == seg.1 && last.0 + last.2 == seg.0 {
                    last.2 += seg.2;
                    continue;
                }
            }
            merged.push(seg);
        }
        self.skyline = merged;
    }
}

impl Packer for SkylinePacker {
    fn insert(&mut self, size: Size) -> Option<Point> {
        if size.is_empty() {
            return None;
        }
        let mut best: Option<(u32, u32, usize)> = None; // (y, x, segment)
        for i in 0..self.skyline.len() {
            if let Some(y) = self.fit_at(i, size) {
                let x = self.skyline[i].0;
                let candidate = (y, x, i);
                if best.is_none_or(|b| (candidate.0, candidate.1) < (b.0, b.1)) {
                    best = Some(candidate);
                }
            }
        }
        let (y, x, i) = best?;
        self.place_at(i, x, y, size);
        self.used += size.area();
        Some(Point::new(x, y))
    }

    fn reset(&mut self) {
        self.skyline = vec![(0, 0, self.size.width)];
        self.used = 0;
    }

    fn canvas_size(&self) -> Size {
        self.size
    }

    fn used_area(&self) -> u64 {
        self.used
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CANVAS: Size = Size::new(1024, 1024);

    fn check_no_overlap(placements: &[(Point, Size)], canvas: Size) {
        let rects: Vec<Rect> = placements
            .iter()
            .map(|(p, s)| Rect::new(p.x, p.y, s.width, s.height))
            .collect();
        let bounds = Rect::from_size(canvas);
        for (i, r) in rects.iter().enumerate() {
            assert!(bounds.contains_rect(r), "placement {r} escapes canvas");
            for other in &rects[..i] {
                assert!(!r.intersects(other), "placements overlap: {r} vs {other}");
            }
        }
    }

    fn exercise(packer: &mut dyn Packer, sizes: &[Size]) -> Vec<(Point, Size)> {
        let mut placed = Vec::new();
        for &s in sizes {
            if let Some(p) = packer.insert(s) {
                placed.push((p, s));
            }
        }
        placed
    }

    fn workload(seed: u64, n: usize) -> Vec<Size> {
        // Deterministic pseudo-random patch mix like Fig. 4a's scatter.
        let mut x = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
        (0..n)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                let w = 60 + (x % 400) as u32;
                let h = 80 + ((x >> 16) % 500) as u32;
                Size::new(w, h)
            })
            .collect()
    }

    #[test]
    fn guillotine_valid_packing() {
        let mut p = GuillotinePacker::new(CANVAS);
        let placed = exercise(&mut p, &workload(1, 40));
        assert!(placed.len() >= 4, "too few placements: {}", placed.len());
        check_no_overlap(&placed, CANVAS);
        let area: u64 = placed.iter().map(|(_, s)| s.area()).sum();
        assert_eq!(area, p.used_area());
        assert!(p.efficiency() <= 1.0);
    }

    #[test]
    fn shelf_valid_packing() {
        let mut p = ShelfPacker::new(CANVAS);
        let placed = exercise(&mut p, &workload(2, 40));
        check_no_overlap(&placed, CANVAS);
    }

    #[test]
    fn skyline_valid_packing() {
        let mut p = SkylinePacker::new(CANVAS);
        let placed = exercise(&mut p, &workload(3, 40));
        check_no_overlap(&placed, CANVAS);
    }

    #[test]
    fn guillotine_fills_exactly_with_tiles() {
        // Four 512x512 tiles fill a 1024 canvas completely.
        let mut p = GuillotinePacker::new(CANVAS);
        let tile = Size::new(512, 512);
        for _ in 0..4 {
            assert!(p.insert(tile).is_some());
        }
        assert!((p.efficiency() - 1.0).abs() < 1e-12);
        assert_eq!(p.insert(Size::new(1, 1)), None, "canvas is full");
    }

    #[test]
    fn guillotine_rejects_oversized() {
        let mut p = GuillotinePacker::new(CANVAS);
        assert_eq!(p.insert(Size::new(1025, 10)), None);
        assert_eq!(p.insert(Size::new(10, 1025)), None);
        assert_eq!(p.insert(Size::new(0, 10)), None, "empty patches rejected");
    }

    #[test]
    fn full_size_patch_fits_exactly() {
        let mut p = GuillotinePacker::new(CANVAS);
        assert_eq!(p.insert(CANVAS), Some(Point::new(0, 0)));
        assert_eq!(p.insert(Size::new(1, 1)), None);
    }

    #[test]
    fn reset_restores_capacity() {
        let mut p = GuillotinePacker::new(CANVAS);
        assert!(p.insert(CANVAS).is_some());
        p.reset();
        assert_eq!(p.used_area(), 0);
        assert!(p.insert(CANVAS).is_some());
    }

    #[test]
    fn guillotine_beats_shelf_on_mixed_sizes() {
        // The reason the paper packs with a guillotine rather than shelves:
        // mixed patch heights leave shelves with dead space.
        let mut guillotine_total = 0u64;
        let mut shelf_total = 0u64;
        for seed in 0..10u64 {
            let sizes = workload(seed, 60);
            let mut g = GuillotinePacker::new(CANVAS);
            let mut s = ShelfPacker::new(CANVAS);
            exercise(&mut g, &sizes);
            exercise(&mut s, &sizes);
            guillotine_total += g.used_area();
            shelf_total += s.used_area();
        }
        assert!(
            guillotine_total > shelf_total,
            "guillotine {guillotine_total} should beat shelf {shelf_total}"
        );
    }

    #[test]
    fn skyline_positions_are_bottom_left() {
        let mut p = SkylinePacker::new(Size::new(100, 100));
        assert_eq!(p.insert(Size::new(40, 30)), Some(Point::new(0, 0)));
        assert_eq!(p.insert(Size::new(40, 20)), Some(Point::new(40, 0)));
        // Next patch of width 60 fits at (40, 20) — the lowest position.
        assert_eq!(p.insert(Size::new(60, 20)), Some(Point::new(40, 20)));
    }

    #[test]
    fn deterministic_packing() {
        let sizes = workload(9, 50);
        let mut a = GuillotinePacker::new(CANVAS);
        let mut b = GuillotinePacker::new(CANVAS);
        let pa = exercise(&mut a, &sizes);
        let pb = exercise(&mut b, &sizes);
        assert_eq!(pa, pb);
    }
}
