//! Run reports: everything an experiment needs to print its table/figure.

use serde::{Deserialize, Serialize};
use tangram_net::LinkStats;
use tangram_serverless::platform::PlatformStats;
use tangram_sim::stats::EmpiricalCdf;
use tangram_types::ids::{CameraId, FrameId, PatchId};
use tangram_types::time::{SimDuration, SimTime};
use tangram_types::units::{Bytes, Dollars};

/// Per-patch end-to-end outcome.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct PatchRecord {
    /// Patch identity.
    pub patch: PatchId,
    /// Source camera.
    pub camera: CameraId,
    /// Source frame.
    pub frame: FrameId,
    /// Capture instant (SLO clock start).
    pub generated_at: SimTime,
    /// When the scheduler dispatched the batch containing it.
    pub dispatched_at: SimTime,
    /// When its results were ready.
    pub finished_at: SimTime,
    /// The SLO it was stamped with.
    pub slo: SimDuration,
}

impl PatchRecord {
    /// End-to-end latency (capture → result).
    #[must_use]
    pub fn latency(&self) -> SimDuration {
        self.finished_at.since(self.generated_at)
    }

    /// Whether the SLO was violated.
    #[must_use]
    pub fn violated(&self) -> bool {
        self.latency() > self.slo
    }
}

/// Per-invocation outcome.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BatchRecord {
    /// When the batch was dispatched.
    pub dispatched_at: SimTime,
    /// Model inputs (canvases / padded patches / frames).
    pub inputs: usize,
    /// Patches bundled.
    pub patch_count: usize,
    /// Pure execution time.
    pub execution: SimDuration,
    /// Whether a cold start preceded it.
    pub cold: bool,
    /// Eqn. (1) cost.
    pub cost: Dollars,
    /// Canvas efficiencies (stitching policies only).
    pub efficiencies: Vec<f64>,
}

/// The full outcome of one end-to-end run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunReport {
    /// Policy under test.
    pub policy: String,
    /// Per-patch outcomes.
    pub patches: Vec<PatchRecord>,
    /// Per-invocation outcomes.
    pub batches: Vec<BatchRecord>,
    /// Uplink counters.
    pub link: LinkStats,
    /// Platform counters.
    pub platform: PlatformStats,
    /// Frames injected.
    pub frames: u64,
    /// Frames captured inside a camera-flap mute window and lost at the
    /// edge (see [`crate::faults::FaultKind::CameraFlap`]): they count
    /// in `frames` (the camera did capture) but never reached the
    /// uplink. Always zero for fault-free runs; **not** part of
    /// [`RunSummary`], so legacy BENCH baselines are unaffected.
    pub frames_muted: u64,
    /// Work items shed by the streaming engine's admission-control
    /// policy (always zero for trace replay without one).
    pub dropped_arrivals: u64,
    /// Admission drops per tenant class, keyed by the class SLO,
    /// ascending. Sums to `dropped_arrivals` (fair-ingress overflow sheds
    /// included).
    pub dropped_by_slo: Vec<(SimDuration, u64)>,
    /// Peak fair-ingress (DRR) queue depth per tenant class, keyed by the
    /// class SLO, ascending. Empty when no fair ingress is installed.
    pub ingress_peak_depth: Vec<(SimDuration, u64)>,
    /// Arrivals admitted through the fair ingress per tenant class, keyed
    /// by the class SLO, ascending — the admitted traffic mix the DRR
    /// weights shape. Empty when no fair ingress is installed.
    pub ingress_admitted: Vec<(SimDuration, u64)>,
    /// Total wire time spent transmitting (Fig. 14c's breakdown).
    pub transmission_busy: SimDuration,
    /// Simulated makespan of the run.
    pub makespan: SimDuration,
    /// Events popped off the engine's coordinator loop — the wall-clock
    /// perf denominator `bench_throughput` reports events/sec over.
    /// Deterministic (a pure function of the workload, identical at any
    /// shard count) but *not* part of [`RunSummary`]: it measures the
    /// runtime, not the policy.
    pub events_processed: u64,
}

impl RunReport {
    /// Number of patches that completed.
    #[must_use]
    pub fn patches_completed(&self) -> usize {
        self.patches.len()
    }

    /// Fraction of patches that missed their SLO.
    #[must_use]
    pub fn slo_violation_rate(&self) -> f64 {
        if self.patches.is_empty() {
            return 0.0;
        }
        self.patches.iter().filter(|p| p.violated()).count() as f64 / self.patches.len() as f64
    }

    /// Total Eqn. (1) cost.
    #[must_use]
    pub fn total_cost(&self) -> Dollars {
        self.platform.total_cost
    }

    /// Total uplink bytes.
    #[must_use]
    pub fn total_bytes(&self) -> Bytes {
        self.link.bytes
    }

    /// Mean end-to-end patch latency.
    #[must_use]
    pub fn mean_latency(&self) -> SimDuration {
        if self.patches.is_empty() {
            return SimDuration::ZERO;
        }
        let total: f64 = self.patches.iter().map(|p| p.latency().as_secs_f64()).sum();
        SimDuration::from_secs_f64(total / self.patches.len() as f64)
    }

    /// Latency quantile (`q` in `[0, 1]`).
    #[must_use]
    pub fn latency_quantile(&self, q: f64) -> SimDuration {
        let mut cdf = EmpiricalCdf::new();
        cdf.extend(self.patches.iter().map(|p| p.latency().as_secs_f64()));
        SimDuration::from_secs_f64(cdf.quantile(q).unwrap_or(0.0))
    }

    /// All canvas efficiencies across batches (Fig. 10b / Fig. 13).
    #[must_use]
    pub fn canvas_efficiencies(&self) -> Vec<f64> {
        self.batches
            .iter()
            .flat_map(|b| b.efficiencies.iter().copied())
            .collect()
    }

    /// Mean patches per batch.
    #[must_use]
    pub fn mean_patches_per_batch(&self) -> f64 {
        if self.batches.is_empty() {
            return 0.0;
        }
        self.batches
            .iter()
            .map(|b| b.patch_count as f64)
            .sum::<f64>()
            / self.batches.len() as f64
    }

    /// Total function execution time (Fig. 14c's second bar).
    #[must_use]
    pub fn total_execution(&self) -> SimDuration {
        self.batches.iter().map(|b| b.execution).sum()
    }

    /// Amortised mean latency per patch within batches (Fig. 14's
    /// amortisation insight: execution time divided by patches served).
    #[must_use]
    pub fn amortized_latency_per_patch(&self) -> SimDuration {
        let patches: usize = self.batches.iter().map(|b| b.patch_count).sum();
        if patches == 0 {
            return SimDuration::ZERO;
        }
        SimDuration::from_secs_f64(self.total_execution().as_secs_f64() / patches as f64)
    }

    /// Per-patch records as CSV (header + one row per patch), for
    /// downstream analysis/plotting.
    #[must_use]
    pub fn patches_csv(&self) -> String {
        let mut out = String::from(
            "patch,camera,frame,generated_us,dispatched_us,finished_us,latency_us,slo_us,violated\n",
        );
        for p in &self.patches {
            out.push_str(&format!(
                "{},{},{},{},{},{},{},{},{}\n",
                p.patch.raw(),
                p.camera.raw(),
                p.frame.raw(),
                p.generated_at.as_micros(),
                p.dispatched_at.as_micros(),
                p.finished_at.as_micros(),
                p.latency().as_micros(),
                p.slo.as_micros(),
                p.violated()
            ));
        }
        out
    }

    /// Per-batch records as CSV.
    #[must_use]
    pub fn batches_csv(&self) -> String {
        let mut out = String::from(
            "dispatched_us,inputs,patches,execution_us,cold,cost_usd,mean_efficiency\n",
        );
        for b in &self.batches {
            let mean_eff = if b.efficiencies.is_empty() {
                0.0
            } else {
                b.efficiencies.iter().sum::<f64>() / b.efficiencies.len() as f64
            };
            out.push_str(&format!(
                "{},{},{},{},{},{:.9},{:.4}\n",
                b.dispatched_at.as_micros(),
                b.inputs,
                b.patch_count,
                b.execution.as_micros(),
                b.cold,
                b.cost.get(),
                mean_eff
            ));
        }
        out
    }

    /// Per-tenant-class accounting: one row per distinct SLO observed in
    /// completed patches or admission drops, ascending by SLO. A run with
    /// one tenant class yields one row; shedding under a mixed-SLO
    /// scenario is where the rows diverge.
    #[must_use]
    pub fn tenant_breakdown(&self) -> Vec<TenantSummary> {
        fn row(rows: &mut Vec<TenantSummary>, slo: SimDuration) -> usize {
            let slo_s = slo.as_secs_f64();
            match rows.binary_search_by(|r| r.slo_s.partial_cmp(&slo_s).expect("finite SLO")) {
                Ok(at) => at,
                Err(at) => {
                    rows.insert(
                        at,
                        TenantSummary {
                            slo_s,
                            patches: 0,
                            violations: 0,
                            dropped: 0,
                            admitted: 0,
                            peak_queued: 0,
                        },
                    );
                    at
                }
            }
        }
        let mut rows: Vec<TenantSummary> = Vec::new();
        for p in &self.patches {
            let at = row(&mut rows, p.slo);
            rows[at].patches += 1;
            if p.violated() {
                rows[at].violations += 1;
            }
        }
        for &(slo, dropped) in &self.dropped_by_slo {
            let at = row(&mut rows, slo);
            rows[at].dropped += dropped;
        }
        for &(slo, peak) in &self.ingress_peak_depth {
            let at = row(&mut rows, slo);
            rows[at].peak_queued = peak;
        }
        for &(slo, admitted) in &self.ingress_admitted {
            let at = row(&mut rows, slo);
            rows[at].admitted = admitted;
        }
        rows
    }

    /// Collapses the run into its scalar digest — the per-cell record the
    /// experiment harness serialises into `BENCH_*.json`.
    #[must_use]
    pub fn summarize(&self) -> RunSummary {
        let eff = self.canvas_efficiencies();
        let mean_eff = if eff.is_empty() {
            0.0
        } else {
            eff.iter().sum::<f64>() / eff.len() as f64
        };
        let violations = self.patches.iter().filter(|p| p.violated()).count() as u64;
        let makespan_s = self.makespan.as_secs_f64();
        RunSummary {
            policy: self.policy.clone(),
            frames: self.frames,
            patches: self.patches_completed() as u64,
            batches: self.batches.len() as u64,
            violations,
            dropped_arrivals: self.dropped_arrivals,
            tenants: self.tenant_breakdown(),
            slo_attainment: 1.0 - self.slo_violation_rate(),
            mean_latency_s: self.mean_latency().as_secs_f64(),
            p50_latency_s: self.latency_quantile(0.5).as_secs_f64(),
            p99_latency_s: self.latency_quantile(0.99).as_secs_f64(),
            cost_usd: self.total_cost().get(),
            uplink_bytes: self.total_bytes().get(),
            invocations: self.platform.invocations,
            cold_starts: self.platform.cold_starts,
            mean_canvas_efficiency: mean_eff,
            mean_patches_per_batch: self.mean_patches_per_batch(),
            execution_total_s: self.total_execution().as_secs_f64(),
            transmission_total_s: self.transmission_busy.as_secs_f64(),
            makespan_s,
            throughput_pps: if makespan_s > 0.0 {
                self.patches_completed() as f64 / makespan_s
            } else {
                0.0
            },
        }
    }

    /// One-line human summary.
    #[must_use]
    pub fn summary(&self) -> String {
        format!(
            "{:<12} frames={:<4} patches={:<5} batches={:<5} cost={} viol={:.2}% mean_lat={} p99={} bytes={}",
            self.policy,
            self.frames,
            self.patches_completed(),
            self.batches.len(),
            self.total_cost(),
            self.slo_violation_rate() * 100.0,
            self.mean_latency(),
            self.latency_quantile(0.99),
            self.total_bytes(),
        )
    }
}

/// One tenant class's slice of a run: completions, violations and
/// admission drops for every patch stamped with the same SLO.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TenantSummary {
    /// The class SLO, seconds (tenant identity: every camera of a class
    /// stamps the same SLO).
    pub slo_s: f64,
    /// Patches of this class that completed.
    pub patches: u64,
    /// Completed patches of this class that missed the SLO.
    pub violations: u64,
    /// Arrivals of this class shed at the ingress (admission drops and
    /// fair-ingress overflow sheds combined).
    pub dropped: u64,
    /// Arrivals of this class admitted through the fair ingress — the
    /// weighted mix the DRR shapes (0 when no fair ingress is installed;
    /// counts pre-tiling arrivals, so it can differ from `patches`).
    pub admitted: u64,
    /// Peak fair-ingress (DRR) queue depth of this class (0 when no fair
    /// ingress is installed).
    pub peak_queued: u64,
}

/// The scalar digest of one [`RunReport`] — every metric a sweep cell
/// records, and nothing that scales with the run length.
///
/// Values are plain numbers computed deterministically from the report,
/// so two digests of the same seeded run compare bit-for-bit equal
/// regardless of which thread produced them. `throughput_pps` is patches
/// per *simulated* second (patches / makespan): a scheduling regression
/// shows up as a drop here without any wall-clock noise entering the
/// serialized record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunSummary {
    /// Policy under test.
    pub policy: String,
    /// Frames injected.
    pub frames: u64,
    /// Patches completed.
    pub patches: u64,
    /// Batches dispatched.
    pub batches: u64,
    /// Patches that missed their SLO.
    pub violations: u64,
    /// Work items shed at the ingress by admission control. **Not**
    /// counted in `patches` or `throughput_pps`: a policy that sheds 90%
    /// of traffic shows up here as drift, not as a throughput win.
    pub dropped_arrivals: u64,
    /// Per-tenant-class accounting (one row per distinct SLO, ascending).
    pub tenants: Vec<TenantSummary>,
    /// Fraction of patches that met their SLO.
    pub slo_attainment: f64,
    /// Mean end-to-end patch latency, seconds.
    pub mean_latency_s: f64,
    /// Median end-to-end patch latency, seconds.
    pub p50_latency_s: f64,
    /// 99th-percentile end-to-end patch latency, seconds.
    pub p99_latency_s: f64,
    /// Total Eqn. (1) cost, dollars.
    pub cost_usd: f64,
    /// Total uplink bytes.
    pub uplink_bytes: u64,
    /// Function invocations served.
    pub invocations: u64,
    /// Cold starts among them.
    pub cold_starts: u64,
    /// Mean canvas efficiency across batches (stitching policies only).
    pub mean_canvas_efficiency: f64,
    /// Mean patches per batch.
    pub mean_patches_per_batch: f64,
    /// Total function execution time, seconds.
    pub execution_total_s: f64,
    /// Total wire time spent transmitting, seconds.
    pub transmission_total_s: f64,
    /// Simulated makespan, seconds.
    pub makespan_s: f64,
    /// Patches completed per simulated second.
    pub throughput_pps: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(gen_us: u64, fin_us: u64, slo_ms: u64) -> PatchRecord {
        PatchRecord {
            patch: PatchId::new(gen_us),
            camera: CameraId::new(0),
            frame: FrameId::new(0),
            generated_at: SimTime::from_micros(gen_us),
            dispatched_at: SimTime::from_micros(gen_us + 1),
            finished_at: SimTime::from_micros(fin_us),
            slo: SimDuration::from_millis(slo_ms),
        }
    }

    fn report(patches: Vec<PatchRecord>) -> RunReport {
        RunReport {
            policy: "test".into(),
            patches,
            batches: vec![],
            link: LinkStats::default(),
            platform: PlatformStats::default(),
            frames: 1,
            frames_muted: 0,
            dropped_arrivals: 0,
            dropped_by_slo: vec![],
            ingress_peak_depth: vec![],
            ingress_admitted: vec![],
            transmission_busy: SimDuration::ZERO,
            makespan: SimDuration::from_secs(1),
            events_processed: 0,
        }
    }

    #[test]
    fn violation_rate_counts_late_patches() {
        let r = report(vec![
            record(0, 500_000, 1000),   // on time
            record(0, 1_500_000, 1000), // late
        ]);
        assert!((r.slo_violation_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn latency_statistics() {
        let r = report(vec![record(0, 100_000, 1000), record(0, 300_000, 1000)]);
        assert_eq!(r.mean_latency(), SimDuration::from_millis(200));
        assert_eq!(r.latency_quantile(1.0), SimDuration::from_millis(300));
    }

    #[test]
    fn empty_report_is_sane() {
        let r = report(vec![]);
        assert_eq!(r.slo_violation_rate(), 0.0);
        assert_eq!(r.mean_latency(), SimDuration::ZERO);
        assert_eq!(r.amortized_latency_per_patch(), SimDuration::ZERO);
        assert!(r.summary().contains("test"));
    }

    #[test]
    fn csv_exports_are_well_formed() {
        let mut r = report(vec![record(0, 500_000, 1000)]);
        r.batches = vec![BatchRecord {
            dispatched_at: SimTime::ZERO,
            inputs: 2,
            patch_count: 3,
            execution: SimDuration::from_millis(80),
            cold: false,
            cost: Dollars::new(0.0001),
            efficiencies: vec![0.5, 0.7],
        }];
        let pc = r.patches_csv();
        assert_eq!(pc.lines().count(), 2);
        assert!(pc.lines().nth(1).unwrap().ends_with("false"));
        let bc = r.batches_csv();
        assert_eq!(bc.lines().count(), 2);
        assert!(bc.contains("0.6000"), "mean efficiency column: {bc}");
    }

    #[test]
    fn summarize_digests_the_run() {
        let mut r = report(vec![
            record(0, 500_000, 1000),   // on time
            record(0, 1_500_000, 1000), // late
        ]);
        r.batches = vec![BatchRecord {
            dispatched_at: SimTime::ZERO,
            inputs: 1,
            patch_count: 2,
            execution: SimDuration::from_millis(100),
            cold: true,
            cost: Dollars::new(0.001),
            efficiencies: vec![0.5, 0.9],
        }];
        let s = r.summarize();
        assert_eq!(s.policy, "test");
        assert_eq!(s.patches, 2);
        assert_eq!(s.batches, 1);
        assert_eq!(s.violations, 1);
        assert!((s.slo_attainment - 0.5).abs() < 1e-12);
        assert!((s.mean_canvas_efficiency - 0.7).abs() < 1e-12);
        assert!((s.mean_patches_per_batch - 2.0).abs() < 1e-12);
        assert!((s.execution_total_s - 0.1).abs() < 1e-12);
        // makespan is 1 s in the fixture, so throughput = patches.
        assert!((s.throughput_pps - 2.0).abs() < 1e-12);
    }

    #[test]
    fn summarize_empty_run_is_sane() {
        let s = report(vec![]).summarize();
        assert_eq!(s.patches, 0);
        assert_eq!(s.violations, 0);
        assert_eq!(s.slo_attainment, 1.0);
        assert_eq!(s.mean_canvas_efficiency, 0.0);
    }

    #[test]
    fn batch_aggregates() {
        let mut r = report(vec![]);
        r.batches = vec![
            BatchRecord {
                dispatched_at: SimTime::ZERO,
                inputs: 2,
                patch_count: 10,
                execution: SimDuration::from_millis(100),
                cold: true,
                cost: Dollars::new(0.001),
                efficiencies: vec![0.7, 0.8],
            },
            BatchRecord {
                dispatched_at: SimTime::ZERO,
                inputs: 1,
                patch_count: 5,
                execution: SimDuration::from_millis(50),
                cold: false,
                cost: Dollars::new(0.0005),
                efficiencies: vec![0.6],
            },
        ];
        assert_eq!(r.canvas_efficiencies(), vec![0.7, 0.8, 0.6]);
        assert!((r.mean_patches_per_batch() - 7.5).abs() < 1e-12);
        assert_eq!(r.total_execution(), SimDuration::from_millis(150));
        assert_eq!(
            r.amortized_latency_per_patch(),
            SimDuration::from_millis(10)
        );
    }
}
