//! The sharded capture plane: camera generators running on worker
//! threads, feeding the coordinator's deterministic merge.
//!
//! # Determinism model
//!
//! The engine's correctness contract is *byte identity*: a run at any
//! shard count must produce the same digests, BENCH json and runtime
//! trace as the single-threaded run. That rules out sharding anything
//! that touches shared state (the uplink, admission, the DRR ingress,
//! the batching policy, the serverless platform) — their handlers must
//! observe events in one globally-defined order. What *can* leave the
//! coordinator is the per-camera generation work, which is by
//! construction camera-local:
//!
//! * drawing the next inter-arrival gap from the source's own
//!   [`tangram_sim::rng::DetRng`] (Poisson / bursty / diurnal processes
//!   never read shared state — see
//!   [`crate::online::CameraSource::link_independent`]),
//! * cloning the content-pool frame and re-stamping its ids,
//! * materialising the frame into the `(Arrival, Bytes)` work items the
//!   coordinator will feed to the uplink.
//!
//! Each shard owns a disjoint set of cameras and replays exactly the
//! per-camera call sequence the inline engine would have made —
//! `next_frame` → [`materialize_frame`] → `next_capture` — on its own
//! [`EventLoop`], so every RNG draw and every id stamp is bit-identical
//! to the 1-shard run. The coordinator keeps its own event queue of
//! `Capture` events (timed by the shards' reported next-capture
//! instants), which makes its merge order — and therefore everything
//! downstream — independent of thread scheduling: the only
//! nondeterminism left is *when* a pre-computed message arrives, never
//! *what* it contains or in which order it is consumed.
//!
//! # Flow control
//!
//! Messages flow coordinator-ward through one vendored-crossbeam MPMC
//! channel per shard; a credit channel flows the other way. A shard
//! takes one credit before producing each capture, and the coordinator
//! returns one credit per message it pulls off the channel — even when
//! the message is buffered for a different camera — so shards run up to
//! [`CREDIT_WINDOW`] captures ahead but can never be starved into a
//! deadlock: the coordinator only ever blocks on a channel whose shard
//! holds at least one credit.

use crate::online::CameraSource;
use crate::policy::{Arrival, FrameArrival};
use crate::workload::TraceFrame;
use crossbeam::channel::{unbounded, Receiver, Sender};
use std::collections::VecDeque;
use tangram_sim::driver::EventLoop;
// How many captures a shard may run ahead of the coordinator. Large
// enough to hide hand-off latency, small enough to bound speculative
// work for cameras the coordinator has already deactivated. Shared with
// the `tangram-model` schedule explorer, which proves the protocol's
// safety properties for the small-window family; `ShardSet::spawn`
// takes the window as a parameter so the CREDIT_WINDOW=1 regression can
// run the tightest configuration end to end.
use tangram_types::credit::CREDIT_WINDOW;
use tangram_types::geometry::{Rect, Size};
use tangram_types::ids::{CameraId, PatchId};
use tangram_types::patch::{Patch, PatchInfo};
use tangram_types::time::{SimDuration, SimTime};
use tangram_types::units::Bytes;

/// Which wire representation [`materialize_frame`] builds — derived
/// once from the engine's [`crate::engine::PolicyKind`].
#[derive(Debug, Clone, Copy)]
pub(crate) enum MaterializeKind {
    /// Patch-based policies ship every RoI patch separately.
    Patch {
        /// ELF re-encodes patches (different byte sizes per patch).
        elf: bool,
    },
    /// Frame-based baselines ship one oversized "patch" per frame.
    Frame {
        /// Masked-frame transfers background-suppressed bytes.
        masked: bool,
    },
}

impl MaterializeKind {
    /// The wire representation for `policy`.
    pub(crate) fn of(policy: crate::engine::PolicyKind) -> Self {
        if policy.patch_based() {
            Self::Patch {
                elf: policy == crate::engine::PolicyKind::Elf,
            }
        } else {
            Self::Frame {
                masked: policy == crate::engine::PolicyKind::MaskedFrame,
            }
        }
    }
}

/// Everything a shard needs to materialise captures exactly as the
/// inline engine would.
#[derive(Debug, Clone, Copy)]
pub(crate) struct MaterializeSpec {
    /// Wire representation (patch- vs frame-based, ELF/masked variants).
    pub kind: MaterializeKind,
    /// Engine default SLO for sources without a tenant override.
    pub default_slo: SimDuration,
    /// Engine capture period (unused by open-loop sources, passed for
    /// call-sequence fidelity).
    pub frame_interval: SimDuration,
}

/// Turns one captured frame into the `(Arrival, Bytes)` work items the
/// engine feeds to the uplink, in wire order. Shared verbatim by the
/// inline capture path and the shard threads — one source of truth for
/// id stamping, byte selection and SLO stamping.
pub(crate) fn materialize_frame(
    frame: &TraceFrame,
    camera_id: CameraId,
    slo: SimDuration,
    generated_at: SimTime,
    kind: MaterializeKind,
) -> Vec<(Arrival, Bytes)> {
    match kind {
        MaterializeKind::Patch { elf } => frame
            .patches
            .iter()
            .enumerate()
            .map(|(i, patch)| {
                let bytes = if elf {
                    frame.elf_patch_bytes[i]
                } else {
                    patch.encoded_size
                };
                let info = PatchInfo {
                    generated_at,
                    slo,
                    ..patch.info
                };
                (Arrival::Patch(Patch::new(info, bytes)), bytes)
            })
            .collect(),
        MaterializeKind::Frame { masked } => {
            let bytes = if masked {
                frame.masked_frame_bytes
            } else {
                frame.full_frame_bytes
            };
            let mpx = if masked {
                frame.masked_megapixels
            } else {
                frame.full_megapixels
            };
            // The frame travels as one oversized "patch".
            let base = frame.patches.first().map_or_else(
                || PatchInfo {
                    id: PatchId::new(
                        (u64::from(camera_id.raw()) << 40) | (1 << 39) | frame.frame.raw(),
                    ),
                    camera: camera_id,
                    frame: frame.frame,
                    rect: Rect::from_size(Size::UHD_4K),
                    generated_at,
                    slo,
                },
                |p| PatchInfo {
                    id: PatchId::new(p.info.id.raw() | (1 << 39)),
                    rect: Rect::from_size(Size::UHD_4K),
                    generated_at,
                    slo,
                    ..p.info
                },
            );
            vec![(
                Arrival::Frame(FrameArrival {
                    info: base,
                    effective_megapixels: mpx,
                }),
                bytes,
            )]
        }
    }
}

/// One pre-computed capture, produced shard-side.
#[derive(Debug)]
pub(crate) enum ShardCapture {
    /// The camera produced a frame at the scheduled capture instant.
    Frame {
        /// The frame's wire items, in uplink order.
        arrivals: Vec<(Arrival, Bytes)>,
        /// When the camera captures next (`None` once exhausted).
        next: Option<SimTime>,
    },
    /// The camera's stream ended (`next_frame` returned `None`).
    End,
}

/// A capture tagged with its engine camera index for demultiplexing.
#[derive(Debug)]
struct ShardMsg {
    cam: usize,
    capture: ShardCapture,
}

/// A camera handed to a shard: engine camera index, join instant, and
/// the source itself.
pub(crate) type ShardCamera = (usize, SimTime, Box<dyn CameraSource>);

/// The body of one shard thread: a private [`EventLoop`] over this
/// shard's cameras, replaying the inline engine's per-camera call
/// sequence and streaming the results to the coordinator.
fn shard_main(
    mut cameras: Vec<ShardCamera>,
    spec: MaterializeSpec,
    tx: &Sender<ShardMsg>,
    credits: &Receiver<()>,
) {
    let mut events: EventLoop<usize> = EventLoop::new();
    for (local, (_, join_at, _)) in cameras.iter().enumerate() {
        events.schedule(*join_at, local);
    }
    while let Some((now, local)) = events.step() {
        // One credit per produced capture; a closed credit channel means
        // the coordinator is done with us.
        if credits.recv().is_err() {
            return;
        }
        let (cam, _, source) = &mut cameras[local];
        let capture = match source.next_frame() {
            None => ShardCapture::End,
            Some(frame) => {
                let slo = source.slo().unwrap_or(spec.default_slo);
                let arrivals = materialize_frame(&frame, source.camera(), slo, now, spec.kind);
                // Link-independent sources ignore the uplink argument;
                // passing zero keeps the RNG call sequence identical to
                // the inline engine's.
                let next = source.next_capture(now, spec.frame_interval, SimTime::ZERO);
                let next = (!source.is_exhausted()).then_some(next);
                if let Some(at) = next {
                    events.schedule(at, local);
                }
                ShardCapture::Frame { arrivals, next }
            }
        };
        if tx.send(ShardMsg { cam: *cam, capture }).is_err() {
            return;
        }
    }
}

/// The coordinator's handle on the shard threads: per-shard channels,
/// credit returns, and per-camera demux buffers.
pub(crate) struct ShardSet {
    /// Engine camera index → owning shard.
    shard_of: Vec<Option<usize>>,
    rxs: Vec<Receiver<ShardMsg>>,
    credit_txs: Vec<Sender<()>>,
    /// Captures received but not yet consumed, per engine camera.
    buffers: Vec<VecDeque<ShardCapture>>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl ShardSet {
    /// Spawns one thread per camera partition and primes the credit
    /// windows. `camera_count` is the engine's full camera-table size
    /// (for the demux buffers); `window` is the per-shard credit grant
    /// (clamped to ≥ 1, [`CREDIT_WINDOW`] in production).
    pub(crate) fn spawn(
        partitions: Vec<Vec<ShardCamera>>,
        spec: MaterializeSpec,
        camera_count: usize,
        window: usize,
    ) -> Self {
        let window = window.clamp(1, CREDIT_WINDOW);
        let mut shard_of = vec![None; camera_count];
        let mut rxs = Vec::with_capacity(partitions.len());
        let mut credit_txs = Vec::with_capacity(partitions.len());
        let mut handles = Vec::with_capacity(partitions.len());
        for (shard, cameras) in partitions.into_iter().enumerate() {
            for (cam, _, _) in &cameras {
                shard_of[*cam] = Some(shard);
            }
            let (tx, rx) = unbounded::<ShardMsg>();
            let (credit_tx, credit_rx) = unbounded::<()>();
            for _ in 0..window {
                let _ = credit_tx.send(());
            }
            handles.push(std::thread::spawn(move || {
                shard_main(cameras, spec, &tx, &credit_rx);
            }));
            rxs.push(rx);
            credit_txs.push(credit_tx);
        }
        Self {
            shard_of,
            rxs,
            credit_txs,
            buffers: (0..camera_count).map(|_| VecDeque::new()).collect(),
            handles,
        }
    }

    /// The next pre-computed capture for camera `cam`, demultiplexing
    /// (and crediting) the owning shard's channel as needed.
    ///
    /// # Panics
    ///
    /// Panics if `cam` is not sharded or its shard died before
    /// delivering the capture — both are engine invariant violations,
    /// not runtime conditions.
    pub(crate) fn next_for(&mut self, cam: usize) -> ShardCapture {
        let shard = self.shard_of[cam].expect("camera is not sharded");
        loop {
            if let Some(capture) = self.buffers[cam].pop_front() {
                return capture;
            }
            let msg = self.rxs[shard]
                .recv()
                .expect("shard thread died before draining its cameras");
            // Return the credit for every message pulled off the channel
            // — including ones buffered for other cameras — so the shard
            // is never starved while the coordinator still waits on it.
            let _ = self.credit_txs[shard].send(());
            self.buffers[msg.cam].push_back(msg.capture);
        }
    }

    /// Tears the shard plane down: closes both channel directions so
    /// every shard thread unblocks and exits, then joins them.
    pub(crate) fn shutdown(self) {
        drop(self.credit_txs);
        drop(self.rxs);
        drop(self.buffers);
        for handle in self.handles {
            let _ = handle.join();
        }
    }
}

impl std::fmt::Debug for ShardSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardSet")
            .field("shards", &self.rxs.len())
            .field(
                "sharded_cameras",
                &self.shard_of.iter().filter(|s| s.is_some()).count(),
            )
            .finish()
    }
}
