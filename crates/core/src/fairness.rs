//! Weighted deficit-round-robin (DRR) fair ingress.
//!
//! The [`crate::admission::SloShedder`] protects the tightest tenant
//! class under overload by starving whole lower classes outright: past
//! the pressure threshold, *every* best-effort arrival is shed and the
//! admitted mix collapses to gold-only. Fairness decisions belong at the
//! point where work is enqueued, so this module adds the classic
//! ingress-side answer: a weighted DRR stage that sits *between*
//! admission and the batching policy.
//!
//! * Each tenant class (keyed by its SLO, tightest first) owns a bounded
//!   FIFO queue and a configured weight;
//! * a periodic dequeue tick (a [`crate::online::StreamEvent::DrrTick`]
//!   on the engine's event loop) runs one work-conserving DRR round:
//!   the `Σ weights × quantum` round budget is split across the
//!   *backlogged* classes in weight proportion (idle classes' credit is
//!   redistributed, not forfeited) and each backlogged class releases
//!   one queued item per whole credit to the scheduler, so the
//!   *service* rate splits in the weight ratio whenever more than one
//!   class is backlogged and never drops below the configured rate
//!   while any class holds work;
//! * overflow sheds at the ingress, and each class's overflow is charged
//!   to that class's own accounting (its deficit keeps accruing only for
//!   work it actually holds), so under a 2× overload the admitted
//!   traffic mix tracks the configured weights instead of collapsing to
//!   gold-only.
//!
//! The stage is completely deterministic — no RNG, no wall clock — so
//! engines that mount it keep the workspace's bit-for-bit
//! reproducibility guarantees.

use crate::policy::Arrival;
use std::collections::VecDeque;
use tangram_types::time::SimDuration;

/// One tenant class's DRR state.
#[derive(Debug)]
struct DrrClass {
    /// Class identity: the SLO its patches carry.
    slo: SimDuration,
    /// Service weight (credits earned per round per unit quantum).
    weight: f64,
    /// Accumulated service credit; one whole credit releases one item.
    deficit: f64,
    /// The class's bounded ingress queue.
    queue: VecDeque<Arrival>,
    /// Deepest the queue has been.
    peak_depth: u64,
    /// Arrivals accepted into the queue (the class's admitted traffic).
    admitted: u64,
    /// Arrivals shed on overflow — charged to this class alone.
    shed: u64,
}

/// Static configuration of a [`DrrIngress`].
#[derive(Debug, Clone, PartialEq)]
pub struct DrrConfig {
    /// `(class SLO, weight)` pairs; order is irrelevant (classes are kept
    /// ascending by SLO, tightest first). Weights must be positive.
    pub classes: Vec<(SimDuration, f64)>,
    /// Total ingress buffer, split across classes proportionally to their
    /// weights (at least one slot each). Because each class's service
    /// rate is proportional to its weight too, every class gets the same
    /// *time* depth: a full queue of any class clears in
    /// `queue_capacity × tick / (Σ weights × quantum)` seconds, so the
    /// bound doubles as a per-class ingress-delay bound.
    pub queue_capacity: usize,
    /// Credits earned per weight unit per service round. Together with
    /// [`DrrConfig::tick`] this sets the ingress service rate:
    /// `Σ weights × quantum / tick` items per second once every class is
    /// backlogged.
    pub quantum: f64,
    /// Interval between dequeue ticks on the engine's event loop.
    pub tick: SimDuration,
}

/// The weighted-DRR ingress stage: per-class bounded queues, quantum
/// refresh per service round, shed-on-overflow charged per class.
#[derive(Debug)]
pub struct DrrIngress {
    classes: Vec<DrrClass>,
    queue_capacity: usize,
    quantum: f64,
    tick: SimDuration,
}

impl DrrIngress {
    /// Builds the stage.
    ///
    /// # Panics
    ///
    /// Panics on a zero queue capacity, a non-positive quantum or a
    /// non-positive weight (a zero-weight class would starve forever and
    /// keep the dequeue tick alive indefinitely).
    #[must_use]
    pub fn new(config: &DrrConfig) -> Self {
        assert!(config.queue_capacity > 0, "DRR needs room to queue");
        assert!(config.quantum > 0.0, "DRR quantum must be positive");
        let mut ingress = Self {
            classes: Vec::new(),
            queue_capacity: config.queue_capacity,
            quantum: config.quantum,
            tick: config.tick,
        };
        for &(slo, weight) in &config.classes {
            assert!(weight > 0.0, "DRR weights must be positive");
            ingress.class_at(slo).weight = weight;
        }
        ingress
    }

    /// The configured tick interval.
    #[must_use]
    pub fn tick(&self) -> SimDuration {
        self.tick
    }

    /// Items currently queued across all classes.
    #[must_use]
    pub fn backlog(&self) -> usize {
        self.classes.iter().map(|c| c.queue.len()).sum()
    }

    /// Whether no work is queued.
    #[must_use]
    pub fn is_idle(&self) -> bool {
        self.classes.iter().all(|c| c.queue.is_empty())
    }

    /// Peak queue depth per class, keyed by SLO ascending.
    #[must_use]
    pub fn peak_depths(&self) -> Vec<(SimDuration, u64)> {
        self.classes.iter().map(|c| (c.slo, c.peak_depth)).collect()
    }

    /// Overflow sheds per class, keyed by SLO ascending.
    #[must_use]
    pub fn shed_by_class(&self) -> Vec<(SimDuration, u64)> {
        self.classes.iter().map(|c| (c.slo, c.shed)).collect()
    }

    /// Admitted arrivals per class, keyed by SLO ascending — the admitted
    /// traffic mix the weights are meant to shape.
    #[must_use]
    pub fn admitted_by_class(&self) -> Vec<(SimDuration, u64)> {
        self.classes.iter().map(|c| (c.slo, c.admitted)).collect()
    }

    /// The slot index for `slo`, created (weight 1) on first sight so
    /// classes absent from the configured table still get fair — if
    /// unweighted — treatment.
    fn class_index(&mut self, slo: SimDuration) -> usize {
        match self.classes.binary_search_by_key(&slo, |c| c.slo) {
            Ok(at) => at,
            Err(at) => {
                self.classes.insert(
                    at,
                    DrrClass {
                        slo,
                        weight: 1.0,
                        deficit: 0.0,
                        queue: VecDeque::new(),
                        peak_depth: 0,
                        admitted: 0,
                        shed: 0,
                    },
                );
                at
            }
        }
    }

    fn class_at(&mut self, slo: SimDuration) -> &mut DrrClass {
        let at = self.class_index(slo);
        &mut self.classes[at]
    }

    /// This class's slice of the shared buffer: weight-proportional
    /// (floored, at least one slot), so the slices never sum past the
    /// configured total unless the one-slot floor forces it. Classes
    /// learned after construction join the weight sum and shrink the
    /// configured classes' slices accordingly — prime the table up front
    /// when the tenant mix is known (the harness does).
    fn capacity_of(&self, at: usize) -> usize {
        let total: f64 = self.classes.iter().map(|c| c.weight).sum();
        let share = self.classes[at].weight / total;
        ((self.queue_capacity as f64 * share).floor() as usize).max(1)
    }

    /// Queues an arrival on its class, or sheds it when the class's slice
    /// of the buffer is full — the shed is charged to the overflowing
    /// class alone (its own `shed` counter; other classes' queues and
    /// deficits are untouched) and the arrival is handed back for drop
    /// accounting.
    ///
    /// # Errors
    ///
    /// Returns the arrival itself when its class queue is at capacity.
    pub fn enqueue(&mut self, arrival: Arrival) -> Result<(), Arrival> {
        let at = self.class_index(arrival.info().slo);
        let capacity = self.capacity_of(at);
        let class = &mut self.classes[at];
        if class.queue.len() >= capacity {
            class.shed += 1;
            return Err(arrival);
        }
        class.queue.push_back(arrival);
        class.admitted += 1;
        class.peak_depth = class.peak_depth.max(class.queue.len() as u64);
        Ok(())
    }

    /// Runs one work-conserving DRR service round, returning the
    /// released items (classes ascending by SLO, FIFO within a class).
    ///
    /// Each round distributes the full `Σ weights × quantum` service
    /// budget across the *backlogged* classes in weight proportion: an
    /// idle class's share is not forfeited (as in textbook DRR) but
    /// redistributed, so the configured ingress service rate is
    /// delivered whenever any class holds work — with one class idle in
    /// a 3:1 mix, the active class's throughput matches a run where the
    /// idle class never existed. Idle classes still cannot *bank*
    /// credit: their deficit resets each round, so a returning class
    /// gets its fair share going forward, never a burst from the past.
    pub fn service_round(&mut self) -> Vec<Arrival> {
        let mut released = Vec::new();
        let total_weight: f64 = self.classes.iter().map(|c| c.weight).sum();
        let backlogged_weight: f64 = self
            .classes
            .iter()
            .filter(|c| !c.queue.is_empty())
            .map(|c| c.weight)
            .sum();
        // Work-conservation boost: backlogged classes split the idle
        // classes' credit in weight proportion (1.0 when every class is
        // backlogged, so fully loaded rounds match textbook DRR).
        let boost = if backlogged_weight > 0.0 {
            total_weight / backlogged_weight
        } else {
            1.0
        };
        for class in &mut self.classes {
            if class.queue.is_empty() {
                class.deficit = 0.0;
                continue;
            }
            class.deficit += class.weight * boost * self.quantum;
            while class.deficit >= 1.0 {
                let Some(arrival) = class.queue.pop_front() else {
                    class.deficit = 0.0;
                    break;
                };
                class.deficit -= 1.0;
                released.push(arrival);
            }
        }
        released
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tangram_types::geometry::Rect;
    use tangram_types::ids::{CameraId, FrameId, PatchId};
    use tangram_types::patch::{Patch, PatchInfo};
    use tangram_types::time::SimTime;
    use tangram_types::units::Bytes;

    fn slo(ms: u64) -> SimDuration {
        SimDuration::from_millis(ms)
    }

    fn arrival(id: u64, slo_ms: u64) -> Arrival {
        Arrival::Patch(Patch::new(
            PatchInfo {
                id: PatchId::new(id),
                camera: CameraId::new(0),
                frame: FrameId::new(0),
                rect: Rect::new(0, 0, 64, 64),
                generated_at: SimTime::ZERO,
                slo: slo(slo_ms),
            },
            Bytes::new(1024),
        ))
    }

    fn ingress(weights: &[(u64, f64)], capacity: usize, quantum: f64) -> DrrIngress {
        DrrIngress::new(&DrrConfig {
            classes: weights.iter().map(|&(ms, w)| (slo(ms), w)).collect(),
            queue_capacity: capacity,
            quantum,
            tick: SimDuration::from_millis(20),
        })
    }

    #[test]
    fn backlogged_classes_are_served_in_the_weight_ratio() {
        let mut drr = ingress(&[(800, 3.0), (1500, 1.0)], 2000, 1.0);
        for i in 0..400 {
            drr.enqueue(arrival(i, 800)).unwrap();
            drr.enqueue(arrival(400 + i, 1500)).unwrap();
        }
        let mut gold = 0usize;
        let mut lax = 0usize;
        for _ in 0..100 {
            for a in drr.service_round() {
                if a.info().slo == slo(800) {
                    gold += 1;
                } else {
                    lax += 1;
                }
            }
        }
        // 100 rounds × (3 + 1) credits: exactly 300 gold, 100 lax while
        // both queues stay backlogged.
        assert_eq!(gold, 300);
        assert_eq!(lax, 100);
        assert_eq!(drr.backlog(), 800 - 400);
    }

    #[test]
    fn overflow_sheds_only_the_full_class() {
        // Total buffer 8 splits 6:2 across the 3:1 weights.
        let mut drr = ingress(&[(800, 3.0), (1500, 1.0)], 8, 1.0);
        for i in 0..5 {
            let _ = drr.enqueue(arrival(i, 1500));
        }
        // Best-effort overflowed; gold is untouched and still admits.
        assert_eq!(drr.shed_by_class(), vec![(slo(800), 0), (slo(1500), 3)]);
        drr.enqueue(arrival(10, 800)).unwrap();
        assert_eq!(drr.backlog(), 3);
        assert_eq!(drr.peak_depths(), vec![(slo(800), 1), (slo(1500), 2)]);
    }

    #[test]
    fn buffer_splits_weight_proportionally() {
        let mut drr = ingress(&[(800, 3.0), (1500, 1.0)], 32, 1.0);
        for i in 0..100 {
            let _ = drr.enqueue(arrival(i, 800));
        }
        for i in 0..100 {
            let _ = drr.enqueue(arrival(200 + i, 1500));
        }
        // 32 total slots → 24 gold, 8 best-effort: every class's full
        // queue clears in the same time (cap_i / rate_i is constant).
        assert_eq!(drr.peak_depths(), vec![(slo(800), 24), (slo(1500), 8)]);
    }

    #[test]
    fn idle_credit_is_redistributed_not_banked() {
        let mut drr = ingress(&[(800, 3.0), (1500, 1.0)], 100, 1.0);
        // Both classes idle for many rounds; no credit may accumulate.
        for _ in 0..50 {
            assert!(drr.service_round().is_empty());
        }
        for i in 0..10 {
            drr.enqueue(arrival(i, 800)).unwrap();
        }
        // Work conservation: the sole backlogged class earns the full
        // 4-credit round budget (its own 3 plus the idle class's 1) —
        // but never a burst built from the 50 idle rounds.
        assert_eq!(drr.service_round().len(), 4);
    }

    #[test]
    fn work_conservation_matches_the_no_idle_class_oracle() {
        // One active class alongside an idle one must drain exactly as
        // fast as the same class configured alone.
        let mut with_idle = ingress(&[(800, 3.0), (1500, 1.0)], 2000, 0.7);
        let mut alone = ingress(&[(800, 4.0)], 2000, 0.7);
        for i in 0..200 {
            with_idle.enqueue(arrival(i, 800)).unwrap();
            alone.enqueue(arrival(i, 800)).unwrap();
        }
        for round in 0..40 {
            assert_eq!(
                with_idle.service_round().len(),
                alone.service_round().len(),
                "round {round}: idle-class credit must be redistributed"
            );
        }
    }

    #[test]
    fn fractional_quantum_accumulates_deficit_across_rounds() {
        let mut drr = ingress(&[(800, 1.0)], 100, 0.4);
        for i in 0..4 {
            drr.enqueue(arrival(i, 800)).unwrap();
        }
        // 0.4 credit per round: releases on rounds 3, 5, 8, 10.
        let released: Vec<usize> = (0..10).map(|_| drr.service_round().len()).collect();
        assert_eq!(released.iter().sum::<usize>(), 4);
        assert_eq!(released, vec![0, 0, 1, 0, 1, 0, 0, 1, 0, 1]);
    }

    #[test]
    fn unknown_classes_are_learned_with_unit_weight() {
        let mut drr = ingress(&[(800, 3.0)], 10, 1.0);
        drr.enqueue(arrival(0, 2500)).unwrap();
        drr.enqueue(arrival(1, 800)).unwrap();
        let round = drr.service_round();
        assert_eq!(round.len(), 2);
        // Classes serve tightest-first.
        assert_eq!(round[0].info().slo, slo(800));
        assert_eq!(round[1].info().slo, slo(2500));
    }

    #[test]
    #[should_panic(expected = "weights must be positive")]
    fn zero_weights_are_rejected() {
        let _ = ingress(&[(800, 0.0)], 10, 1.0);
    }
}
