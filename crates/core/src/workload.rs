//! Per-camera workload traces.
//!
//! A trace captures what the edge produces for each frame — patches (with
//! crop byte sizes), ELF's raw-crop sizes, and full/masked frame sizes —
//! *before* any timing: the engine re-stamps generation times and SLOs at
//! replay. Building the trace once and replaying it across policies keeps
//! the comparison controlled, exactly like running every system over the
//! same PANDA clip.

use serde::{Deserialize, Serialize};
use tangram_partition::algorithm::PartitionConfig;
use tangram_partition::pipeline::{EdgePipeline, EdgePipelineConfig};
use tangram_sim::rng::DetRng;
use tangram_types::geometry::Size;
use tangram_types::ids::{CameraId, FrameId, SceneId};
use tangram_types::patch::Patch;
use tangram_types::time::SimDuration;
use tangram_types::units::Bytes;
use tangram_video::codec::CodecModel;
use tangram_video::generator::{SceneSimulation, VideoConfig};
use tangram_video::scene::SceneProfile;
use tangram_vision::detector::DetectorProxy;
use tangram_vision::extractor::{GmmExtractor, ProxyExtractor, RoiExtractor};

/// One frame's worth of edge output.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TraceFrame {
    /// Frame index.
    pub frame: FrameId,
    /// Patches with crop-encoded sizes (Tangram / Clipper / MArk).
    pub patches: Vec<Patch>,
    /// Per-patch sizes if shipped ELF-style (uncompressed crops), aligned
    /// with `patches`.
    pub elf_patch_bytes: Vec<Bytes>,
    /// One full-frame upload.
    pub full_frame_bytes: Bytes,
    /// One masked-frame upload.
    pub masked_frame_bytes: Bytes,
    /// Megapixels a full-frame request must process.
    pub full_megapixels: f64,
    /// Megapixels a masked-frame request must process (background
    /// skipped; Table I's redundancy column).
    pub masked_megapixels: f64,
    /// Number of raw RoIs the extractor found (diagnostics).
    pub roi_count: usize,
}

/// The workload of one camera.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CameraTrace {
    /// Camera identity.
    pub camera: CameraId,
    /// Scene the camera observes.
    pub scene: SceneId,
    /// Frames in capture order.
    pub frames: Vec<TraceFrame>,
}

impl CameraTrace {
    /// Total patches across the trace.
    #[must_use]
    pub fn patch_count(&self) -> usize {
        self.frames.iter().map(|f| f.patches.len()).sum()
    }
}

/// Which RoI extractor builds the trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExtractorKind {
    /// Full pixel pipeline: render rasters, run the Stauffer–Grimson GMM.
    /// Matches the paper's prototype; slower to build.
    Gmm {
        /// Raster scale relative to 4K (the prototype downsamples too).
        raster_scale_milli: u32,
    },
    /// Ground-truth-driven stochastic proxy (SSDLite-calibrated): fast,
    /// no rasters; used where pixel fidelity is not under test.
    Proxy,
}

/// Configuration for building one camera's trace.
#[derive(Debug, Clone)]
pub struct TraceConfig {
    /// Scene to simulate.
    pub scene: SceneId,
    /// Camera id stamped on the trace.
    pub camera: CameraId,
    /// Number of evaluation frames.
    pub frames: usize,
    /// Warm-up frames fed to the extractor before recording starts (the
    /// paper trains on each scene's first frames and evaluates on the
    /// rest).
    pub warmup_frames: usize,
    /// Extractor choice.
    pub extractor: ExtractorKind,
    /// Zone grid for Algorithm 1.
    pub partition: PartitionConfig,
    /// Byte-cost model.
    pub codec: CodecModel,
    /// Experiment seed.
    pub seed: u64,
}

impl TraceConfig {
    /// Fast proxy-extractor trace (no rasters).
    #[must_use]
    pub fn proxy_extractor(scene: SceneId, frames: usize, seed: u64) -> Self {
        Self {
            scene,
            camera: CameraId::new(u32::from(scene.index())),
            frames,
            warmup_frames: 0,
            extractor: ExtractorKind::Proxy,
            partition: PartitionConfig::default(),
            codec: CodecModel::default(),
            seed,
        }
    }

    /// Full GMM pipeline trace (renders rasters at 1/4 scale).
    #[must_use]
    pub fn gmm_extractor(scene: SceneId, frames: usize, seed: u64) -> Self {
        Self {
            scene,
            camera: CameraId::new(u32::from(scene.index())),
            frames,
            warmup_frames: 30,
            extractor: ExtractorKind::Gmm {
                raster_scale_milli: 250,
            },
            partition: PartitionConfig::default(),
            codec: CodecModel::default(),
            seed,
        }
    }

    /// Overrides the partition grid.
    #[must_use]
    pub fn with_partition(mut self, partition: PartitionConfig) -> Self {
        self.partition = partition;
        self
    }

    /// Builds the trace.
    #[must_use]
    pub fn build(&self) -> CameraTrace {
        let render = matches!(self.extractor, ExtractorKind::Gmm { .. });
        let raster_scale = match self.extractor {
            ExtractorKind::Gmm { raster_scale_milli } => f64::from(raster_scale_milli) / 1000.0,
            ExtractorKind::Proxy => 0.25,
        };
        let video = VideoConfig {
            render,
            raster_scale,
            ..VideoConfig::default()
        };
        let mut sim = SceneSimulation::new(self.scene, video, self.seed);
        let extractor: Box<dyn RoiExtractor> = match self.extractor {
            ExtractorKind::Gmm { .. } => Box::new(GmmExtractor::default()),
            ExtractorKind::Proxy => Box::new(ProxyExtractor::new(
                DetectorProxy::ssdlite_mobilenet_v2(),
                DetRng::new(self.seed).fork_indexed("edge-proxy", u64::from(self.camera.raw())),
            )),
        };
        self.build_with_extractor(&mut sim, extractor)
    }

    /// Builds the trace with a caller-supplied extractor (Table IV runs).
    #[must_use]
    pub fn build_with_extractor(
        &self,
        sim: &mut SceneSimulation,
        extractor: Box<dyn RoiExtractor>,
    ) -> CameraTrace {
        let profile = SceneProfile::panda(self.scene);
        let pipeline_config = EdgePipelineConfig {
            camera: self.camera,
            partition: self.partition,
            // Placeholder SLO; the engine re-stamps at replay.
            slo: SimDuration::from_secs(1),
            codec: self.codec.clone(),
        };
        let mut pipeline = EdgePipeline::new(pipeline_config, extractor);
        for _ in 0..self.warmup_frames {
            let frame = sim.next_frame();
            let _ = pipeline.process(&frame);
        }
        let frame_size: Size = profile.frame_size;
        let mut frames = Vec::with_capacity(self.frames);
        for i in 0..self.frames {
            let frame = sim.next_frame();
            let out = pipeline.process(&frame);
            let elf_patch_bytes: Vec<Bytes> = out
                .patches
                .iter()
                .map(|p| self.codec.elf_patch_bytes(p.info.rect))
                .collect();
            let regions = out.patches.len();
            frames.push(TraceFrame {
                frame: FrameId::new(i as u64),
                elf_patch_bytes,
                full_frame_bytes: self.codec.full_frame_bytes(frame_size),
                masked_frame_bytes: self.codec.masked_frame_bytes(frame_size, regions),
                full_megapixels: frame_size.megapixels(),
                masked_megapixels: frame_size.megapixels() * (1.0 - profile.redundancy),
                roi_count: out.rois.len(),
                patches: out.patches,
            });
        }
        CameraTrace {
            camera: self.camera,
            scene: self.scene,
            frames,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proxy_trace_has_patches() {
        let trace = TraceConfig::proxy_extractor(SceneId::new(2), 10, 3).build();
        assert_eq!(trace.frames.len(), 10);
        assert!(trace.patch_count() > 10, "several patches per frame");
        for f in &trace.frames {
            assert_eq!(f.patches.len(), f.elf_patch_bytes.len());
            assert!(f.full_frame_bytes.get() > 2_000_000);
            assert!(f.full_megapixels > 8.0);
            assert!(f.masked_megapixels < f.full_megapixels);
        }
    }

    #[test]
    fn elf_bytes_exceed_crop_bytes() {
        let trace = TraceConfig::proxy_extractor(SceneId::new(1), 5, 3).build();
        for f in &trace.frames {
            let crop: u64 = f.patches.iter().map(|p| p.encoded_size.get()).sum();
            let elf: u64 = f.elf_patch_bytes.iter().map(|b| b.get()).sum();
            assert!(elf > crop, "raw crops must outweigh compressed crops");
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = TraceConfig::proxy_extractor(SceneId::new(3), 6, 11).build();
        let b = TraceConfig::proxy_extractor(SceneId::new(3), 6, 11).build();
        assert_eq!(a.patch_count(), b.patch_count());
        for (fa, fb) in a.frames.iter().zip(&b.frames) {
            assert_eq!(fa.patches, fb.patches);
        }
    }

    #[test]
    fn partition_knob_changes_patches() {
        let coarse = TraceConfig::proxy_extractor(SceneId::new(2), 8, 5)
            .with_partition(PartitionConfig::new(2, 2))
            .build();
        let fine = TraceConfig::proxy_extractor(SceneId::new(2), 8, 5)
            .with_partition(PartitionConfig::new(6, 6))
            .build();
        assert!(fine.patch_count() >= coarse.patch_count());
        let coarse_bytes: u64 = coarse
            .frames
            .iter()
            .flat_map(|f| f.patches.iter().map(|p| p.encoded_size.get()))
            .sum();
        let fine_bytes: u64 = fine
            .frames
            .iter()
            .flat_map(|f| f.patches.iter().map(|p| p.encoded_size.get()))
            .sum();
        assert!(
            fine_bytes < coarse_bytes,
            "finer zones must upload fewer bytes (Table II)"
        );
    }
}
