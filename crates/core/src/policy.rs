//! The batching-policy abstraction shared by Tangram and every baseline.
//!
//! The end-to-end engine is identical for all compared systems — cameras,
//! uplink, serverless platform, cost and SLO accounting. A policy only
//! decides *what to dispatch when*, given patch/frame arrivals and clock
//! ticks. This mirrors the paper's controlled comparison: differences in
//! Fig. 12 come solely from batching decisions.

use serde::{Deserialize, Serialize};
use tangram_types::geometry::Size;
use tangram_types::patch::{Patch, PatchInfo};
use tangram_types::time::{SimDuration, SimTime};

/// A unit of work arriving at the cloud scheduler.
#[derive(Debug, Clone)]
pub enum Arrival {
    /// One patch (Tangram / ELF / Clipper / MArk pipelines).
    Patch(Patch),
    /// One whole frame (Full Frame / Masked Frame pipelines).
    Frame(FrameArrival),
}

impl Arrival {
    /// The work item's metadata (identity, capture instant, SLO) —
    /// uniform across patch and frame pipelines.
    #[must_use]
    pub fn info(&self) -> &PatchInfo {
        match self {
            Arrival::Patch(patch) => &patch.info,
            Arrival::Frame(frame) => &frame.info,
        }
    }
}

/// A full- or masked-frame work item.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct FrameArrival {
    /// Metadata of the frame treated as one big patch (the rect covers
    /// the whole frame).
    pub info: PatchInfo,
    /// Megapixels the model must effectively process for this frame
    /// (masked frames skip the masked background — Table I's redundancy
    /// column).
    pub effective_megapixels: f64,
}

/// A batch the policy wants executed.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BatchSpec {
    /// Patches whose results this invocation produces (SLO accounting).
    pub patches: Vec<PatchInfo>,
    /// Number of model inputs (canvases / padded patches / frames) —
    /// checked against the GPU-memory bound.
    pub inputs: usize,
    /// Total megapixels to execute.
    pub megapixels: f64,
    /// Canvas efficiencies, when the policy stitches (Tangram only).
    pub canvas_efficiencies: Vec<f64>,
}

impl BatchSpec {
    /// Number of patches bundled in the batch.
    #[must_use]
    pub fn patch_count(&self) -> usize {
        self.patches.len()
    }

    /// The earliest deadline across the batch.
    #[must_use]
    pub fn earliest_deadline(&self) -> Option<SimTime> {
        self.patches.iter().map(PatchInfo::deadline).min()
    }
}

/// What a policy returns from an event handler.
#[derive(Debug, Default)]
pub struct PolicyOutput {
    /// Batches to dispatch now, in order.
    pub dispatches: Vec<BatchSpec>,
    /// When the policy wants `on_tick` called next (engine may coalesce).
    pub next_wake: Option<SimTime>,
    /// Work items the policy actually enqueued for this arrival, in the
    /// same unit `BatchSpec::patches` drains in (post-normalize: an
    /// oversized patch tiled 4-ways accepts 4). Only meaningful from
    /// `on_arrival`; silent drops (e.g. a frame handed to a patch-only
    /// policy) report 0 so the engine's queue-depth signal stays exact.
    pub accepted: usize,
}

impl PolicyOutput {
    /// Nothing to do.
    #[must_use]
    pub fn idle() -> Self {
        Self::default()
    }

    /// Dispatch one batch immediately.
    #[must_use]
    pub fn dispatch(batch: BatchSpec) -> Self {
        Self {
            dispatches: vec![batch],
            ..Self::default()
        }
    }

    /// Just a wake-up request.
    #[must_use]
    pub fn wake_at(at: SimTime) -> Self {
        Self {
            next_wake: Some(at),
            ..Self::default()
        }
    }

    /// Stamps how many work items this arrival enqueued (builder style).
    #[must_use]
    pub fn accepted(mut self, items: usize) -> Self {
        self.accepted = items;
        self
    }
}

/// Feedback after a batch finishes (Clipper's AIMD uses it).
#[derive(Debug, Clone, Copy)]
pub struct CompletionFeedback {
    /// When the batch finished executing.
    pub finished: SimTime,
    /// Pure execution time.
    pub execution: SimDuration,
    /// How many of the batch's patches missed their SLO.
    pub violations: usize,
    /// Batch size (inputs).
    pub inputs: usize,
}

/// A batching policy under evaluation.
pub trait BatchingPolicy {
    /// Display name (report tables).
    fn name(&self) -> &'static str;

    /// Fresh ingress load signals, observed just before the arrivals they
    /// accompany. The default ignores them; admission-aware policies
    /// (e.g. [`crate::scheduler::TangramScheduler`] with
    /// [`crate::scheduler::SchedulerConfig::admission_aware`] set) fold
    /// the backend's predicted drain into their invoke-now-vs-wait
    /// decision.
    fn on_signals(&mut self, _now: SimTime, _signals: &crate::admission::AdmissionSignals) {}

    /// A work item arrived at the scheduler.
    fn on_arrival(&mut self, now: SimTime, arrival: Arrival) -> PolicyOutput;

    /// A requested wake-up fired (possibly stale — policies must re-check
    /// their own state).
    fn on_tick(&mut self, now: SimTime) -> PolicyOutput;

    /// A previously dispatched batch completed.
    fn on_completion(&mut self, _now: SimTime, _feedback: CompletionFeedback) -> PolicyOutput {
        PolicyOutput::idle()
    }

    /// The run is ending: dispatch whatever is still queued.
    fn flush(&mut self, now: SimTime) -> PolicyOutput;
}

/// Helper: megapixels of `n` model inputs padded to `canvas`.
#[must_use]
pub fn padded_inputs_megapixels(n: usize, canvas: Size) -> f64 {
    n as f64 * canvas.megapixels()
}

pub mod baselines;

#[cfg(test)]
mod tests {
    use super::*;
    use tangram_types::geometry::Rect;
    use tangram_types::ids::{CameraId, FrameId, PatchId};

    fn patch_info(id: u64, deadline_us: u64) -> PatchInfo {
        PatchInfo::new(
            PatchId::new(id),
            CameraId::new(0),
            FrameId::new(0),
            Rect::new(0, 0, 100, 100),
            SimTime::from_micros(deadline_us.saturating_sub(1_000_000)),
            SimDuration::from_secs(1),
        )
    }

    #[test]
    fn batch_spec_earliest_deadline() {
        let spec = BatchSpec {
            patches: vec![patch_info(1, 5_000_000), patch_info(2, 3_000_000)],
            inputs: 1,
            megapixels: 1.0,
            canvas_efficiencies: vec![],
        };
        assert_eq!(
            spec.earliest_deadline(),
            Some(SimTime::from_micros(3_000_000))
        );
        assert_eq!(spec.patch_count(), 2);
    }

    #[test]
    fn policy_output_constructors() {
        assert!(PolicyOutput::idle().dispatches.is_empty());
        let wake = PolicyOutput::wake_at(SimTime::from_micros(5));
        assert_eq!(wake.next_wake, Some(SimTime::from_micros(5)));
        let spec = BatchSpec {
            patches: vec![],
            inputs: 0,
            megapixels: 0.0,
            canvas_efficiencies: vec![],
        };
        assert_eq!(PolicyOutput::dispatch(spec).dispatches.len(), 1);
        assert_eq!(PolicyOutput::idle().accepted, 0);
        assert_eq!(PolicyOutput::idle().accepted(3).accepted, 3);
        assert_eq!(
            PolicyOutput::wake_at(SimTime::from_micros(5))
                .accepted(1)
                .accepted,
            1
        );
    }

    #[test]
    fn padded_inputs_scale() {
        let mpx = padded_inputs_megapixels(3, Size::CANVAS_1024);
        assert!((mpx - 3.0 * 1.048_576).abs() < 1e-9);
    }
}
