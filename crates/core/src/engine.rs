//! The end-to-end engine configuration and batch entry point.
//!
//! Composition: cameras replay their traces (closed-loop paced by the
//! shared uplink, like the paper's "bandwidth simulates the arrival speed
//! of patches"), the edge adds its processing delay, messages serialise
//! over the FIFO link, the policy batches arrivals, the serverless
//! platform executes, and every patch's end-to-end latency is checked
//! against its SLO.
//!
//! Since the streaming refactor the loop itself lives in
//! [`crate::online::OnlineEngine`]; [`EngineConfig::run`] is a thin
//! wrapper that mounts one [`crate::online::TraceReplaySource`] per trace
//! on that event loop, so batch replay and live streaming share one code
//! path (and the replay output is byte-identical to the pre-refactor
//! engine).
//!
//! The engine is identical for every policy — Fig. 12's differences come
//! exclusively from batching decisions.

use crate::online::{OnlineEngine, TraceReplaySource};
use crate::policy::baselines::{ClipperPolicy, ElfPolicy, FramePerRequestPolicy, MarkPolicy};
use crate::policy::BatchingPolicy;
use crate::report::RunReport;
use crate::scheduler::{SchedulerConfig, TangramScheduler};
use crate::workload::CameraTrace;
use tangram_infer::estimator::LatencyEstimator;
use tangram_infer::latency::InferenceLatencyModel;
use tangram_serverless::function::FunctionSpec;
use tangram_serverless::pricing::ResourcePrices;
use tangram_types::geometry::Size;
use tangram_types::time::{SimDuration, SimTime};

/// Which policy the engine runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PolicyKind {
    /// The paper's scheduler.
    Tangram,
    /// Clipper-style AIMD batching.
    Clipper,
    /// One request per patch.
    Elf,
    /// MArk-style batch + timeout.
    Mark,
    /// One request per full frame.
    FullFrame,
    /// One request per masked frame.
    MaskedFrame,
}

impl PolicyKind {
    /// Display name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            PolicyKind::Tangram => "Tangram",
            PolicyKind::Clipper => "Clipper",
            PolicyKind::Elf => "ELF",
            PolicyKind::Mark => "MArk",
            PolicyKind::FullFrame => "FullFrame",
            PolicyKind::MaskedFrame => "MaskedFrame",
        }
    }

    /// Whether the policy consumes patches (vs whole frames).
    #[must_use]
    pub fn patch_based(&self) -> bool {
        !matches!(self, PolicyKind::FullFrame | PolicyKind::MaskedFrame)
    }
}

/// Full configuration of one end-to-end run.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Policy under test.
    pub policy: PolicyKind,
    /// SLO stamped on every patch/frame.
    pub slo: SimDuration,
    /// Uplink bandwidth in Mbps (the paper sweeps 20/40/80).
    pub bandwidth_mbps: f64,
    /// Upper bound on the camera frame rate; the effective rate is
    /// closed-loop: a camera captures its next frame only once the link
    /// has drained its previous one.
    pub max_fps: f64,
    /// Edge compute (partitioning + encoding) before upload.
    pub edge_delay: SimDuration,
    /// Inference latency profile.
    pub latency_model: InferenceLatencyModel,
    /// Serverless function resources.
    pub function_spec: FunctionSpec,
    /// Billing prices.
    pub prices: ResourcePrices,
    /// Canvas size for stitching/padding policies.
    pub canvas_size: Size,
    /// MArk's timeout (`None` → half the SLO, a sensible per-bandwidth
    /// default in the paper's spirit).
    pub mark_timeout: Option<SimDuration>,
    /// Estimator σ multiplier (the paper's k = 3; the slack ablation
    /// sweeps it).
    pub sigma_multiplier: f64,
    /// Physical instance cap of the backend (the paper's testbed runs two
    /// RTX 4090s; `None` = unlimited scale-out).
    pub max_instances: Option<usize>,
    /// Admission-aware Tangram scheduling: the scheduler reads the
    /// ingress load signals and will not dispatch before the backend's
    /// predicted earliest start (see
    /// [`crate::scheduler::SchedulerConfig::admission_aware`]). Off by
    /// default — legacy runs stay byte-identical.
    pub scheduler_admission_aware: bool,
    /// Experiment seed.
    pub seed: u64,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            policy: PolicyKind::Tangram,
            slo: SimDuration::from_secs(1),
            bandwidth_mbps: 40.0,
            max_fps: 10.0,
            edge_delay: SimDuration::from_millis(15),
            latency_model: InferenceLatencyModel::rtx4090_yolov8x(),
            function_spec: FunctionSpec::paper_default(),
            prices: ResourcePrices::alibaba_fc(),
            canvas_size: Size::CANVAS_1024,
            mark_timeout: None,
            sigma_multiplier: 3.0,
            max_instances: Some(4),
            scheduler_admission_aware: false,
            seed: 1,
        }
    }
}

impl EngineConfig {
    /// Builds the policy instance for this configuration.
    pub(crate) fn build_policy(&self) -> Box<dyn BatchingPolicy> {
        let max_batch = self.function_spec.max_canvases().max(1);
        match self.policy {
            PolicyKind::Tangram => {
                let estimator = LatencyEstimator::profile(
                    &self.latency_model,
                    self.canvas_size,
                    max_batch,
                    1000,
                    self.sigma_multiplier,
                    self.seed ^ 0x51ac,
                );
                Box::new(TangramScheduler::new(
                    SchedulerConfig {
                        canvas_size: self.canvas_size,
                        max_canvases: max_batch,
                        admission_aware: self.scheduler_admission_aware,
                    },
                    estimator,
                ))
            }
            PolicyKind::Clipper => Box::new(ClipperPolicy::new(max_batch)),
            PolicyKind::Elf => Box::new(ElfPolicy::default()),
            PolicyKind::Mark => Box::new(MarkPolicy::new(
                max_batch,
                self.mark_timeout.unwrap_or(self.slo / 2),
            )),
            PolicyKind::FullFrame => Box::new(FramePerRequestPolicy::full_frame()),
            PolicyKind::MaskedFrame => Box::new(FramePerRequestPolicy::masked_frame()),
        }
    }

    /// Runs the engine over the given camera traces.
    ///
    /// Trace replay is one event source of the streaming runtime: every
    /// trace is mounted as a [`TraceReplaySource`] on an [`OnlineEngine`]
    /// and the shared event loop does the rest.
    ///
    /// # Panics
    ///
    /// Panics if `traces` is empty.
    #[must_use]
    pub fn run(&self, traces: &[CameraTrace]) -> RunReport {
        assert!(!traces.is_empty(), "need at least one camera trace");
        let mut engine = OnlineEngine::new(self);
        // Stagger camera starts slightly so multi-camera runs do not
        // synchronise artificially.
        for (cam, trace) in traces.iter().enumerate() {
            engine.add_camera_at(
                SimTime::from_micros(cam as u64 * 1_000),
                Box::new(TraceReplaySource::new(trace.clone())),
            );
        }
        engine.run()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::TraceConfig;
    use tangram_types::ids::SceneId;

    fn trace(frames: usize) -> CameraTrace {
        TraceConfig::proxy_extractor(SceneId::new(1), frames, 7).build()
    }

    fn config(policy: PolicyKind) -> EngineConfig {
        EngineConfig {
            policy,
            slo: SimDuration::from_secs(1),
            bandwidth_mbps: 40.0,
            seed: 7,
            ..EngineConfig::default()
        }
    }

    #[test]
    fn tangram_run_completes_all_patches() {
        let t = trace(15);
        let expected = t.patch_count();
        let report = config(PolicyKind::Tangram).run(&[t]);
        // Oversized patches may split into tiles, so >= expected.
        assert!(report.patches_completed() >= expected);
        assert_eq!(report.frames, 15);
        assert!(report.total_cost().get() > 0.0);
        assert!(!report.batches.is_empty());
    }

    #[test]
    fn tangram_batches_multiple_patches() {
        let report = config(PolicyKind::Tangram).run(&[trace(20)]);
        assert!(
            report.mean_patches_per_batch() > 2.0,
            "stitching should bundle patches: {}",
            report.mean_patches_per_batch()
        );
        assert!(!report.canvas_efficiencies().is_empty());
    }

    #[test]
    fn elf_never_batches() {
        let report = config(PolicyKind::Elf).run(&[trace(10)]);
        assert!(
            report.batches.iter().all(|b| b.patch_count == 1),
            "ELF is one request per patch"
        );
    }

    #[test]
    fn tangram_cheaper_than_elf() {
        let t = trace(25);
        let tangram = config(PolicyKind::Tangram).run(std::slice::from_ref(&t));
        let elf = config(PolicyKind::Elf).run(&[t]);
        assert!(
            tangram.total_cost() < elf.total_cost(),
            "tangram {} vs elf {}",
            tangram.total_cost(),
            elf.total_cost()
        );
    }

    #[test]
    fn tangram_violations_low_at_generous_slo() {
        let mut cfg = config(PolicyKind::Tangram);
        cfg.slo = SimDuration::from_secs_f64(1.5);
        let report = cfg.run(&[trace(25)]);
        assert!(
            report.slo_violation_rate() < 0.05,
            "violations {:.3}",
            report.slo_violation_rate()
        );
    }

    #[test]
    fn full_frame_uses_more_bandwidth_than_tangram() {
        let t = trace(10);
        let tangram = config(PolicyKind::Tangram).run(std::slice::from_ref(&t));
        let full = config(PolicyKind::FullFrame).run(&[t]);
        assert!(tangram.total_bytes() < full.total_bytes());
        assert_eq!(full.frames, 10);
        assert!(full.batches.iter().all(|b| b.inputs == 1));
    }

    #[test]
    fn clipper_and_mark_batch_but_pad() {
        let t = trace(20);
        let clipper = config(PolicyKind::Clipper).run(std::slice::from_ref(&t));
        let mark = config(PolicyKind::Mark).run(&[t]);
        assert!(clipper.mean_patches_per_batch() >= 1.0);
        assert!(mark.mean_patches_per_batch() >= 1.0);
        // Padded inputs: every input is a full canvas, so Mpx per input is
        // the canvas area.
        for b in clipper.batches.iter().chain(&mark.batches) {
            assert_eq!(b.patch_count, b.inputs);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let t = trace(12);
        let a = config(PolicyKind::Tangram).run(std::slice::from_ref(&t));
        let b = config(PolicyKind::Tangram).run(&[t]);
        assert_eq!(a.total_cost().get(), b.total_cost().get());
        assert_eq!(a.patches_completed(), b.patches_completed());
        assert_eq!(a.makespan, b.makespan);
    }

    #[test]
    fn multi_camera_runs() {
        let t1 = TraceConfig::proxy_extractor(SceneId::new(1), 8, 1).build();
        let t2 = TraceConfig::proxy_extractor(SceneId::new(2), 8, 2).build();
        let report = config(PolicyKind::Tangram).run(&[t1, t2]);
        assert_eq!(report.frames, 16);
        let cams: std::collections::HashSet<u32> =
            report.patches.iter().map(|p| p.camera.raw()).collect();
        assert_eq!(cams.len(), 2, "both cameras contribute patches");
    }

    #[test]
    fn lower_bandwidth_increases_makespan() {
        let t = trace(10);
        let mut fast_cfg = config(PolicyKind::Tangram);
        fast_cfg.bandwidth_mbps = 80.0;
        let mut slow_cfg = config(PolicyKind::Tangram);
        slow_cfg.bandwidth_mbps = 20.0;
        let fast = fast_cfg.run(std::slice::from_ref(&t));
        let slow = slow_cfg.run(&[t]);
        assert!(slow.makespan >= fast.makespan);
        assert!(slow.transmission_busy > fast.transmission_busy || slow.makespan > fast.makespan);
    }
}
