//! The end-to-end discrete-event engine.
//!
//! Composition: cameras replay their traces (closed-loop paced by the
//! shared uplink, like the paper's "bandwidth simulates the arrival speed
//! of patches"), the edge adds its processing delay, messages serialise
//! over the FIFO link, the policy batches arrivals, the serverless
//! platform executes, and every patch's end-to-end latency is checked
//! against its SLO.
//!
//! The engine is identical for every policy — Fig. 12's differences come
//! exclusively from batching decisions.

use crate::policy::baselines::{ClipperPolicy, ElfPolicy, FramePerRequestPolicy, MarkPolicy};
use crate::policy::{
    Arrival, BatchSpec, BatchingPolicy, CompletionFeedback, FrameArrival, PolicyOutput,
};
use crate::report::{BatchRecord, PatchRecord, RunReport};
use crate::scheduler::{SchedulerConfig, TangramScheduler};
use crate::workload::CameraTrace;
use tangram_infer::estimator::LatencyEstimator;
use tangram_infer::latency::InferenceLatencyModel;
use tangram_net::{Link, LinkConfig};
use tangram_serverless::function::FunctionSpec;
use tangram_serverless::platform::{InvocationRequest, ServerlessPlatform};
use tangram_serverless::pricing::ResourcePrices;
use tangram_sim::event::EventQueue;
use tangram_types::geometry::Size;
use tangram_types::patch::{Patch, PatchInfo};
use tangram_types::time::{SimDuration, SimTime};

/// Which policy the engine runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PolicyKind {
    /// The paper's scheduler.
    Tangram,
    /// Clipper-style AIMD batching.
    Clipper,
    /// One request per patch.
    Elf,
    /// MArk-style batch + timeout.
    Mark,
    /// One request per full frame.
    FullFrame,
    /// One request per masked frame.
    MaskedFrame,
}

impl PolicyKind {
    /// Display name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            PolicyKind::Tangram => "Tangram",
            PolicyKind::Clipper => "Clipper",
            PolicyKind::Elf => "ELF",
            PolicyKind::Mark => "MArk",
            PolicyKind::FullFrame => "FullFrame",
            PolicyKind::MaskedFrame => "MaskedFrame",
        }
    }

    /// Whether the policy consumes patches (vs whole frames).
    #[must_use]
    pub fn patch_based(&self) -> bool {
        !matches!(self, PolicyKind::FullFrame | PolicyKind::MaskedFrame)
    }
}

/// Full configuration of one end-to-end run.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Policy under test.
    pub policy: PolicyKind,
    /// SLO stamped on every patch/frame.
    pub slo: SimDuration,
    /// Uplink bandwidth in Mbps (the paper sweeps 20/40/80).
    pub bandwidth_mbps: f64,
    /// Upper bound on the camera frame rate; the effective rate is
    /// closed-loop: a camera captures its next frame only once the link
    /// has drained its previous one.
    pub max_fps: f64,
    /// Edge compute (partitioning + encoding) before upload.
    pub edge_delay: SimDuration,
    /// Inference latency profile.
    pub latency_model: InferenceLatencyModel,
    /// Serverless function resources.
    pub function_spec: FunctionSpec,
    /// Billing prices.
    pub prices: ResourcePrices,
    /// Canvas size for stitching/padding policies.
    pub canvas_size: Size,
    /// MArk's timeout (`None` → half the SLO, a sensible per-bandwidth
    /// default in the paper's spirit).
    pub mark_timeout: Option<SimDuration>,
    /// Estimator σ multiplier (the paper's k = 3; the slack ablation
    /// sweeps it).
    pub sigma_multiplier: f64,
    /// Physical instance cap of the backend (the paper's testbed runs two
    /// RTX 4090s; `None` = unlimited scale-out).
    pub max_instances: Option<usize>,
    /// Experiment seed.
    pub seed: u64,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            policy: PolicyKind::Tangram,
            slo: SimDuration::from_secs(1),
            bandwidth_mbps: 40.0,
            max_fps: 10.0,
            edge_delay: SimDuration::from_millis(15),
            latency_model: InferenceLatencyModel::rtx4090_yolov8x(),
            function_spec: FunctionSpec::paper_default(),
            prices: ResourcePrices::alibaba_fc(),
            canvas_size: Size::CANVAS_1024,
            mark_timeout: None,
            sigma_multiplier: 3.0,
            max_instances: Some(4),
            seed: 1,
        }
    }
}

enum Event {
    /// Camera `cam` captures its next trace frame.
    Capture { cam: usize },
    /// A message reached the cloud.
    Deliver { arrival: Arrival },
    /// A policy wake-up.
    Wake,
    /// A batch finished executing (policy feedback).
    Complete { feedback: CompletionFeedback },
}

impl EngineConfig {
    /// Builds the policy instance for this configuration.
    fn build_policy(&self) -> Box<dyn BatchingPolicy> {
        let max_batch = self.function_spec.max_canvases().max(1);
        match self.policy {
            PolicyKind::Tangram => {
                let estimator = LatencyEstimator::profile(
                    &self.latency_model,
                    self.canvas_size,
                    max_batch,
                    1000,
                    self.sigma_multiplier,
                    self.seed ^ 0x51ac,
                );
                Box::new(TangramScheduler::new(
                    SchedulerConfig {
                        canvas_size: self.canvas_size,
                        max_canvases: max_batch,
                    },
                    estimator,
                ))
            }
            PolicyKind::Clipper => Box::new(ClipperPolicy::new(max_batch)),
            PolicyKind::Elf => Box::new(ElfPolicy::default()),
            PolicyKind::Mark => Box::new(MarkPolicy::new(
                max_batch,
                self.mark_timeout.unwrap_or(self.slo / 2),
            )),
            PolicyKind::FullFrame => Box::new(FramePerRequestPolicy::full_frame()),
            PolicyKind::MaskedFrame => Box::new(FramePerRequestPolicy::masked_frame()),
        }
    }

    /// Runs the engine over the given camera traces.
    ///
    /// # Panics
    ///
    /// Panics if `traces` is empty.
    #[must_use]
    pub fn run(&self, traces: &[CameraTrace]) -> RunReport {
        assert!(!traces.is_empty(), "need at least one camera trace");
        let mut policy = self.build_policy();
        let mut platform = ServerlessPlatform::new(
            self.function_spec.clone(),
            self.latency_model.clone(),
            self.seed,
        )
        .with_prices(self.prices);
        platform.max_instances = self.max_instances;
        let mut link = Link::new(LinkConfig::mbps(self.bandwidth_mbps));
        let mut events: EventQueue<Event> = EventQueue::new();
        let frame_interval = SimDuration::from_secs_f64(1.0 / self.max_fps);

        let mut cursors = vec![0usize; traces.len()];
        let mut patch_records: Vec<PatchRecord> = Vec::new();
        let mut batch_records: Vec<BatchRecord> = Vec::new();
        let mut transmission_busy = SimDuration::ZERO;
        let mut frames_injected = 0u64;
        let mut last_event_time = SimTime::ZERO;

        // Stagger camera starts slightly so multi-camera runs do not
        // synchronise artificially.
        for cam in 0..traces.len() {
            events.push(
                SimTime::from_micros(cam as u64 * 1_000),
                Event::Capture { cam },
            );
        }

        let dispatch = |now: SimTime,
                        spec: BatchSpec,
                        platform: &mut ServerlessPlatform,
                        patch_records: &mut Vec<PatchRecord>,
                        batch_records: &mut Vec<BatchRecord>,
                        events: &mut EventQueue<Event>| {
            if spec.patches.is_empty() {
                return;
            }
            let max = platform.spec().max_canvases().max(1);
            let request = InvocationRequest {
                canvases: spec.inputs.min(max),
                megapixels: spec.megapixels,
                submitted: now,
            };
            let outcome = platform
                .invoke(request)
                .expect("batch sized within the GPU bound");
            let mut violations = 0usize;
            for p in &spec.patches {
                let record = PatchRecord {
                    patch: p.id,
                    camera: p.camera,
                    frame: p.frame,
                    generated_at: p.generated_at,
                    dispatched_at: now,
                    finished_at: outcome.finished,
                    slo: p.slo,
                };
                if record.violated() {
                    violations += 1;
                }
                patch_records.push(record);
            }
            batch_records.push(BatchRecord {
                dispatched_at: now,
                inputs: spec.inputs,
                patch_count: spec.patches.len(),
                execution: outcome.execution,
                cold: outcome.cold,
                cost: outcome.cost,
                efficiencies: spec.canvas_efficiencies,
            });
            events.push(
                outcome.finished,
                Event::Complete {
                    feedback: CompletionFeedback {
                        finished: outcome.finished,
                        execution: outcome.execution,
                        violations,
                        inputs: spec.inputs,
                    },
                },
            );
        };

        let handle_output = |now: SimTime,
                             output: PolicyOutput,
                             platform: &mut ServerlessPlatform,
                             patch_records: &mut Vec<PatchRecord>,
                             batch_records: &mut Vec<BatchRecord>,
                             events: &mut EventQueue<Event>| {
            for spec in output.dispatches {
                dispatch(now, spec, platform, patch_records, batch_records, events);
            }
            if let Some(wake) = output.next_wake {
                events.push(wake.max(now), Event::Wake);
            }
        };

        while let Some((now, event)) = events.pop() {
            last_event_time = last_event_time.max(now);
            match event {
                Event::Capture { cam } => {
                    let trace = &traces[cam];
                    let Some(frame) = trace.frames.get(cursors[cam]) else {
                        continue;
                    };
                    cursors[cam] += 1;
                    frames_injected += 1;
                    let generated_at = now;
                    let ready = now + self.edge_delay;

                    if self.policy.patch_based() {
                        let elf = self.policy == PolicyKind::Elf;
                        for (i, patch) in frame.patches.iter().enumerate() {
                            let bytes = if elf {
                                frame.elf_patch_bytes[i]
                            } else {
                                patch.encoded_size
                            };
                            let info = PatchInfo {
                                generated_at,
                                slo: self.slo,
                                ..patch.info
                            };
                            let delivered = link.enqueue(ready, bytes);
                            transmission_busy += link.config().bandwidth.transmission_time(bytes);
                            events.push(
                                delivered,
                                Event::Deliver {
                                    arrival: Arrival::Patch(Patch::new(info, bytes)),
                                },
                            );
                        }
                    } else {
                        let masked = self.policy == PolicyKind::MaskedFrame;
                        let bytes = if masked {
                            frame.masked_frame_bytes
                        } else {
                            frame.full_frame_bytes
                        };
                        let mpx = if masked {
                            frame.masked_megapixels
                        } else {
                            frame.full_megapixels
                        };
                        // The frame travels as one oversized "patch".
                        let base = frame.patches.first().map_or_else(
                            || PatchInfo {
                                id: tangram_types::ids::PatchId::new(
                                    (u64::from(trace.camera.raw()) << 40)
                                        | (1 << 39)
                                        | frame.frame.raw(),
                                ),
                                camera: trace.camera,
                                frame: frame.frame,
                                rect: tangram_types::geometry::Rect::from_size(Size::UHD_4K),
                                generated_at,
                                slo: self.slo,
                            },
                            |p| PatchInfo {
                                id: tangram_types::ids::PatchId::new(p.info.id.raw() | (1 << 39)),
                                rect: tangram_types::geometry::Rect::from_size(Size::UHD_4K),
                                generated_at,
                                slo: self.slo,
                                ..p.info
                            },
                        );
                        let delivered = link.enqueue(ready, bytes);
                        transmission_busy += link.config().bandwidth.transmission_time(bytes);
                        events.push(
                            delivered,
                            Event::Deliver {
                                arrival: Arrival::Frame(FrameArrival {
                                    info: base,
                                    effective_megapixels: mpx,
                                }),
                            },
                        );
                    }

                    // Closed-loop pacing: next capture when both the frame
                    // interval elapsed and the wire drained this upload.
                    let next = (now + frame_interval).max(link.busy_until());
                    if cursors[cam] < trace.frames.len() {
                        events.push(next, Event::Capture { cam });
                    }
                }
                Event::Deliver { arrival } => {
                    let output = policy.on_arrival(now, arrival);
                    handle_output(
                        now,
                        output,
                        &mut platform,
                        &mut patch_records,
                        &mut batch_records,
                        &mut events,
                    );
                }
                Event::Wake => {
                    let output = policy.on_tick(now);
                    handle_output(
                        now,
                        output,
                        &mut platform,
                        &mut patch_records,
                        &mut batch_records,
                        &mut events,
                    );
                }
                Event::Complete { feedback } => {
                    let output = policy.on_completion(now, feedback);
                    handle_output(
                        now,
                        output,
                        &mut platform,
                        &mut patch_records,
                        &mut batch_records,
                        &mut events,
                    );
                }
            }
        }

        // End of stream: flush whatever is still queued.
        let output = policy.flush(last_event_time);
        for spec in output.dispatches {
            dispatch(
                last_event_time,
                spec,
                &mut platform,
                &mut patch_records,
                &mut batch_records,
                &mut events,
            );
        }
        while let Some((now, _)) = events.pop() {
            last_event_time = last_event_time.max(now);
        }

        RunReport {
            policy: self.policy.name().to_string(),
            patches: patch_records,
            batches: batch_records,
            link: link.stats(),
            platform: platform.stats(),
            frames: frames_injected,
            transmission_busy,
            makespan: last_event_time.since(SimTime::ZERO),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::TraceConfig;
    use tangram_types::ids::SceneId;

    fn trace(frames: usize) -> CameraTrace {
        TraceConfig::proxy_extractor(SceneId::new(1), frames, 7).build()
    }

    fn config(policy: PolicyKind) -> EngineConfig {
        EngineConfig {
            policy,
            slo: SimDuration::from_secs(1),
            bandwidth_mbps: 40.0,
            seed: 7,
            ..EngineConfig::default()
        }
    }

    #[test]
    fn tangram_run_completes_all_patches() {
        let t = trace(15);
        let expected = t.patch_count();
        let report = config(PolicyKind::Tangram).run(&[t]);
        // Oversized patches may split into tiles, so >= expected.
        assert!(report.patches_completed() >= expected);
        assert_eq!(report.frames, 15);
        assert!(report.total_cost().get() > 0.0);
        assert!(!report.batches.is_empty());
    }

    #[test]
    fn tangram_batches_multiple_patches() {
        let report = config(PolicyKind::Tangram).run(&[trace(20)]);
        assert!(
            report.mean_patches_per_batch() > 2.0,
            "stitching should bundle patches: {}",
            report.mean_patches_per_batch()
        );
        assert!(!report.canvas_efficiencies().is_empty());
    }

    #[test]
    fn elf_never_batches() {
        let report = config(PolicyKind::Elf).run(&[trace(10)]);
        assert!(
            report.batches.iter().all(|b| b.patch_count == 1),
            "ELF is one request per patch"
        );
    }

    #[test]
    fn tangram_cheaper_than_elf() {
        let t = trace(25);
        let tangram = config(PolicyKind::Tangram).run(std::slice::from_ref(&t));
        let elf = config(PolicyKind::Elf).run(&[t]);
        assert!(
            tangram.total_cost() < elf.total_cost(),
            "tangram {} vs elf {}",
            tangram.total_cost(),
            elf.total_cost()
        );
    }

    #[test]
    fn tangram_violations_low_at_generous_slo() {
        let mut cfg = config(PolicyKind::Tangram);
        cfg.slo = SimDuration::from_secs_f64(1.5);
        let report = cfg.run(&[trace(25)]);
        assert!(
            report.slo_violation_rate() < 0.05,
            "violations {:.3}",
            report.slo_violation_rate()
        );
    }

    #[test]
    fn full_frame_uses_more_bandwidth_than_tangram() {
        let t = trace(10);
        let tangram = config(PolicyKind::Tangram).run(std::slice::from_ref(&t));
        let full = config(PolicyKind::FullFrame).run(&[t]);
        assert!(tangram.total_bytes() < full.total_bytes());
        assert_eq!(full.frames, 10);
        assert!(full.batches.iter().all(|b| b.inputs == 1));
    }

    #[test]
    fn clipper_and_mark_batch_but_pad() {
        let t = trace(20);
        let clipper = config(PolicyKind::Clipper).run(std::slice::from_ref(&t));
        let mark = config(PolicyKind::Mark).run(&[t]);
        assert!(clipper.mean_patches_per_batch() >= 1.0);
        assert!(mark.mean_patches_per_batch() >= 1.0);
        // Padded inputs: every input is a full canvas, so Mpx per input is
        // the canvas area.
        for b in clipper.batches.iter().chain(&mark.batches) {
            assert_eq!(b.patch_count, b.inputs);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let t = trace(12);
        let a = config(PolicyKind::Tangram).run(std::slice::from_ref(&t));
        let b = config(PolicyKind::Tangram).run(&[t]);
        assert_eq!(a.total_cost().get(), b.total_cost().get());
        assert_eq!(a.patches_completed(), b.patches_completed());
        assert_eq!(a.makespan, b.makespan);
    }

    #[test]
    fn multi_camera_runs() {
        let t1 = TraceConfig::proxy_extractor(SceneId::new(1), 8, 1).build();
        let t2 = TraceConfig::proxy_extractor(SceneId::new(2), 8, 2).build();
        let report = config(PolicyKind::Tangram).run(&[t1, t2]);
        assert_eq!(report.frames, 16);
        let cams: std::collections::HashSet<u32> =
            report.patches.iter().map(|p| p.camera.raw()).collect();
        assert_eq!(cams.len(), 2, "both cameras contribute patches");
    }

    #[test]
    fn lower_bandwidth_increases_makespan() {
        let t = trace(10);
        let mut fast_cfg = config(PolicyKind::Tangram);
        fast_cfg.bandwidth_mbps = 80.0;
        let mut slow_cfg = config(PolicyKind::Tangram);
        slow_cfg.bandwidth_mbps = 20.0;
        let fast = fast_cfg.run(std::slice::from_ref(&t));
        let slow = slow_cfg.run(&[t]);
        assert!(slow.makespan >= fast.makespan);
        assert!(slow.transmission_busy > fast.transmission_busy || slow.makespan > fast.makespan);
    }
}
