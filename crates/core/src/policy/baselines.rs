//! The paper's comparison systems (§V-A).
//!
//! * **Full Frame** — every 4K frame is one immediate request;
//! * **Masked Frame** (AdaMask) — the masked frame is one immediate
//!   request whose effective compute skips the masked background;
//! * **ELF** — every patch is its own immediate request;
//! * **Clipper** — dynamic batch sizing via additive-increase /
//!   multiplicative-decrease on the SLO feedback, patches padded to
//!   uniform model inputs;
//! * **MArk** — maximum batch size plus a timeout from the first queued
//!   patch, patches padded to uniform inputs.
//!
//! Clipper and MArk batch *requests* (one patch per model input, padded to
//! the canvas resolution); only Tangram stitches multiple patches into one
//! input, which is exactly the wedge the paper's Fig. 12 isolates.

use crate::policy::{
    padded_inputs_megapixels, Arrival, BatchSpec, BatchingPolicy, CompletionFeedback, FrameArrival,
    PolicyOutput,
};
use tangram_types::geometry::Size;
use tangram_types::patch::PatchInfo;
use tangram_types::time::{SimDuration, SimTime};

/// Immediate per-frame dispatch (Full Frame and Masked Frame).
#[derive(Debug)]
pub struct FramePerRequestPolicy {
    name: &'static str,
}

impl FramePerRequestPolicy {
    /// The Full Frame baseline.
    #[must_use]
    pub fn full_frame() -> Self {
        Self { name: "FullFrame" }
    }

    /// The Masked Frame (AdaMask) baseline.
    #[must_use]
    pub fn masked_frame() -> Self {
        Self {
            name: "MaskedFrame",
        }
    }

    fn dispatch_frame(f: FrameArrival) -> BatchSpec {
        BatchSpec {
            patches: vec![f.info],
            inputs: 1,
            megapixels: f.effective_megapixels,
            canvas_efficiencies: Vec::new(),
        }
    }
}

impl BatchingPolicy for FramePerRequestPolicy {
    fn name(&self) -> &'static str {
        self.name
    }

    fn on_arrival(&mut self, _now: SimTime, arrival: Arrival) -> PolicyOutput {
        match arrival {
            Arrival::Frame(f) => PolicyOutput::dispatch(Self::dispatch_frame(f)).accepted(1),
            Arrival::Patch(p) => {
                // Frame policies receive only frames; a stray patch is
                // served as its own request.
                PolicyOutput::dispatch(BatchSpec {
                    megapixels: p.info.rect.area() as f64 / 1.0e6,
                    patches: vec![p.info],
                    inputs: 1,
                    canvas_efficiencies: Vec::new(),
                })
                .accepted(1)
            }
        }
    }

    fn on_tick(&mut self, _now: SimTime) -> PolicyOutput {
        PolicyOutput::idle()
    }

    fn flush(&mut self, _now: SimTime) -> PolicyOutput {
        PolicyOutput::idle()
    }
}

/// ELF: one request per patch, no batching.
#[derive(Debug)]
pub struct ElfPolicy {
    /// Model inputs are at least this large (tiny crops still pay a
    /// realistic minimum input resolution).
    pub min_input_megapixels: f64,
}

impl Default for ElfPolicy {
    fn default() -> Self {
        Self {
            // 320×320 letterboxed minimum input.
            min_input_megapixels: 0.1024,
        }
    }
}

impl BatchingPolicy for ElfPolicy {
    fn name(&self) -> &'static str {
        "ELF"
    }

    fn on_arrival(&mut self, _now: SimTime, arrival: Arrival) -> PolicyOutput {
        match arrival {
            Arrival::Patch(p) => {
                let mpx = (p.info.rect.area() as f64 / 1.0e6).max(self.min_input_megapixels);
                PolicyOutput::dispatch(BatchSpec {
                    patches: vec![p.info],
                    inputs: 1,
                    megapixels: mpx,
                    canvas_efficiencies: Vec::new(),
                })
                .accepted(1)
            }
            Arrival::Frame(f) => PolicyOutput::dispatch(BatchSpec {
                megapixels: f.effective_megapixels,
                patches: vec![f.info],
                inputs: 1,
                canvas_efficiencies: Vec::new(),
            })
            .accepted(1),
        }
    }

    fn on_tick(&mut self, _now: SimTime) -> PolicyOutput {
        PolicyOutput::idle()
    }

    fn flush(&mut self, _now: SimTime) -> PolicyOutput {
        PolicyOutput::idle()
    }
}

/// Clipper's adaptive batching: AIMD on the batch size, dispatch whenever
/// the queue reaches the current target, with an SLO safety valve on the
/// oldest queued patch.
#[derive(Debug)]
pub struct ClipperPolicy {
    /// Model input resolution each patch is resized/padded to.
    pub input_size: Size,
    /// Upper bound on the batch size (the platform's GPU limit).
    pub max_batch: usize,
    /// Estimated execution headroom required per input when checking the
    /// safety valve (a coarse, Clipper-style latency budget).
    pub per_input_budget: SimDuration,
    batch_size: usize,
    queue: Vec<PatchInfo>,
}

impl ClipperPolicy {
    /// Creates the policy with the paper's serving setup.
    #[must_use]
    pub fn new(max_batch: usize) -> Self {
        Self {
            input_size: Size::CANVAS_1024,
            max_batch: max_batch.max(1),
            per_input_budget: SimDuration::from_millis(60),
            batch_size: 1,
            queue: Vec::new(),
        }
    }

    /// Current AIMD batch-size target (diagnostics).
    #[must_use]
    pub fn batch_size(&self) -> usize {
        self.batch_size
    }

    fn take_batch(&mut self, n: usize) -> BatchSpec {
        let n = n.min(self.queue.len());
        let patches: Vec<PatchInfo> = self.queue.drain(..n).collect();
        BatchSpec {
            inputs: patches.len(),
            megapixels: padded_inputs_megapixels(patches.len(), self.input_size),
            patches,
            canvas_efficiencies: Vec::new(),
        }
    }

    fn safety_deadline(&self, queued: usize) -> SimDuration {
        // Conservative execution estimate for the queue as one batch.
        self.per_input_budget * queued.max(1) as u64
    }
}

impl BatchingPolicy for ClipperPolicy {
    fn name(&self) -> &'static str {
        "Clipper"
    }

    fn on_arrival(&mut self, now: SimTime, arrival: Arrival) -> PolicyOutput {
        let Arrival::Patch(p) = arrival else {
            return PolicyOutput::idle();
        };
        self.queue.push(p.info);
        let mut out = PolicyOutput::idle().accepted(1);
        if self.queue.len() >= self.batch_size {
            let n = self.batch_size;
            out.dispatches.push(self.take_batch(n));
        }
        // Safety valve: if the oldest patch would bust its SLO waiting for
        // a full batch, flush what we have.
        if let Some(oldest) = self.queue.first() {
            let needed = self.safety_deadline(self.queue.len());
            if oldest.remaining_budget(now) <= needed {
                let len = self.queue.len();
                out.dispatches.push(self.take_batch(len));
            } else {
                out.next_wake = Some(oldest.deadline() - needed);
            }
        }
        out
    }

    fn on_tick(&mut self, now: SimTime) -> PolicyOutput {
        let Some(oldest) = self.queue.first() else {
            return PolicyOutput::idle();
        };
        let needed = self.safety_deadline(self.queue.len());
        if oldest.remaining_budget(now) <= needed {
            let len = self.queue.len();
            PolicyOutput::dispatch(self.take_batch(len))
        } else {
            PolicyOutput::wake_at(oldest.deadline() - needed)
        }
    }

    fn on_completion(&mut self, _now: SimTime, feedback: CompletionFeedback) -> PolicyOutput {
        if feedback.violations > 0 {
            // Multiplicative decrease.
            self.batch_size = (self.batch_size / 2).max(1);
        } else {
            // Additive increase.
            self.batch_size = (self.batch_size + 1).min(self.max_batch);
        }
        PolicyOutput::idle()
    }

    fn flush(&mut self, _now: SimTime) -> PolicyOutput {
        if self.queue.is_empty() {
            return PolicyOutput::idle();
        }
        let len = self.queue.len();
        PolicyOutput::dispatch(self.take_batch(len))
    }
}

/// MArk's batching: a maximum batch size plus a timeout measured from the
/// first patch in the queue.
#[derive(Debug)]
pub struct MarkPolicy {
    /// Model input resolution each patch is padded to.
    pub input_size: Size,
    /// Batch size cap.
    pub max_batch: usize,
    /// Timeout from the first queued patch.
    pub timeout: SimDuration,
    queue: Vec<PatchInfo>,
    first_arrival: Option<SimTime>,
}

impl MarkPolicy {
    /// Creates the policy; the paper "sets an appropriate timeout for
    /// each bandwidth setting" — callers pick it per experiment.
    #[must_use]
    pub fn new(max_batch: usize, timeout: SimDuration) -> Self {
        Self {
            input_size: Size::CANVAS_1024,
            max_batch: max_batch.max(1),
            timeout,
            queue: Vec::new(),
            first_arrival: None,
        }
    }

    fn take_all(&mut self) -> BatchSpec {
        self.first_arrival = None;
        let patches = std::mem::take(&mut self.queue);
        BatchSpec {
            inputs: patches.len(),
            megapixels: padded_inputs_megapixels(patches.len(), self.input_size),
            patches,
            canvas_efficiencies: Vec::new(),
        }
    }
}

impl BatchingPolicy for MarkPolicy {
    fn name(&self) -> &'static str {
        "MArk"
    }

    fn on_arrival(&mut self, now: SimTime, arrival: Arrival) -> PolicyOutput {
        let Arrival::Patch(p) = arrival else {
            return PolicyOutput::idle();
        };
        if self.queue.is_empty() {
            self.first_arrival = Some(now);
        }
        self.queue.push(p.info);
        if self.queue.len() >= self.max_batch {
            return PolicyOutput::dispatch(self.take_all()).accepted(1);
        }
        let deadline = self.first_arrival.expect("queue non-empty") + self.timeout;
        if now >= deadline {
            PolicyOutput::dispatch(self.take_all()).accepted(1)
        } else {
            PolicyOutput::wake_at(deadline).accepted(1)
        }
    }

    fn on_tick(&mut self, now: SimTime) -> PolicyOutput {
        match self.first_arrival {
            Some(first) if now >= first + self.timeout && !self.queue.is_empty() => {
                PolicyOutput::dispatch(self.take_all())
            }
            Some(first) => PolicyOutput::wake_at(first + self.timeout),
            None => PolicyOutput::idle(),
        }
    }

    fn flush(&mut self, _now: SimTime) -> PolicyOutput {
        if self.queue.is_empty() {
            return PolicyOutput::idle();
        }
        PolicyOutput::dispatch(self.take_all())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tangram_types::geometry::Rect;
    use tangram_types::ids::{CameraId, FrameId, PatchId};
    use tangram_types::patch::Patch;
    use tangram_types::units::Bytes;

    fn patch(id: u64, gen_ms: u64, slo_ms: u64) -> Patch {
        Patch::new(
            PatchInfo::new(
                PatchId::new(id),
                CameraId::new(0),
                FrameId::new(0),
                Rect::new(0, 0, 400, 300),
                SimTime::from_micros(gen_ms * 1000),
                SimDuration::from_millis(slo_ms),
            ),
            Bytes::from_kib(40),
        )
    }

    fn frame(gen_ms: u64) -> FrameArrival {
        FrameArrival {
            info: PatchInfo::new(
                PatchId::new(99),
                CameraId::new(0),
                FrameId::new(1),
                Rect::new(0, 0, 3840, 2160),
                SimTime::from_micros(gen_ms * 1000),
                SimDuration::from_secs(1),
            ),
            effective_megapixels: 8.29,
        }
    }

    fn t(ms: u64) -> SimTime {
        SimTime::from_micros(ms * 1000)
    }

    #[test]
    fn full_frame_dispatches_immediately() {
        let mut p = FramePerRequestPolicy::full_frame();
        let out = p.on_arrival(t(0), Arrival::Frame(frame(0)));
        assert_eq!(out.dispatches.len(), 1);
        assert_eq!(out.dispatches[0].inputs, 1);
        assert!((out.dispatches[0].megapixels - 8.29).abs() < 1e-9);
        assert_eq!(p.name(), "FullFrame");
    }

    #[test]
    fn elf_one_request_per_patch() {
        let mut p = ElfPolicy::default();
        let a = p.on_arrival(t(0), Arrival::Patch(patch(1, 0, 1000)));
        let b = p.on_arrival(t(1), Arrival::Patch(patch(2, 1, 1000)));
        assert_eq!(a.dispatches.len() + b.dispatches.len(), 2);
        // 400×300 = 0.12 Mpx, above the letterbox minimum.
        assert!((a.dispatches[0].megapixels - 0.12).abs() < 1e-9);
    }

    #[test]
    fn elf_pads_tiny_patches() {
        let mut p = ElfPolicy::default();
        let tiny = Patch::new(
            PatchInfo::new(
                PatchId::new(1),
                CameraId::new(0),
                FrameId::new(0),
                Rect::new(0, 0, 50, 50),
                SimTime::ZERO,
                SimDuration::from_secs(1),
            ),
            Bytes::from_kib(4),
        );
        let out = p.on_arrival(t(0), Arrival::Patch(tiny));
        assert!((out.dispatches[0].megapixels - 0.1024).abs() < 1e-9);
    }

    #[test]
    fn clipper_waits_for_batch_then_dispatches() {
        let mut p = ClipperPolicy::new(8);
        // Grow the target first: a completed batch without violations.
        let _ = p.on_completion(
            t(0),
            CompletionFeedback {
                finished: t(0),
                execution: SimDuration::from_millis(50),
                violations: 0,
                inputs: 1,
            },
        );
        assert_eq!(p.batch_size(), 2);
        let out1 = p.on_arrival(t(0), Arrival::Patch(patch(1, 0, 2000)));
        assert!(out1.dispatches.is_empty(), "waiting for a second patch");
        let out2 = p.on_arrival(t(5), Arrival::Patch(patch(2, 5, 2000)));
        assert_eq!(out2.dispatches.len(), 1);
        assert_eq!(out2.dispatches[0].inputs, 2);
    }

    #[test]
    fn clipper_aimd_shrinks_on_violation() {
        let mut p = ClipperPolicy::new(8);
        for _ in 0..5 {
            let _ = p.on_completion(
                t(0),
                CompletionFeedback {
                    finished: t(0),
                    execution: SimDuration::from_millis(50),
                    violations: 0,
                    inputs: 1,
                },
            );
        }
        assert_eq!(p.batch_size(), 6);
        let _ = p.on_completion(
            t(0),
            CompletionFeedback {
                finished: t(0),
                execution: SimDuration::from_millis(500),
                violations: 2,
                inputs: 6,
            },
        );
        assert_eq!(p.batch_size(), 3, "multiplicative decrease");
    }

    #[test]
    fn clipper_safety_valve_fires_near_deadline() {
        let mut p = ClipperPolicy::new(8);
        for _ in 0..5 {
            let _ = p.on_completion(
                t(0),
                CompletionFeedback {
                    finished: t(0),
                    execution: SimDuration::from_millis(50),
                    violations: 0,
                    inputs: 1,
                },
            );
        }
        // One patch with little budget left: ticking near its deadline
        // must flush even though the batch target is 6.
        let _ = p.on_arrival(t(0), Arrival::Patch(patch(1, 0, 300)));
        let out = p.on_tick(t(250));
        assert_eq!(out.dispatches.len(), 1);
        assert_eq!(out.dispatches[0].inputs, 1);
    }

    #[test]
    fn mark_timeout_flushes() {
        let mut p = MarkPolicy::new(8, SimDuration::from_millis(200));
        let out = p.on_arrival(t(0), Arrival::Patch(patch(1, 0, 2000)));
        assert!(out.dispatches.is_empty());
        assert_eq!(out.next_wake, Some(t(200)));
        let fired = p.on_tick(t(200));
        assert_eq!(fired.dispatches.len(), 1);
        assert_eq!(fired.dispatches[0].inputs, 1);
    }

    #[test]
    fn mark_batch_size_flushes_without_timeout() {
        let mut p = MarkPolicy::new(3, SimDuration::from_secs(10));
        let _ = p.on_arrival(t(0), Arrival::Patch(patch(1, 0, 60_000)));
        let _ = p.on_arrival(t(1), Arrival::Patch(patch(2, 1, 60_000)));
        let out = p.on_arrival(t(2), Arrival::Patch(patch(3, 2, 60_000)));
        assert_eq!(out.dispatches.len(), 1);
        assert_eq!(out.dispatches[0].inputs, 3);
    }

    #[test]
    fn flush_empties_queues() {
        let mut clipper = ClipperPolicy::new(8);
        // Raise the AIMD target so an arrival stays queued.
        let _ = clipper.on_completion(
            t(0),
            CompletionFeedback {
                finished: t(0),
                execution: SimDuration::from_millis(50),
                violations: 0,
                inputs: 1,
            },
        );
        let _ = clipper.on_arrival(t(0), Arrival::Patch(patch(1, 0, 60_000)));
        assert_eq!(clipper.flush(t(1)).dispatches.len(), 1);
        assert!(clipper.flush(t(2)).dispatches.is_empty());

        let mut mark = MarkPolicy::new(8, SimDuration::from_secs(1));
        let _ = mark.on_arrival(t(0), Arrival::Patch(patch(1, 0, 60_000)));
        assert_eq!(mark.flush(t(1)).dispatches.len(), 1);
    }

    #[test]
    fn padded_inputs_cost_full_canvases() {
        let mut p = MarkPolicy::new(2, SimDuration::from_secs(1));
        let _ = p.on_arrival(t(0), Arrival::Patch(patch(1, 0, 60_000)));
        let out = p.on_arrival(t(1), Arrival::Patch(patch(2, 1, 60_000)));
        let mpx = out.dispatches[0].megapixels;
        // Two padded 1024² inputs, even though the patches are small: this
        // is the waste Tangram's stitching removes.
        assert!((mpx - 2.0 * 1.048_576).abs() < 1e-9);
    }
}
