//! Live (threaded, wall-clock) runtime exposing the paper's API.
//!
//! §IV of the paper describes the deployment interface:
//!
//! ```text
//! class Tangram(canvas_size)
//! 1. def receive_patch(patch)
//! 2. def invoke(canvases)
//! ```
//!
//! [`LiveTangram`] provides exactly that: patches stream in from any
//! thread via [`LiveTangram::receive_patch`]; a background invoker thread
//! watches the scheduler's `t_remain` and calls the user's `invoke`
//! callback with the batch at the right moment. The scheduler state
//! machine is shared with the simulation (`TangramScheduler`), so the
//! batching behaviour is identical in both worlds.

use crate::policy::BatchSpec;
use crate::scheduler::{SchedulerConfig, TangramScheduler};
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::Mutex;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use tangram_infer::estimator::LatencyEstimator;
use tangram_types::patch::PatchInfo;
use tangram_types::time::SimTime;

/// Callback invoked with each dispatched batch (the paper's
/// `invoke(canvases)`).
pub type InvokeFn = dyn FnMut(BatchSpec) + Send;

enum Command {
    Patch(PatchInfo),
    Flush,
    Shutdown,
}

struct Worker {
    scheduler: TangramScheduler,
    receiver: Receiver<Command>,
    invoke: Box<InvokeFn>,
    dispatched: Arc<Mutex<u64>>,
    epoch: Instant,
}

impl Worker {
    fn now(&self) -> SimTime {
        SimTime::from_micros(self.epoch.elapsed().as_micros() as u64)
    }

    fn fire_all(&mut self, specs: Vec<BatchSpec>) {
        for spec in specs {
            if !spec.patches.is_empty() {
                *self.dispatched.lock() += 1;
                (self.invoke)(spec);
            }
        }
    }

    fn run(mut self) {
        loop {
            // Wait for a command, but never past the armed invoke-by.
            let received = match self.scheduler.invoke_by() {
                Some(t) => {
                    let wait = Duration::from_micros(t.since(self.now()).as_micros());
                    match self.receiver.recv_timeout(wait) {
                        Ok(cmd) => Some(cmd),
                        Err(RecvTimeoutError::Timeout) => None,
                        Err(RecvTimeoutError::Disconnected) => {
                            // Producer gone: honour the pending timer, then
                            // exit.
                            let remaining = t.since(self.now());
                            if !remaining.is_zero() {
                                std::thread::sleep(Duration::from_micros(remaining.as_micros()));
                            }
                            let out = self.scheduler.drain();
                            self.fire_all(out.dispatches);
                            return;
                        }
                    }
                }
                None => match self.receiver.recv() {
                    Ok(cmd) => Some(cmd),
                    Err(_) => {
                        let out = self.scheduler.drain();
                        self.fire_all(out.dispatches);
                        return;
                    }
                },
            };
            let now = self.now();
            match received {
                Some(Command::Patch(p)) => {
                    let out = self.scheduler.on_patch(now, p);
                    self.fire_all(out.dispatches);
                }
                Some(Command::Flush) => {
                    let out = self.scheduler.drain();
                    self.fire_all(out.dispatches);
                }
                Some(Command::Shutdown) => {
                    let out = self.scheduler.drain();
                    self.fire_all(out.dispatches);
                    return;
                }
                None => {
                    // Timer fired.
                    let out = self.scheduler.on_timer(now);
                    self.fire_all(out.dispatches);
                }
            }
        }
    }
}

/// The live Tangram runtime.
pub struct LiveTangram {
    sender: Sender<Command>,
    worker: Option<JoinHandle<()>>,
    dispatched: Arc<Mutex<u64>>,
}

impl LiveTangram {
    /// Starts the runtime with a scheduler configuration, a profiled
    /// latency estimator, and the invoke callback.
    #[must_use]
    pub fn start(
        config: SchedulerConfig,
        estimator: LatencyEstimator,
        invoke: Box<InvokeFn>,
    ) -> Self {
        let (sender, receiver) = unbounded();
        let dispatched = Arc::new(Mutex::new(0u64));
        let worker_state = Worker {
            scheduler: TangramScheduler::new(config, estimator),
            receiver,
            invoke,
            dispatched: Arc::clone(&dispatched),
            epoch: Instant::now(),
        };
        let worker = std::thread::spawn(move || worker_state.run());
        Self {
            sender,
            worker: Some(worker),
            dispatched,
        }
    }

    /// The paper's `receive_patch`: hand one patch to the scheduler.
    ///
    /// The patch's `generated_at` should be stamped by the caller (the
    /// edge) on the runtime's clock; its SLO countdown is already running.
    pub fn receive_patch(&self, patch: PatchInfo) {
        let _ = self.sender.send(Command::Patch(patch));
    }

    /// Forces everything queued to dispatch now.
    pub fn flush(&self) {
        let _ = self.sender.send(Command::Flush);
    }

    /// Number of batches dispatched so far.
    #[must_use]
    pub fn batches_dispatched(&self) -> u64 {
        *self.dispatched.lock()
    }

    /// Stops the runtime, flushing pending patches.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        if let Some(w) = self.worker.take() {
            let _ = self.sender.send(Command::Shutdown);
            let _ = w.join();
        }
    }
}

impl Drop for LiveTangram {
    fn drop(&mut self) {
        self.stop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use tangram_infer::latency::InferenceLatencyModel;
    use tangram_types::geometry::{Rect, Size};
    use tangram_types::ids::{CameraId, FrameId, PatchId};
    use tangram_types::time::SimDuration;

    fn estimator() -> LatencyEstimator {
        LatencyEstimator::paper_default(
            &InferenceLatencyModel::rtx4090_yolov8x(),
            Size::CANVAS_1024,
            9,
        )
    }

    fn patch(id: u64, generated: SimTime, slo_ms: u64) -> PatchInfo {
        PatchInfo::new(
            PatchId::new(id),
            CameraId::new(0),
            FrameId::new(0),
            Rect::new(0, 0, 400, 300),
            generated,
            SimDuration::from_millis(slo_ms),
        )
    }

    #[test]
    fn live_runtime_dispatches_on_deadline() {
        let fired = Arc::new(AtomicUsize::new(0));
        let fired_clone = Arc::clone(&fired);
        let batches: Arc<Mutex<Vec<usize>>> = Arc::new(Mutex::new(Vec::new()));
        let batches_clone = Arc::clone(&batches);
        let runtime = LiveTangram::start(
            SchedulerConfig::paper_default(),
            estimator(),
            Box::new(move |spec| {
                fired_clone.fetch_add(1, Ordering::SeqCst);
                batches_clone.lock().push(spec.patch_count());
            }),
        );
        // Two patches with ~350 ms budget: the invoker must fire on its
        // own before the deadline.
        runtime.receive_patch(patch(1, SimTime::ZERO, 350));
        runtime.receive_patch(patch(2, SimTime::ZERO, 350));
        std::thread::sleep(Duration::from_millis(500));
        assert_eq!(fired.load(Ordering::SeqCst), 1, "one batch, fired by timer");
        assert_eq!(batches.lock()[0], 2, "both patches in the batch");
        runtime.shutdown();
    }

    #[test]
    fn shutdown_flushes_pending() {
        let fired = Arc::new(AtomicUsize::new(0));
        let fired_clone = Arc::clone(&fired);
        let runtime = LiveTangram::start(
            SchedulerConfig::paper_default(),
            estimator(),
            Box::new(move |_| {
                fired_clone.fetch_add(1, Ordering::SeqCst);
            }),
        );
        // Long SLO: would not fire for seconds — shutdown must flush.
        runtime.receive_patch(patch(1, SimTime::ZERO, 60_000));
        std::thread::sleep(Duration::from_millis(50));
        runtime.shutdown();
        assert_eq!(fired.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn explicit_flush_dispatches() {
        let fired = Arc::new(AtomicUsize::new(0));
        let fired_clone = Arc::clone(&fired);
        let runtime = LiveTangram::start(
            SchedulerConfig::paper_default(),
            estimator(),
            Box::new(move |_| {
                fired_clone.fetch_add(1, Ordering::SeqCst);
            }),
        );
        runtime.receive_patch(patch(1, SimTime::ZERO, 60_000));
        runtime.flush();
        std::thread::sleep(Duration::from_millis(100));
        assert_eq!(fired.load(Ordering::SeqCst), 1);
        assert_eq!(runtime.batches_dispatched(), 1);
        runtime.shutdown();
    }

    #[test]
    fn drop_without_shutdown_is_clean() {
        let runtime = LiveTangram::start(
            SchedulerConfig::paper_default(),
            estimator(),
            Box::new(|_| {}),
        );
        runtime.receive_patch(patch(1, SimTime::ZERO, 60_000));
        drop(runtime); // must not hang or panic
    }
}
