//! First-class fault injection for the streaming engine.
//!
//! `tests/failure_injection.rs` used to hand-wire each failure mode
//! (zeroed keep-alive, inflated latency models, starved links) per test.
//! This module turns those ad-hoc setups into a declarative axis: a
//! [`FaultSpec`] names a fault kind and a time window, the engine
//! schedules the window's start edge through its
//! [`tangram_sim::driver::EventLoop`] like any other
//! [`crate::online::StreamEvent`], and the actuation happens at the
//! existing choke points of the run — the shared uplink, the dispatch →
//! submit boundary, and the capture → deliver boundary.
//!
//! Determinism is preserved by construction:
//!
//! * faults that need randomness (latency tails, camera-flap storms)
//!   draw from dedicated [`DetRng`] forks derived via
//!   [`DetRng::derive_seed`] from the engine seed — never from a stream
//!   another subsystem consumes — so injecting a fault leaves every other
//!   draw sequence untouched;
//! * all actuation happens on the coordinator (link, platform, dispatch,
//!   deliver). Shard threads replay camera generation only, so a faulted
//!   run is byte-identical at any shard count — CI asserts this for a
//!   brownout scenario in `tests/harness_determinism.rs`;
//! * camera flap is modelled as *mute windows*: the camera keeps
//!   capturing (its generator state and RNG advance identically), but
//!   frames captured inside a mute window are lost at the edge instead
//!   of entering the uplink. Deactivating the source instead would
//!   desynchronise shard speculation.
//!
//! A run with an empty fault list is bit-for-bit identical to one that
//! never saw this module.

use tangram_sim::rng::DetRng;
use tangram_types::time::{SimDuration, SimTime};

/// What a fault does while its window is active.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultKind {
    /// The shared uplink carries nothing until the window ends: every
    /// in-flight and newly enqueued transfer is pushed past the window
    /// (store-and-forward behind [`tangram_net::Link::outage_until`]).
    LinkOutage,
    /// Result delivery grows a heavy tail: each batch dispatched inside
    /// the window has its completion delayed by
    /// `execution × (factor − 1) × L` where `L` is a mean-1 lognormal
    /// draw from the fault's own RNG fork. Instance occupancy is
    /// untouched — the backend is fine, the results are slow.
    LatencyTail {
        /// Mean completion-time inflation (must exceed 1).
        factor: f64,
    },
    /// Warm capacity evaporates: idle instances are evicted at the
    /// window's start edge and again before every submit inside the
    /// window, so each batch pays a fresh cold start.
    ColdStartStorm,
    /// Cameras flap on and off: every camera alternates up/down dwell
    /// times (exponential, mean `mean_up_s` / `mean_down_s`, drawn from
    /// a per-camera RNG fork) for the duration of the window; frames
    /// captured while down are lost at the edge and counted in
    /// [`crate::report::RunReport::frames_muted`].
    CameraFlap {
        /// Mean seconds a camera stays up between drops.
        mean_up_s: f64,
        /// Mean seconds a camera stays dark per drop.
        mean_down_s: f64,
    },
    /// The backend browns out: every execution sampled inside the window
    /// is multiplied by `factor` (the latency model's draw sequence is
    /// unchanged, so ending the window restores the exact no-fault
    /// timing).
    Brownout {
        /// Execution-time multiplier (must exceed 1).
        factor: f64,
    },
}

impl FaultKind {
    /// The kind's stable name — the tag scenario files and trace events
    /// use.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            FaultKind::LinkOutage => "link_outage",
            FaultKind::LatencyTail { .. } => "latency_tail",
            FaultKind::ColdStartStorm => "cold_start_storm",
            FaultKind::CameraFlap { .. } => "camera_flap",
            FaultKind::Brownout { .. } => "brownout",
        }
    }
}

/// One fault window: a [`FaultKind`] active over
/// `[at_s, at_s + duration_s)` of simulated time.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSpec {
    /// What happens.
    pub kind: FaultKind,
    /// Window start, seconds of simulated time.
    pub at_s: f64,
    /// Window length, seconds.
    pub duration_s: f64,
}

impl FaultSpec {
    /// The window's start instant.
    #[must_use]
    pub fn start(&self) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs_f64(self.at_s)
    }

    /// The window's (exclusive) end instant.
    #[must_use]
    pub fn end(&self) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs_f64(self.at_s + self.duration_s)
    }

    /// Whether `now` falls inside the window.
    #[must_use]
    pub fn active_at(&self, now: SimTime) -> bool {
        self.start() <= now && now < self.end()
    }
}

/// The installed fault plane of one engine run: the specs plus the
/// pre-derived per-fault RNG state and per-camera mute windows.
///
/// Built once at the start of [`crate::online::OnlineEngine::run`] (so
/// it sees the final camera count) from the engine seed alone — the same
/// `(seed, faults, cameras)` triple always yields the same plane.
#[derive(Debug, Default)]
pub(crate) struct FaultPlane {
    pub(crate) faults: Vec<FaultSpec>,
    /// Per-fault RNG for latency-tail draws (`None` for kinds that do
    /// not sample).
    tail_rngs: Vec<Option<DetRng>>,
    /// Per-camera sorted `[start, end)` mute windows from every
    /// camera-flap fault.
    muted: Vec<Vec<(SimTime, SimTime)>>,
}

impl FaultPlane {
    /// Derives the plane for `faults` under `seed` over `cameras` camera
    /// slots.
    pub(crate) fn install(seed: u64, faults: Vec<FaultSpec>, cameras: usize) -> Self {
        let root = DetRng::new(seed);
        let mut tail_rngs = Vec::with_capacity(faults.len());
        let mut muted: Vec<Vec<(SimTime, SimTime)>> = vec![Vec::new(); cameras];
        for (index, fault) in faults.iter().enumerate() {
            let fault_seed = root.derive_seed("fault", index as u64);
            match fault.kind {
                FaultKind::LatencyTail { .. } => {
                    tail_rngs.push(Some(DetRng::new(fault_seed).fork("latency-tail")));
                }
                FaultKind::CameraFlap {
                    mean_up_s,
                    mean_down_s,
                } => {
                    tail_rngs.push(None);
                    let flap = DetRng::new(fault_seed);
                    for (cam, windows) in muted.iter_mut().enumerate() {
                        let mut rng = flap.fork_indexed("camera", cam as u64);
                        let mut t = fault.start();
                        let end = fault.end();
                        loop {
                            t += SimDuration::from_secs_f64(
                                rng.exponential(1.0 / mean_up_s.max(1e-9)),
                            );
                            if t >= end {
                                break;
                            }
                            let dark = SimDuration::from_secs_f64(
                                rng.exponential(1.0 / mean_down_s.max(1e-9)),
                            );
                            let dark_end = (t + dark).min(end);
                            windows.push((t, dark_end));
                            t = dark_end;
                        }
                    }
                }
                _ => tail_rngs.push(None),
            }
        }
        for windows in &mut muted {
            windows.sort_unstable();
        }
        Self {
            faults,
            tail_rngs,
            muted,
        }
    }

    /// Whether camera `cam` is dark at `now` under some flap window.
    pub(crate) fn is_muted(&self, cam: usize, now: SimTime) -> bool {
        self.muted
            .get(cam)
            .is_some_and(|ws| ws.iter().any(|&(s, e)| s <= now && now < e))
    }

    /// The combined brownout execution multiplier at `now` (1.0 when no
    /// brownout window is active).
    pub(crate) fn brownout_factor(&self, now: SimTime) -> f64 {
        self.faults
            .iter()
            .filter(|f| f.active_at(now))
            .filter_map(|f| match f.kind {
                FaultKind::Brownout { factor } => Some(factor),
                _ => None,
            })
            .product()
    }

    /// Whether a cold-start storm is active at `now`.
    pub(crate) fn cold_storm_active(&self, now: SimTime) -> bool {
        self.faults
            .iter()
            .any(|f| matches!(f.kind, FaultKind::ColdStartStorm) && f.active_at(now))
    }

    /// The extra result-delivery delay for a batch of execution time
    /// `execution` dispatched at `now`: one mean-1 lognormal draw per
    /// active latency-tail window. Draw count is a pure function of the
    /// dispatch sequence, so it is identical at any shard count.
    pub(crate) fn tail_delay(&mut self, now: SimTime, execution: SimDuration) -> SimDuration {
        let mut extra = 0.0f64;
        for (fault, rng) in self.faults.iter().zip(self.tail_rngs.iter_mut()) {
            if let (FaultKind::LatencyTail { factor }, Some(rng)) = (&fault.kind, rng) {
                if fault.active_at(now) {
                    // lognormal(−σ²/2, σ) has mean 1: the *mean* delay is
                    // execution × (factor − 1), with a fat upper tail.
                    let sigma = 1.0f64;
                    let draw = rng.lognormal(-sigma * sigma / 2.0, sigma);
                    extra += execution.as_secs_f64() * (factor - 1.0).max(0.0) * draw;
                }
            }
        }
        SimDuration::from_secs_f64(extra)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flap(at_s: f64, duration_s: f64) -> FaultSpec {
        FaultSpec {
            kind: FaultKind::CameraFlap {
                mean_up_s: 1.0,
                mean_down_s: 0.5,
            },
            at_s,
            duration_s,
        }
    }

    #[test]
    fn windows_are_half_open() {
        let f = FaultSpec {
            kind: FaultKind::LinkOutage,
            at_s: 2.0,
            duration_s: 3.0,
        };
        assert!(!f.active_at(SimTime::from_secs_f64(1.999)));
        assert!(f.active_at(SimTime::from_secs_f64(2.0)));
        assert!(f.active_at(SimTime::from_secs_f64(4.999)));
        assert!(!f.active_at(SimTime::from_secs_f64(5.0)));
    }

    #[test]
    fn kind_names_are_stable() {
        let kinds = [
            FaultKind::LinkOutage,
            FaultKind::LatencyTail { factor: 3.0 },
            FaultKind::ColdStartStorm,
            FaultKind::CameraFlap {
                mean_up_s: 1.0,
                mean_down_s: 1.0,
            },
            FaultKind::Brownout { factor: 2.0 },
        ];
        let names: Vec<&str> = kinds.iter().map(FaultKind::name).collect();
        assert_eq!(
            names,
            [
                "link_outage",
                "latency_tail",
                "cold_start_storm",
                "camera_flap",
                "brownout"
            ]
        );
    }

    #[test]
    fn flap_windows_stay_inside_the_fault_window() {
        let plane = FaultPlane::install(7, vec![flap(1.0, 4.0)], 3);
        let mut saw_any = false;
        for windows in &plane.muted {
            for &(s, e) in windows {
                saw_any = true;
                assert!(s >= SimTime::from_secs_f64(1.0));
                assert!(e <= SimTime::from_secs_f64(5.0));
                assert!(s < e);
            }
        }
        assert!(saw_any, "a 4 s window at mean_up 1 s should flap");
    }

    #[test]
    fn flap_windows_are_deterministic_and_per_camera() {
        let a = FaultPlane::install(7, vec![flap(0.0, 10.0)], 4);
        let b = FaultPlane::install(7, vec![flap(0.0, 10.0)], 4);
        assert_eq!(a.muted, b.muted, "same seed, same mute plan");
        assert_ne!(a.muted[0], a.muted[1], "cameras flap on independent forks");
    }

    #[test]
    fn brownout_factor_composes_and_defaults_to_one() {
        let plane = FaultPlane::install(
            1,
            vec![
                FaultSpec {
                    kind: FaultKind::Brownout { factor: 2.0 },
                    at_s: 1.0,
                    duration_s: 2.0,
                },
                FaultSpec {
                    kind: FaultKind::Brownout { factor: 3.0 },
                    at_s: 2.0,
                    duration_s: 2.0,
                },
            ],
            0,
        );
        assert_eq!(plane.brownout_factor(SimTime::from_secs_f64(0.5)), 1.0);
        assert_eq!(plane.brownout_factor(SimTime::from_secs_f64(1.5)), 2.0);
        assert_eq!(plane.brownout_factor(SimTime::from_secs_f64(2.5)), 6.0);
        assert_eq!(plane.brownout_factor(SimTime::from_secs_f64(4.5)), 1.0);
    }

    #[test]
    fn tail_delay_draws_only_inside_the_window() {
        let spec = FaultSpec {
            kind: FaultKind::LatencyTail { factor: 4.0 },
            at_s: 1.0,
            duration_s: 1.0,
        };
        let mut plane = FaultPlane::install(9, vec![spec], 0);
        let exec = SimDuration::from_millis(100);
        assert_eq!(
            plane.tail_delay(SimTime::ZERO, exec),
            SimDuration::ZERO,
            "outside the window no draw happens"
        );
        let inside = plane.tail_delay(SimTime::from_secs_f64(1.5), exec);
        assert!(inside > SimDuration::ZERO);
    }
}
