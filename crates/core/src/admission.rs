//! SLO-aware ingress admission control.
//!
//! Under overload, a serverless video pipeline has exactly one cheap
//! place to give ground: the ingress, *before* a patch consumes uplink
//! scheduling state, batching work and GPU time it can no longer convert
//! into an on-time result. This module makes that decision pluggable:
//!
//! * [`AdmissionPolicy`] — the trait the streaming engine consults for
//!   every work item that reaches the cloud scheduler, fed an
//!   [`AdmissionSignals`] snapshot (scheduler queue depth plus the
//!   serverless backend's [`BackendSnapshot`]: in-flight invocations,
//!   backlog, earliest feasible start);
//! * [`AlwaysAdmit`] — the open-door default (byte-identical to running
//!   with no policy at all);
//! * [`QueueDepthThreshold`] — the classic bound: shed when the
//!   scheduler already holds too many undispatched work items;
//! * [`SloShedder`] — the SLO-aware policy: estimates whether the
//!   arriving patch can still meet its tenant deadline given current
//!   queue and in-flight state, sheds *doomed* work outright, and under
//!   sustained pressure sheds lower-class tenants (laxer SLOs) first so
//!   the tightest class keeps its attainment;
//! * [`ClosureAdmission`] — adapter keeping the PR-3 closure hook
//!   (`FnMut(SimTime, &Arrival) -> Admission`) working unchanged.
//!
//! Every drop is counted per tenant class in
//! [`crate::report::RunReport::dropped_by_slo`] and surfaces in the
//! [`crate::report::RunSummary`] digest, so shedding is visible to BENCH
//! reports and the CI gate rather than masquerading as throughput.

use crate::policy::Arrival;
use tangram_serverless::platform::BackendSnapshot;
use tangram_types::time::{SimDuration, SimTime};

/// Verdict of admission control.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Hand the work item to the batching policy.
    Accept,
    /// Shed it at the ingress (counted in
    /// [`crate::report::RunReport::dropped_arrivals`] and per class in
    /// [`crate::report::RunReport::dropped_by_slo`]).
    Drop,
}

/// Legacy admission-control hook (PR 3), consulted for every work item
/// that reaches the cloud scheduler. Kept as the closure face of
/// [`AdmissionPolicy`] via [`ClosureAdmission`].
pub type AdmissionFn = dyn FnMut(SimTime, &Arrival) -> Admission;

/// The load signals an admission policy reads before deciding. A fresh
/// snapshot is taken per arrival; building it never mutates the engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdmissionSignals {
    /// Work items admitted to the batching policy but not yet dispatched
    /// (the scheduler's standing queue).
    pub queued: usize,
    /// Backend pressure: in-flight invocations, remaining backlog, and
    /// when a batch submitted now would start executing.
    pub backend: BackendSnapshot,
}

/// An ingress admission policy: decides, per arriving work item, whether
/// the batching policy ever sees it.
pub trait AdmissionPolicy {
    /// Display name (report tables, BENCH json cell labels).
    fn name(&self) -> &'static str;

    /// Decide the verdict for `arrival` at `now` given `signals`.
    fn admit(&mut self, now: SimTime, arrival: &Arrival, signals: &AdmissionSignals) -> Admission;
}

/// Admits everything — the open-door default. An engine with
/// `AlwaysAdmit` behaves byte-identically to one with no policy.
#[derive(Debug, Clone, Copy, Default)]
pub struct AlwaysAdmit;

impl AdmissionPolicy for AlwaysAdmit {
    fn name(&self) -> &'static str {
        "always"
    }

    fn admit(&mut self, _: SimTime, _: &Arrival, _: &AdmissionSignals) -> Admission {
        Admission::Accept
    }
}

/// Sheds once the scheduler's standing queue reaches a fixed depth — the
/// textbook bound: indiscriminate, SLO-blind, but a useful baseline for
/// the overload sweeps.
#[derive(Debug, Clone, Copy)]
pub struct QueueDepthThreshold {
    /// Admit while fewer than this many work items are queued.
    pub max_queued: usize,
}

impl QueueDepthThreshold {
    /// A threshold policy shedding at `max_queued` standing work items.
    #[must_use]
    pub fn new(max_queued: usize) -> Self {
        Self { max_queued }
    }
}

impl AdmissionPolicy for QueueDepthThreshold {
    fn name(&self) -> &'static str {
        "queue-depth"
    }

    fn admit(&mut self, _: SimTime, _: &Arrival, signals: &AdmissionSignals) -> Admission {
        if signals.queued >= self.max_queued {
            Admission::Drop
        } else {
            Admission::Accept
        }
    }
}

/// The SLO-aware shedder: predicts the arriving item's completion from
/// queue depth, backend parallelism and the earliest feasible start, and
/// sheds
///
/// 1. **doomed work** — items whose predicted completion already misses
///    their own deadline (serving them burns GPU time for a guaranteed
///    violation), and
/// 2. **lower classes under pressure** — once the predicted ingress
///    delay exceeds `pressure × (tightest SLO)`, items of any laxer
///    class are shed pre-emptively so the tightest ("gold") class keeps
///    its slack.
///
/// Tenant classes are the distinct SLOs observed in traffic; prime them
/// up front with [`SloShedder::with_classes`] when the mix is known (the
/// harness does, from the scenario's tenant axis) so the first arrivals
/// of a lax class are not mistaken for the tightest.
#[derive(Debug, Clone)]
pub struct SloShedder {
    /// Estimated per-item service time on one instance (queue drain is
    /// scaled by backend parallelism).
    per_item: SimDuration,
    /// Fraction of the tightest SLO the predicted ingress delay may reach
    /// before lower classes are shed.
    pressure: f64,
    /// Distinct tenant SLOs seen or primed, tightest first.
    classes: Vec<SimDuration>,
}

impl SloShedder {
    /// A shedder with the given per-item service estimate and the default
    /// pressure threshold (half the tightest SLO).
    #[must_use]
    pub fn new(per_item: SimDuration) -> Self {
        Self {
            per_item,
            pressure: 0.5,
            classes: Vec::new(),
        }
    }

    /// Overrides the pressure threshold (fraction of the tightest SLO).
    #[must_use]
    pub fn with_pressure(mut self, pressure: f64) -> Self {
        self.pressure = pressure.max(0.0);
        self
    }

    /// Primes the tenant-class table (distinct SLOs; order irrelevant).
    #[must_use]
    pub fn with_classes(mut self, slos: &[SimDuration]) -> Self {
        for &slo in slos {
            self.note_class(slo);
        }
        self
    }

    fn note_class(&mut self, slo: SimDuration) {
        if let Err(at) = self.classes.binary_search(&slo) {
            self.classes.insert(at, slo);
        }
    }

    /// Predicted completion of an item admitted at `now`: the backend's
    /// earliest feasible start, plus the standing queue, the item itself
    /// *and* the backend's residual in-flight backlog drained at
    /// `per_item / parallelism`.
    ///
    /// `earliest_start` only says when the *first* slot frees; if the
    /// pool were uniformly busy until then it would absorb
    /// `parallelism × (earliest_start − now)` of work, so any in-flight
    /// backlog beyond that horizon (a staggered or deep backlog — or one
    /// invisible to `earliest_start` entirely because a warm instance
    /// happens to be idle) still stands between the queued items and the
    /// GPU and is folded into the drain estimate.
    #[must_use]
    pub fn predicted_completion(&self, now: SimTime, signals: &AdmissionSignals) -> SimTime {
        let parallelism = signals
            .backend
            .max_instances
            .unwrap_or_else(|| signals.backend.live_instances.max(1))
            .max(1);
        let start = signals.backend.earliest_start.max(now);
        let covered = start.since(now).mul_f64(parallelism as f64);
        let residual_backlog = signals.backend.backlog.saturating_sub(covered);
        let drain = (self.per_item.mul_f64((signals.queued + 1) as f64) + residual_backlog)
            .mul_f64(1.0 / parallelism as f64);
        start + drain
    }
}

impl AdmissionPolicy for SloShedder {
    fn name(&self) -> &'static str {
        "slo-shedder"
    }

    fn admit(&mut self, now: SimTime, arrival: &Arrival, signals: &AdmissionSignals) -> Admission {
        let info = arrival.info();
        self.note_class(info.slo);
        let predicted = self.predicted_completion(now, signals);
        // Doomed: the item cannot meet its own deadline even if admitted
        // right now — any class.
        if predicted > info.deadline() {
            return Admission::Drop;
        }
        // Pressure shedding: lax classes yield before the tightest class
        // starts feeling the queue.
        let tightest = self.classes[0];
        if info.slo > tightest && predicted.since(now) > tightest.mul_f64(self.pressure) {
            return Admission::Drop;
        }
        Admission::Accept
    }
}

/// Adapts the legacy closure hook to [`AdmissionPolicy`] — signals are
/// ignored, exactly as the PR-3 hook behaved.
pub struct ClosureAdmission {
    hook: Box<AdmissionFn>,
}

impl ClosureAdmission {
    /// Wraps a closure hook.
    #[must_use]
    pub fn new(hook: Box<AdmissionFn>) -> Self {
        Self { hook }
    }
}

impl AdmissionPolicy for ClosureAdmission {
    fn name(&self) -> &'static str {
        "closure"
    }

    fn admit(&mut self, now: SimTime, arrival: &Arrival, _: &AdmissionSignals) -> Admission {
        (self.hook)(now, arrival)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tangram_types::geometry::Rect;
    use tangram_types::ids::{CameraId, FrameId, PatchId};
    use tangram_types::patch::{Patch, PatchInfo};
    use tangram_types::units::Bytes;

    fn arrival(generated_us: u64, slo_ms: u64) -> Arrival {
        Arrival::Patch(Patch::new(
            PatchInfo {
                id: PatchId::new(1),
                camera: CameraId::new(0),
                frame: FrameId::new(0),
                rect: Rect::new(0, 0, 64, 64),
                generated_at: SimTime::from_micros(generated_us),
                slo: SimDuration::from_millis(slo_ms),
            },
            Bytes::new(1024),
        ))
    }

    fn signals(
        queued: usize,
        earliest_start_us: u64,
        max_instances: Option<usize>,
    ) -> AdmissionSignals {
        AdmissionSignals {
            queued,
            backend: BackendSnapshot {
                in_flight: 0,
                live_instances: max_instances.unwrap_or(1),
                max_instances,
                earliest_start: SimTime::from_micros(earliest_start_us),
                backlog: SimDuration::ZERO,
            },
        }
    }

    #[test]
    fn always_admit_accepts_under_any_pressure() {
        let mut policy = AlwaysAdmit;
        let s = signals(10_000, 9_000_000, Some(1));
        assert_eq!(
            policy.admit(SimTime::ZERO, &arrival(0, 100), &s),
            Admission::Accept
        );
    }

    #[test]
    fn queue_threshold_sheds_at_the_bound() {
        let mut policy = QueueDepthThreshold::new(4);
        let a = arrival(0, 1000);
        assert_eq!(
            policy.admit(SimTime::ZERO, &a, &signals(3, 0, Some(4))),
            Admission::Accept
        );
        assert_eq!(
            policy.admit(SimTime::ZERO, &a, &signals(4, 0, Some(4))),
            Admission::Drop
        );
    }

    #[test]
    fn shedder_drops_doomed_work_of_any_class() {
        let mut policy = SloShedder::new(SimDuration::from_millis(50))
            .with_classes(&[SimDuration::from_millis(800)]);
        // Deadline at 800 ms, but the backend cannot start before 900 ms:
        // even the tightest (only) class is doomed and shed.
        let s = signals(0, 900_000, Some(1));
        assert_eq!(
            policy.admit(SimTime::ZERO, &arrival(0, 800), &s),
            Admission::Drop
        );
        // Same class with a free backend is admitted.
        assert_eq!(
            policy.admit(SimTime::ZERO, &arrival(0, 800), &signals(0, 0, Some(1))),
            Admission::Accept
        );
    }

    #[test]
    fn shedder_sheds_lax_class_first_under_pressure() {
        let gold = SimDuration::from_millis(800);
        let lax = SimDuration::from_millis(1500);
        let mut policy = SloShedder::new(SimDuration::from_millis(50))
            .with_pressure(0.5)
            .with_classes(&[gold, lax]);
        // 16 queued items on one instance → 850 ms predicted delay:
        // above the 400 ms pressure bound, below the lax deadline.
        let s = signals(16, 0, Some(1));
        assert_eq!(
            policy.admit(SimTime::ZERO, &arrival(0, 1500), &s),
            Admission::Drop,
            "lax class yields under pressure"
        );
        // One step shallower (800 ms predicted == gold's deadline) gold
        // still fits while the pressure bound keeps shedding lax.
        let s = signals(15, 0, Some(1));
        assert_eq!(
            policy.admit(SimTime::ZERO, &arrival(0, 800), &s),
            Admission::Accept,
            "gold is admitted while lax is shed"
        );
        assert_eq!(
            policy.admit(SimTime::ZERO, &arrival(0, 1500), &s),
            Admission::Drop
        );
    }

    #[test]
    fn shedder_scales_queue_drain_by_backend_parallelism() {
        let policy = SloShedder::new(SimDuration::from_millis(100));
        // 7 queued + the arrival itself = 8 items; 4-way backend → 200 ms.
        let s = signals(7, 0, Some(4));
        assert_eq!(
            policy.predicted_completion(SimTime::ZERO, &s),
            SimTime::from_micros(200_000)
        );
        // Same queue on one instance → 800 ms.
        let s = signals(7, 0, Some(1));
        assert_eq!(
            policy.predicted_completion(SimTime::ZERO, &s),
            SimTime::from_micros(800_000)
        );
    }

    #[test]
    fn shedder_folds_backend_backlog_into_the_drain_estimate() {
        let policy = SloShedder::new(SimDuration::from_millis(50));
        // Empty scheduler queue, an idle warm instance (earliest start =
        // now), but 8 s of in-flight work across the 4-way pool: the
        // backlog — invisible to `earliest_start` — must still appear in
        // the drain. 8 s / 4 instances + 50 ms / 4 = 2.0125 s.
        let mut s = signals(0, 0, Some(4));
        s.backend.backlog = SimDuration::from_secs(8);
        assert_eq!(
            policy.predicted_completion(SimTime::ZERO, &s),
            SimTime::from_micros(2_012_500)
        );
        // The same deep backlog dooms an 800 ms-SLO arrival outright.
        let mut shedder = SloShedder::new(SimDuration::from_millis(50))
            .with_classes(&[SimDuration::from_millis(800)]);
        assert_eq!(
            shedder.admit(SimTime::ZERO, &arrival(0, 800), &s),
            Admission::Drop,
            "a deep backlog with an empty scheduler queue must shed"
        );
        // Backlog already covered by a capped backend's earliest start is
        // not double-counted: 4 instances busy until 1 s carry 4 s of
        // work; prediction stays earliest_start + the item's own drain.
        let mut capped = signals(0, 1_000_000, Some(4));
        capped.backend.backlog = SimDuration::from_secs(4);
        assert_eq!(
            policy.predicted_completion(SimTime::ZERO, &capped),
            SimTime::from_micros(1_012_500)
        );
    }

    #[test]
    fn shedder_learns_classes_from_traffic() {
        let mut policy = SloShedder::new(SimDuration::from_millis(10));
        let relaxed = signals(0, 0, Some(4));
        // Unprimed: the lax class arrives first and is (correctly)
        // admitted while the system is idle.
        assert_eq!(
            policy.admit(SimTime::ZERO, &arrival(0, 1500), &relaxed),
            Admission::Accept
        );
        // Once gold traffic appears, the lax class yields under pressure.
        assert_eq!(
            policy.admit(SimTime::ZERO, &arrival(0, 800), &relaxed),
            Admission::Accept
        );
        let pressured = signals(200, 0, Some(1));
        assert_eq!(
            policy.admit(SimTime::ZERO, &arrival(0, 1500), &pressured),
            Admission::Drop
        );
    }

    #[test]
    fn closure_adapter_preserves_hook_behaviour() {
        let mut policy = ClosureAdmission::new(Box::new(|now, _| {
            if now >= SimTime::from_secs_f64(1.0) {
                Admission::Drop
            } else {
                Admission::Accept
            }
        }));
        let s = signals(0, 0, Some(1));
        assert_eq!(policy.name(), "closure");
        assert_eq!(
            policy.admit(SimTime::ZERO, &arrival(0, 1000), &s),
            Admission::Accept
        );
        assert_eq!(
            policy.admit(SimTime::from_secs_f64(2.0), &arrival(0, 1000), &s),
            Admission::Drop
        );
    }
}
