//! Tangram: SLO-aware batching for serverless video analytics.
//!
//! This crate is the paper's primary contribution plus everything needed
//! to evaluate it end to end:
//!
//! * [`scheduler`] — the **online SLO-aware batching invoker**
//!   (Algorithm 2): patches are re-stitched on every arrival, a
//!   conservative µ+3σ latency estimate sets the invoke-by time
//!   `t_remain = t_DDL − T_slack`, and batches dispatch exactly when
//!   waiting longer would risk the SLO (or the GPU-memory bound of
//!   constraint (5) is hit);
//! * [`policy`] — the [`policy::BatchingPolicy`] trait plus the paper's
//!   comparison systems: Full Frame, Masked Frame, ELF, Clipper (AIMD
//!   batch sizing) and MArk (batch size + timeout);
//! * [`workload`] — per-camera traces built from the synthetic scenes and
//!   an RoI extractor, replayed identically across policies;
//! * [`online`] — the event-driven streaming runtime: camera sources are
//!   generators ([`online::ArrivalProcess`]: Poisson / bursty / diurnal)
//!   rather than fixed trace slices, cameras join and leave mid-run, and
//!   tenants carry per-class SLOs;
//! * [`admission`] — pluggable ingress admission control
//!   ([`admission::AdmissionPolicy`]): always-admit, queue-depth
//!   thresholds, and the SLO-aware [`admission::SloShedder`] that sheds
//!   doomed work and lower-class tenants first under overload, with
//!   per-tenant drop accounting in the run report;
//! * [`fairness`] — the weighted deficit-round-robin fair ingress
//!   ([`fairness::DrrIngress`]): per-tenant-class bounded queues sitting
//!   between admission and the scheduler, served by dequeue ticks in the
//!   configured weight ratio so the admitted mix under overload tracks
//!   the weights instead of collapsing to the tightest class;
//! * [`faults`] — declarative fault injection ([`faults::FaultSpec`]):
//!   link outage windows, latency-tail inflation, cold-start storms,
//!   camera flap/rejoin storms and backend brownouts, scheduled through
//!   the engine's event loop from dedicated RNG forks so a faulted run
//!   stays bit-for-bit reproducible at any shard count;
//! * [`engine`] — the batch entry point ([`engine::EngineConfig::run`]):
//!   cameras → edge partitioning → uplink → scheduler → serverless
//!   platform, producing a [`report::RunReport`] with per-patch
//!   latencies, per-batch records, cost, bandwidth, and SLO-violation
//!   accounting. Trace replay is just one event source of the [`online`]
//!   loop;
//! * [`runtime`] — a live, threaded runtime exposing the paper's
//!   `receive_patch` / `invoke` API for real-time (non-simulated) use.
//!
//! # Example
//!
//! ```
//! use tangram_core::engine::{EngineConfig, PolicyKind};
//! use tangram_core::workload::TraceConfig;
//! use tangram_types::ids::SceneId;
//! use tangram_types::time::SimDuration;
//!
//! let trace = TraceConfig::proxy_extractor(SceneId::new(1), 20, 7).build();
//! let config = EngineConfig {
//!     policy: PolicyKind::Tangram,
//!     slo: SimDuration::from_secs_f64(1.0),
//!     bandwidth_mbps: 40.0,
//!     seed: 7,
//!     ..EngineConfig::default()
//! };
//! let report = config.run(&[trace]);
//! assert!(report.patches_completed() > 0);
//! assert!(report.slo_violation_rate() <= 0.2);
//! ```

pub mod admission;
pub mod engine;
pub mod fairness;
pub mod faults;
pub mod online;
pub mod policy;
pub mod report;
pub mod runtime;
pub mod scheduler;
mod shard;
pub mod workload;

pub use admission::{
    Admission, AdmissionPolicy, AdmissionSignals, AlwaysAdmit, ClosureAdmission,
    QueueDepthThreshold, SloShedder,
};
pub use engine::{EngineConfig, PolicyKind};
pub use fairness::{DrrConfig, DrrIngress};
pub use faults::{FaultKind, FaultSpec};
pub use online::{
    ArrivalProcess, CameraSource, GeneratedSource, OnlineEngine, StreamEvent, TenantClass,
    TraceReplaySource,
};
pub use policy::{Arrival, BatchSpec, BatchingPolicy, PolicyOutput};
pub use report::{RunReport, RunSummary, TenantSummary};
pub use scheduler::{SchedulerConfig, TangramScheduler};
pub use workload::{CameraTrace, TraceConfig, TraceFrame};
