//! The online SLO-aware batching invoker — Algorithm 2 of the paper.
//!
//! State: a queue `Q` of pending patches and its current stitching `C`
//! (a set of canvases). On every patch arrival the scheduler
//!
//! 1. appends the patch to `Q`, takes the earliest deadline
//!    `t_DDL = min t_ddl_i`, saves the previous canvases `C_old`;
//! 2. re-stitches `Q` with the Patch-stitching Solver and asks the
//!    Latency Estimator for the conservative execution bound
//!    `T_slack = µ + 3σ` of the new canvas set;
//! 3. computes the invoke-by instant `t_remain = t_DDL − T_slack`;
//! 4. if `t_remain` is already in the past — adding this patch would
//!    break the SLO — or the canvases no longer fit the function's GPU
//!    memory (constraint (5)), it dispatches `C_old` immediately and
//!    restarts the queue with just the new patch;
//! 5. otherwise it (re-)arms a timer for `t_remain`; when the clock
//!    reaches it, the whole canvas set dispatches as one batch.
//!
//! The scheduler is a pure state machine (no IO, no clock reads): both
//! the discrete-event engine and the live threaded runtime drive it with
//! explicit times, which makes Algorithm 2 directly unit-testable.

use crate::policy::{Arrival, BatchSpec, BatchingPolicy, PolicyOutput};
use tangram_infer::estimator::LatencyEstimator;
use tangram_stitch::canvas::Canvas;
use tangram_stitch::solver::{split_to_fit, PatchStitchingSolver};
use tangram_types::geometry::Size;
use tangram_types::patch::PatchInfo;
use tangram_types::time::{SimDuration, SimTime};

/// Static configuration of the Tangram scheduler.
#[derive(Debug, Clone)]
pub struct SchedulerConfig {
    /// Canvas extent `M × N` (the paper evaluates 1024×1024).
    pub canvas_size: Size,
    /// Maximum canvases one invocation may carry (constraint (5):
    /// `w·Σy + τ ≤ m_G`).
    pub max_canvases: usize,
    /// Admission-aware invoke timing: when set, the scheduler consults
    /// the ingress load signals (fed through
    /// [`crate::policy::BatchingPolicy::on_signals`]) and refuses to
    /// dispatch before the backend's predicted earliest start —
    /// dispatching a batch the backend cannot begin yet buys nothing,
    /// while waiting lets more patches join the canvases. Off (the
    /// default) reproduces Algorithm 2 byte-for-byte.
    pub admission_aware: bool,
}

impl SchedulerConfig {
    /// The paper's defaults: 1024×1024 canvases, batch bound from the
    /// 6 GB-GPU function spec (9 canvases), admission-blind timing.
    #[must_use]
    pub fn paper_default() -> Self {
        Self {
            canvas_size: Size::CANVAS_1024,
            max_canvases: 9,
            admission_aware: false,
        }
    }
}

/// The Tangram scheduler (Algorithm 2).
pub struct TangramScheduler {
    config: SchedulerConfig,
    solver: PatchStitchingSolver,
    estimator: LatencyEstimator,
    /// The pending queue `Q`.
    queue: Vec<PatchInfo>,
    /// Current stitching `C` of `queue`.
    canvases: Vec<Canvas>,
    /// Armed invoke-by instant (`t_remain`), if any.
    invoke_by: Option<SimTime>,
    /// Latest observed backend earliest-start (admission-aware mode only;
    /// `None` until the first signal arrives).
    backend_free_at: Option<SimTime>,
}

impl TangramScheduler {
    /// Creates a scheduler.
    ///
    /// # Panics
    ///
    /// Panics if the estimator was profiled for a different canvas size,
    /// or `max_canvases` is zero.
    #[must_use]
    pub fn new(config: SchedulerConfig, estimator: LatencyEstimator) -> Self {
        assert!(
            config.max_canvases > 0,
            "need at least one canvas per batch"
        );
        assert_eq!(
            estimator.canvas(),
            config.canvas_size,
            "estimator profiled for a different canvas size"
        );
        let solver = PatchStitchingSolver::new(config.canvas_size);
        Self {
            config,
            solver,
            estimator,
            queue: Vec::new(),
            canvases: Vec::new(),
            invoke_by: None,
            backend_free_at: None,
        }
    }

    /// The scheduler configuration.
    #[must_use]
    pub fn config(&self) -> &SchedulerConfig {
        &self.config
    }

    /// Current queue length (pending patches).
    #[must_use]
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Current number of open canvases.
    #[must_use]
    pub fn open_canvases(&self) -> usize {
        self.canvases.len()
    }

    /// The armed invoke-by instant, if a batch is pending.
    #[must_use]
    pub fn invoke_by(&self) -> Option<SimTime> {
        self.invoke_by
    }

    /// Accepts one patch at `now` (Algorithm 2, lines 4–18). Oversized
    /// patches (zone rectangles larger than the canvas) are pre-split into
    /// canvas-sized tiles that share the original deadline.
    pub fn on_patch(&mut self, now: SimTime, patch: PatchInfo) -> PolicyOutput {
        let mut out = PolicyOutput::idle();
        let tiles = self.normalize(patch);
        out.accepted = tiles.len();
        for tile in tiles {
            self.admit(now, tile, &mut out);
        }
        out.next_wake = self.invoke_by;
        out
    }

    /// Timer fired (line 19: `t = t_remain`). Spurious ticks are ignored.
    pub fn on_timer(&mut self, now: SimTime) -> PolicyOutput {
        match self.invoke_by {
            Some(t) if now >= t => self.flush_open_canvases(),
            _ => {
                let mut out = PolicyOutput::idle();
                out.next_wake = self.invoke_by;
                out
            }
        }
    }

    /// Dispatches whatever is queued (end of stream).
    pub fn drain(&mut self) -> PolicyOutput {
        self.flush_open_canvases()
    }

    /// Dispatches the open canvas set as one batch — the shared tail of
    /// [`Self::on_timer`] and [`Self::drain`]. A no-op on an empty queue.
    fn flush_open_canvases(&mut self) -> PolicyOutput {
        if self.queue.is_empty() {
            return PolicyOutput::idle();
        }
        PolicyOutput::dispatch(self.take_batch())
    }

    fn normalize(&self, patch: PatchInfo) -> Vec<PatchInfo> {
        if self.config.canvas_size.fits(patch.rect.size()) {
            return vec![patch];
        }
        split_to_fit(patch.rect, self.config.canvas_size)
            .into_iter()
            .map(|rect| PatchInfo { rect, ..patch })
            .collect()
    }

    /// Admission-aware wait extension: while the backend cannot start a
    /// batch before `backend_free_at`, dispatching earlier buys nothing —
    /// execution begins at the same instant either way — so the invoke-by
    /// deadline is pushed out to that instant, letting more patches join
    /// the canvases for free. The extension applies only while *every*
    /// queued patch is already doomed (its deadline unreachable even from
    /// the backend-free instant): a feasible patch must never be dragged
    /// past its own slack by doomed queue-mates, and for feasible work
    /// the SLO-driven `t_remain` always governs. A no-op in the default
    /// (admission-blind) configuration.
    fn effective_invoke_by(&self, now: SimTime, invoke_by: SimTime, slack: SimDuration) -> SimTime {
        if !self.config.admission_aware {
            return invoke_by;
        }
        let Some(free) = self.backend_free_at.filter(|&free| free > now) else {
            return invoke_by;
        };
        let all_doomed = self
            .queue
            .iter()
            .map(PatchInfo::deadline)
            .max()
            .is_some_and(|latest| free + slack >= latest);
        if all_doomed {
            invoke_by.max(free)
        } else {
            invoke_by
        }
    }

    fn admit(&mut self, now: SimTime, patch: PatchInfo, out: &mut PolicyOutput) {
        // Lines 5–10: append, re-stitch, re-estimate.
        self.queue.push(patch);
        let canvases = self
            .solver
            .stitch(&self.queue)
            .expect("patches were normalised to fit the canvas");
        let t_ddl = canvases
            .iter()
            .filter_map(Canvas::earliest_deadline)
            .min()
            .expect("queue is non-empty");
        let slack = self.estimator.slack_for(canvases.len());
        let invoke_by = if t_ddl.since(SimTime::ZERO) > slack {
            t_ddl - slack
        } else {
            SimTime::ZERO
        };
        let invoke_by = self.effective_invoke_by(now, invoke_by, slack);

        let over_memory = canvases.len() > self.config.max_canvases;
        let too_late = invoke_by <= now;

        if (over_memory || too_late) && self.queue.len() > 1 {
            // Lines 11–17: dispatch C_old and restart with this patch.
            let new_patch = self.queue.pop().expect("just pushed");
            let batch = self.take_batch();
            out.dispatches.push(batch);
            self.queue.push(new_patch);
            let canvases = self
                .solver
                .stitch(&self.queue)
                .expect("single patch fits a canvas");
            let t_ddl = canvases
                .iter()
                .filter_map(Canvas::earliest_deadline)
                .min()
                .expect("one patch queued");
            let slack = self.estimator.slack_for(canvases.len());
            let invoke_by = if t_ddl.since(SimTime::ZERO) > slack {
                t_ddl - slack
            } else {
                SimTime::ZERO
            };
            let invoke_by = self.effective_invoke_by(now, invoke_by, slack);
            self.canvases = canvases;
            if invoke_by <= now {
                // Even alone the patch cannot meet its SLO; sending it
                // immediately minimises the overrun.
                let batch = self.take_batch();
                out.dispatches.push(batch);
            } else {
                self.invoke_by = Some(invoke_by);
            }
        } else {
            self.canvases = canvases;
            if too_late {
                // Single queued patch that can no longer make it: ship now.
                let batch = self.take_batch();
                out.dispatches.push(batch);
            } else {
                self.invoke_by = Some(invoke_by);
            }
        }
    }

    /// Builds the dispatch for the current canvases and clears the state.
    fn take_batch(&mut self) -> BatchSpec {
        let patches = std::mem::take(&mut self.queue);
        let canvases = std::mem::take(&mut self.canvases);
        self.invoke_by = None;
        let inputs = canvases.len();
        let megapixels = inputs as f64 * self.config.canvas_size.megapixels();
        BatchSpec {
            patches,
            inputs,
            megapixels,
            canvas_efficiencies: canvases.iter().map(Canvas::efficiency).collect(),
        }
    }
}

impl BatchingPolicy for TangramScheduler {
    fn name(&self) -> &'static str {
        "Tangram"
    }

    fn on_signals(&mut self, now: SimTime, signals: &crate::admission::AdmissionSignals) {
        if self.config.admission_aware {
            self.backend_free_at = Some(signals.backend.earliest_start.max(now));
        }
    }

    fn on_arrival(&mut self, now: SimTime, arrival: Arrival) -> PolicyOutput {
        match arrival {
            Arrival::Patch(p) => self.on_patch(now, p.info),
            Arrival::Frame(f) => {
                // Tangram never receives whole frames, but handle it
                // gracefully: treat as one oversized patch.
                self.on_patch(now, f.info)
            }
        }
    }

    fn on_tick(&mut self, now: SimTime) -> PolicyOutput {
        self.on_timer(now)
    }

    fn flush(&mut self, _now: SimTime) -> PolicyOutput {
        self.drain()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tangram_infer::latency::InferenceLatencyModel;
    use tangram_types::geometry::Rect;
    use tangram_types::ids::{CameraId, FrameId, PatchId};
    use tangram_types::time::SimDuration;

    fn scheduler() -> TangramScheduler {
        let estimator = LatencyEstimator::paper_default(
            &InferenceLatencyModel::rtx4090_yolov8x(),
            Size::CANVAS_1024,
            9,
        );
        TangramScheduler::new(SchedulerConfig::paper_default(), estimator)
    }

    fn patch(id: u64, w: u32, h: u32, gen_ms: u64, slo_ms: u64) -> PatchInfo {
        PatchInfo::new(
            PatchId::new(id),
            CameraId::new(0),
            FrameId::new(0),
            Rect::new(0, 0, w, h),
            SimTime::from_micros(gen_ms * 1000),
            SimDuration::from_millis(slo_ms),
        )
    }

    fn t(ms: u64) -> SimTime {
        SimTime::from_micros(ms * 1000)
    }

    #[test]
    fn patch_waits_until_invoke_by() {
        let mut s = scheduler();
        let out = s.on_patch(t(0), patch(1, 300, 300, 0, 1000));
        assert!(out.dispatches.is_empty(), "plenty of budget: wait");
        let invoke_by = out.next_wake.expect("timer armed");
        // t_remain = deadline (1 s) − slack(1 canvas) ≈ 1 s − ~0.1 s.
        assert!(
            invoke_by > t(700) && invoke_by < t(1000),
            "invoke_by {invoke_by}"
        );
        assert_eq!(s.queue_len(), 1);
    }

    #[test]
    fn timer_dispatches_batch() {
        let mut s = scheduler();
        let _ = s.on_patch(t(0), patch(1, 300, 300, 0, 1000));
        let _ = s.on_patch(t(10), patch(2, 400, 200, 10, 1000));
        let invoke_by = s.invoke_by().unwrap();
        // Early tick: nothing.
        let early = s.on_timer(t(100));
        assert!(early.dispatches.is_empty());
        // On-time tick: everything in one batch.
        let fire = s.on_timer(invoke_by);
        assert_eq!(fire.dispatches.len(), 1);
        let batch = &fire.dispatches[0];
        assert_eq!(batch.patch_count(), 2);
        assert_eq!(batch.inputs, 1, "two small patches share a canvas");
        assert!(!batch.canvas_efficiencies.is_empty());
        assert_eq!(s.queue_len(), 0);
    }

    #[test]
    fn deadline_is_min_across_patches() {
        let mut s = scheduler();
        let _ = s.on_patch(t(0), patch(1, 300, 300, 0, 2000)); // lax
        let lax_invoke = s.invoke_by().unwrap();
        let _ = s.on_patch(t(1), patch(2, 300, 300, 1, 500)); // tight
        let tight_invoke = s.invoke_by().unwrap();
        assert!(
            tight_invoke < lax_invoke,
            "earliest deadline governs: {tight_invoke} vs {lax_invoke}"
        );
    }

    #[test]
    fn late_patch_flushes_old_queue_first() {
        let mut s = scheduler();
        let _ = s.on_patch(t(0), patch(1, 300, 300, 0, 1000));
        // This patch's deadline is nearly exhausted: stitching it with the
        // queue would violate, so the old canvas set dispatches and the new
        // patch forms the next queue (lines 11–17)… and since it cannot
        // make its own deadline either, it ships immediately too.
        let out = s.on_patch(t(900), patch(2, 300, 300, 0, 950));
        assert_eq!(out.dispatches.len(), 2);
        assert_eq!(out.dispatches[0].patches[0].id, PatchId::new(1));
        assert_eq!(out.dispatches[1].patches[0].id, PatchId::new(2));
        assert_eq!(s.queue_len(), 0);
    }

    #[test]
    fn late_patch_with_budget_restarts_queue() {
        let mut s = scheduler();
        let _ = s.on_patch(t(0), patch(1, 300, 300, 0, 1000));
        // Arrives late enough that batching with patch 1 is unsafe (its
        // invoke-by ≈ 1000 ms − slack ≈ 890 ms has passed), but fresh
        // enough to wait on its own.
        let out = s.on_patch(t(900), patch(2, 300, 300, 890, 1000));
        assert_eq!(out.dispatches.len(), 1, "old queue dispatches");
        assert_eq!(s.queue_len(), 1, "new patch starts the next queue");
        assert!(s.invoke_by().is_some());
    }

    #[test]
    fn gpu_memory_bound_forces_dispatch() {
        let mut s = scheduler();
        // 9 huge patches fill nine canvases (the paper's GPU bound).
        for i in 0..9 {
            let out = s.on_patch(t(i), patch(i, 1000, 1000, i, 60_000));
            assert!(out.dispatches.is_empty(), "patch {i} fits the bound");
        }
        assert_eq!(s.open_canvases(), 9);
        // The tenth would need a tenth canvas -> C_old dispatches.
        let out = s.on_patch(t(9), patch(9, 1000, 1000, 9, 60_000));
        assert_eq!(out.dispatches.len(), 1);
        assert_eq!(out.dispatches[0].inputs, 9);
        assert_eq!(s.queue_len(), 1, "new patch begins the next batch");
    }

    #[test]
    fn oversized_patch_is_tiled() {
        let mut s = scheduler();
        // A 2000×1500 zone patch cannot fit a 1024² canvas: 2×2 tiles.
        let out = s.on_patch(t(0), patch(1, 2000, 1500, 0, 5000));
        assert!(out.dispatches.is_empty());
        assert_eq!(s.queue_len(), 4);
    }

    #[test]
    fn drain_flushes_queue() {
        let mut s = scheduler();
        let _ = s.on_patch(t(0), patch(1, 200, 200, 0, 10_000));
        let out = s.drain();
        assert_eq!(out.dispatches.len(), 1);
        assert_eq!(s.queue_len(), 0);
        assert!(s.drain().dispatches.is_empty(), "second drain is a no-op");
    }

    #[test]
    fn flush_on_empty_queue_is_a_no_op() {
        let mut s = scheduler();
        let out = s.flush_open_canvases();
        assert!(out.dispatches.is_empty());
        assert_eq!(out.next_wake, None);
        assert_eq!(s.queue_len(), 0);
        assert!(s.invoke_by().is_none());
        // A flush with work dispatches once; the next flush is empty again.
        let _ = s.on_patch(t(0), patch(1, 200, 200, 0, 10_000));
        assert_eq!(s.flush_open_canvases().dispatches.len(), 1);
        assert!(s.flush_open_canvases().dispatches.is_empty());
    }

    #[test]
    fn spurious_timer_is_harmless() {
        let mut s = scheduler();
        let out = s.on_timer(t(50));
        assert!(out.dispatches.is_empty());
        assert_eq!(out.next_wake, None);
    }

    fn aware_scheduler() -> TangramScheduler {
        let estimator = LatencyEstimator::paper_default(
            &InferenceLatencyModel::rtx4090_yolov8x(),
            Size::CANVAS_1024,
            9,
        );
        let config = SchedulerConfig {
            admission_aware: true,
            ..SchedulerConfig::paper_default()
        };
        TangramScheduler::new(config, estimator)
    }

    fn signals(earliest_start_ms: u64) -> crate::admission::AdmissionSignals {
        crate::admission::AdmissionSignals {
            queued: 0,
            backend: tangram_serverless::platform::BackendSnapshot {
                in_flight: 0,
                live_instances: 1,
                max_instances: Some(1),
                earliest_start: t(earliest_start_ms),
                backlog: SimDuration::ZERO,
            },
        }
    }

    #[test]
    fn admission_aware_scheduler_waits_for_a_saturated_backend() {
        let mut s = aware_scheduler();
        // Backend saturated until t = 2 s.
        s.on_signals(t(0), &signals(2000));
        // The patch's own invoke-by (~890 ms) is earlier than the backend
        // can start: the timer extends to the backend-free instant.
        let out = s.on_patch(t(0), patch(1, 300, 300, 0, 1000));
        assert!(out.dispatches.is_empty());
        assert_eq!(out.next_wake, Some(t(2000)));
        // A second patch whose deadline has already passed would normally
        // force an immediate dispatch (lines 11–17); aware of the
        // saturated backend, the scheduler keeps batching — execution
        // cannot begin before 2 s either way.
        let out = s.on_patch(t(1900), patch(2, 300, 300, 0, 1000));
        assert!(out.dispatches.is_empty());
        assert_eq!(s.queue_len(), 2);
        // The timer at the backend-free instant flushes one joint batch.
        let fire = s.on_timer(t(2000));
        assert_eq!(fire.dispatches.len(), 1);
        assert_eq!(fire.dispatches[0].patch_count(), 2);
    }

    #[test]
    fn aware_scheduler_never_drags_feasible_work_behind_doomed_batches() {
        let mut s = aware_scheduler();
        s.on_signals(t(0), &signals(2000));
        // A doomed patch (deadline 1 s, backend busy until 2 s) waits for
        // the backend-free instant.
        let _ = s.on_patch(t(0), patch(1, 300, 300, 0, 1000));
        assert_eq!(s.invoke_by(), Some(t(2000)));
        // A feasible patch (deadline 5.1 s) joins: the queue is no longer
        // all-doomed, so the SLO-driven `t_remain` (min deadline − slack
        // ≈ 0.89 s) governs again instead of the 2 s backend wait.
        let out = s.on_patch(t(100), patch(2, 300, 300, 100, 5000));
        assert!(out.dispatches.is_empty());
        let wake = s.invoke_by().expect("timer armed");
        assert!(
            wake < t(1000),
            "feasible work reverts to SLO timing: {wake}"
        );
    }

    #[test]
    fn admission_blind_scheduler_ignores_signals() {
        let mut s = scheduler();
        s.on_signals(t(0), &signals(2000));
        let out = s.on_patch(t(0), patch(1, 300, 300, 0, 1000));
        let invoke_by = out.next_wake.expect("timer armed");
        assert!(
            invoke_by < t(1000),
            "legacy timing must be untouched: {invoke_by}"
        );
    }

    #[test]
    fn aware_scheduler_with_an_idle_backend_matches_legacy_timing() {
        let mut aware = aware_scheduler();
        // Idle backend: earliest start is "now", so max() is a no-op.
        aware.on_signals(t(0), &signals(0));
        let mut blind = scheduler();
        let a = aware.on_patch(t(0), patch(1, 300, 300, 0, 1000));
        let b = blind.on_patch(t(0), patch(1, 300, 300, 0, 1000));
        assert_eq!(a.next_wake, b.next_wake);
        assert_eq!(a.dispatches.len(), b.dispatches.len());
    }

    #[test]
    fn efficiency_reported_per_canvas() {
        let mut s = scheduler();
        let _ = s.on_patch(t(0), patch(1, 512, 512, 0, 2000));
        let _ = s.on_patch(t(1), patch(2, 512, 512, 1, 2000));
        let out = s.drain();
        let batch = &out.dispatches[0];
        assert_eq!(batch.canvas_efficiencies.len(), batch.inputs);
        let eff = batch.canvas_efficiencies[0];
        assert!((eff - 0.5).abs() < 1e-9, "two 512² patches on 1024²: {eff}");
    }
}
