//! The event-driven streaming engine.
//!
//! [`crate::engine::EngineConfig::run`] replays pre-materialised traces —
//! a closed world. Real deployments are open: patches arrive continuously
//! from many cameras, cameras join and leave mid-run, tenants carry
//! different SLOs, and the operator may shed load at the ingress. This
//! module is that open world, built on the same deterministic substrate:
//!
//! * [`StreamEvent`] — the event alphabet of the runtime: camera churn
//!   ([`StreamEvent::CameraJoin`] / [`StreamEvent::CameraLeave`]),
//!   captures, patch arrivals at the cloud, policy wake-ups
//!   ([`StreamEvent::InvokeTimer`]) and serverless completions
//!   ([`StreamEvent::FunctionComplete`]), all driven by a
//!   [`tangram_sim::driver::EventLoop`];
//! * [`CameraSource`] — cameras are *generators*, not trace slices:
//!   [`TraceReplaySource`] reproduces the legacy closed-loop replay
//!   byte-for-byte, while [`GeneratedSource`] emits frames under a
//!   seeded [`ArrivalProcess`] (Poisson, Markov-modulated bursts, or a
//!   diurnal rate curve) with a per-tenant SLO class;
//! * [`OnlineEngine`] — the loop itself: captures feed the shared uplink,
//!   arrivals pass the optional [`crate::admission::AdmissionPolicy`]
//!   (drops are counted per tenant class) before reaching the batching
//!   policy, dispatches are [`ServerlessPlatform::submit`]ted and their
//!   completions delivered back as events.
//!
//! The legacy batch entry point is a thin wrapper: it adds one
//! [`TraceReplaySource`] per trace and runs the same loop, so the 424
//! pre-existing tests and every figure baseline hold bit-for-bit.

use crate::admission::{AdmissionPolicy, AdmissionSignals, ClosureAdmission};
use crate::engine::EngineConfig;
use crate::fairness::DrrIngress;
use crate::faults::{FaultKind, FaultPlane, FaultSpec};
use crate::policy::{Arrival, BatchSpec, BatchingPolicy, CompletionFeedback};
use crate::report::{BatchRecord, PatchRecord, RunReport};
use crate::shard::{materialize_frame, MaterializeKind, MaterializeSpec, ShardCapture, ShardSet};
use crate::workload::{CameraTrace, TraceFrame};
use tangram_net::{Link, LinkConfig};
use tangram_serverless::platform::{InvocationRequest, ServerlessPlatform};
use tangram_sim::driver::EventLoop;
use tangram_sim::rng::DetRng;
use tangram_trace::{TraceEvent, TraceLog, TraceSink};
use tangram_types::ids::{CameraId, InvocationId, PatchId};
use tangram_types::time::{SimDuration, SimTime};
use tangram_types::units::Bytes;

/// The event alphabet of the streaming runtime.
#[derive(Debug)]
pub enum StreamEvent {
    /// Camera `cam` comes online and captures its first frame.
    CameraJoin {
        /// Index into the engine's camera table.
        cam: usize,
    },
    /// Camera `cam` goes offline; pending captures are cancelled.
    CameraLeave {
        /// Index into the engine's camera table.
        cam: usize,
    },
    /// Camera `cam` captures its next frame.
    Capture {
        /// Index into the engine's camera table.
        cam: usize,
    },
    /// A work item reached the cloud scheduler.
    PatchArrival {
        /// The delivered patch or frame.
        arrival: Arrival,
    },
    /// A policy wake-up (the scheduler's armed `t_remain`).
    InvokeTimer,
    /// A fair-ingress dequeue tick: the engine's
    /// [`crate::fairness::DrrIngress`] runs one weighted service round
    /// and releases the earned items to the batching policy. Re-armed
    /// every [`crate::fairness::DrrConfig::tick`] while the ingress holds
    /// work.
    DrrTick,
    /// A previously submitted serverless invocation finished.
    FunctionComplete {
        /// The platform's invocation id, acknowledged on delivery.
        id: InvocationId,
        /// Feedback handed to the policy.
        feedback: CompletionFeedback,
    },
    /// A [`crate::faults::FaultSpec`] window opened: the engine applies
    /// the fault's start-edge actuation (link outage, warm-instance
    /// eviction) and records the window in the trace. Window-duration
    /// behaviour (brownout multipliers, latency tails, mute windows) is
    /// evaluated statically at the actuation points, so no end event —
    /// which could stretch the makespan past the last real work — is
    /// needed.
    FaultStart {
        /// Index into the engine's installed fault table.
        fault: usize,
    },
}

// Admission control grew into its own subsystem (`crate::admission`);
// the original names stay importable from here.
pub use crate::admission::{Admission, AdmissionFn};

/// A per-tenant service class: the SLO stamped on every patch the
/// tenant's cameras produce.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantClass {
    /// Display name ("gold", "best-effort", …).
    pub name: String,
    /// The tenant's end-to-end deadline.
    pub slo: SimDuration,
}

impl TenantClass {
    /// A tenant class with the given name and SLO.
    #[must_use]
    pub fn new(name: &str, slo: SimDuration) -> Self {
        Self {
            name: name.to_string(),
            slo,
        }
    }
}

/// A camera as the engine sees it: a generator of edge output.
///
/// Sources must be [`Send`]: when the engine runs sharded
/// ([`OnlineEngine::set_shards`]), link-independent sources move onto
/// shard threads.
pub trait CameraSource: Send {
    /// The camera's identity (stamped on its patches).
    fn camera(&self) -> CameraId;

    /// The next frame of edge output, or `None` when the stream ends.
    fn next_frame(&mut self) -> Option<TraceFrame>;

    /// Whether the stream has no further frames (consulted after
    /// [`CameraSource::next_frame`] to decide if another capture is
    /// scheduled).
    fn is_exhausted(&self) -> bool;

    /// When the camera captures again after a frame taken at `now`.
    ///
    /// `frame_interval` is the engine-configured capture period and
    /// `uplink_free` the instant the shared uplink drains this frame's
    /// upload — closed-loop sources wait for both, open-loop sources
    /// ignore the link.
    fn next_capture(
        &mut self,
        now: SimTime,
        frame_interval: SimDuration,
        uplink_free: SimTime,
    ) -> SimTime;

    /// Per-tenant SLO override (`None` → the engine default).
    fn slo(&self) -> Option<SimDuration> {
        None
    }

    /// Whether [`CameraSource::next_capture`] ignores its `uplink_free`
    /// argument (and every other piece of shared engine state).
    ///
    /// Only link-independent sources are eligible for sharding: their
    /// capture timeline is a pure function of the source's own state and
    /// RNG, so a shard thread can replay it ahead of the coordinator and
    /// still produce bit-identical draws. Closed-loop sources (which
    /// pace on the shared uplink) must return `false` — the default.
    fn link_independent(&self) -> bool {
        false
    }
}

/// Replays a pre-built [`CameraTrace`] with the legacy closed-loop
/// pacing: the next capture waits for both the frame interval and the
/// shared uplink ("bandwidth simulates the arrival speed of patches").
#[derive(Debug, Clone)]
pub struct TraceReplaySource {
    trace: CameraTrace,
    cursor: usize,
}

impl TraceReplaySource {
    /// Wraps a trace for replay.
    #[must_use]
    pub fn new(trace: CameraTrace) -> Self {
        Self { trace, cursor: 0 }
    }
}

impl CameraSource for TraceReplaySource {
    fn camera(&self) -> CameraId {
        self.trace.camera
    }

    fn next_frame(&mut self) -> Option<TraceFrame> {
        let frame = self.trace.frames.get(self.cursor).cloned()?;
        self.cursor += 1;
        Some(frame)
    }

    fn is_exhausted(&self) -> bool {
        self.cursor >= self.trace.frames.len()
    }

    fn next_capture(
        &mut self,
        now: SimTime,
        frame_interval: SimDuration,
        uplink_free: SimTime,
    ) -> SimTime {
        (now + frame_interval).max(uplink_free)
    }
}

/// How a generated camera paces its captures.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalProcess {
    /// Fixed-rate capture gated on the uplink — the trace-replay pacing.
    ClosedLoop,
    /// Open-loop Poisson arrivals at mean `fps` frames per second.
    Poisson {
        /// Mean frame rate.
        fps: f64,
    },
    /// Markov-modulated on/off process: exponential dwell times in a calm
    /// and a burst state, each with its own Poisson rate.
    Bursty {
        /// Frame rate in the calm state.
        calm_fps: f64,
        /// Frame rate in the burst state.
        burst_fps: f64,
        /// Mean dwell time in the calm state, seconds.
        mean_calm_s: f64,
        /// Mean dwell time in the burst state, seconds.
        mean_burst_s: f64,
    },
    /// Sinusoidal day/night rate curve: the instantaneous Poisson rate
    /// swings between `min_fps` and `max_fps` over `period_s`.
    Diurnal {
        /// Trough frame rate.
        min_fps: f64,
        /// Peak frame rate.
        max_fps: f64,
        /// Full day length, seconds.
        period_s: f64,
    },
}

/// Floor applied to sampled rates so the exponential draw stays defined.
const MIN_RATE: f64 = 1e-6;

/// A generated camera: cycles the frames of a pre-built content pool
/// under a seeded [`ArrivalProcess`], re-stamping frame and patch ids so
/// cycled content stays unique. The generator is exhausted after
/// `budget` frames (churny runs usually cut it short with a
/// [`StreamEvent::CameraLeave`] instead).
#[derive(Debug, Clone)]
pub struct GeneratedSource {
    camera: CameraId,
    pool: Vec<TraceFrame>,
    emitted: usize,
    budget: usize,
    process: ArrivalProcess,
    rng: DetRng,
    slo: Option<SimDuration>,
    in_burst: bool,
    state_until: SimTime,
    next_patch: u64,
}

impl GeneratedSource {
    /// Builds a generator over `trace`'s frames.
    ///
    /// # Panics
    ///
    /// Panics if the trace has no frames.
    #[must_use]
    pub fn new(trace: &CameraTrace, budget: usize, process: ArrivalProcess, rng: DetRng) -> Self {
        assert!(
            !trace.frames.is_empty(),
            "generated source needs a non-empty content pool"
        );
        Self {
            camera: trace.camera,
            pool: trace.frames.clone(),
            emitted: 0,
            budget,
            process,
            rng,
            slo: None,
            // Start in the "burst" state with an expired dwell so the
            // first capture flips to calm and samples a fresh dwell time.
            in_burst: true,
            state_until: SimTime::ZERO,
            next_patch: 0,
        }
    }

    /// Stamps this camera's patches with a tenant SLO class.
    #[must_use]
    pub fn with_tenant(mut self, tenant: &TenantClass) -> Self {
        self.slo = Some(tenant.slo);
        self
    }

    fn gap(&mut self, rate: f64) -> SimDuration {
        SimDuration::from_secs_f64(self.rng.exponential(rate.max(MIN_RATE)))
    }
}

impl CameraSource for GeneratedSource {
    fn camera(&self) -> CameraId {
        self.camera
    }

    fn next_frame(&mut self) -> Option<TraceFrame> {
        if self.emitted >= self.budget {
            return None;
        }
        let mut frame = self.pool[self.emitted % self.pool.len()].clone();
        frame.frame = tangram_types::ids::FrameId::new(self.emitted as u64);
        for patch in &mut frame.patches {
            // Bit 38 marks generated ids, keeping them disjoint from the
            // partition pipeline's (camera << 40 | counter) scheme and
            // the engine's full-frame (1 << 39) scheme.
            patch.info.id =
                PatchId::new((u64::from(self.camera.raw()) << 40) | (1 << 38) | self.next_patch);
            patch.info.camera = self.camera;
            patch.info.frame = frame.frame;
            self.next_patch += 1;
        }
        self.emitted += 1;
        Some(frame)
    }

    fn is_exhausted(&self) -> bool {
        self.emitted >= self.budget
    }

    fn next_capture(
        &mut self,
        now: SimTime,
        frame_interval: SimDuration,
        uplink_free: SimTime,
    ) -> SimTime {
        match self.process {
            ArrivalProcess::ClosedLoop => (now + frame_interval).max(uplink_free),
            ArrivalProcess::Poisson { fps } => now + self.gap(fps),
            ArrivalProcess::Bursty {
                calm_fps,
                burst_fps,
                mean_calm_s,
                mean_burst_s,
            } => {
                // Advance the modulating chain through *every* dwell that
                // elapsed since the last capture — a long capture gap can
                // span several on/off flips, and flipping only once would
                // let the chain fall behind `now` for good. The dwell gap
                // is floored at 1 µs because `from_secs_f64` rounds tiny
                // exponential draws down to zero, which would stall the
                // loop.
                while now >= self.state_until {
                    self.in_burst = !self.in_burst;
                    let dwell = if self.in_burst {
                        mean_burst_s
                    } else {
                        mean_calm_s
                    };
                    let dwell_gap = self
                        .gap(1.0 / dwell.max(MIN_RATE))
                        .max(SimDuration::from_micros(1));
                    self.state_until += dwell_gap;
                }
                let fps = if self.in_burst { burst_fps } else { calm_fps };
                now + self.gap(fps)
            }
            ArrivalProcess::Diurnal {
                min_fps,
                max_fps,
                period_s,
            } => {
                let phase = now.since(SimTime::ZERO).as_secs_f64() / period_s.max(MIN_RATE);
                let swing = 0.5 * (1.0 - (std::f64::consts::TAU * phase).cos());
                let rate = min_fps + (max_fps - min_fps) * swing;
                now + self.gap(rate)
            }
        }
    }

    fn slo(&self) -> Option<SimDuration> {
        self.slo
    }

    fn link_independent(&self) -> bool {
        // Only the closed loop paces on the shared uplink; the open-loop
        // processes draw their gaps purely from the source's own RNG.
        !matches!(self.process, ArrivalProcess::ClosedLoop)
    }
}

struct CameraSlot {
    /// `None` while the source lives on a shard thread.
    source: Option<Box<dyn CameraSource>>,
    /// The source's identity, cached so trace events survive the move.
    camera: CameraId,
    /// When the camera was scheduled to join the stream.
    join_at: SimTime,
    /// Whether the source was moved onto a shard for this run.
    sharded: bool,
    active: bool,
}

/// The event-driven streaming engine: an [`EventLoop`] over
/// [`StreamEvent`]s wiring camera sources, the shared uplink, a batching
/// policy, admission control and the serverless platform together.
pub struct OnlineEngine {
    config: EngineConfig,
    policy: Box<dyn BatchingPolicy>,
    platform: ServerlessPlatform,
    link: Link,
    events: EventLoop<StreamEvent>,
    cameras: Vec<CameraSlot>,
    admission: Option<Box<dyn AdmissionPolicy>>,
    /// Weighted-DRR fair ingress between admission and the policy.
    ingress: Option<DrrIngress>,
    /// Whether a [`StreamEvent::DrrTick`] is already scheduled.
    drr_armed: bool,
    /// When the last DRR service round ran — rounds keep the configured
    /// cadence even across idle gaps, so the tick interval is a genuine
    /// service-rate bound rather than a best case.
    drr_last_round: Option<SimTime>,
    /// Whether the batching policy reads ingress load signals
    /// (admission-aware scheduling): when set, a fresh
    /// [`AdmissionSignals`] snapshot is fed to the policy before its
    /// arrivals even if no admission policy is installed.
    policy_reads_signals: bool,
    /// Earliest outstanding [`StreamEvent::InvokeTimer`] instant, if one
    /// is scheduled. Wake-up requests at or after it are skipped — the
    /// armed timer fires first and the policy re-arms via `next_wake` —
    /// so the queue never accumulates O(arrivals) dead timers.
    timer_armed: Option<SimTime>,
    frame_interval: SimDuration,
    patch_records: Vec<PatchRecord>,
    batch_records: Vec<BatchRecord>,
    transmission_busy: SimDuration,
    frames_injected: u64,
    /// Work items admitted but not yet dispatched (the queue-depth
    /// admission signal), in the post-normalize unit batches drain in:
    /// an oversized patch tiled 4-ways contributes 4.
    queued: usize,
    dropped_arrivals: u64,
    /// Drops per tenant class, keyed by SLO, ascending.
    dropped_by_slo: Vec<(SimDuration, u64)>,
    /// Invocations completed (trace accounting).
    completions: u64,
    /// Events popped off the coordinator loop (wall-clock perf
    /// denominator for `bench_throughput`; pure accounting).
    events_processed: u64,
    /// Per-shard credit window (how far a shard may run ahead of the
    /// coordinator). Defaults to the production
    /// [`tangram_types::credit::CREDIT_WINDOW`]; the `CREDIT_WINDOW=1`
    /// regression suite narrows it to the minimum via
    /// [`OnlineEngine::set_credit_window`].
    credit_window: usize,
    /// Requested shard count (1 = fully inline, the byte-compare
    /// oracle).
    shards: usize,
    /// The live shard plane, mounted at the start of a sharded run.
    shard_set: Option<ShardSet>,
    /// Declarative fault windows, installed as a [`FaultPlane`] at the
    /// start of the run (once the final camera count is known).
    pending_faults: Vec<FaultSpec>,
    /// The run's live fault plane. Empty (and byte-invisible) when no
    /// faults were installed.
    faults: FaultPlane,
    /// Frames captured inside a camera-flap mute window and lost at the
    /// edge (never materialised onto the uplink).
    frames_muted: u64,
    /// Optional runtime trace recorder — pure observation: with or
    /// without a sink the run is byte-identical.
    trace: Option<TraceSink>,
}

impl OnlineEngine {
    /// Builds an engine with no cameras; add sources with
    /// [`OnlineEngine::add_camera_at`], then call [`OnlineEngine::run`].
    #[must_use]
    pub fn new(config: &EngineConfig) -> Self {
        let policy = config.build_policy();
        let mut platform = ServerlessPlatform::new(
            config.function_spec.clone(),
            config.latency_model.clone(),
            config.seed,
        )
        .with_prices(config.prices);
        platform.max_instances = config.max_instances;
        Self {
            policy,
            platform,
            link: Link::new(LinkConfig::mbps(config.bandwidth_mbps)),
            events: EventLoop::new(),
            cameras: Vec::new(),
            admission: None,
            ingress: None,
            drr_armed: false,
            drr_last_round: None,
            policy_reads_signals: config.scheduler_admission_aware,
            timer_armed: None,
            frame_interval: SimDuration::from_secs_f64(1.0 / config.max_fps),
            patch_records: Vec::new(),
            batch_records: Vec::new(),
            transmission_busy: SimDuration::ZERO,
            frames_injected: 0,
            queued: 0,
            dropped_arrivals: 0,
            dropped_by_slo: Vec::new(),
            completions: 0,
            events_processed: 0,
            credit_window: tangram_types::credit::CREDIT_WINDOW,
            shards: 1,
            shard_set: None,
            pending_faults: Vec::new(),
            faults: FaultPlane::default(),
            frames_muted: 0,
            trace: None,
            config: config.clone(),
        }
    }

    /// Registers a camera that joins the stream at `at`, returning its
    /// index (usable with [`OnlineEngine::remove_camera_at`]).
    pub fn add_camera_at(&mut self, at: SimTime, source: Box<dyn CameraSource>) -> usize {
        let cam = self.cameras.len();
        let camera = source.camera();
        self.cameras.push(CameraSlot {
            source: Some(source),
            camera,
            join_at: at,
            sharded: false,
            active: false,
        });
        self.events.schedule(at, StreamEvent::CameraJoin { cam });
        cam
    }

    /// Partitions link-independent cameras across `shards` worker
    /// threads for the run (default 1 = fully inline).
    ///
    /// Sharding is a pure execution strategy: the run's digests, BENCH
    /// json and runtime trace are byte-identical at any shard count,
    /// because only camera-local generation work (frame cloning, RNG
    /// draws, id stamping) moves off the coordinator — see the
    /// `crate::shard` module for the model. Closed-loop sources (which
    /// pace on the shared uplink) always stay inline.
    pub fn set_shards(&mut self, shards: usize) {
        self.shards = shards.max(1);
    }

    /// Narrows the per-shard credit window (clamped to ≥ 1; the
    /// production default is
    /// [`tangram_types::credit::CREDIT_WINDOW`]).
    ///
    /// Like the shard count, the window is a pure execution knob: the
    /// protocol's merge order is credit-oblivious — proven across
    /// interleavings by the `tangram-model` explorer and pinned end to
    /// end by the `CREDIT_WINDOW=1` regression — so any window yields
    /// byte-identical output, only with different shard run-ahead.
    pub fn set_credit_window(&mut self, window: usize) {
        self.credit_window = window.max(1);
    }

    /// Moves eligible camera sources onto shard threads. A no-op for
    /// one-shard runs, runs with fewer than two eligible cameras, and
    /// closed-loop sources.
    fn mount_shards(&mut self) {
        if self.shards <= 1 {
            return;
        }
        let eligible: Vec<usize> = (0..self.cameras.len())
            .filter(|&cam| {
                self.cameras[cam]
                    .source
                    .as_ref()
                    .is_some_and(|s| s.link_independent())
            })
            .collect();
        if eligible.len() < 2 {
            return;
        }
        let shards = self.shards.min(eligible.len());
        let spec = MaterializeSpec {
            kind: MaterializeKind::of(self.config.policy),
            default_slo: self.config.slo,
            frame_interval: self.frame_interval,
        };
        let mut partitions: Vec<Vec<crate::shard::ShardCamera>> =
            (0..shards).map(|_| Vec::new()).collect();
        for (k, &cam) in eligible.iter().enumerate() {
            let slot = &mut self.cameras[cam];
            let source = slot.source.take().expect("eligible camera has a source");
            slot.sharded = true;
            partitions[k % shards].push((cam, slot.join_at, source));
        }
        self.shard_set = Some(ShardSet::spawn(
            partitions,
            spec,
            self.cameras.len(),
            self.credit_window,
        ));
    }

    /// Schedules camera `cam` to leave the stream at `at`; frames it
    /// would have captured afterwards are never produced.
    pub fn remove_camera_at(&mut self, at: SimTime, cam: usize) {
        self.events.schedule(at, StreamEvent::CameraLeave { cam });
    }

    /// Installs an admission-control policy. Without one, every arrival
    /// is admitted (equivalent to [`crate::admission::AlwaysAdmit`]).
    pub fn set_admission_policy(&mut self, policy: Box<dyn AdmissionPolicy>) {
        self.admission = Some(policy);
    }

    /// Installs the legacy closure hook (PR-3 API): wraps it in
    /// [`ClosureAdmission`], which ignores the load signals.
    pub fn set_admission(&mut self, hook: Box<AdmissionFn>) {
        self.admission = Some(Box::new(ClosureAdmission::new(hook)));
    }

    /// Installs a weighted-DRR fair-ingress stage between admission and
    /// the batching policy. Admitted arrivals queue per tenant class and
    /// are released by [`StreamEvent::DrrTick`] service rounds in the
    /// configured weight ratio; overflow is shed and counted per class
    /// like any other ingress drop. Without one, admitted arrivals reach
    /// the policy directly.
    pub fn set_fair_ingress(&mut self, ingress: DrrIngress) {
        self.ingress = Some(ingress);
    }

    /// Installs declarative fault windows for the run (see
    /// [`crate::faults`]). Each fault's start edge is scheduled through
    /// the event loop; randomized faults draw from dedicated
    /// [`DetRng::derive_seed`] forks of the engine seed. An empty list
    /// leaves the run bit-for-bit identical to an engine that never saw
    /// this call.
    pub fn set_faults(&mut self, faults: Vec<FaultSpec>) {
        self.pending_faults = faults;
    }

    /// Builds the run's [`FaultPlane`] (now that the camera count is
    /// final) and schedules one [`StreamEvent::FaultStart`] per window.
    fn install_faults(&mut self) {
        if self.pending_faults.is_empty() {
            return;
        }
        let faults = std::mem::take(&mut self.pending_faults);
        for (index, fault) in faults.iter().enumerate() {
            self.events
                .schedule(fault.start(), StreamEvent::FaultStart { fault: index });
        }
        self.faults = FaultPlane::install(self.config.seed, faults, self.cameras.len());
    }

    /// Installs a runtime trace recorder; the sealed log comes back from
    /// [`OnlineEngine::run_traced`]. Recording is pure observation: the
    /// run itself is byte-identical with or without a sink.
    pub fn set_trace_sink(&mut self, sink: TraceSink) {
        self.trace = Some(sink);
    }

    /// Appends `event` to the trace, if a sink is installed.
    fn emit_trace(&mut self, at: SimTime, event: TraceEvent) {
        if let Some(sink) = self.trace.as_mut() {
            sink.emit(at, event);
        }
    }

    /// Drives the event loop to quiescence and reports the run.
    ///
    /// # Panics
    ///
    /// Panics if no cameras were added.
    #[must_use]
    pub fn run(self) -> RunReport {
        self.run_traced().0
    }

    /// Like [`OnlineEngine::run`], additionally returning the sealed
    /// event trace when a sink was installed with
    /// [`OnlineEngine::set_trace_sink`] (`None` otherwise).
    ///
    /// # Panics
    ///
    /// Panics if no cameras were added.
    #[must_use]
    pub fn run_traced(mut self) -> (RunReport, Option<TraceLog>) {
        assert!(!self.cameras.is_empty(), "need at least one camera source");
        self.install_faults();
        self.mount_shards();
        let cameras = self.cameras.len() as u64;
        self.emit_trace(
            SimTime::ZERO,
            TraceEvent::SessionStart {
                policy: self.config.policy.name().to_string(),
                seed: self.config.seed,
                cameras,
            },
        );
        while let Some((now, event)) = self.events.step() {
            self.events_processed += 1;
            self.handle(now, event);
        }
        // End of stream: flush whatever the policy still holds.
        let now = self.events.now();
        let output = self.policy.flush(now);
        for spec in output.dispatches {
            self.dispatch(now, spec);
        }
        while let Some((now, event)) = self.events.step() {
            self.events_processed += 1;
            if let StreamEvent::FunctionComplete { id, feedback } = event {
                self.platform.complete(id);
                self.completions += 1;
                self.emit_trace(
                    now,
                    TraceEvent::FunctionComplete {
                        invocation: id.raw(),
                        inputs: feedback.inputs as u64,
                        violations: feedback.violations as u64,
                    },
                );
            }
        }
        // Every accepted work item was dispatched: the queue-depth
        // signal must drain back to exactly zero.
        debug_assert_eq!(
            self.queued, 0,
            "queue-depth accounting leaked {} items past the flush",
            self.queued
        );
        self.emit_trace(
            self.events.now(),
            TraceEvent::SessionEnd {
                frames: self.frames_injected,
                batches: self.batch_records.len() as u64,
                completions: self.completions,
                dropped: self.dropped_arrivals,
                makespan_us: self.events.now().since(SimTime::ZERO).as_micros(),
            },
        );
        // Stop the shard threads before reporting: any speculative
        // captures beyond what the coordinator consumed are discarded.
        if let Some(set) = self.shard_set.take() {
            set.shutdown();
        }
        let trace = self.trace.take().map(TraceSink::finish);
        let report = RunReport {
            policy: self.config.policy.name().to_string(),
            patches: self.patch_records,
            batches: self.batch_records,
            link: self.link.stats(),
            platform: self.platform.stats(),
            frames: self.frames_injected,
            frames_muted: self.frames_muted,
            dropped_arrivals: self.dropped_arrivals,
            dropped_by_slo: self.dropped_by_slo,
            ingress_peak_depth: self
                .ingress
                .as_ref()
                .map(DrrIngress::peak_depths)
                .unwrap_or_default(),
            ingress_admitted: self
                .ingress
                .as_ref()
                .map(DrrIngress::admitted_by_class)
                .unwrap_or_default(),
            transmission_busy: self.transmission_busy,
            makespan: self.events.now().since(SimTime::ZERO),
            events_processed: self.events_processed,
        };
        (report, trace)
    }

    fn handle(&mut self, now: SimTime, event: StreamEvent) {
        match event {
            StreamEvent::CameraJoin { cam } => {
                let camera = u64::from(self.cameras[cam].camera.raw());
                self.emit_trace(now, TraceEvent::CameraJoin { camera });
                self.cameras[cam].active = true;
                self.capture(now, cam);
            }
            StreamEvent::CameraLeave { cam } => {
                let camera = u64::from(self.cameras[cam].camera.raw());
                self.emit_trace(now, TraceEvent::CameraLeave { camera });
                self.cameras[cam].active = false;
            }
            StreamEvent::Capture { cam } => {
                if self.cameras[cam].active {
                    self.capture(now, cam);
                }
            }
            StreamEvent::PatchArrival { arrival } => {
                // One snapshot serves both consumers: the admission
                // policy's verdict and the batching policy's
                // admission-aware timing.
                let signals = (self.admission.is_some() || self.policy_reads_signals).then(|| {
                    AdmissionSignals {
                        // Fair-ingress residents are admitted-but-not-
                        // dispatched work too: without them the shedder
                        // would admit arrivals already doomed by ingress
                        // queueing delay.
                        queued: self.queued + self.ingress.as_ref().map_or(0, DrrIngress::backlog),
                        backend: self.platform.snapshot(now),
                    }
                });
                if let Some(policy) = self.admission.as_mut() {
                    let signals = signals.as_ref().expect("signals built for admission");
                    let verdict = policy.admit(now, &arrival, signals);
                    let info = *arrival.info();
                    self.emit_trace(
                        now,
                        TraceEvent::AdmissionVerdict {
                            patch: info.id.raw(),
                            slo_us: info.slo.as_micros(),
                            admitted: verdict != Admission::Drop,
                            queued: signals.queued as u64,
                            in_flight: signals.backend.in_flight as u64,
                            earliest_start_us: signals
                                .backend
                                .earliest_start
                                .since(SimTime::ZERO)
                                .as_micros(),
                        },
                    );
                    if verdict == Admission::Drop {
                        self.count_drop(info.slo);
                        return;
                    }
                }
                if self.policy_reads_signals {
                    let signals = signals.as_ref().expect("signals built for the policy");
                    self.policy.on_signals(now, signals);
                }
                match self.ingress.as_mut() {
                    // No fair ingress: admitted arrivals reach the policy
                    // directly (the legacy path, byte-identical).
                    None => {
                        let output = self.policy.on_arrival(now, arrival);
                        // Count what the policy actually enqueued — in
                        // the post-normalize unit dispatches drain in —
                        // *before* applying, so same-instant dispatches
                        // see a consistent counter.
                        self.queued += output.accepted;
                        self.apply(now, output.dispatches, output.next_wake);
                    }
                    Some(ingress) => {
                        let tick = ingress.tick();
                        match ingress.enqueue(arrival) {
                            Ok(()) => {
                                if !self.drr_armed {
                                    self.drr_armed = true;
                                    // The very first round fires
                                    // immediately; afterwards rounds hold
                                    // the tick cadence even across idle
                                    // gaps, so the ingress service rate
                                    // stays bounded.
                                    let at = self
                                        .drr_last_round
                                        .map_or(now, |last| (last + tick).max(now));
                                    self.events.schedule(at, StreamEvent::DrrTick);
                                }
                            }
                            // Overflow: shed at the ingress, charged to
                            // the arrival's own class.
                            Err(shed) => self.count_drop(shed.info().slo),
                        }
                    }
                }
            }
            StreamEvent::DrrTick => {
                let Some(ingress) = self.ingress.as_mut() else {
                    return;
                };
                self.drr_last_round = Some(now);
                let released = ingress.service_round();
                let backlog = ingress.backlog();
                let tick = ingress.tick();
                self.emit_trace(
                    now,
                    TraceEvent::DrrRound {
                        released: released.len() as u64,
                        backlog: backlog as u64,
                    },
                );
                if self.policy_reads_signals && !released.is_empty() {
                    let signals = AdmissionSignals {
                        queued: self.queued + backlog,
                        backend: self.platform.snapshot(now),
                    };
                    self.policy.on_signals(now, &signals);
                }
                for arrival in released {
                    let output = self.policy.on_arrival(now, arrival);
                    self.queued += output.accepted;
                    self.apply(now, output.dispatches, output.next_wake);
                }
                if backlog > 0 {
                    self.events.schedule(now + tick, StreamEvent::DrrTick);
                } else {
                    self.drr_armed = false;
                }
            }
            StreamEvent::InvokeTimer => {
                // The armed slot is free again: the policy re-arms via
                // `next_wake` if it still wants a wake-up (possibly at
                // this same instant).
                if self.timer_armed == Some(now) {
                    self.timer_armed = None;
                }
                let output = self.policy.on_tick(now);
                self.apply(now, output.dispatches, output.next_wake);
            }
            StreamEvent::FunctionComplete { id, feedback } => {
                self.platform.complete(id);
                self.completions += 1;
                self.emit_trace(
                    now,
                    TraceEvent::FunctionComplete {
                        invocation: id.raw(),
                        inputs: feedback.inputs as u64,
                        violations: feedback.violations as u64,
                    },
                );
                let output = self.policy.on_completion(now, feedback);
                self.apply(now, output.dispatches, output.next_wake);
            }
            StreamEvent::FaultStart { fault } => {
                let spec = self.faults.faults[fault].clone();
                self.emit_trace(
                    now,
                    TraceEvent::FaultWindow {
                        kind: spec.kind.name().to_string(),
                        until_us: spec.end().since(SimTime::ZERO).as_micros(),
                    },
                );
                match spec.kind {
                    // Store-and-forward: everything in flight and
                    // everything enqueued later queues behind the
                    // outage's end.
                    FaultKind::LinkOutage => self.link.outage_until(spec.end()),
                    // Kill the warm pool at the window's start edge;
                    // `dispatch` keeps it dead for the window's duration.
                    FaultKind::ColdStartStorm => {
                        let _ = self.platform.evict_idle(now);
                    }
                    // Window-duration faults: actuated statically at the
                    // dispatch/deliver boundaries.
                    FaultKind::LatencyTail { .. }
                    | FaultKind::CameraFlap { .. }
                    | FaultKind::Brownout { .. } => {}
                }
            }
        }
    }

    /// Counts one ingress drop (admission or fair-ingress overflow)
    /// against the arrival's tenant class.
    fn count_drop(&mut self, slo: SimDuration) {
        self.dropped_arrivals += 1;
        match self.dropped_by_slo.binary_search_by_key(&slo, |&(s, _)| s) {
            Ok(at) => self.dropped_by_slo[at].1 += 1,
            Err(at) => self.dropped_by_slo.insert(at, (slo, 1)),
        }
    }

    fn capture(&mut self, now: SimTime, cam: usize) {
        if self.cameras[cam].sharded {
            self.capture_sharded(now, cam);
        } else {
            self.capture_inline(now, cam);
        }
    }

    /// The inline capture path: the source lives on the coordinator and
    /// is driven synchronously (the 1-shard oracle, and every
    /// closed-loop source in any run).
    fn capture_inline(&mut self, now: SimTime, cam: usize) {
        let source = self.cameras[cam]
            .source
            .as_mut()
            .expect("inline camera keeps its source");
        let Some(frame) = source.next_frame() else {
            self.cameras[cam].active = false;
            return;
        };
        self.frames_injected += 1;
        let camera_id = self.cameras[cam].camera;
        let source = self.cameras[cam]
            .source
            .as_ref()
            .expect("inline camera keeps its source");
        let slo = source.slo().unwrap_or(self.config.slo);
        let arrivals = materialize_frame(
            &frame,
            camera_id,
            slo,
            now,
            MaterializeKind::of(self.config.policy),
        );
        if self.faults.is_muted(cam, now) {
            self.frames_muted += 1;
        } else {
            self.deliver(now, arrivals);
        }

        let uplink_free = self.link.busy_until();
        let frame_interval = self.frame_interval;
        let source = self.cameras[cam]
            .source
            .as_mut()
            .expect("inline camera keeps its source");
        let next = source.next_capture(now, frame_interval, uplink_free);
        let exhausted = source.is_exhausted();
        if !exhausted && self.cameras[cam].active {
            self.events.schedule(next, StreamEvent::Capture { cam });
        }
    }

    /// The sharded capture path: the owning shard already ran the exact
    /// same `next_frame` → materialize → `next_capture` sequence; the
    /// coordinator consumes the pre-computed result and applies it to
    /// the shared state in merge order.
    fn capture_sharded(&mut self, now: SimTime, cam: usize) {
        let capture = self
            .shard_set
            .as_mut()
            .expect("sharded camera has a shard set")
            .next_for(cam);
        match capture {
            ShardCapture::End => {
                self.cameras[cam].active = false;
            }
            ShardCapture::Frame { arrivals, next } => {
                self.frames_injected += 1;
                // Mute windows apply on the coordinator only: the shard
                // replayed the exact same generation sequence, so
                // dropping the materialised arrivals here keeps faulted
                // runs byte-identical at any shard count.
                if self.faults.is_muted(cam, now) {
                    self.frames_muted += 1;
                } else {
                    self.deliver(now, arrivals);
                }
                if let Some(next) = next {
                    if self.cameras[cam].active {
                        self.events.schedule(next, StreamEvent::Capture { cam });
                    }
                }
            }
        }
    }

    /// Feeds one frame's wire items to the shared uplink, scheduling
    /// their cloud arrivals — the shared-state tail of a capture, common
    /// to the inline and sharded paths.
    fn deliver(&mut self, now: SimTime, arrivals: Vec<(Arrival, Bytes)>) {
        let ready = now + self.config.edge_delay;
        for (arrival, bytes) in arrivals {
            let delivered = self.link.enqueue(ready, bytes);
            self.transmission_busy += self.link.config().bandwidth.transmission_time(bytes);
            self.events
                .schedule(delivered, StreamEvent::PatchArrival { arrival });
        }
    }

    fn apply(&mut self, now: SimTime, dispatches: Vec<BatchSpec>, next_wake: Option<SimTime>) {
        for spec in dispatches {
            self.dispatch(now, spec);
        }
        if let Some(wake) = next_wake {
            let wake = wake.max(now);
            // One live timer per armed instant: a duplicate at or after
            // the armed wake-up would only fire a spurious tick (the
            // armed timer runs first and the policy re-arms through
            // `next_wake`), so skip it instead of flooding the queue
            // with O(arrivals) dead timers.
            if self.timer_armed.is_none_or(|armed| wake < armed) {
                self.timer_armed = Some(wake);
                self.events.schedule(wake, StreamEvent::InvokeTimer);
            }
        }
    }

    fn dispatch(&mut self, now: SimTime, spec: BatchSpec) {
        if spec.patches.is_empty() {
            return;
        }
        // Arrivals were counted post-normalize (`PolicyOutput::accepted`),
        // the same unit batches drain in, so the counter can never
        // underflow — a mismatch here is an accounting bug, not a
        // condition to mask.
        debug_assert!(
            self.queued >= spec.patches.len(),
            "queue-depth underflow: dispatching {} patches with {} queued",
            spec.patches.len(),
            self.queued
        );
        self.queued -= spec.patches.len();
        self.emit_trace(
            now,
            TraceEvent::BatchDispatch {
                batch: self.batch_records.len() as u64,
                patches: spec.patches.len() as u64,
                inputs: spec.inputs as u64,
                megapixels_e6: (spec.megapixels * 1e6).round() as u64,
            },
        );
        let max = self.platform.spec().max_canvases().max(1);
        let request = InvocationRequest {
            canvases: spec.inputs.min(max),
            megapixels: spec.megapixels,
            submitted: now,
        };
        // Fault actuation at the submit boundary: brownouts inflate the
        // sampled execution (factor 1.0 is the byte-identical no-op), a
        // cold-start storm keeps the warm pool dead, and latency tails
        // delay result delivery without occupying the instance.
        self.platform
            .set_compute_factor(self.faults.brownout_factor(now));
        if self.faults.cold_storm_active(now) {
            let _ = self.platform.evict_idle(now);
        }
        let outcome = self
            .platform
            .submit(request)
            .expect("batch sized within the GPU bound");
        let finished = outcome.finished + self.faults.tail_delay(now, outcome.execution);
        let mut violations = 0usize;
        for p in &spec.patches {
            let record = PatchRecord {
                patch: p.id,
                camera: p.camera,
                frame: p.frame,
                generated_at: p.generated_at,
                dispatched_at: now,
                finished_at: finished,
                slo: p.slo,
            };
            if record.violated() {
                violations += 1;
            }
            self.patch_records.push(record);
        }
        self.batch_records.push(BatchRecord {
            dispatched_at: now,
            inputs: spec.inputs,
            patch_count: spec.patches.len(),
            execution: outcome.execution,
            cold: outcome.cold,
            cost: outcome.cost,
            efficiencies: spec.canvas_efficiencies,
        });
        self.events.schedule(
            finished,
            StreamEvent::FunctionComplete {
                id: outcome.id,
                feedback: CompletionFeedback {
                    finished,
                    execution: outcome.execution,
                    violations,
                    inputs: spec.inputs,
                },
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::PolicyKind;
    use crate::workload::TraceConfig;
    use tangram_types::ids::SceneId;

    fn trace(scene: u8, frames: usize) -> CameraTrace {
        TraceConfig::proxy_extractor(SceneId::new(scene), frames, 7).build()
    }

    fn config(policy: PolicyKind) -> EngineConfig {
        EngineConfig {
            policy,
            seed: 7,
            ..EngineConfig::default()
        }
    }

    fn poisson_source(scene: u8, budget: usize, fps: f64, seed: u64) -> GeneratedSource {
        GeneratedSource::new(
            &trace(scene, 6),
            budget,
            ArrivalProcess::Poisson { fps },
            DetRng::new(seed).fork_indexed("online-test", u64::from(scene)),
        )
    }

    #[test]
    fn replay_sources_match_the_batch_entry_point() {
        let t = trace(1, 10);
        let cfg = config(PolicyKind::Tangram);
        let batch = cfg.run(std::slice::from_ref(&t));
        let mut online = OnlineEngine::new(&cfg);
        online.add_camera_at(SimTime::ZERO, Box::new(TraceReplaySource::new(t)));
        let streamed = online.run();
        assert_eq!(batch.summarize(), streamed.summarize());
    }

    #[test]
    fn poisson_cameras_stream_patches() {
        let mut engine = OnlineEngine::new(&config(PolicyKind::Tangram));
        engine.add_camera_at(SimTime::ZERO, Box::new(poisson_source(1, 20, 8.0, 3)));
        engine.add_camera_at(
            SimTime::from_micros(500),
            Box::new(poisson_source(2, 20, 8.0, 4)),
        );
        let report = engine.run();
        assert_eq!(report.frames, 40);
        assert!(report.patches_completed() > 40, "several patches per frame");
        assert_eq!(report.dropped_arrivals, 0);
        let cams: std::collections::HashSet<u32> =
            report.patches.iter().map(|p| p.camera.raw()).collect();
        assert_eq!(cams.len(), 2);
    }

    #[test]
    fn generated_ids_stay_unique_across_cycles() {
        // Budget far beyond the 6-frame pool: content cycles, ids must not.
        let mut src = poisson_source(1, 30, 10.0, 5);
        let mut seen = std::collections::HashSet::new();
        while let Some(frame) = src.next_frame() {
            for p in &frame.patches {
                assert!(seen.insert(p.info.id), "duplicate patch id {:?}", p.info.id);
            }
        }
        assert!(src.is_exhausted());
    }

    #[test]
    fn camera_leave_truncates_the_stream() {
        let cfg = config(PolicyKind::Tangram);
        let mut full = OnlineEngine::new(&cfg);
        full.add_camera_at(SimTime::ZERO, Box::new(poisson_source(1, 200, 10.0, 9)));
        let full_report = full.run();

        let mut churned = OnlineEngine::new(&cfg);
        let cam = churned.add_camera_at(SimTime::ZERO, Box::new(poisson_source(1, 200, 10.0, 9)));
        churned.remove_camera_at(SimTime::from_secs_f64(5.0), cam);
        let churned_report = churned.run();

        assert!(
            churned_report.frames < full_report.frames,
            "leave at 5 s must cut the 200-frame budget short ({} vs {})",
            churned_report.frames,
            full_report.frames
        );
        assert!(churned_report.frames > 0);
    }

    #[test]
    fn admission_hook_sheds_load() {
        let cfg = config(PolicyKind::Tangram);
        let mut engine = OnlineEngine::new(&cfg);
        engine.add_camera_at(SimTime::ZERO, Box::new(poisson_source(1, 10, 10.0, 11)));
        engine.set_admission(Box::new(|_, _| Admission::Drop));
        let report = engine.run();
        assert_eq!(report.patches_completed(), 0);
        assert!(report.dropped_arrivals > 0);
        assert!(report.batches.is_empty());
        // Per-class accounting: one class (the engine default SLO),
        // carrying every drop.
        assert_eq!(report.dropped_by_slo.len(), 1);
        assert_eq!(report.dropped_by_slo[0].0, cfg.slo);
        assert_eq!(report.dropped_by_slo[0].1, report.dropped_arrivals);
        let tenants = report.tenant_breakdown();
        assert_eq!(tenants.len(), 1);
        assert_eq!(tenants[0].dropped, report.dropped_arrivals);
        assert_eq!(tenants[0].patches, 0);
        let summary = report.summarize();
        assert_eq!(summary.dropped_arrivals, report.dropped_arrivals);
        assert_eq!(summary.tenants, tenants);
    }

    #[test]
    fn always_admit_matches_no_admission_policy() {
        let cfg = config(PolicyKind::Tangram);
        let bare = {
            let mut engine = OnlineEngine::new(&cfg);
            engine.add_camera_at(SimTime::ZERO, Box::new(poisson_source(1, 20, 8.0, 17)));
            engine.run().summarize()
        };
        let policed = {
            let mut engine = OnlineEngine::new(&cfg);
            engine.add_camera_at(SimTime::ZERO, Box::new(poisson_source(1, 20, 8.0, 17)));
            engine.set_admission_policy(Box::new(crate::admission::AlwaysAdmit));
            engine.run().summarize()
        };
        assert_eq!(bare, policed, "AlwaysAdmit must be a behavioural no-op");
        assert_eq!(policed.dropped_arrivals, 0);
    }

    #[test]
    fn slo_shedder_protects_gold_under_a_capacity_burst() {
        use crate::admission::SloShedder;
        // Two serverless instances, a wide uplink, and a Poisson burst at
        // roughly twice what the backend sustains, split between a tight
        // "gold" tenant and a lax best-effort one: gold alone fits
        // capacity, the mix does not.
        let mut cfg = config(PolicyKind::Tangram);
        cfg.max_instances = Some(2);
        cfg.bandwidth_mbps = 200.0;
        let gold = TenantClass::new("gold", SimDuration::from_millis(800));
        let best_effort = TenantClass::new("best-effort", SimDuration::from_secs(3));

        let mut engine = OnlineEngine::new(&cfg);
        engine.add_camera_at(
            SimTime::ZERO,
            Box::new(poisson_source(1, 60, 16.0, 21).with_tenant(&gold)),
        );
        engine.add_camera_at(
            SimTime::ZERO,
            Box::new(poisson_source(2, 60, 16.0, 22).with_tenant(&best_effort)),
        );
        engine.set_admission_policy(Box::new(
            SloShedder::new(SimDuration::from_millis(20))
                .with_pressure(0.5)
                .with_classes(&[gold.slo, best_effort.slo]),
        ));
        let report = engine.run();
        let tenants = report.tenant_breakdown();
        assert_eq!(tenants.len(), 2);
        let gold_row = &tenants[0];
        let lax_row = &tenants[1];
        assert!((gold_row.slo_s - 0.8).abs() < 1e-12);
        assert!(
            gold_row.patches > 0,
            "gold keeps completing under the burst"
        );
        assert_eq!(
            gold_row.dropped, 0,
            "gold-class patches survive the 2x burst"
        );
        assert!(
            lax_row.dropped > 0,
            "best-effort is shed first under pressure"
        );
        assert_eq!(
            report.dropped_arrivals,
            gold_row.dropped + lax_row.dropped,
            "per-class drops sum to the total"
        );
    }

    fn drr_ingress(weights: &[f64], capacity: usize) -> crate::fairness::DrrIngress {
        use crate::fairness::{DrrConfig, DrrIngress};
        DrrIngress::new(&DrrConfig {
            classes: vec![
                (SimDuration::from_millis(800), weights[0]),
                (SimDuration::from_millis(1500), weights[1]),
            ],
            queue_capacity: capacity,
            quantum: 1.0,
            tick: SimDuration::from_millis(20),
        })
    }

    /// Two gold and two best-effort cameras at roughly 2× the DRR service
    /// rate: the admitted mix must track the 3:1 weights instead of
    /// collapsing to one class, and the per-class queue peaks must land
    /// in the report.
    #[test]
    fn fair_ingress_holds_weighted_shares_under_overload() {
        let gold = TenantClass::new("gold", SimDuration::from_millis(800));
        let lax = TenantClass::new("best-effort", SimDuration::from_millis(1500));
        // A wide uplink so the ingress — not the link — is the limiter:
        // ~500 patches/s offered against a 200 item/s DRR service rate.
        let mut cfg = config(PolicyKind::Tangram);
        cfg.bandwidth_mbps = 200.0;
        let mut engine = OnlineEngine::new(&cfg);
        for (i, tenant) in [&gold, &lax, &gold, &lax].into_iter().enumerate() {
            engine.add_camera_at(
                SimTime::ZERO,
                Box::new(poisson_source(1 + i as u8, 60, 16.0, 31 + i as u64).with_tenant(tenant)),
            );
        }
        engine.set_fair_ingress(drr_ingress(&[3.0, 1.0], 32));
        let report = engine.run();
        let tenants = report.tenant_breakdown();
        assert_eq!(tenants.len(), 2);
        let (gold_row, lax_row) = (&tenants[0], &tenants[1]);
        assert!(lax_row.dropped > 0, "overload must overflow best-effort");
        let admitted = (gold_row.admitted + lax_row.admitted) as f64;
        let gold_share = gold_row.admitted as f64 / admitted;
        // Work-conserving DRR lets an intermittently empty gold queue
        // donate its credit to best-effort, so the admitted mix sits a
        // little below the pure 3:1 weight split — but must still track
        // it, not collapse to one class.
        assert!(
            (gold_share - 0.75).abs() < 0.11,
            "admitted gold share {gold_share:.3} should track weight 3/4"
        );
        assert_eq!(
            gold_row.admitted + gold_row.dropped,
            report
                .ingress_admitted
                .iter()
                .find(|&&(slo, _)| slo == gold.slo)
                .map(|&(_, n)| n)
                .unwrap()
                + gold_row.dropped,
            "admitted + dropped accounts every gold arrival"
        );
        // Per-class queue-depth accounting reaches the report: the
        // overflowing class peaks at its capacity bound.
        assert_eq!(report.ingress_peak_depth.len(), 2);
        assert_eq!(lax_row.peak_queued, 8, "best-effort pins its buffer slice");
        assert!(gold_row.peak_queued > 0);
        // Overflow sheds are ingress drops like any other.
        assert_eq!(report.dropped_arrivals, gold_row.dropped + lax_row.dropped);
        let summary = report.summarize();
        assert_eq!(summary.tenants, tenants);
    }

    /// An uncongested DRR ingress is (almost) invisible: nothing sheds,
    /// every patch completes, and the run drains fully at end of stream.
    #[test]
    fn fair_ingress_is_transparent_below_capacity() {
        let cfg = config(PolicyKind::Tangram);
        let bare = {
            let mut engine = OnlineEngine::new(&cfg);
            engine.add_camera_at(SimTime::ZERO, Box::new(poisson_source(1, 20, 4.0, 17)));
            engine.run()
        };
        let fair = {
            use crate::fairness::{DrrConfig, DrrIngress};
            let mut engine = OnlineEngine::new(&cfg);
            engine.add_camera_at(SimTime::ZERO, Box::new(poisson_source(1, 20, 4.0, 17)));
            // One class (the engine default SLO) owning the whole buffer.
            engine.set_fair_ingress(DrrIngress::new(&DrrConfig {
                classes: vec![(cfg.slo, 1.0)],
                queue_capacity: 64,
                quantum: 1.0,
                tick: SimDuration::from_millis(20),
            }));
            engine.run()
        };
        assert_eq!(fair.dropped_arrivals, 0);
        assert_eq!(
            fair.patches_completed(),
            bare.patches_completed(),
            "every admitted patch must drain through the DRR stage"
        );
        assert_eq!(fair.frames, bare.frames);
    }

    /// With both stages installed, admitted-but-unreleased work sitting
    /// in the DRR queues must count toward the admission policy's
    /// queue-depth signal — otherwise the shedder admits arrivals that
    /// are already doomed by ingress queueing delay.
    #[test]
    fn admission_signals_include_fair_ingress_backlog() {
        use crate::admission::QueueDepthThreshold;
        use crate::fairness::{DrrConfig, DrrIngress};
        let cfg = config(PolicyKind::Tangram);
        let mut engine = OnlineEngine::new(&cfg);
        engine.add_camera_at(SimTime::ZERO, Box::new(poisson_source(1, 20, 16.0, 19)));
        engine.set_admission_policy(Box::new(QueueDepthThreshold::new(5)));
        // A crawling single-class ingress: its standing queue, not the
        // scheduler's, is where admitted-but-undispatched work piles up.
        engine.set_fair_ingress(DrrIngress::new(&DrrConfig {
            classes: vec![(cfg.slo, 1.0)],
            queue_capacity: 1000,
            quantum: 1.0,
            tick: SimDuration::from_millis(200),
        }));
        let report = engine.run();
        assert!(
            report.dropped_arrivals > 0,
            "queue-depth admission must see the ingress backlog"
        );
    }

    #[test]
    fn fair_ingress_runs_are_deterministic() {
        let run = || {
            let mut engine = OnlineEngine::new(&config(PolicyKind::Tangram));
            engine.add_camera_at(SimTime::ZERO, Box::new(poisson_source(1, 40, 16.0, 23)));
            engine.add_camera_at(SimTime::ZERO, Box::new(poisson_source(2, 40, 16.0, 24)));
            engine.set_fair_ingress(drr_ingress(&[3.0, 1.0], 8));
            engine.run().summarize()
        };
        assert_eq!(run(), run(), "same seed, same digest, sheds included");
    }

    #[test]
    fn tenant_slo_classes_stamp_patches() {
        let cfg = config(PolicyKind::Tangram);
        let gold = TenantClass::new("gold", SimDuration::from_millis(600));
        let best_effort = TenantClass::new("best-effort", SimDuration::from_secs(3));
        let mut engine = OnlineEngine::new(&cfg);
        engine.add_camera_at(
            SimTime::ZERO,
            Box::new(poisson_source(1, 8, 8.0, 13).with_tenant(&gold)),
        );
        engine.add_camera_at(
            SimTime::from_micros(1000),
            Box::new(poisson_source(2, 8, 8.0, 14).with_tenant(&best_effort)),
        );
        let report = engine.run();
        let slos: std::collections::HashSet<u64> =
            report.patches.iter().map(|p| p.slo.as_micros()).collect();
        assert!(slos.contains(&600_000), "gold SLO stamped");
        assert!(slos.contains(&3_000_000), "best-effort SLO stamped");
    }

    #[test]
    fn sharded_runs_match_the_inline_oracle() {
        let build = || {
            let mut engine = OnlineEngine::new(&config(PolicyKind::Tangram));
            for i in 0..6u8 {
                engine.add_camera_at(
                    SimTime::from_micros(u64::from(i) * 700),
                    Box::new(poisson_source(1 + i, 30, 12.0, 40 + u64::from(i))),
                );
            }
            engine
        };
        let oracle = build().run();
        for shards in [2, 3, 8] {
            let mut engine = build();
            engine.set_shards(shards);
            let sharded = engine.run();
            assert_eq!(
                sharded.summarize(),
                oracle.summarize(),
                "digest must be byte-identical at {shards} shards"
            );
            assert_eq!(sharded.frames, oracle.frames);
            assert_eq!(sharded.events_processed, oracle.events_processed);
        }
    }

    #[test]
    fn minimum_credit_window_matches_the_inline_oracle() {
        // CREDIT_WINDOW=1 is the tightest flow control the protocol
        // supports: every shard hand-off round-trips one credit. The
        // digests must still be byte-identical to the 1-shard oracle —
        // the window is pure run-ahead, never ordering.
        let build = || {
            let mut engine = OnlineEngine::new(&config(PolicyKind::Tangram));
            for i in 0..5u8 {
                engine.add_camera_at(
                    SimTime::from_micros(u64::from(i) * 900),
                    Box::new(poisson_source(1 + i, 24, 11.0, 70 + u64::from(i))),
                );
            }
            engine
        };
        let oracle = build().run();
        for shards in [2, 3] {
            let mut engine = build();
            engine.set_shards(shards);
            engine.set_credit_window(1);
            let tight = engine.run();
            assert_eq!(
                tight.summarize(),
                oracle.summarize(),
                "CREDIT_WINDOW=1 at {shards} shards diverged from the oracle"
            );
            assert_eq!(tight.frames, oracle.frames);
            assert_eq!(tight.events_processed, oracle.events_processed);
        }
    }

    #[test]
    fn sharding_leaves_closed_loop_sources_inline() {
        // Trace replay paces on the shared uplink, so it must stay on
        // the coordinator even when shards are requested — and produce
        // the exact legacy digest.
        let t = trace(1, 10);
        let cfg = config(PolicyKind::Tangram);
        let batch = cfg.run(std::slice::from_ref(&t));
        let mut online = OnlineEngine::new(&cfg);
        online.add_camera_at(SimTime::ZERO, Box::new(TraceReplaySource::new(t)));
        online.set_shards(8);
        assert_eq!(online.run().summarize(), batch.summarize());
    }

    #[test]
    fn sharded_churn_matches_inline() {
        // A camera that leaves mid-run: the coordinator stops consuming
        // its shard stream; digests still match the inline run.
        let build = || {
            let mut engine = OnlineEngine::new(&config(PolicyKind::Tangram));
            let cam =
                engine.add_camera_at(SimTime::ZERO, Box::new(poisson_source(1, 200, 10.0, 9)));
            engine.add_camera_at(SimTime::ZERO, Box::new(poisson_source(2, 50, 10.0, 10)));
            engine.remove_camera_at(SimTime::from_secs_f64(5.0), cam);
            engine
        };
        let oracle = build().run().summarize();
        let mut sharded = build();
        sharded.set_shards(2);
        assert_eq!(sharded.run().summarize(), oracle);
    }

    #[test]
    fn bursty_and_diurnal_processes_are_deterministic() {
        for process in [
            ArrivalProcess::Bursty {
                calm_fps: 2.0,
                burst_fps: 20.0,
                mean_calm_s: 2.0,
                mean_burst_s: 0.5,
            },
            ArrivalProcess::Diurnal {
                min_fps: 1.0,
                max_fps: 12.0,
                period_s: 30.0,
            },
        ] {
            let run = |seed: u64| {
                let mut engine = OnlineEngine::new(&config(PolicyKind::Tangram));
                engine.add_camera_at(
                    SimTime::ZERO,
                    Box::new(GeneratedSource::new(
                        &trace(1, 6),
                        25,
                        process,
                        DetRng::new(seed).fork("bursty-diurnal"),
                    )),
                );
                engine.run().summarize()
            };
            assert_eq!(run(5), run(5), "same seed, same digest");
            assert_ne!(
                run(5).makespan_s,
                run(6).makespan_s,
                "different seeds should move the arrival timeline"
            );
        }
    }
}
