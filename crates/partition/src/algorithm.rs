//! The adaptive frame partitioning algorithm (Algorithm 1).

use serde::{Deserialize, Serialize};
use tangram_types::geometry::{Rect, Size};

/// Zone-grid shape `X × Y` — the paper's partitioning knob (Table II /
/// Table III trade accuracy against bandwidth through this).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PartitionConfig {
    /// Number of zone columns (`X`).
    pub zones_x: u32,
    /// Number of zone rows (`Y`).
    pub zones_y: u32,
}

impl PartitionConfig {
    /// Creates a grid configuration.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    #[must_use]
    pub fn new(zones_x: u32, zones_y: u32) -> Self {
        assert!(zones_x > 0 && zones_y > 0, "zone grid must be non-empty");
        Self { zones_x, zones_y }
    }

    /// Total number of zones.
    #[must_use]
    pub fn zone_count(&self) -> u32 {
        self.zones_x * self.zones_y
    }

    /// The rectangle of zone `(ix, iy)` for a `frame`-sized image. Zones
    /// tile the frame exactly; the last row/column absorbs the remainder
    /// when the frame size is not divisible by the grid.
    #[must_use]
    pub fn zone_rect(&self, frame: Size, ix: u32, iy: u32) -> Rect {
        debug_assert!(ix < self.zones_x && iy < self.zones_y);
        let zw = frame.width / self.zones_x;
        let zh = frame.height / self.zones_y;
        let x = ix * zw;
        let y = iy * zh;
        let w = if ix + 1 == self.zones_x {
            frame.width - x
        } else {
            zw
        };
        let h = if iy + 1 == self.zones_y {
            frame.height - y
        } else {
            zh
        };
        Rect::new(x, y, w, h)
    }

    /// Iterates over all zone rectangles in row-major order.
    pub fn zones(&self, frame: Size) -> impl Iterator<Item = Rect> + '_ {
        let (nx, ny) = (self.zones_x, self.zones_y);
        (0..ny).flat_map(move |iy| (0..nx).map(move |ix| self.zone_rect(frame, ix, iy)))
    }
}

impl Default for PartitionConfig {
    /// The paper's default evaluation setting, 4 × 4.
    fn default() -> Self {
        Self::new(4, 4)
    }
}

/// A patch cut from one zone, with provenance.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ZonePatch {
    /// Row-major zone index the patch came from.
    pub zone: u32,
    /// The patch rectangle: the minimum enclosing rectangle of the zone's
    /// affiliated RoIs (may extend beyond the zone when RoIs straddle the
    /// boundary).
    pub rect: Rect,
    /// Indices (into the input slice) of the RoIs affiliated to this zone.
    pub roi_indices: Vec<usize>,
}

/// Runs Algorithm 1 and returns only the patch rectangles.
///
/// Zero-area RoIs are ignored. See [`partition_detailed`] for provenance.
#[must_use]
pub fn partition(frame: Size, config: PartitionConfig, rois: &[Rect]) -> Vec<Rect> {
    partition_detailed(frame, config, rois)
        .into_iter()
        .map(|p| p.rect)
        .collect()
}

/// Runs Algorithm 1, keeping per-patch provenance.
///
/// Steps (paper numbering):
/// 1. divide the frame into `X × Y` equal zones;
/// 2. affiliate each RoI `b` with the zone `r* = argmax_r S_{b,r}`
///    (largest overlap area; ties resolve to the lowest zone index, which
///    makes the algorithm deterministic);
/// 3. resize each non-empty zone to the minimum enclosing rectangle of its
///    RoI list;
/// 4. cut each resized zone as a patch.
#[must_use]
pub fn partition_detailed(frame: Size, config: PartitionConfig, rois: &[Rect]) -> Vec<ZonePatch> {
    let zone_rects: Vec<Rect> = config.zones(frame).collect();
    let mut lists: Vec<Vec<usize>> = vec![Vec::new(); zone_rects.len()];

    for (i, roi) in rois.iter().enumerate() {
        if roi.is_empty() {
            continue;
        }
        let mut best_zone = None;
        let mut best_overlap = 0u64;
        for (z, zr) in zone_rects.iter().enumerate() {
            let overlap = roi.overlap_area(zr);
            if overlap > best_overlap {
                best_overlap = overlap;
                best_zone = Some(z);
            }
        }
        if let Some(z) = best_zone {
            lists[z].push(i);
        }
    }

    lists
        .into_iter()
        .enumerate()
        .filter(|(_, list)| !list.is_empty())
        .map(|(z, list)| {
            let rect = Rect::enclosing(list.iter().map(|&i| &rois[i]))
                .expect("non-empty list has an enclosing rect");
            ZonePatch {
                zone: z as u32,
                rect,
                roi_indices: list,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const FRAME: Size = Size::UHD_4K;

    #[test]
    fn zone_rects_tile_the_frame() {
        for config in [
            PartitionConfig::new(2, 2),
            PartitionConfig::new(4, 4),
            PartitionConfig::new(6, 6),
            PartitionConfig::new(3, 5),
        ] {
            let total: u64 = config.zones(FRAME).map(|z| z.area()).sum();
            assert_eq!(total, FRAME.area(), "zones must tile {config:?}");
            // 6 does not divide 2160*? 2160/6=360 ✓; use a non-divisible case:
        }
        // Non-divisible case: 3840/7 leaves a remainder for the last column.
        let c = PartitionConfig::new(7, 3);
        let total: u64 = c.zones(FRAME).map(|z| z.area()).sum();
        assert_eq!(total, FRAME.area());
    }

    #[test]
    fn roi_goes_to_max_overlap_zone() {
        // RoI mostly inside the top-left zone of a 2x2 grid, spilling a bit
        // into the top-right.
        let config = PartitionConfig::new(2, 2);
        // Spans 1700..2000 across the 1920 split: 220 px in zone 0, 80 px in
        // zone 1 — the majority overlap wins.
        let roi = Rect::new(1700, 100, 300, 200);
        let detailed = partition_detailed(FRAME, config, &[roi]);
        assert_eq!(detailed.len(), 1);
        assert_eq!(detailed[0].zone, 0, "majority of the RoI is in zone 0");
        assert_eq!(detailed[0].rect, roi);
    }

    #[test]
    fn patch_is_minimum_enclosing_rectangle() {
        let config = PartitionConfig::new(2, 2);
        let rois = [
            Rect::new(100, 100, 50, 50),
            Rect::new(700, 400, 80, 60),
            Rect::new(300, 900, 40, 120),
        ];
        let detailed = partition_detailed(FRAME, config, &rois);
        assert_eq!(detailed.len(), 1);
        let expected = Rect::enclosing(rois.iter()).unwrap();
        assert_eq!(detailed[0].rect, expected);
        assert_eq!(detailed[0].roi_indices, vec![0, 1, 2]);
    }

    #[test]
    fn every_roi_fully_inside_its_patch() {
        let config = PartitionConfig::new(4, 4);
        let rois = [
            Rect::new(940, 530, 100, 80), // straddles the zone boundary at 960
            Rect::new(2000, 1500, 60, 90),
            Rect::new(3700, 2000, 120, 150),
        ];
        let patches = partition(FRAME, config, &rois);
        for roi in &rois {
            assert!(
                patches.iter().any(|p| p.contains_rect(roi)),
                "RoI {roi} not covered"
            );
        }
    }

    #[test]
    fn patch_count_bounded_by_zone_count() {
        let config = PartitionConfig::new(2, 2);
        // Many RoIs spread everywhere.
        let rois: Vec<Rect> = (0..50)
            .map(|i| Rect::new((i * 73) % 3700, (i * 131) % 2000, 60, 90))
            .collect();
        let patches = partition(FRAME, config, &rois);
        assert!(patches.len() <= 4);
        assert!(!patches.is_empty());
    }

    #[test]
    fn empty_inputs() {
        assert!(partition(FRAME, PartitionConfig::default(), &[]).is_empty());
        // Zero-area RoIs are skipped.
        let degenerate = [Rect::new(10, 10, 0, 5)];
        assert!(partition(FRAME, PartitionConfig::default(), &degenerate).is_empty());
    }

    #[test]
    fn finer_grids_produce_tighter_coverage() {
        // The Table II driver: coarser grids enclose more background.
        let rois: Vec<Rect> = (0..24)
            .map(|i| Rect::new(200 + (i % 6) * 600, 200 + (i / 6) * 450, 80, 120))
            .collect();
        let area = |cfg: PartitionConfig| -> u64 {
            partition(FRAME, cfg, &rois).iter().map(Rect::area).sum()
        };
        let coarse = area(PartitionConfig::new(2, 2));
        let medium = area(PartitionConfig::new(4, 4));
        let fine = area(PartitionConfig::new(6, 6));
        assert!(coarse >= medium, "2x2 {coarse} < 4x4 {medium}");
        assert!(medium >= fine, "4x4 {medium} < 6x6 {fine}");
    }

    #[test]
    fn tie_breaks_to_lowest_zone_index() {
        // An RoI exactly centred on the 2x2 crossing overlaps all four
        // zones equally; it must deterministically go to zone 0.
        let config = PartitionConfig::new(2, 2);
        let roi = Rect::new(1920 - 50, 1080 - 50, 100, 100);
        let detailed = partition_detailed(FRAME, config, &[roi]);
        assert_eq!(detailed.len(), 1);
        assert_eq!(detailed[0].zone, 0);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn zero_zone_grid_rejected() {
        let _ = PartitionConfig::new(0, 3);
    }

    #[test]
    fn default_is_paper_setting() {
        let d = PartitionConfig::default();
        assert_eq!((d.zones_x, d.zones_y), (4, 4));
        assert_eq!(d.zone_count(), 16);
    }
}
