//! Adaptive frame partitioning — Algorithm 1 of the paper.
//!
//! The edge divides each frame into `X × Y` zones, affiliates every RoI
//! with the zone it overlaps most, resizes each non-empty zone to the
//! minimum enclosing rectangle of its RoIs, and cuts those rectangles out
//! as *patches*. Patches preserve nearby/overflowing objects that raw RoI
//! cropping would lose, while discarding the background that dominates
//! high-resolution frames (Table I: RoIs are < 10% of most frames).
//!
//! [`algorithm`] implements the partitioning itself; [`pipeline`] wraps an
//! RoI extractor + partitioning + SLO stamping into the complete edge-side
//! pipeline that feeds the cloud scheduler.
//!
//! # Example
//!
//! ```
//! use tangram_partition::algorithm::{partition, PartitionConfig};
//! use tangram_types::geometry::{Rect, Size};
//!
//! let rois = vec![Rect::new(100, 100, 50, 80), Rect::new(2000, 1200, 60, 90)];
//! let patches = partition(Size::UHD_4K, PartitionConfig::new(4, 4), &rois);
//! assert_eq!(patches.len(), 2);
//! // Every RoI is fully contained in some patch.
//! for roi in &rois {
//!     assert!(patches.iter().any(|p| p.contains_rect(roi)));
//! }
//! ```

pub mod algorithm;
pub mod pipeline;

pub use algorithm::{partition, partition_detailed, PartitionConfig, ZonePatch};
pub use pipeline::{EdgePipeline, EdgePipelineConfig, FrameOutput};
