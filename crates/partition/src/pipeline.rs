//! The complete edge-side pipeline: extract RoIs → partition → stamp
//! patch metadata (generation time, size, SLO) → encode.
//!
//! This is the paper's `partition(Frame, X, Y, M, N)` edge API: everything
//! that happens on the camera/Jetson before patches enter the uplink.

use crate::algorithm::{partition_detailed, PartitionConfig, ZonePatch};
use tangram_types::geometry::Rect;
use tangram_types::ids::{CameraId, PatchId};
use tangram_types::patch::{Patch, PatchInfo};
use tangram_types::time::SimDuration;
use tangram_types::units::Bytes;
use tangram_video::codec::CodecModel;
use tangram_video::generator::FrameTruth;
use tangram_vision::extractor::RoiExtractor;

/// Static configuration of one edge pipeline.
#[derive(Debug, Clone)]
pub struct EdgePipelineConfig {
    /// Camera identity (stamped into every patch).
    pub camera: CameraId,
    /// Zone grid for Algorithm 1.
    pub partition: PartitionConfig,
    /// SLO attached to every patch of a frame (same for all patches of one
    /// frame, per §III-A).
    pub slo: SimDuration,
    /// Byte-cost model used to size the encoded crops.
    pub codec: CodecModel,
}

impl EdgePipelineConfig {
    /// Creates a configuration with the paper's defaults (4×4 zones).
    #[must_use]
    pub fn new(camera: CameraId, slo: SimDuration) -> Self {
        Self {
            camera,
            partition: PartitionConfig::default(),
            slo,
            codec: CodecModel::default(),
        }
    }
}

/// Everything the edge produced for one frame.
#[derive(Debug, Clone)]
pub struct FrameOutput {
    /// The patches, ready for upload.
    pub patches: Vec<Patch>,
    /// The raw RoIs the extractor produced (diagnostics/experiments).
    pub rois: Vec<Rect>,
    /// Zone provenance for each patch (same order as `patches`).
    pub zone_patches: Vec<ZonePatch>,
    /// Total encoded bytes of all patches.
    pub uploaded: Bytes,
}

/// The stateful edge pipeline for one camera.
pub struct EdgePipeline<E> {
    config: EdgePipelineConfig,
    extractor: E,
    next_patch: u64,
}

impl<E: RoiExtractor> EdgePipeline<E> {
    /// Wraps an extractor into a pipeline.
    #[must_use]
    pub fn new(config: EdgePipelineConfig, extractor: E) -> Self {
        Self {
            config,
            extractor,
            next_patch: 0,
        }
    }

    /// The pipeline configuration.
    #[must_use]
    pub fn config(&self) -> &EdgePipelineConfig {
        &self.config
    }

    /// Access to the wrapped extractor.
    #[must_use]
    pub fn extractor(&self) -> &E {
        &self.extractor
    }

    /// Processes one captured frame: extraction, partitioning, stamping.
    ///
    /// Patch ids are globally unique: the camera id occupies the high bits.
    pub fn process(&mut self, frame: &FrameTruth) -> FrameOutput {
        let rois = self.extractor.extract(frame);
        let zone_patches = partition_detailed(frame.frame_size, self.config.partition, &rois);
        let mut patches = Vec::with_capacity(zone_patches.len());
        let mut uploaded = Bytes::ZERO;
        for zp in &zone_patches {
            let id = PatchId::new((u64::from(self.config.camera.raw()) << 40) | self.next_patch);
            self.next_patch += 1;
            let info = PatchInfo::new(
                id,
                self.config.camera,
                frame.frame,
                zp.rect,
                frame.timestamp,
                self.config.slo,
            );
            let encoded = self.config.codec.patch_bytes(zp.rect);
            uploaded += encoded;
            patches.push(Patch::new(info, encoded));
        }
        FrameOutput {
            patches,
            rois,
            zone_patches,
            uploaded,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tangram_sim::rng::DetRng;
    use tangram_types::ids::SceneId;
    use tangram_video::generator::{SceneSimulation, VideoConfig};
    use tangram_vision::detector::DetectorProxy;
    use tangram_vision::extractor::ProxyExtractor;

    fn pipeline() -> EdgePipeline<ProxyExtractor> {
        let config = EdgePipelineConfig::new(CameraId::new(3), SimDuration::from_secs(1));
        let extractor = ProxyExtractor::new(DetectorProxy::ssdlite_mobilenet_v2(), DetRng::new(1));
        EdgePipeline::new(config, extractor)
    }

    fn a_frame() -> FrameTruth {
        let mut sim = SceneSimulation::new(SceneId::new(2), VideoConfig::default(), 11);
        sim.next_frame()
    }

    #[test]
    fn patches_carry_frame_metadata() {
        let mut p = pipeline();
        let frame = a_frame();
        let out = p.process(&frame);
        assert!(!out.patches.is_empty());
        for patch in &out.patches {
            assert_eq!(patch.info.camera, CameraId::new(3));
            assert_eq!(patch.info.frame, frame.frame);
            assert_eq!(patch.info.generated_at, frame.timestamp);
            assert_eq!(patch.info.slo, SimDuration::from_secs(1));
            assert!(patch.encoded_size.get() > 0);
        }
    }

    #[test]
    fn patch_ids_unique_and_camera_scoped() {
        let mut p = pipeline();
        let frame = a_frame();
        let out1 = p.process(&frame);
        let out2 = p.process(&frame);
        let mut ids: Vec<u64> = out1
            .patches
            .iter()
            .chain(out2.patches.iter())
            .map(|p| p.id().raw())
            .collect();
        let before = ids.len();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), before, "duplicate patch ids");
        for id in ids {
            assert_eq!(id >> 40, 3, "camera id must occupy the high bits");
        }
    }

    #[test]
    fn uploaded_matches_patch_sum() {
        let mut p = pipeline();
        let out = p.process(&a_frame());
        let sum: Bytes = out.patches.iter().map(|p| p.encoded_size).sum();
        assert_eq!(out.uploaded, sum);
    }

    #[test]
    fn zone_patches_align_with_patches() {
        let mut p = pipeline();
        let out = p.process(&a_frame());
        assert_eq!(out.patches.len(), out.zone_patches.len());
        for (patch, zp) in out.patches.iter().zip(&out.zone_patches) {
            assert_eq!(patch.info.rect, zp.rect);
        }
    }
}
