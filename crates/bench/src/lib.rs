//! Shared experiment-harness utilities.
//!
//! Every table and figure of the paper has a binary in `src/bin/` that
//! regenerates it (see `DESIGN.md` §3 for the index). This library holds
//! the bits they share: CLI options, aligned table printing, and the
//! accuracy-pipeline helpers that turn extractor output into
//! [`tangram_infer::accuracy::PresentedObject`]s.

use tangram_infer::accuracy::PresentedObject;
use tangram_types::geometry::Rect;
use tangram_video::generator::FrameTruth;

/// Options common to all experiment binaries.
#[derive(Debug, Clone)]
pub struct ExpOpts {
    /// Experiment seed (`--seed N`).
    pub seed: u64,
    /// Frame-count override (`--frames N`).
    pub frames: Option<usize>,
    /// Quick mode (`--quick`): fewer frames/scenes for smoke runs.
    pub quick: bool,
}

impl ExpOpts {
    /// Parses `std::env::args`. Unknown flags are ignored so wrappers can
    /// pass extra context.
    #[must_use]
    pub fn from_args() -> Self {
        let args: Vec<String> = std::env::args().collect();
        let mut opts = Self {
            seed: 42,
            frames: None,
            quick: false,
        };
        let mut i = 1;
        while i < args.len() {
            match args[i].as_str() {
                "--seed" => {
                    if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                        opts.seed = v;
                        i += 1;
                    }
                }
                "--frames" => {
                    if let Some(v) = args.get(i + 1).and_then(|s| s.parse().ok()) {
                        opts.frames = Some(v);
                        i += 1;
                    }
                }
                "--quick" => opts.quick = true,
                _ => {}
            }
            i += 1;
        }
        opts
    }

    /// Frame budget: explicit `--frames`, else `quick_default` in quick
    /// mode, else `full_default`.
    #[must_use]
    pub fn frame_budget(&self, quick_default: usize, full_default: usize) -> usize {
        self.frames.unwrap_or(if self.quick {
            quick_default
        } else {
            full_default
        })
    }
}

/// A fixed-width text table.
#[derive(Debug, Default)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    #[must_use]
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(headers: I) -> Self {
        Self {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Adds a row (cells are stringified by the caller).
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) {
        self.rows.push(cells.into_iter().map(Into::into).collect());
    }

    /// Renders the table with aligned columns.
    #[must_use]
    pub fn render(&self) -> String {
        let columns = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(columns) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{cell:<width$}", width = widths[i]));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (columns - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Fraction of `object` covered by the union of `regions`, computed
/// exactly via inclusion-exclusion on the clipped pieces (regions rarely
/// overlap after merging, so the quadratic term is cheap).
#[must_use]
pub fn covered_fraction(object: &Rect, regions: &[Rect]) -> f64 {
    let pieces: Vec<Rect> = regions.iter().filter_map(|r| r.intersect(object)).collect();
    if pieces.is_empty() {
        return 0.0;
    }
    let mut covered: i64 = pieces.iter().map(|p| p.area() as i64).sum();
    // Subtract pairwise overlaps (regions overlapping inside the object).
    for (i, a) in pieces.iter().enumerate() {
        for b in &pieces[i + 1..] {
            covered -= a.overlap_area(b) as i64;
        }
    }
    (covered.max(0) as f64 / object.area() as f64).min(1.0)
}

/// Builds the presented objects for a frame whose pixels reach the model
/// only inside `regions` (RoIs, patches or mask), presented at native
/// scale. Objects completely outside the regions are absent.
#[must_use]
pub fn present_through_regions(frame: &FrameTruth, regions: &[Rect]) -> Vec<PresentedObject> {
    frame
        .objects
        .iter()
        .filter_map(|o| {
            let coverage = covered_fraction(&o.rect, regions);
            if coverage <= 0.0 {
                return None;
            }
            Some(PresentedObject {
                track: o.track,
                true_rect: o.rect,
                presented_area: o.rect.area() as f64 * coverage,
                visible_fraction: coverage,
            })
        })
        .collect()
}

/// Builds the presented objects for a whole frame uniformly rescaled by
/// `scale` (full-frame and masked-frame baselines; downsizing baselines).
#[must_use]
pub fn present_scaled(frame: &FrameTruth, scale: f64) -> Vec<PresentedObject> {
    frame
        .objects
        .iter()
        .map(|o| PresentedObject::scaled(o.track, o.rect, scale))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tangram_types::geometry::Size;
    use tangram_types::ids::{FrameId, SceneId};
    use tangram_types::time::SimTime;
    use tangram_video::object::GtObject;

    #[test]
    fn table_renders_aligned() {
        let mut t = TextTable::new(["scene", "value"]);
        t.row(["scene_01", "1.0"]);
        t.row(["s2", "22.5"]);
        let r = t.render();
        assert!(r.contains("scene_01  1.0"));
        assert!(r.lines().count() == 4);
    }

    #[test]
    fn covered_fraction_full_and_none() {
        let obj = Rect::new(10, 10, 100, 100);
        assert_eq!(covered_fraction(&obj, &[Rect::new(0, 0, 200, 200)]), 1.0);
        assert_eq!(covered_fraction(&obj, &[Rect::new(500, 500, 10, 10)]), 0.0);
    }

    #[test]
    fn covered_fraction_partial_union() {
        let obj = Rect::new(0, 0, 100, 100);
        // Two disjoint halves cover everything.
        let halves = [Rect::new(0, 0, 50, 100), Rect::new(50, 0, 50, 100)];
        assert!((covered_fraction(&obj, &halves) - 1.0).abs() < 1e-12);
        // Two identical halves cover only half (double counting removed).
        let dup = [Rect::new(0, 0, 50, 100), Rect::new(0, 0, 50, 100)];
        assert!((covered_fraction(&obj, &dup) - 0.5).abs() < 1e-12);
    }

    fn mini_frame() -> FrameTruth {
        FrameTruth {
            scene: SceneId::new(1),
            frame: FrameId::new(0),
            timestamp: SimTime::ZERO,
            frame_size: Size::UHD_4K,
            objects: vec![
                GtObject::new(1, Rect::new(0, 0, 100, 200)),
                GtObject::new(2, Rect::new(2000, 1000, 80, 160)),
            ],
            raster: None,
        }
    }

    #[test]
    fn present_through_regions_drops_uncovered() {
        let frame = mini_frame();
        let regions = [Rect::new(0, 0, 500, 500)];
        let presented = present_through_regions(&frame, &regions);
        assert_eq!(presented.len(), 1);
        assert_eq!(presented[0].track, 1);
        assert!((presented[0].visible_fraction - 1.0).abs() < 1e-12);
    }

    #[test]
    fn present_scaled_shrinks_areas() {
        let frame = mini_frame();
        let presented = present_scaled(&frame, 0.5);
        assert_eq!(presented.len(), 2);
        assert!((presented[0].presented_area - 100.0 * 200.0 * 0.25).abs() < 1e-9);
    }
}
