//! Shared experiment utilities for the figure/table binaries.
//!
//! Every table and figure of the paper has a binary in `src/bin/` that
//! regenerates it. The sweep/parallelism/reporting machinery lives in
//! [`tangram_harness`] (re-exported here); this library keeps only the
//! accuracy-pipeline helpers that turn extractor output into
//! [`tangram_infer::accuracy::PresentedObject`]s.
//!
//! # Example
//!
//! ```
//! use tangram_bench::covered_fraction;
//! use tangram_types::geometry::Rect;
//!
//! // Half of a 100×100 object lies inside the served region.
//! let object = Rect::new(0, 0, 100, 100);
//! let covered = covered_fraction(&object, &[Rect::new(0, 0, 50, 100)]);
//! assert!((covered - 0.5).abs() < 1e-9);
//! ```

pub use tangram_harness::{ExpOpts, TextTable};

use tangram_infer::accuracy::PresentedObject;
use tangram_types::geometry::Rect;
use tangram_video::generator::FrameTruth;

/// Fraction of `object` covered by the union of `regions`, computed
/// exactly via inclusion-exclusion on the clipped pieces (regions rarely
/// overlap after merging, so the quadratic term is cheap).
#[must_use]
pub fn covered_fraction(object: &Rect, regions: &[Rect]) -> f64 {
    let pieces: Vec<Rect> = regions.iter().filter_map(|r| r.intersect(object)).collect();
    if pieces.is_empty() {
        return 0.0;
    }
    let mut covered: i64 = pieces.iter().map(|p| p.area() as i64).sum();
    // Subtract pairwise overlaps (regions overlapping inside the object).
    for (i, a) in pieces.iter().enumerate() {
        for b in &pieces[i + 1..] {
            covered -= a.overlap_area(b) as i64;
        }
    }
    (covered.max(0) as f64 / object.area() as f64).min(1.0)
}

/// Builds the presented objects for a frame whose pixels reach the model
/// only inside `regions` (RoIs, patches or mask), presented at native
/// scale. Objects completely outside the regions are absent.
#[must_use]
pub fn present_through_regions(frame: &FrameTruth, regions: &[Rect]) -> Vec<PresentedObject> {
    frame
        .objects
        .iter()
        .filter_map(|o| {
            let coverage = covered_fraction(&o.rect, regions);
            if coverage <= 0.0 {
                return None;
            }
            Some(PresentedObject {
                track: o.track,
                true_rect: o.rect,
                presented_area: o.rect.area() as f64 * coverage,
                visible_fraction: coverage,
            })
        })
        .collect()
}

/// Builds the presented objects for a whole frame uniformly rescaled by
/// `scale` (full-frame and masked-frame baselines; downsizing baselines).
#[must_use]
pub fn present_scaled(frame: &FrameTruth, scale: f64) -> Vec<PresentedObject> {
    frame
        .objects
        .iter()
        .map(|o| PresentedObject::scaled(o.track, o.rect, scale))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tangram_types::geometry::Size;
    use tangram_types::ids::{FrameId, SceneId};
    use tangram_types::time::SimTime;
    use tangram_video::object::GtObject;

    #[test]
    fn covered_fraction_full_and_none() {
        let obj = Rect::new(10, 10, 100, 100);
        assert_eq!(covered_fraction(&obj, &[Rect::new(0, 0, 200, 200)]), 1.0);
        assert_eq!(covered_fraction(&obj, &[Rect::new(500, 500, 10, 10)]), 0.0);
    }

    #[test]
    fn covered_fraction_partial_union() {
        let obj = Rect::new(0, 0, 100, 100);
        // Two disjoint halves cover everything.
        let halves = [Rect::new(0, 0, 50, 100), Rect::new(50, 0, 50, 100)];
        assert!((covered_fraction(&obj, &halves) - 1.0).abs() < 1e-12);
        // Two identical halves cover only half (double counting removed).
        let dup = [Rect::new(0, 0, 50, 100), Rect::new(0, 0, 50, 100)];
        assert!((covered_fraction(&obj, &dup) - 0.5).abs() < 1e-12);
    }

    fn mini_frame() -> FrameTruth {
        FrameTruth {
            scene: SceneId::new(1),
            frame: FrameId::new(0),
            timestamp: SimTime::ZERO,
            frame_size: Size::UHD_4K,
            objects: vec![
                GtObject::new(1, Rect::new(0, 0, 100, 200)),
                GtObject::new(2, Rect::new(2000, 1000, 80, 160)),
            ],
            raster: None,
        }
    }

    #[test]
    fn present_through_regions_drops_uncovered() {
        let frame = mini_frame();
        let regions = [Rect::new(0, 0, 500, 500)];
        let presented = present_through_regions(&frame, &regions);
        assert_eq!(presented.len(), 1);
        assert_eq!(presented[0].track, 1);
        assert!((presented[0].visible_fraction - 1.0).abs() < 1e-12);
    }

    #[test]
    fn present_scaled_shrinks_areas() {
        let frame = mini_frame();
        let presented = present_scaled(&frame, 0.5);
        assert_eq!(presented.len(), 2);
        assert!((presented[0].presented_area - 100.0 * 200.0 * 0.25).abs() < 1e-9);
    }
}
