//! `scenario_tool` — lint and inspect declarative scenario files.
//!
//! The CI lints job runs `scenario_tool check` so a malformed scenario
//! file fails the build at lint time, with the loader's own
//! `path:line: message` diagnostics — long before the perf-smoke job
//! would try to run it.
//!
//! Subcommands:
//!
//! * `check [DIR]` — load and validate every `*.toml` under `DIR`
//!   (default `config/scenarios`). Beyond the loader's validation this
//!   also rejects duplicate scenario names across files and any file
//!   whose canonical form (`ScenarioFile::to_toml`) fails to round-trip
//!   — the property `tests/scenario_format.rs` holds the library to.
//! * `render FILE` — print one file's canonical TOML form (stable key
//!   order), for normalizing a hand-edited scenario.
//! * `list [DIR]` — one line per scenario: name, camera count, arrival
//!   kind, fault kinds.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use tangram_harness::ScenarioFile;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("check") => check(&dir_arg(args.get(1))),
        Some("render") => match args.get(1) {
            Some(path) => render(Path::new(path)),
            None => usage("render needs a FILE argument"),
        },
        Some("list") => list(&dir_arg(args.get(1))),
        Some(other) => usage(&format!("unknown subcommand `{other}`")),
        None => usage("missing subcommand"),
    }
}

fn dir_arg(arg: Option<&String>) -> PathBuf {
    arg.map_or_else(|| PathBuf::from("config/scenarios"), PathBuf::from)
}

fn usage(problem: &str) -> ExitCode {
    eprintln!("scenario_tool: {problem}");
    eprintln!("usage: scenario_tool check [DIR] | render FILE | list [DIR]");
    ExitCode::FAILURE
}

/// Validates the whole library; any failure names its file and line.
fn check(dir: &Path) -> ExitCode {
    let library = match ScenarioFile::load_dir(dir) {
        Ok(library) => library,
        Err(err) => {
            eprintln!("scenario_tool check: {err}");
            return ExitCode::FAILURE;
        }
    };
    let mut names: BTreeMap<&str, &Path> = BTreeMap::new();
    let mut failures = 0usize;
    for (path, file) in &library {
        if let Some(first) = names.insert(&file.name, path) {
            eprintln!(
                "{}: duplicate scenario name `{}` (also {})",
                path.display(),
                file.name,
                first.display()
            );
            failures += 1;
            continue;
        }
        // The canonical form must parse back to the same scenario; a
        // failure here means the writer and parser have drifted apart.
        match ScenarioFile::parse_str(&file.to_toml()) {
            Ok(back) if back == *file => {
                println!("ok {} ({})", path.display(), file.name);
            }
            Ok(_) => {
                eprintln!("{}: canonical form does not round-trip", path.display());
                failures += 1;
            }
            Err(err) => {
                eprintln!("{}: canonical form fails to parse: {err}", path.display());
                failures += 1;
            }
        }
    }
    if failures == 0 {
        println!("{} scenario(s) valid", library.len());
        ExitCode::SUCCESS
    } else {
        eprintln!("{failures} scenario(s) invalid");
        ExitCode::FAILURE
    }
}

fn render(path: &Path) -> ExitCode {
    match ScenarioFile::load(path) {
        Ok(file) => {
            print!("{}", file.to_toml());
            ExitCode::SUCCESS
        }
        Err(err) => {
            eprintln!("scenario_tool render: {err}");
            ExitCode::FAILURE
        }
    }
}

fn list(dir: &Path) -> ExitCode {
    let library = match ScenarioFile::load_dir(dir) {
        Ok(library) => library,
        Err(err) => {
            eprintln!("scenario_tool list: {err}");
            return ExitCode::FAILURE;
        }
    };
    for (path, file) in &library {
        let faults = if file.scenario.faults.is_empty() {
            "none".to_string()
        } else {
            file.scenario
                .faults
                .iter()
                .map(|f| f.kind.name())
                .collect::<Vec<_>>()
                .join(",")
        };
        println!(
            "{:<24} {:>2} cameras  arrival={:<8} faults={}  ({})",
            file.name,
            file.run.cameras,
            file.scenario.arrival.kind(),
            faults,
            path.display()
        );
    }
    ExitCode::SUCCESS
}
