//! Table II — bandwidth consumption (normalised to Full Frame) as the
//! partition grid varies: 2×2 vs 4×4 vs 6×6.
//!
//! RoIs are extracted once per frame (GMM pipeline) and partitioned three
//! ways, exactly isolating the effect of zone granularity. Scenes fan
//! out over the harness pool via the shared warmed-extractor rig.

use tangram_bench::{ExpOpts, TextTable};
use tangram_harness::parallel_map;
use tangram_harness::presets::{scene_eval_frames, EdgeExtractor, SceneRig};
use tangram_partition::algorithm::{partition, PartitionConfig};
use tangram_types::ids::SceneId;
use tangram_video::codec::CodecModel;
use tangram_video::scene::SceneProfile;

/// Paper's Table II percentages: (2×2, 4×4, 6×6).
const PAPER: [(f64, f64, f64); 10] = [
    (44.2, 25.7, 19.3),
    (45.6, 34.9, 29.2),
    (56.2, 31.8, 25.6),
    (89.7, 89.5, 50.3),
    (95.4, 37.3, 25.7),
    (49.8, 36.1, 30.1),
    (52.3, 32.3, 32.3),
    (58.3, 40.6, 30.7),
    (58.9, 43.8, 35.9),
    (52.4, 40.7, 37.4),
];

fn main() {
    let opts = ExpOpts::from_args();
    let grids = [
        PartitionConfig::new(2, 2),
        PartitionConfig::new(4, 4),
        PartitionConfig::new(6, 6),
    ];
    println!("== Table II: bandwidth vs Full Frame, % (ours vs paper) ==\n");
    let mut table = TextTable::new(["scene", "2x2 %", "4x4 %", "6x6 %"]);
    let rows = parallel_map(
        SceneId::all().collect::<Vec<_>>(),
        opts.workers(),
        |_, scene| {
            let codec = CodecModel::default();
            let profile = SceneProfile::panda(scene);
            let frames = scene_eval_frames(opts.frames, opts.quick, 25, profile.eval_frames);
            let mut rig =
                SceneRig::new(scene, EdgeExtractor::for_mode(opts.quick), opts.seed, "t2");
            let mut grid_bytes = [0u64; 3];
            let mut full_bytes = 0u64;
            for _ in 0..frames {
                let frame = rig.sim.next_frame();
                let rois = rig.extractor.extract(&frame);
                full_bytes += codec.full_frame_bytes(frame.frame_size).get();
                for (gi, grid) in grids.iter().enumerate() {
                    let patches = partition(frame.frame_size, *grid, &rois);
                    grid_bytes[gi] += codec.patches_bytes(patches.iter()).get();
                }
            }
            let p = PAPER[scene.array_index()];
            let paper = [p.0, p.1, p.2];
            let mut cells = vec![scene.to_string()];
            for gi in 0..3 {
                cells.push(format!(
                    "{:.1} ({:.1})",
                    grid_bytes[gi] as f64 / full_bytes as f64 * 100.0,
                    paper[gi]
                ));
            }
            cells
        },
    );
    for row in rows {
        table.row(row);
    }
    table.print();
    println!(
        "\nTrend check: finer grids enclose less background, so bandwidth falls\nmonotonically from 2x2 to 6x6 in every scene (the paper's Table II trend)."
    );
}
