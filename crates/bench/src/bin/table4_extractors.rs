//! Table IV — RoI extraction methods compared.
//!
//! For each extractor (GMM, optical flow, SSDLite-MobileNetV2,
//! Yolov3-MobileNetV2): AP using only its raw RoIs, AP after adaptive
//! partitioning (4×4), and the bandwidth share of Full Frame. A
//! full-frame detection run is the reference (the paper notes AP 0.60
//! for it). Methods (and the reference pass) fan out over the harness
//! pool via the shared extractor rig, each independently seeded.

use tangram_bench::{present_scaled, present_through_regions, ExpOpts, TextTable};
use tangram_harness::parallel_map;
use tangram_harness::presets::{EdgeExtractor, SceneRig};
use tangram_infer::accuracy::{DetectionSimulator, ResolutionProfile};
use tangram_infer::ap::{ap50, FrameEval};
use tangram_partition::algorithm::{partition, PartitionConfig};
use tangram_sim::rng::DetRng;
use tangram_types::geometry::Rect;
use tangram_types::ids::SceneId;
use tangram_video::codec::CodecModel;
use tangram_video::scene::SceneProfile;

/// Paper Table IV: (RoI AP, +Partition AP, BW %) per method.
const PAPER: [(&str, f64, f64, f64); 4] = [
    ("GMM", 0.515, 0.678, 67.99),
    ("OpticalFlow", 0.480, 0.669, 77.27),
    ("SSDLite-MobileNetV2", 0.436, 0.637, 82.26),
    ("Yolov3-MobileNetV2", 0.397, 0.583, 54.81),
];

const METHODS: [EdgeExtractor; 4] = [
    EdgeExtractor::Gmm,
    EdgeExtractor::Flow,
    EdgeExtractor::SsdProxy,
    EdgeExtractor::YoloProxy,
];

fn main() {
    let opts = ExpOpts::from_args();
    let frames = opts.frame_budget(15, 50);
    let scenes: Vec<SceneId> = SceneId::all()
        .take(if opts.quick { 3 } else { 5 })
        .collect();
    let grid = PartitionConfig::default();

    println!("== Table IV: RoI extraction methods (ours vs paper) ==\n");
    let mut table = TextTable::new(["method", "RoI AP", "+Partition AP", "BW %"]);

    let scenes_for_rows = scenes.clone();
    let rows = parallel_map(
        METHODS.into_iter().enumerate().collect::<Vec<_>>(),
        opts.workers(),
        |_, (mi, method)| {
            let simulator = DetectionSimulator::new(ResolutionProfile::yolov8x_4k());
            let codec = CodecModel::default();
            let mut roi_evals: Vec<FrameEval> = Vec::new();
            let mut part_evals: Vec<FrameEval> = Vec::new();
            let mut patch_bytes = 0u64;
            let mut full_bytes = 0u64;
            for &scene in &scenes_for_rows {
                let profile = SceneProfile::panda(scene);
                let base = profile.full_frame_ap;
                let mut rng = DetRng::new(opts.seed)
                    .fork_indexed("t4", (mi * 100 + scene.index() as usize) as u64);
                let mut rig = SceneRig::new(scene, method, opts.seed, "t4");
                for _ in 0..frames {
                    let frame = rig.sim.next_frame();
                    let bounds = Rect::from_size(frame.frame_size);
                    let truths = frame.object_rects();
                    let rois = rig.extractor.extract(&frame);

                    // RoI-only: ship the raw RoI crops.
                    let presented = present_through_regions(&frame, &rois);
                    let mpx = rois.iter().map(|r| r.area() as f64).sum::<f64>() / 1.0e6;
                    let dets = simulator.detect(&presented, mpx, base, bounds, &mut rng);
                    roi_evals.push(FrameEval::new(truths.clone(), dets));

                    // +Partition: align RoIs into patches first.
                    let patches = partition(frame.frame_size, grid, &rois);
                    let presented = present_through_regions(&frame, &patches);
                    let mpx = patches.iter().map(|p| p.area() as f64).sum::<f64>() / 1.0e6;
                    let dets = simulator.detect(&presented, mpx, base, bounds, &mut rng);
                    part_evals.push(FrameEval::new(truths, dets));

                    patch_bytes += codec.patches_bytes(patches.iter()).get();
                    full_bytes += codec.full_frame_bytes(frame.frame_size).get();
                }
            }
            let (name, paper_roi, paper_part, paper_bw) = PAPER[mi];
            vec![
                name.to_string(),
                format!("{:.3} ({:.3})", ap50(&roi_evals), paper_roi),
                format!("{:.3} ({:.3})", ap50(&part_evals), paper_part),
                format!(
                    "{:.1} ({:.1})",
                    patch_bytes as f64 / full_bytes as f64 * 100.0,
                    paper_bw
                ),
            ]
        },
    );
    for row in rows {
        table.row(row);
    }
    table.print();

    // Full-frame reference, its own independently-seeded pass.
    let scene_evals = parallel_map(scenes, opts.workers(), |_, scene| {
        let simulator = DetectionSimulator::new(ResolutionProfile::yolov8x_4k());
        let profile = SceneProfile::panda(scene);
        let base = profile.full_frame_ap;
        let mut rng = DetRng::new(opts.seed).fork_indexed("t4-full", u64::from(scene.index()));
        let mut rig = SceneRig::new(scene, EdgeExtractor::SsdProxy, opts.seed, "t4-full");
        let mut evals: Vec<FrameEval> = Vec::new();
        for _ in 0..frames {
            let frame = rig.sim.next_frame();
            let bounds = Rect::from_size(frame.frame_size);
            let dets = simulator.detect(
                &present_scaled(&frame, 1.0),
                frame.frame_size.megapixels(),
                base,
                bounds,
                &mut rng,
            );
            evals.push(FrameEval::new(frame.object_rects(), dets));
        }
        evals
    });
    let full_frame_evals: Vec<FrameEval> = scene_evals.into_iter().flatten().collect();
    println!(
        "\nFull-frame reference AP: {:.3} (paper: 0.60). Partitioning lifts every\nextractor's accuracy by recovering objects the raw RoIs clip or miss; GMM\noffers the paper's preferred accuracy/bandwidth trade-off.",
        ap50(&full_frame_evals)
    );
}
