//! Churny multi-tenant streaming bench: the event-driven runtime under
//! camera join/leave, open-loop Poisson arrivals and mixed tenant SLOs.
//!
//! Four cameras share one uplink. Camera `i` joins at `2 s × i`, streams
//! Poisson-paced frames (mean 6 fps) cycled from a proxy content pool,
//! and leaves 12 s after joining — so the active camera count ramps up,
//! plateaus and drains, which is exactly the load shape the closed-world
//! trace replay cannot produce. Cameras alternate between a tight 0.8 s
//! "gold" SLO and a lax 1.5 s best-effort one. The four end-to-end
//! systems are swept at 40 and 80 Mbps.
//!
//! Standard flags apply: `--workers N` (the `BENCH_churn.json` output is
//! byte-identical for any worker count), `--seed`, `--frames N` (frame
//! budget per camera), `--out DIR`.

use tangram_bench::{ExpOpts, TextTable};
use tangram_harness::presets::churn_grid;
use tangram_harness::run_grid;

fn main() {
    let opts = ExpOpts::from_args();
    let grid = churn_grid(opts.seed, opts.frame_budget(20, 80));
    let scenario = grid.scenarios.first().expect("churn grid is streaming");
    let workers = opts.workers();
    println!(
        "== bench_churn: {} cells on {} workers — {} cameras, Poisson arrivals, join every {:.0} s, leave after {:.0} s, tenants {:?} ==\n",
        grid.cell_count(),
        workers,
        grid.workloads[0].scenes.len(),
        scenario.join_stagger_s,
        scenario.session_s.unwrap_or(f64::INFINITY),
        scenario.tenant_slos_s,
    );

    let report = run_grid(&grid, workers);
    opts.maybe_write(&report);

    let mut table = TextTable::new([
        "cell", "policy", "bw", "frames", "patches", "viol %", "cost $", "p99 (s)", "pps",
    ]);
    for cell in &report.cells {
        let m = &cell.metrics;
        table.row([
            cell.index.to_string(),
            m.policy.clone(),
            format!("{:.0}", cell.bandwidth_mbps),
            m.frames.to_string(),
            m.patches.to_string(),
            format!("{:.1}", (1.0 - m.slo_attainment) * 100.0),
            format!("{:.4}", m.cost_usd),
            format!("{:.3}", m.p99_latency_s),
            format!("{:.1}", m.throughput_pps),
        ]);
    }
    table.print();
    let cameras = grid.workloads[0].scenes.len() as u64;
    let full_budget = cameras * scenario.frames_per_camera as u64;
    if report.cells.iter().any(|c| c.metrics.frames < full_budget) {
        println!(
            "\nChurn bites: cameras leave after {:.0} s, so completed frames fall short of the full {} ({} cameras x {}-frame budget).",
            scenario.session_s.unwrap_or(f64::INFINITY),
            full_budget,
            cameras,
            scenario.frames_per_camera,
        );
    } else {
        println!(
            "\nSessions ({:.0} s) outlast the {}-frame budget at this arrival rate — raise --frames to see churn truncate camera streams.",
            scenario.session_s.unwrap_or(f64::INFINITY),
            scenario.frames_per_camera,
        );
    }
}
