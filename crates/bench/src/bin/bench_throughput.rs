//! `bench_throughput` — wall-clock throughput of the sharded streaming
//! runtime.
//!
//! Every other bench in this crate reports *simulated* time; this one is
//! the repo's only wall-clock benchmark. It runs the city-scale preset
//! (open-loop Poisson cameras, Tangram policy, a wide uplink so the
//! runtime — not a saturated link — is the bottleneck) once per shard
//! count and reports events/sec and patches/sec of real elapsed time.
//!
//! Determinism is asserted, not assumed: every shard count must produce
//! the same [`tangram_core::report::RunSummary`] and the same
//! `events_processed` as the single-shard oracle, or the bench exits
//! non-zero before printing a single number.
//!
//! The emitted `BENCH_throughput.json` splits cleanly into two kinds of
//! fields:
//!
//! * **counts** (`frames`, `patches`, `batches`, `dropped_arrivals`,
//!   `events`, `makespan_s`, the preset shape) — deterministic, byte
//!   stable, gated by CI against the committed baseline;
//! * **timings** (`wall_ms`, `events_per_sec`, `patches_per_sec`,
//!   `speedup`) — machine- and load-dependent, recorded for humans,
//!   **never** gated.
//!
//! `--gate <baseline.json>` re-reads a committed baseline and compares
//! only the count fields; see `docs/PERFORMANCE.md` for the refresh
//! procedure.
//!
//! Flags: the usual [`ExpOpts`] set plus `--smoke` (CI-sized preset:
//! fewer cameras/frames, shard counts 1 and 2) and `--gate PATH`.

use std::process::ExitCode;
use std::time::Instant;

use tangram_bench::{ExpOpts, TextTable};
use tangram_core::report::RunReport;
use tangram_harness::json::Json;
use tangram_harness::presets::{
    city_scale_engine, city_scale_scenario, city_scale_traces, CITY_SCALE_CAMERAS,
    CITY_SCALE_SMOKE_CAMERAS,
};
use tangram_harness::run_scenario_sharded;

/// Trace-pool depth per camera; the scenario cycles the pool, so this
/// only shapes content variety, not run length.
const POOL_FRAMES: usize = 24;

/// One measured run at a given shard count.
struct Row {
    shards: usize,
    report: RunReport,
    wall_s: f64,
}

fn main() -> ExitCode {
    let opts = ExpOpts::from_args();
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let gate_path = args
        .iter()
        .position(|a| a == "--gate")
        .and_then(|i| args.get(i + 1))
        .cloned();

    let mode = if smoke { "smoke" } else { "full" };
    let cameras = if smoke {
        CITY_SCALE_SMOKE_CAMERAS
    } else {
        CITY_SCALE_CAMERAS
    };
    let frames_per_camera = opts.frames.unwrap_or(if smoke { 24 } else { 96 });
    let shard_counts: &[usize] = if smoke { &[1, 2] } else { &[1, 2, 4, 8] };

    println!("bench_throughput: city-scale preset, {mode} mode");
    println!(
        "  {cameras} cameras x {frames_per_camera} frames, seed {}, shard counts {shard_counts:?}",
        opts.seed
    );

    let config = city_scale_engine(opts.seed);
    let traces = city_scale_traces(cameras, POOL_FRAMES, opts.seed);
    let scenario = city_scale_scenario(frames_per_camera);

    let mut rows: Vec<Row> = Vec::new();
    for &shards in shard_counts {
        let start = Instant::now();
        let (report, _) =
            run_scenario_sharded(&config, &traces, &scenario, None, None, false, shards, None);
        let wall_s = start.elapsed().as_secs_f64();
        rows.push(Row {
            shards,
            report,
            wall_s,
        });
    }

    // Byte-compare oracle: every shard count must reproduce the
    // single-shard run exactly. A divergence is a correctness bug in the
    // sharded runtime, not a perf result.
    let oracle = &rows[0].report;
    for row in &rows[1..] {
        if row.report.summarize() != oracle.summarize()
            || row.report.events_processed != oracle.events_processed
            || row.report.frames != oracle.frames
        {
            eprintln!(
                "DETERMINISM VIOLATION: {} shards diverged from the single-shard oracle",
                row.shards
            );
            return ExitCode::from(2);
        }
    }

    let summary = oracle.summarize();
    let base_wall = rows[0].wall_s;
    let mut table = TextTable::new(["shards", "wall_ms", "events/s", "patches/s", "speedup"]);
    for row in &rows {
        let events_per_sec = row.report.events_processed as f64 / row.wall_s;
        let patches_per_sec = summary.patches as f64 / row.wall_s;
        table.row([
            row.shards.to_string(),
            format!("{:.1}", row.wall_s * 1e3),
            format!("{events_per_sec:.0}"),
            format!("{patches_per_sec:.0}"),
            format!("{:.2}x", base_wall / row.wall_s),
        ]);
    }
    table.print();
    println!(
        "counts: {} frames, {} patches, {} batches, {} dropped, {} events, makespan {:.3}s (identical at every shard count)",
        summary.frames,
        summary.patches,
        summary.batches,
        summary.dropped_arrivals,
        oracle.events_processed,
        summary.makespan_s,
    );
    println!(
        "note: speedup needs real cores; this host reports {} worker(s). \
         Timing fields are informational and never CI-gated.",
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    );

    let doc = render_report(
        mode,
        opts.seed,
        cameras,
        frames_per_camera,
        shard_counts,
        &rows,
        &summary,
    );

    if let Some(dir) = &opts.out {
        let path = dir.join("BENCH_throughput.json");
        match std::fs::create_dir_all(dir).and_then(|()| std::fs::write(&path, doc.render() + "\n"))
        {
            Ok(()) => println!("(wrote {})", path.display()),
            Err(err) => {
                eprintln!("failed to write {}: {err}", path.display());
                return ExitCode::FAILURE;
            }
        }
    }

    if let Some(path) = gate_path {
        return gate_counts(&doc, &path);
    }
    ExitCode::SUCCESS
}

/// Builds the `BENCH_throughput.json` document: a gated `counts` object
/// plus per-shard timing rows.
fn render_report(
    mode: &str,
    seed: u64,
    cameras: usize,
    frames_per_camera: usize,
    shard_counts: &[usize],
    rows: &[Row],
    summary: &tangram_core::report::RunSummary,
) -> Json {
    let oracle = &rows[0].report;
    let counts = Json::object(vec![
        ("mode", Json::Str(mode.to_string())),
        ("seed", Json::U64(seed)),
        ("cameras", Json::U64(cameras as u64)),
        ("frames_per_camera", Json::U64(frames_per_camera as u64)),
        (
            "shard_counts",
            Json::Array(shard_counts.iter().map(|&s| Json::U64(s as u64)).collect()),
        ),
        ("frames", Json::U64(summary.frames)),
        ("patches", Json::U64(summary.patches)),
        ("batches", Json::U64(summary.batches)),
        ("dropped_arrivals", Json::U64(summary.dropped_arrivals)),
        ("events", Json::U64(oracle.events_processed)),
        ("makespan_s", Json::F64(summary.makespan_s)),
    ]);
    let timings = Json::Array(
        rows.iter()
            .map(|row| {
                Json::object(vec![
                    ("shards", Json::U64(row.shards as u64)),
                    ("wall_ms", Json::F64(row.wall_s * 1e3)),
                    (
                        "events_per_sec",
                        Json::F64(row.report.events_processed as f64 / row.wall_s),
                    ),
                    (
                        "patches_per_sec",
                        Json::F64(summary.patches as f64 / row.wall_s),
                    ),
                    ("speedup", Json::F64(rows[0].wall_s / row.wall_s)),
                ])
            })
            .collect(),
    );
    Json::object(vec![
        ("schema_version", Json::U64(1)),
        ("name", Json::Str("throughput".to_string())),
        ("counts", counts),
        ("timings", timings),
    ])
}

/// Compares this run's `counts` object against a committed baseline.
/// Timing fields are ignored by construction — only `counts` is read.
fn gate_counts(candidate: &Json, baseline_path: &str) -> ExitCode {
    let text = match std::fs::read_to_string(baseline_path) {
        Ok(text) => text,
        Err(err) => {
            eprintln!("gate: cannot read baseline {baseline_path}: {err}");
            return ExitCode::FAILURE;
        }
    };
    let baseline = match Json::parse(&text) {
        Ok(doc) => doc,
        Err(err) => {
            eprintln!("gate: cannot parse baseline {baseline_path}: {err}");
            return ExitCode::FAILURE;
        }
    };
    let (Some(ours), Some(theirs)) = (candidate.get("counts"), baseline.get("counts")) else {
        eprintln!("gate: missing `counts` object (schema mismatch)");
        return ExitCode::FAILURE;
    };
    if ours == theirs {
        println!("gate: counts match {baseline_path}");
        ExitCode::SUCCESS
    } else {
        eprintln!("gate: counts DIVERGED from {baseline_path}");
        eprintln!("--- baseline\n{}", theirs.render());
        eprintln!("--- candidate\n{}", ours.render());
        eprintln!("If the change is intentional, refresh the baseline per docs/PERFORMANCE.md.");
        ExitCode::FAILURE
    }
}
