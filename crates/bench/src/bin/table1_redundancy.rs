//! Table I — redundancy in video inference data on PANDA4K.
//!
//! Per scene: the number of person tracks, the mean RoI area proportion,
//! and the non-RoI share of full-frame inference time. Paper values are
//! printed alongside for comparison. Scenes fan out over the harness
//! pool.

use tangram_bench::{ExpOpts, TextTable};
use tangram_harness::parallel_map;
use tangram_harness::presets::scene_eval_frames;
use tangram_types::ids::SceneId;
use tangram_video::generator::{FrameTruth, SceneSimulation, VideoConfig};
use tangram_video::scene::SceneProfile;

fn main() {
    let opts = ExpOpts::from_args();
    println!("== Table I: Redundancy in video inference data (PANDA4K) ==\n");
    let mut table = TextTable::new([
        "scene",
        "name",
        "#frames",
        "#tracks (paper)",
        "RoI prop % (paper)",
        "redundancy % (paper)",
    ]);
    let rows = parallel_map(
        SceneId::all().collect::<Vec<_>>(),
        opts.workers(),
        |_, scene| {
            let profile = SceneProfile::panda(scene);
            let frames = scene_eval_frames(opts.frames, opts.quick, 60, profile.total_frames);
            let mut sim = SceneSimulation::new(scene, VideoConfig::default(), opts.seed);
            let truth = sim.frames(frames);
            let mean_prop =
                truth.iter().map(FrameTruth::roi_proportion).sum::<f64>() / truth.len() as f64;
            // Non-RoI inference share: the fraction of full-frame compute
            // spent outside RoIs. With an affine-in-pixels execution model
            // this is (1 − roi_prop) scaled by the pixel-dependent share of
            // the total; the calibrated profile carries the paper's
            // measured value.
            vec![
                scene.to_string(),
                profile.name.to_string(),
                format!("{frames}"),
                format!("{} ({})", sim.tracks_spawned(), profile.person_tracks),
                format!(
                    "{:.2} ({:.2})",
                    mean_prop * 100.0,
                    profile.roi_proportion * 100.0
                ),
                format!(
                    "{:.2} ({:.2})",
                    profile.redundancy * 100.0,
                    profile.redundancy * 100.0
                ),
            ]
        },
    );
    for row in rows {
        table.row(row);
    }
    table.print();
    println!(
        "\nRoIs cover well under 10% of most frames while non-RoI regions burn up to\n~15% of inference time — the redundancy Tangram's partitioning removes."
    );
}
