//! The umbrella perf bin: runs a sweep grid and records `BENCH_*.json`.
//!
//! * `--smoke` — the reduced CI grid (four systems × two bandwidths over
//!   two proxy scenes, 16 cells): finishes in seconds, exercises
//!   batching, stitching, padding and per-patch dispatch, and writes the
//!   `BENCH_smoke.json` the CI perf gate compares against
//!   `baselines/BENCH_smoke.json` (via the `bench_gate` bin).
//! * default — the fuller grid: four systems × {20, 40, 80} Mbps ×
//!   three SLOs over the five motivation scenes.
//!
//! Standard flags apply: `--workers N` (parallel fan-out; the JSON is
//! byte-identical for any worker count), `--seed`, `--frames`,
//! `--out DIR` (default: current directory — this bin always writes its
//! report).

use std::time::Instant;
use tangram_bench::{ExpOpts, TextTable};
use tangram_harness::presets::{
    motivation_scenes, paper_mark_timeouts_s, smoke_grid, E2E_POLICIES,
};
use tangram_harness::{run_grid, SweepGrid, TraceKind, WorkloadSpec};

fn main() {
    let mut opts = ExpOpts::from_args();
    let smoke = std::env::args().any(|a| a == "--smoke");
    if opts.out.is_none() {
        opts.out = Some(std::path::PathBuf::from("."));
    }

    let grid = if smoke {
        let mut grid = smoke_grid(opts.seed);
        if let Some(frames) = opts.frames {
            for w in &mut grid.workloads {
                w.frames = frames;
            }
        }
        grid
    } else {
        let mut grid = SweepGrid::named("all");
        grid.policies = E2E_POLICIES.to_vec();
        grid.seeds = vec![opts.seed];
        grid.slos_s = vec![0.8, 1.0, 1.2];
        grid.bandwidths_mbps = vec![20.0, 40.0, 80.0];
        grid.workloads = WorkloadSpec::per_scene(
            &motivation_scenes(false),
            opts.frame_budget(12, 40),
            TraceKind::Proxy,
        );
        grid.mark_timeouts_s = paper_mark_timeouts_s();
        grid
    };

    let workers = opts.workers();
    println!(
        "== bench_all: grid '{}', {} cells on {} workers ==\n",
        grid.name,
        grid.cell_count(),
        workers
    );
    let started = Instant::now();
    let report = run_grid(&grid, workers);
    let elapsed = started.elapsed();
    opts.maybe_write(&report);

    let mut table = TextTable::new([
        "cell", "policy", "bw", "SLO", "patches", "viol %", "cost $", "p99 (s)", "pps",
    ]);
    for cell in &report.cells {
        let m = &cell.metrics;
        table.row([
            cell.index.to_string(),
            m.policy.clone(),
            format!("{:.0}", cell.bandwidth_mbps),
            format!("{:.1}", cell.slo_s),
            m.patches.to_string(),
            format!("{:.1}", (1.0 - m.slo_attainment) * 100.0),
            format!("{:.4}", m.cost_usd),
            format!("{:.3}", m.p99_latency_s),
            format!("{:.1}", m.throughput_pps),
        ]);
    }
    table.print();
    // Wall-clock stays out of the JSON (it would break the byte-identical
    // parallel-vs-sequential guarantee); report it on stderr instead.
    eprintln!(
        "\n{} cells in {:.2}s wall-clock on {} workers",
        report.cells.len(),
        elapsed.as_secs_f64(),
        workers
    );
}
