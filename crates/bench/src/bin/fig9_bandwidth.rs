//! Fig. 9 — bandwidth consumption per scene, normalised to Full Frame.
//!
//! Scenes fan out over the harness pool; trace construction comes from
//! the shared presets.

use tangram_bench::{ExpOpts, TextTable};
use tangram_harness::parallel_map;
use tangram_harness::presets::{build_trace, scene_eval_frames, trace_kind};
use tangram_types::ids::SceneId;
use tangram_video::scene::SceneProfile;

/// Paper's Fig. 9 normalised values: (tangram 4×4, masked, elf); full = 1.
// Some measured ratios happen to land near 1/π; they are digitised
// figure data, not trigonometry.
#[allow(clippy::approx_constant)]
const PAPER: [(f64, f64, f64); 10] = [
    (0.257, 1.118, 3.891),
    (0.349, 1.124, 2.866),
    (0.318, 1.124, 3.143),
    (0.895, 0.962, 1.117),
    (0.373, 1.050, 2.679),
    (0.361, 1.102, 2.774),
    (0.323, 1.165, 3.097),
    (0.406, 0.998, 2.461),
    (0.438, 1.003, 2.285),
    (0.407, 1.047, 2.457),
];

fn main() {
    let opts = ExpOpts::from_args();
    let kind = trace_kind(opts.quick);
    println!("== Fig. 9: bandwidth normalised to Full Frame (ours vs paper) ==\n");
    let mut table = TextTable::new(["scene", "Tangram 4x4", "Masked", "Full", "ELF"]);
    let rows = parallel_map(
        SceneId::all().collect::<Vec<_>>(),
        opts.workers(),
        |_, scene| {
            let profile = SceneProfile::panda(scene);
            let frames = scene_eval_frames(opts.frames, opts.quick, 25, profile.eval_frames);
            let trace = build_trace(scene, frames, opts.seed, kind);
            let mut tangram = 0u64;
            let mut masked = 0u64;
            let mut full = 0u64;
            let mut elf = 0u64;
            for f in &trace.frames {
                tangram += f.patches.iter().map(|p| p.encoded_size.get()).sum::<u64>();
                masked += f.masked_frame_bytes.get();
                full += f.full_frame_bytes.get();
                elf += f.elf_patch_bytes.iter().map(|b| b.get()).sum::<u64>();
            }
            let p = PAPER[scene.array_index()];
            vec![
                scene.to_string(),
                format!("{:.3} ({:.3})", tangram as f64 / full as f64, p.0),
                format!("{:.3} ({:.3})", masked as f64 / full as f64, p.1),
                "1.000".to_string(),
                format!("{:.3} ({:.3})", elf as f64 / full as f64, p.2),
            ]
        },
    );
    for row in rows {
        table.row(row);
    }
    table.print();
    println!(
        "\nShape: Tangram uploads a fraction of the full-frame bytes (10–75% savings\nin the paper), Masked hovers around 1×, ELF's uncompressed crops exceed\nFull Frame by 1.1–3.9×."
    );
}
