//! Fig. 2 — the motivation study.
//!
//! (a) accuracy of server-driven and content-aware offloading vs full
//! frame on the five motivation scenes;
//! (b) mean RoI inference latency as the camera count grows on a single
//! GPU worker.
//!
//! Both sub-figures fan their independent configurations (scenes, camera
//! counts) out over the harness pool.

use tangram_bench::{present_scaled, present_through_regions, ExpOpts, TextTable};
use tangram_harness::parallel_map;
use tangram_infer::accuracy::{DetectionSimulator, ResolutionProfile};
use tangram_infer::ap::{ap50, FrameEval};
use tangram_infer::latency::InferenceLatencyModel;
use tangram_sim::rng::DetRng;
use tangram_types::geometry::Rect;
use tangram_types::ids::SceneId;
use tangram_types::time::{SimDuration, SimTime};
use tangram_video::generator::{SceneSimulation, VideoConfig};
use tangram_video::scene::SceneProfile;
use tangram_vision::detector::DetectorProxy;
use tangram_vision::extractor::{merge_overlapping, ProxyExtractor, RoiExtractor};

fn main() {
    let opts = ExpOpts::from_args();
    let frames = opts.frame_budget(25, 80);
    fig2a(&opts, frames);
    fig2b(&opts);
}

fn fig2a(opts: &ExpOpts, frames: usize) {
    println!("== Fig. 2(a): accuracy of offloading strategies, AP@0.5 (ours vs paper) ==\n");
    let mut table = TextTable::new(["scene", "server-driven", "content-aware", "full frame"]);
    let rows = parallel_map(
        SceneId::all().take(5).collect::<Vec<_>>(),
        opts.workers(),
        |_, scene| {
            let simulator = DetectionSimulator::new(ResolutionProfile::yolov8x_4k());
            let profile = SceneProfile::panda(scene);
            let base = profile.full_frame_ap;
            let mut rng = DetRng::new(opts.seed).fork_indexed("fig2a", u64::from(scene.index()));
            let mut evals: [Vec<FrameEval>; 3] = [Vec::new(), Vec::new(), Vec::new()];
            let mut sim = SceneSimulation::new(scene, VideoConfig::default(), opts.seed);
            let mut content_extractor =
                ProxyExtractor::new(DetectorProxy::ssdlite_mobilenet_v2(), rng.fork("content"));
            for frame in sim.frames(frames) {
                let bounds = Rect::from_size(frame.frame_size);
                let truths = frame.object_rects();

                // Server-driven: round 1 on a low-quality (quarter-scale)
                // frame finds RoIs in the cloud; round 2 re-fetches only
                // those regions in high quality.
                let round1 = simulator.detect(
                    &present_scaled(&frame, 0.25),
                    frame.frame_size.megapixels() * 0.0625,
                    base,
                    bounds,
                    &mut rng,
                );
                let regions = merge_overlapping(
                    round1
                        .iter()
                        .map(|d| d.rect.inflated(24, &bounds))
                        .collect(),
                    8,
                );
                let presented = present_through_regions(&frame, &regions);
                let dets = simulator.detect(
                    &presented,
                    regions.iter().map(|r| r.area() as f64).sum::<f64>() / 1.0e6,
                    base,
                    bounds,
                    &mut rng,
                );
                evals[0].push(FrameEval::new(truths.clone(), dets));

                // Content-aware: the edge's lightweight model picks the RoIs.
                let regions = content_extractor.extract(&frame);
                let presented = present_through_regions(&frame, &regions);
                let dets = simulator.detect(
                    &presented,
                    regions.iter().map(|r| r.area() as f64).sum::<f64>() / 1.0e6,
                    base,
                    bounds,
                    &mut rng,
                );
                evals[1].push(FrameEval::new(truths.clone(), dets));

                // Full frame at native resolution.
                let dets = simulator.detect(
                    &present_scaled(&frame, 1.0),
                    frame.frame_size.megapixels(),
                    base,
                    bounds,
                    &mut rng,
                );
                evals[2].push(FrameEval::new(truths, dets));
            }
            let paper_sd = profile.server_driven_ap.unwrap_or(0.0);
            let paper_ca = profile.content_aware_ap.unwrap_or(0.0);
            vec![
                scene.to_string(),
                format!("{:.2} ({:.2})", ap50(&evals[0]), paper_sd),
                format!("{:.2} ({:.2})", ap50(&evals[1]), paper_ca),
                format!("{:.2} ({:.2})", ap50(&evals[2]), profile.full_frame_ap),
            ]
        },
    );
    for row in rows {
        table.row(row);
    }
    table.print();
    println!(
        "\nPaper: server-driven and content-aware lose 23.9% / 14.1% AP on average\nagainst full-frame inference on high-resolution video.\n"
    );
}

fn fig2b(opts: &ExpOpts) {
    println!("== Fig. 2(b): mean RoI inference latency vs camera count (single GPU) ==\n");
    // One GPU worker serves every camera's per-frame RoI request
    // sequentially (no batching, the status-quo deployment): queueing
    // pushes latency super-linearly once utilisation approaches 1.
    let frames = opts.frame_budget(80, 200);
    // ~3 fps per camera puts five cameras at ≈ 0.9 utilisation of one
    // GPU — the paper's saturation point.
    let fps = 3.0;
    let paper = [59.1, 67.2, 75.0, 121.7, 325.8];
    let mut table = TextTable::new(["#cameras", "mean latency ms (paper)"]);
    let rows = parallel_map(
        (1..=5usize).collect::<Vec<_>>(),
        opts.workers(),
        |_, cams| {
            let model = InferenceLatencyModel::rtx4090_yolov8x();
            let mut rng = DetRng::new(opts.seed).fork_indexed("fig2b", cams as u64);
            let mut sims: Vec<SceneSimulation> = (0..cams)
                .map(|c| {
                    SceneSimulation::new(
                        SceneId::new((c % 5 + 1) as u8),
                        VideoConfig::default(),
                        opts.seed + c as u64,
                    )
                })
                .collect();
            let mut gpu_free = SimTime::ZERO;
            let mut total_latency = SimDuration::ZERO;
            let mut requests = 0u64;
            for fi in 0..frames {
                let t_frame = SimTime::from_secs_f64(fi as f64 / fps);
                for sim in &mut sims {
                    let frame = sim.next_frame();
                    // The camera's RoIs, inferred as one per-camera request.
                    let roi_mpx: f64 = frame
                        .objects
                        .iter()
                        .map(|o| o.rect.area() as f64)
                        .sum::<f64>()
                        / 1.0e6;
                    let exec = model.sample(roi_mpx.max(0.05), &mut rng);
                    let start = gpu_free.max(t_frame);
                    let finish = start + exec;
                    gpu_free = finish;
                    total_latency += finish.since(t_frame);
                    requests += 1;
                }
            }
            let mean_ms = total_latency.as_millis_f64() / requests as f64;
            vec![
                format!("{cams}"),
                format!("{:.1} ({:.1})", mean_ms, paper[cams - 1]),
            ]
        },
    );
    for row in rows {
        table.row(row);
    }
    table.print();
    println!(
        "\nShape: latency explodes super-linearly once the single GPU saturates —\nthe provisioning cliff that motivates serverless scale-out."
    );
}
