//! Ablation — re-stitch-the-whole-queue vs incremental packing.
//!
//! Algorithm 2 re-runs the Patch-stitching Solver over the entire queue on
//! every arrival (O(n) packer inserts per arrival). An incremental
//! variant keeps the packers open and inserts each patch once. This
//! ablation measures the packing-quality gap — how many extra canvases
//! the cheap variant pays on identical arrival sequences. Scenes fan out
//! over the harness pool.

use tangram_bench::{ExpOpts, TextTable};
use tangram_harness::parallel_map;
use tangram_harness::presets::build_trace;
use tangram_harness::TraceKind;
use tangram_stitch::packer::{GuillotinePacker, Packer};
use tangram_stitch::solver::{split_to_fit, PatchStitchingSolver};
use tangram_types::geometry::Size;
use tangram_types::ids::SceneId;
use tangram_types::patch::PatchInfo;

fn main() {
    let opts = ExpOpts::from_args();
    let frames = opts.frame_budget(20, 80);
    println!("== Ablation: full re-stitch (paper) vs incremental insertion ==\n");
    println!("Queues of ~3 frames' patches, stitched both ways:\n");
    let mut table = TextTable::new([
        "scene",
        "queues",
        "re-stitch canvases",
        "incremental canvases",
        "extra %",
    ]);
    let per_scene = parallel_map(
        SceneId::all().collect::<Vec<_>>(),
        opts.workers(),
        |_, scene| {
            let solver = PatchStitchingSolver::new(Size::CANVAS_1024);
            let trace = build_trace(scene, frames, opts.seed, TraceKind::Proxy);
            let mut restitch_total = 0usize;
            let mut incremental_total = 0usize;
            let mut queues = 0usize;
            for window in trace.frames.chunks(3) {
                let infos: Vec<PatchInfo> = window
                    .iter()
                    .flat_map(|f| f.patches.iter())
                    .flat_map(|p| {
                        split_to_fit(p.info.rect, Size::CANVAS_1024)
                            .into_iter()
                            .map(move |rect| PatchInfo { rect, ..p.info })
                    })
                    .collect();
                if infos.is_empty() {
                    continue;
                }
                queues += 1;
                // Full re-stitch of the final queue (what Algorithm 2 ends
                // up dispatching).
                restitch_total += solver.stitch(&infos).expect("tiles fit").len();
                // Incremental: insert in arrival order, never repack.
                let mut packers: Vec<GuillotinePacker> = Vec::new();
                'patch: for info in &infos {
                    for p in &mut packers {
                        if p.insert(info.rect.size()).is_some() {
                            continue 'patch;
                        }
                    }
                    let mut p = GuillotinePacker::new(Size::CANVAS_1024);
                    assert!(p.insert(info.rect.size()).is_some());
                    packers.push(p);
                }
                incremental_total += packers.len();
            }
            (scene, queues, restitch_total, incremental_total)
        },
    );
    let mut grand = (0usize, 0usize);
    for (scene, queues, restitch_total, incremental_total) in per_scene {
        grand.0 += restitch_total;
        grand.1 += incremental_total;
        let extra = (incremental_total as f64 / restitch_total.max(1) as f64 - 1.0) * 100.0;
        table.row([
            scene.to_string(),
            queues.to_string(),
            restitch_total.to_string(),
            incremental_total.to_string(),
            format!("{extra:+.1}"),
        ]);
    }
    table.print();
    println!(
        "\nOverall: incremental packing needs {:+.1}% canvases vs full re-stitching —\nthe quality cost Algorithm 2 avoids by re-running the solver per arrival\n(at O(queue) insertions, cheap at these queue depths).",
        (grand.1 as f64 / grand.0.max(1) as f64 - 1.0) * 100.0
    );
}
