//! Fig. 4 — the challenges of RoI batching.
//!
//! (a) the RoI width/height scatter of scene_01 (summarised as a 2-D
//! histogram); (b) AP versus evaluation resolution for the 4K-trained and
//! 480P-trained model profiles — the downsize/upsize accuracy cliff that
//! motivates stitching over resizing. The (profile × resolution) cells of
//! (b) fan out over the harness pool with a per-cell rng fork.

use tangram_bench::{present_scaled, ExpOpts, TextTable};
use tangram_harness::parallel_map;
use tangram_infer::accuracy::{DetectionSimulator, ResolutionProfile};
use tangram_infer::ap::{ap50, FrameEval};
use tangram_sim::rng::DetRng;
use tangram_types::geometry::Rect;
use tangram_types::ids::SceneId;
use tangram_video::generator::{SceneSimulation, VideoConfig};
use tangram_video::scene::SceneProfile;

fn main() {
    let opts = ExpOpts::from_args();
    let frames = opts.frame_budget(30, 100);

    println!("== Fig. 4(a): RoI sizes in scene_01 (2-D histogram, counts) ==\n");
    let mut sim = SceneSimulation::new(SceneId::new(1), VideoConfig::default(), opts.seed);
    let mut hist = [[0u32; 5]; 5]; // rows: height bands, cols: width bands
    let bands_w = [50u32, 100, 150, 200, 250];
    let bands_h = [80u32, 160, 240, 320, 400];
    let mut max_w = 0u32;
    let mut max_h = 0u32;
    for frame in sim.frames(frames) {
        for o in &frame.objects {
            max_w = max_w.max(o.rect.width);
            max_h = max_h.max(o.rect.height);
            let wi = bands_w.iter().position(|&b| o.rect.width < b).unwrap_or(4);
            let hi = bands_h.iter().position(|&b| o.rect.height < b).unwrap_or(4);
            hist[hi][wi] += 1;
        }
    }
    let mut t = TextTable::new(["height \\ width", "<50", "<100", "<150", "<200", ">=200"]);
    for (hi, row) in hist.iter().enumerate() {
        let label = if hi < 4 {
            format!("<{}", bands_h[hi])
        } else {
            ">=320".to_string()
        };
        let mut cells = vec![label];
        cells.extend(row.iter().map(ToString::to_string));
        t.row(cells);
    }
    t.print();
    println!("\nLargest RoI seen: {max_w}x{max_h} px (paper scatter reaches ~250x400).\n");

    println!("== Fig. 4(b): AP vs evaluation resolution ==\n");
    // Aggregate over the five motivation scenes, like the paper's PANDA
    // evaluation split.
    let resolutions: [(&str, f64); 5] = [
        ("4K", 1.0),
        ("2K", 2.0 / 3.0),
        ("1080P", 0.5),
        ("720P", 1.0 / 3.0),
        ("480P", 2.0 / 9.0),
    ];
    let paper_4k = [0.744, 0.736, 0.691, 0.600, 0.374];
    let paper_480 = [0.411, 0.462, 0.528, 0.546, 0.551];

    let mut table = TextTable::new([
        "resolution",
        "4K-trained AP (paper)",
        "480P-trained AP (paper)",
    ]);
    // One cell per (profile, resolution), independently seeded.
    let cells: Vec<(usize, usize, f64)> = (0..2)
        .flat_map(|pi| (0..resolutions.len()).map(move |ri| (pi, ri, resolutions[ri].1)))
        .collect();
    let aps = parallel_map(cells, opts.workers(), |_, (pi, ri, scale)| {
        let profile = if pi == 0 {
            ResolutionProfile::yolov8x_4k()
        } else {
            ResolutionProfile::yolov8x_480p()
        };
        let simulator = DetectionSimulator::new(profile);
        let mut evals: Vec<FrameEval> = Vec::new();
        let mut rng = DetRng::new(opts.seed).fork_indexed("fig4", (pi * 8 + ri) as u64);
        for scene in SceneId::all().take(5) {
            let base = SceneProfile::panda(scene).full_frame_ap;
            let mut sim = SceneSimulation::new(scene, VideoConfig::default(), opts.seed);
            for frame in sim.frames(frames / 2) {
                let presented = present_scaled(&frame, scale);
                let dets = simulator.detect(
                    &presented,
                    frame.frame_size.megapixels() * scale * scale,
                    base,
                    Rect::from_size(frame.frame_size),
                    &mut rng,
                );
                evals.push(FrameEval::new(frame.object_rects(), dets));
            }
        }
        (pi, ri, ap50(&evals))
    });
    let mut results = [[0.0f64; 5]; 2];
    for (pi, ri, ap) in aps {
        results[pi][ri] = ap;
    }
    for (i, &(name, _)) in resolutions.iter().enumerate() {
        table.row([
            name.to_string(),
            format!("{:.3} ({:.3})", results[0][i], paper_4k[i]),
            format!("{:.3} ({:.3})", results[1][i], paper_480[i]),
        ]);
    }
    table.print();
    println!(
        "\nShape check: the 4K model collapses as inputs shrink (downsize) while the\n480P model degrades as inputs are blown up (upsize) — resizing for batching\nforfeits accuracy either way, which is why Tangram stitches at native scale."
    );
}
