//! Fig. 10 — adaptive partitioning under dynamic workloads.
//!
//! (a) patches per frame for each scene under 4×4 partitioning;
//! (b) the CDF of canvas efficiency when each frame's patches are
//! stitched onto 1024×1024 canvases as one request.
//!
//! Scenes fan out over the harness pool; per-scene efficiency samples
//! are pooled in scene order afterwards, so the output is independent of
//! the worker count.

use tangram_bench::{ExpOpts, TextTable};
use tangram_harness::parallel_map;
use tangram_harness::presets::build_trace;
use tangram_harness::TraceKind;
use tangram_sim::stats::EmpiricalCdf;
use tangram_stitch::solver::{split_to_fit, PatchStitchingSolver};
use tangram_types::geometry::Size;
use tangram_types::ids::SceneId;
use tangram_types::patch::PatchInfo;

fn main() {
    let opts = ExpOpts::from_args();
    let frames = opts.frame_budget(30, 120);

    struct SceneOut {
        scene: SceneId,
        counts: Vec<usize>,
        efficiencies: Vec<f64>,
    }

    let per_scene = parallel_map(
        SceneId::all().collect::<Vec<_>>(),
        opts.workers(),
        |_, scene| {
            let solver = PatchStitchingSolver::new(Size::CANVAS_1024);
            let trace = build_trace(scene, frames, opts.seed, TraceKind::Proxy);
            let counts: Vec<usize> = trace.frames.iter().map(|f| f.patches.len()).collect();
            let mut efficiencies = Vec::new();
            for f in &trace.frames {
                let mut infos: Vec<PatchInfo> = Vec::new();
                for p in &f.patches {
                    for rect in split_to_fit(p.info.rect, Size::CANVAS_1024) {
                        infos.push(PatchInfo { rect, ..p.info });
                    }
                }
                if infos.is_empty() {
                    continue;
                }
                let canvases = solver.stitch(&infos).expect("tiles fit");
                efficiencies.extend(canvases.iter().map(|c| c.efficiency()));
            }
            SceneOut {
                scene,
                counts,
                efficiencies,
            }
        },
    );

    println!("== Fig. 10(a): patches per frame (4x4 partitioning) ==\n");
    let mut per_frame = TextTable::new(["scene", "mean", "min", "max"]);
    let mut cdf = EmpiricalCdf::new();
    let mut per_scene_eff: Vec<(SceneId, f64)> = Vec::new();
    for out in &per_scene {
        let mean = out.counts.iter().sum::<usize>() as f64 / out.counts.len() as f64;
        per_frame.row([
            out.scene.to_string(),
            format!("{mean:.1}"),
            format!("{}", out.counts.iter().min().unwrap()),
            format!("{}", out.counts.iter().max().unwrap()),
        ]);
        cdf.extend(out.efficiencies.iter().copied());
        let mut scene_eff = EmpiricalCdf::new();
        scene_eff.extend(out.efficiencies.iter().copied());
        per_scene_eff.push((out.scene, scene_eff.mean()));
    }
    per_frame.print();
    println!(
        "\nPaper range: roughly 6–16 patches per frame, tracking object count and\nspatial spread.\n"
    );

    println!("== Fig. 10(b): CDF of canvas efficiency (4x4, 1024) ==\n");
    let mut cdf_table = TextTable::new(["efficiency", "CDF"]);
    for (v, p) in cdf.points(12) {
        cdf_table.row([format!("{v:.3}"), format!("{p:.3}")]);
    }
    cdf_table.print();

    println!("\nMean canvas efficiency per scene:");
    let mut eff_table = TextTable::new(["scene", "mean efficiency"]);
    for (scene, eff) in per_scene_eff {
        eff_table.row([scene.to_string(), format!("{eff:.3}")]);
    }
    eff_table.print();
}
