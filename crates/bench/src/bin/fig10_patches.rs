//! Fig. 10 — adaptive partitioning under dynamic workloads.
//!
//! (a) patches per frame for each scene under 4×4 partitioning;
//! (b) the CDF of canvas efficiency when each frame's patches are
//! stitched onto 1024×1024 canvases as one request.

use tangram_bench::{ExpOpts, TextTable};
use tangram_core::workload::TraceConfig;
use tangram_sim::stats::EmpiricalCdf;
use tangram_stitch::canvas::Canvas;
use tangram_stitch::solver::{split_to_fit, PatchStitchingSolver};
use tangram_types::geometry::Size;
use tangram_types::ids::SceneId;
use tangram_types::patch::PatchInfo;

fn main() {
    let opts = ExpOpts::from_args();
    let frames = opts.frame_budget(30, 120);
    let solver = PatchStitchingSolver::new(Size::CANVAS_1024);

    println!("== Fig. 10(a): patches per frame (4x4 partitioning) ==\n");
    let mut per_frame = TextTable::new(["scene", "mean", "min", "max"]);
    let mut cdf = EmpiricalCdf::new();
    let mut per_scene_eff: Vec<(SceneId, f64)> = Vec::new();
    for scene in SceneId::all() {
        let trace = TraceConfig::proxy_extractor(scene, frames, opts.seed).build();
        let counts: Vec<usize> = trace.frames.iter().map(|f| f.patches.len()).collect();
        let mean = counts.iter().sum::<usize>() as f64 / counts.len() as f64;
        per_frame.row([
            scene.to_string(),
            format!("{mean:.1}"),
            format!("{}", counts.iter().min().unwrap()),
            format!("{}", counts.iter().max().unwrap()),
        ]);

        // Fig. 10(b): stitch each frame's patches as one request.
        let mut scene_eff = EmpiricalCdf::new();
        for f in &trace.frames {
            let mut infos: Vec<PatchInfo> = Vec::new();
            for p in &f.patches {
                for rect in split_to_fit(p.info.rect, Size::CANVAS_1024) {
                    infos.push(PatchInfo { rect, ..p.info });
                }
            }
            if infos.is_empty() {
                continue;
            }
            let canvases = solver.stitch(&infos).expect("tiles fit");
            for c in &canvases {
                cdf.push(c.efficiency());
                scene_eff.push(c.efficiency());
            }
        }
        per_scene_eff.push((scene, scene_eff.mean()));
    }
    per_frame.print();
    println!(
        "\nPaper range: roughly 6–16 patches per frame, tracking object count and\nspatial spread.\n"
    );

    println!("== Fig. 10(b): CDF of canvas efficiency (4x4, 1024) ==\n");
    let mut cdf_table = TextTable::new(["efficiency", "CDF"]);
    for (v, p) in cdf.points(12) {
        cdf_table.row([format!("{v:.3}"), format!("{p:.3}")]);
    }
    cdf_table.print();

    println!("\nMean canvas efficiency per scene:");
    let mut eff_table = TextTable::new(["scene", "mean efficiency"]);
    for (scene, eff) in per_scene_eff {
        eff_table.row([scene.to_string(), format!("{eff:.3}")]);
    }
    eff_table.print();
    let _ = Canvas::new(tangram_types::ids::CanvasId::new(0), Size::CANVAS_1024);
}
