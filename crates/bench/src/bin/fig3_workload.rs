//! Fig. 3 — fluctuation of inference workloads.
//!
//! (a) the RoI-proportion time series of each scene (sampled every 10
//! frames here); (b) the CDF of RoI proportion pooled over all scenes.
//! Scenes fan out over the harness pool; the pooled CDF is assembled in
//! scene order afterwards.

use tangram_bench::{ExpOpts, TextTable};
use tangram_harness::parallel_map;
use tangram_sim::stats::EmpiricalCdf;
use tangram_types::ids::SceneId;
use tangram_video::generator::{FrameTruth, SceneSimulation, VideoConfig};

fn main() {
    let opts = ExpOpts::from_args();
    let frames = opts.frame_budget(60, 200);
    println!("== Fig. 3(a): RoI proportion over time (sampled every 10 frames) ==\n");

    let per_scene = parallel_map(
        SceneId::all().collect::<Vec<_>>(),
        opts.workers(),
        |_, scene| {
            let mut sim = SceneSimulation::new(scene, VideoConfig::default(), opts.seed);
            let props: Vec<f64> = sim
                .frames(frames)
                .iter()
                .map(FrameTruth::roi_proportion)
                .collect();
            (scene, props)
        },
    );

    let mut cdf = EmpiricalCdf::new();
    let mut series_table =
        TextTable::new(["scene", "mean", "min", "max", "samples (every 10th frame)"]);
    for (scene, props) in &per_scene {
        cdf.extend(props.iter().copied());
        let mean = props.iter().sum::<f64>() / props.len() as f64;
        let min = props.iter().copied().fold(f64::INFINITY, f64::min);
        let max = props.iter().copied().fold(0.0f64, f64::max);
        let samples: Vec<String> = props
            .iter()
            .step_by(10)
            .map(|p| format!("{p:.3}"))
            .collect();
        series_table.row([
            scene.to_string(),
            format!("{mean:.4}"),
            format!("{min:.4}"),
            format!("{max:.4}"),
            samples.join(" "),
        ]);
    }
    series_table.print();

    println!("\n== Fig. 3(b): CDF of RoI proportion across all scenes ==\n");
    let mut cdf_table = TextTable::new(["RoI proportion", "CDF"]);
    for (value, prob) in cdf.points(12) {
        cdf_table.row([format!("{value:.4}"), format!("{prob:.3}")]);
    }
    cdf_table.print();
    println!(
        "\nPaper: proportions fluctuate irregularly within roughly 5–15%, with\nunpredictable peaks; the CDF mass sits in the same band."
    );
}
