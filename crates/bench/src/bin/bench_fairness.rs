//! Fairness bench: the weighted-share-vs-offered-load table — what the
//! admitted traffic mix looks like when a weighted-DRR fair ingress,
//! rather than class-blind shedding, gives ground under overload.
//!
//! Four cameras with the gold (0.8 s) / best-effort (1.5 s) tenant mix
//! stream open-loop Poisson frames at a ramp crossing the DRR ingress
//! service rate (the scenario axis), every cell mounting the 3:1
//! weighted-DRR stage of `fairness_drr_spec` (the fairness axis) with
//! admission-aware Tangram scheduling. Past the capacity knee the
//! *admitted* per-class shares must track the configured 3:1 weights —
//! contrast `bench_overload`'s `SloShedder`, whose admitted residue
//! collapses toward a single class. Admitted counts, per-class queue
//! peaks and overflow sheds are first-class metrics in
//! `BENCH_fairness*.json` and are gated like any other correctness
//! metric.
//!
//! Standard flags apply: `--workers N` (output is byte-identical for any
//! worker count), `--seed`, `--frames N` (frame budget per camera),
//! `--out DIR`; `--smoke` keeps the 2× and 4× ramp points for CI (grid
//! name `fairness`, gated against `baselines/BENCH_fairness.json`).

use tangram_bench::{ExpOpts, TextTable};
use tangram_harness::presets::{fairness_grid, FAIRNESS_WEIGHTS, TENANT_MIX_SLOS_S};
use tangram_harness::run_grid;

fn main() {
    let opts = ExpOpts::from_args();
    let smoke = std::env::args().any(|a| a == "--smoke");
    // Smoke mode pins the CI-gated grid shape: only an explicit
    // `--frames` may move it.
    let frames = if smoke {
        opts.frames.unwrap_or(48)
    } else {
        opts.frame_budget(24, 48)
    };
    let grid = fairness_grid(opts.seed, frames, smoke);
    let cameras = grid.workloads[0].scenes.len();
    let workers = opts.workers();
    println!(
        "== bench_fairness: {} cells on {} workers — {} cameras, offered-load ramp {:?} fps/cam, DRR weights {:?} ==\n",
        grid.cell_count(),
        workers,
        cameras,
        grid.scenarios
            .iter()
            .map(|s| match s.arrival {
                tangram_harness::ArrivalSpec::Poisson { fps } => fps,
                _ => f64::NAN,
            })
            .collect::<Vec<_>>(),
        FAIRNESS_WEIGHTS,
    );

    let report = run_grid(&grid, workers);
    opts.maybe_write(&report);

    // The weighted-share-vs-offered-load table: one row per ramp point,
    // gold and best-effort admitted shares against the weight targets.
    let [gold_w, be_w] = FAIRNESS_WEIGHTS;
    let gold_target = gold_w / (gold_w + be_w);
    let mut table = TextTable::new([
        "offered (fps)",
        "arrivals",
        "admitted",
        "dropped",
        "gold adm %",
        "target %",
        "be adm %",
        "gold peak q",
        "attain %",
        "p99 (s)",
    ]);
    for cell in &report.cells {
        let m = &cell.metrics;
        let scenario = &grid.scenarios[cell.scenario.unwrap_or(0) as usize];
        let offered = match scenario.arrival {
            tangram_harness::ArrivalSpec::Poisson { fps } => fps * cameras as f64,
            _ => f64::NAN,
        };
        let class = |slo_s: f64| {
            m.tenants
                .iter()
                .find(|t| (t.slo_s - slo_s).abs() < 1e-9)
                .cloned()
                .unwrap_or_default()
        };
        let [gold_slo, be_slo] = TENANT_MIX_SLOS_S;
        let (gold, be) = (class(gold_slo), class(be_slo));
        let admitted_total = (gold.admitted + be.admitted).max(1) as f64;
        table.row([
            format!("{offered:.0}"),
            (m.patches + m.dropped_arrivals).to_string(),
            (gold.admitted + be.admitted).to_string(),
            m.dropped_arrivals.to_string(),
            format!("{:.1}", gold.admitted as f64 / admitted_total * 100.0),
            format!("{:.1}", gold_target * 100.0),
            format!("{:.1}", be.admitted as f64 / admitted_total * 100.0),
            gold.peak_queued.to_string(),
            format!("{:.1}", m.slo_attainment * 100.0),
            format!("{:.3}", m.p99_latency_s),
        ]);
    }
    table.print();
    println!(
        "\nPast the ingress knee the weighted DRR keeps the admitted mix at the configured weights — \
         compare bench_overload, where the SLO shedder's admitted residue collapses toward one class. \
         Admitted counts and per-class queue peaks are in the BENCH json, gated as correctness."
    );
}
