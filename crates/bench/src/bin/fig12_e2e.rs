//! Fig. 12 — end-to-end cost and SLO violation.
//!
//! Bandwidth ∈ {20, 40, 80} Mbps × five SLOs × four systems (Tangram,
//! Clipper, ELF, MArk), expressed as one `SweepGrid` per bandwidth and
//! fanned out over the harness worker pool. Each cell runs the full
//! engine over one motivation scene; the tables report the average
//! per-scene cost and the pooled SLO violation rate. `--out DIR` writes
//! one `BENCH_fig12_e2e_bw<N>.json` per grid.

use tangram_bench::{ExpOpts, TextTable};
use tangram_harness::presets::{
    e2e_grid, motivation_scenes, trace_kind, E2E_POLICIES, PAPER_BANDWIDTHS_MBPS,
};
use tangram_harness::{run_grid, BenchReport};

fn main() {
    let opts = ExpOpts::from_args();
    let frames = opts.frame_budget(40, 134);
    let scenes = motivation_scenes(opts.quick);
    let kind = trace_kind(opts.quick);

    for bw in PAPER_BANDWIDTHS_MBPS {
        let grid = e2e_grid(
            &format!("fig12_e2e_bw{bw:.0}"),
            bw,
            &scenes,
            frames,
            kind,
            opts.seed,
        );
        let report = run_grid(&grid, opts.workers());
        opts.maybe_write(&report);

        println!("== Fig. 12 @ {bw:.0} Mbps: average cost ($/scene) and SLO violation (%) ==\n");
        let mut cost_table = policy_table();
        let mut viol_table = policy_table();
        for &slo in &grid.slos_s {
            let mut cost_row = vec![format!("{slo:.1}")];
            let mut viol_row = vec![format!("{slo:.1}")];
            for policy in E2E_POLICIES {
                let cells = cells_at(&report, slo, policy.name());
                let scenes = cells.len().max(1) as f64;
                let total_cost: f64 = cells.iter().map(|c| c.metrics.cost_usd).sum();
                let violations: u64 = cells.iter().map(|c| c.metrics.violations).sum();
                let patches: u64 = cells.iter().map(|c| c.metrics.patches).sum();
                cost_row.push(format!("{:.4}", total_cost / scenes));
                viol_row.push(format!(
                    "{:.1}",
                    violations as f64 / patches.max(1) as f64 * 100.0
                ));
            }
            cost_table.row(cost_row);
            viol_table.row(viol_row);
        }
        println!("-- average cost ($ per scene clip) --");
        cost_table.print();
        println!("\n-- SLO violation (%) --");
        viol_table.print();
        println!();
    }
    println!(
        "Paper shape: Tangram has the lowest cost in every cell, its cost falls as\nthe SLO loosens (more batching headroom), and its violations stay below 5%;\nClipper/MArk pay for padded inputs, ELF pays per-patch overheads and\nsaturates the uplink with raw crops at 20 Mbps."
    );
}

fn policy_table() -> TextTable {
    TextTable::new(["SLO (s)", "Tangram", "Clipper", "ELF", "MArk"])
}

fn cells_at<'a>(
    report: &'a BenchReport,
    slo_s: f64,
    policy: &str,
) -> Vec<&'a tangram_harness::CellReport> {
    report
        .cells
        .iter()
        .filter(|c| (c.slo_s - slo_s).abs() < 1e-9 && c.metrics.policy == policy)
        .collect()
}
