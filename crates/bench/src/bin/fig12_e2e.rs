//! Fig. 12 — end-to-end cost and SLO violation.
//!
//! Bandwidth ∈ {20, 40, 80} Mbps × five SLOs × four systems (Tangram,
//! Clipper, ELF, MArk). Each cell runs the full engine over the five
//! motivation scenes and reports the average per-scene cost and the
//! pooled SLO violation rate.

use tangram_bench::{ExpOpts, TextTable};
use tangram_core::engine::{EngineConfig, PolicyKind};
use tangram_core::workload::{CameraTrace, TraceConfig};
use tangram_types::ids::SceneId;
use tangram_types::time::SimDuration;

fn main() {
    let opts = ExpOpts::from_args();
    let frames = opts.frame_budget(40, 134);
    let scenes: Vec<SceneId> = SceneId::all()
        .take(if opts.quick { 2 } else { 5 })
        .collect();
    let policies = [
        PolicyKind::Tangram,
        PolicyKind::Clipper,
        PolicyKind::Elf,
        PolicyKind::Mark,
    ];
    // MArk gets "an appropriate timeout for each bandwidth setting"
    // (§V-A) — fixed per bandwidth, unaware of the actual SLO, which is
    // exactly the knob-tuning burden Tangram removes.
    let sweeps: [(f64, [f64; 5], f64); 3] = [
        (20.0, [1.0, 1.1, 1.2, 1.3, 1.4], 0.55),
        (40.0, [0.8, 0.9, 1.0, 1.1, 1.2], 0.45),
        (80.0, [0.6, 0.7, 0.8, 0.9, 1.0], 0.35),
    ];

    // Traces are shared across every policy and SLO. The full run uses the
    // GMM pipeline (the paper's prototype); quick mode falls back to the
    // proxy extractor.
    let traces: Vec<CameraTrace> = scenes
        .iter()
        .map(|&scene| {
            if opts.quick {
                TraceConfig::proxy_extractor(scene, frames, opts.seed).build()
            } else {
                TraceConfig::gmm_extractor(scene, frames, opts.seed).build()
            }
        })
        .collect();

    for (bw, slos, mark_timeout) in sweeps {
        println!("== Fig. 12 @ {bw:.0} Mbps: average cost ($/scene) and SLO violation (%) ==\n");
        let mut cost_table = TextTable::new(["SLO (s)", "Tangram", "Clipper", "ELF", "MArk"]);
        let mut viol_table = cost_table_clone_headers();
        for slo in slos {
            let mut cost_row = vec![format!("{slo:.1}")];
            let mut viol_row = vec![format!("{slo:.1}")];
            for policy in policies {
                let mut total_cost = 0.0;
                let mut violations = 0usize;
                let mut patches = 0usize;
                for trace in &traces {
                    let config = EngineConfig {
                        policy,
                        slo: SimDuration::from_secs_f64(slo),
                        bandwidth_mbps: bw,
                        mark_timeout: Some(SimDuration::from_secs_f64(mark_timeout)),
                        seed: opts.seed,
                        ..EngineConfig::default()
                    };
                    let report = config.run(std::slice::from_ref(trace));
                    total_cost += report.total_cost().get();
                    violations += report.patches.iter().filter(|p| p.violated()).count();
                    patches += report.patches_completed();
                }
                cost_row.push(format!("{:.4}", total_cost / traces.len() as f64));
                viol_row.push(format!(
                    "{:.1}",
                    violations as f64 / patches.max(1) as f64 * 100.0
                ));
            }
            cost_table.row(cost_row);
            viol_table.row(viol_row);
        }
        println!("-- average cost ($ per scene clip) --");
        cost_table.print();
        println!("\n-- SLO violation (%) --");
        viol_table.print();
        println!();
    }
    println!(
        "Paper shape: Tangram has the lowest cost in every cell, its cost falls as\nthe SLO loosens (more batching headroom), and its violations stay below 5%;\nClipper/MArk pay for padded inputs, ELF pays per-patch overheads and\nsaturates the uplink with raw crops at 20 Mbps."
    );
}

fn cost_table_clone_headers() -> TextTable {
    TextTable::new(["SLO (s)", "Tangram", "Clipper", "ELF", "MArk"])
}
