//! Table III — inference accuracy (AP@0.5) under adaptive partitioning.
//!
//! Per scene: full-frame AP vs the AP after cutting the frame into 2×2 /
//! 4×4 / 6×6 partitions. RoIs are extracted once per frame (GMM in full
//! mode) and partitioned three ways; objects outside every patch cannot
//! be detected, objects clipped by patch boundaries are harder — the
//! mechanism behind the paper's small, granularity-dependent losses.
//! Scenes fan out over the harness pool via the shared extractor rig.

use tangram_bench::{present_scaled, present_through_regions, ExpOpts, TextTable};
use tangram_harness::parallel_map;
use tangram_harness::presets::{EdgeExtractor, SceneRig};
use tangram_infer::accuracy::{DetectionSimulator, ResolutionProfile};
use tangram_infer::ap::{ap50, FrameEval};
use tangram_partition::algorithm::{partition, PartitionConfig};
use tangram_sim::rng::DetRng;
use tangram_types::geometry::Rect;
use tangram_types::ids::SceneId;
use tangram_video::scene::SceneProfile;

/// Paper Table III: (full, 2×2, 4×4, 6×6) per scene.
const PAPER: [(f64, f64, f64, f64); 10] = [
    (0.572, 0.583, 0.573, 0.565),
    (0.767, 0.756, 0.747, 0.750),
    (0.576, 0.570, 0.549, 0.493),
    (0.964, 0.962, 0.964, 0.927),
    (0.899, 0.893, 0.894, 0.830),
    (0.686, 0.665, 0.647, 0.644),
    (0.698, 0.663, 0.692, 0.672),
    (0.638, 0.626, 0.622, 0.549),
    (0.598, 0.587, 0.598, 0.553),
    (0.634, 0.615, 0.615, 0.586),
];

fn main() {
    let opts = ExpOpts::from_args();
    let frames = opts.frame_budget(20, 60);
    let grids = [
        PartitionConfig::new(2, 2),
        PartitionConfig::new(4, 4),
        PartitionConfig::new(6, 6),
    ];
    println!("== Table III: AP@0.5 vs partition granularity (ours vs paper) ==\n");
    let mut table = TextTable::new(["scene", "full", "2x2", "4x4", "6x6"]);
    let rows = parallel_map(
        SceneId::all().collect::<Vec<_>>(),
        opts.workers(),
        |_, scene| {
            let simulator = DetectionSimulator::new(ResolutionProfile::yolov8x_4k());
            let profile = SceneProfile::panda(scene);
            let base = profile.full_frame_ap;
            let mut rng = DetRng::new(opts.seed).fork_indexed("t3", u64::from(scene.index()));
            let mut rig =
                SceneRig::new(scene, EdgeExtractor::for_mode(opts.quick), opts.seed, "t3");
            // evals[0] = full frame; 1..=3 the three grids.
            let mut evals: Vec<Vec<FrameEval>> = vec![Vec::new(); 4];
            for _ in 0..frames {
                let frame = rig.sim.next_frame();
                let bounds = Rect::from_size(frame.frame_size);
                let truths = frame.object_rects();
                let rois = rig.extractor.extract(&frame);

                let dets = simulator.detect(
                    &present_scaled(&frame, 1.0),
                    frame.frame_size.megapixels(),
                    base,
                    bounds,
                    &mut rng,
                );
                evals[0].push(FrameEval::new(truths.clone(), dets));

                for (gi, grid) in grids.iter().enumerate() {
                    let patches = partition(frame.frame_size, *grid, &rois);
                    let presented = present_through_regions(&frame, &patches);
                    let mpx = patches.iter().map(|p| p.area() as f64).sum::<f64>() / 1.0e6;
                    let dets = simulator.detect(&presented, mpx, base, bounds, &mut rng);
                    evals[gi + 1].push(FrameEval::new(truths.clone(), dets));
                }
            }
            let aps: Vec<f64> = evals.iter().map(|e| ap50(e)).collect();
            let p = PAPER[scene.array_index()];
            let paper = [p.0, p.1, p.2, p.3];
            let mut cells = vec![scene.to_string()];
            for i in 0..4 {
                cells.push(format!("{:.3} ({:.3})", aps[i], paper[i]));
            }
            cells
        },
    );
    for row in rows {
        table.row(row);
    }
    table.print();
    println!(
        "\nPaper: losses stay within ~4% / 5% / 9% for 2x2 / 4x4 / 6x6 — finer zones\nlose more objects between zone boundaries."
    );
}
