//! Fig. 11 — qualitative partitioning examples.
//!
//! Renders an ASCII view of two frames (a sparse scene_01 frame and a
//! busy scene_08 frame) showing ground-truth objects (`o`), extractor
//! RoIs (`+`) and the patch rectangles Algorithm 1 cuts (`#` borders),
//! plus a PPM image written next to the binary output for close viewing.
//! The two scenes render on the harness pool via the shared scene rig.

use std::io::Write;
use tangram_bench::ExpOpts;
use tangram_harness::parallel_map;
use tangram_harness::presets::{EdgeExtractor, SceneRig};
use tangram_partition::algorithm::{partition, PartitionConfig};
use tangram_types::geometry::Rect;
use tangram_types::ids::SceneId;
use tangram_video::generator::FrameTruth;

const COLS: u32 = 96;
const ROWS: u32 = 27;

fn main() {
    let opts = ExpOpts::from_args();
    let sections = parallel_map(
        vec![(1u8, 10usize), (8, 29)],
        opts.workers(),
        |_, (scene_idx, frame_skip)| {
            let scene = SceneId::new(scene_idx);
            let mut rig = SceneRig::new(scene, EdgeExtractor::SsdProxy, opts.seed, "fig11");
            let mut frame = rig.sim.next_frame();
            for _ in 0..frame_skip {
                frame = rig.sim.next_frame();
            }
            let rois = rig.extractor.extract(&frame);
            let patches = partition(frame.frame_size, PartitionConfig::default(), &rois);
            let mut out = format!(
                "== Fig. 11: {scene} frame#{} — {} objects, {} RoIs, {} patches (4x4) ==\n\n",
                frame.frame.raw(),
                frame.objects.len(),
                rois.len(),
                patches.len()
            );
            out.push_str(&ascii_view(&frame, &rois, &patches));
            out.push('\n');
            let path = format!("target/fig11_{scene}.ppm");
            if write_ppm(&path, &frame, &rois, &patches).is_ok() {
                out.push_str(&format!("(wrote {path})\n"));
            }
            out
        },
    );
    for section in sections {
        println!("{section}");
    }
    println!(
        "Legend: 'o' ground-truth object, '+' extractor RoI area, '#' patch border.\nSparse frames need few patches; busy frames with spread objects cut more —\nthe adaptive behaviour of Fig. 10(a)."
    );
}

fn to_cell(frame: &FrameTruth, x: u32, y: u32) -> (u32, u32) {
    (
        x * COLS / frame.frame_size.width,
        y * ROWS / frame.frame_size.height,
    )
}

fn ascii_view(frame: &FrameTruth, rois: &[Rect], patches: &[Rect]) -> String {
    let mut grid = vec![vec![b'.'; COLS as usize]; ROWS as usize];
    let fill = |r: &Rect, ch: u8, grid: &mut Vec<Vec<u8>>| {
        let (x0, y0) = to_cell(frame, r.x, r.y);
        let (x1, y1) = to_cell(
            frame,
            r.right().min(frame.frame_size.width - 1),
            r.bottom().min(frame.frame_size.height - 1),
        );
        for y in y0..=y1.min(ROWS - 1) {
            for x in x0..=x1.min(COLS - 1) {
                grid[y as usize][x as usize] = ch;
            }
        }
    };
    for r in rois {
        fill(r, b'+', &mut grid);
    }
    for o in &frame.objects {
        fill(&o.rect, b'o', &mut grid);
    }
    // Patch borders drawn last so they stay visible.
    for p in patches {
        let (x0, y0) = to_cell(frame, p.x, p.y);
        let (x1, y1) = to_cell(
            frame,
            p.right().min(frame.frame_size.width - 1),
            p.bottom().min(frame.frame_size.height - 1),
        );
        for x in x0..=x1.min(COLS - 1) {
            grid[y0.min(ROWS - 1) as usize][x as usize] = b'#';
            grid[y1.min(ROWS - 1) as usize][x as usize] = b'#';
        }
        for y in y0..=y1.min(ROWS - 1) {
            grid[y as usize][x0.min(COLS - 1) as usize] = b'#';
            grid[y as usize][x1.min(COLS - 1) as usize] = b'#';
        }
    }
    grid.into_iter()
        .map(|row| String::from_utf8(row).expect("ascii"))
        .collect::<Vec<_>>()
        .join("\n")
}

fn write_ppm(
    path: &str,
    frame: &FrameTruth,
    rois: &[Rect],
    patches: &[Rect],
) -> std::io::Result<()> {
    let (w, h) = (960u32, 540u32);
    let sx = |x: u32| x * w / frame.frame_size.width;
    let sy = |y: u32| y * h / frame.frame_size.height;
    let mut img = vec![[30u8, 30, 30]; (w * h) as usize];
    let fill = |r: &Rect, color: [u8; 3], img: &mut Vec<[u8; 3]>| {
        for y in sy(r.y)..sy(r.bottom()).min(h) {
            for x in sx(r.x)..sx(r.right()).min(w) {
                img[(y * w + x) as usize] = color;
            }
        }
    };
    for r in rois {
        fill(r, [70, 70, 140], &mut img);
    }
    for o in &frame.objects {
        fill(&o.rect, [200, 60, 60], &mut img);
    }
    for p in patches {
        // Borders in green.
        let (x0, x1) = (sx(p.x), sx(p.right()).min(w - 1));
        let (y0, y1) = (sy(p.y), sy(p.bottom()).min(h - 1));
        for x in x0..=x1 {
            img[(y0 * w + x) as usize] = [60, 220, 60];
            img[(y1 * w + x) as usize] = [60, 220, 60];
        }
        for y in y0..=y1 {
            img[(y * w + x0) as usize] = [60, 220, 60];
            img[(y * w + x1) as usize] = [60, 220, 60];
        }
    }
    let mut f = std::fs::File::create(path)?;
    writeln!(f, "P6\n{w} {h}\n255")?;
    for px in img {
        f.write_all(&px)?;
    }
    Ok(())
}
