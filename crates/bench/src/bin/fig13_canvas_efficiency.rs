//! Fig. 13 — canvas efficiency vs bandwidth and SLO.
//!
//! (a)–(c): the canvas-efficiency CDF of Tangram's batches for each SLO
//! at 20/40/80 Mbps; (d): the three bandwidths compared at SLO = 1 s.
//! One `SweepGrid` per bandwidth (Tangram only, the paper's SLO axis for
//! that link — SLO = 1 s appears in each, which is what 13(d) reads
//! across bandwidths), fanned out over the harness pool; the CDFs come
//! from the full per-batch records, the scalar digests go to
//! `BENCH_fig13_canvas_efficiency_bw<N>.json` with `--out DIR`.

use tangram_bench::{ExpOpts, TextTable};
use tangram_core::engine::PolicyKind;
use tangram_harness::presets::{motivation_scenes, paper_slos_s, trace_kind};
use tangram_harness::{bench_report, run_grid_full, CellOutcome, SweepGrid, WorkloadSpec};
use tangram_sim::stats::EmpiricalCdf;

fn main() {
    let opts = ExpOpts::from_args();
    let frames = opts.frame_budget(40, 134);
    let scenes = motivation_scenes(opts.quick);
    let kind = trace_kind(opts.quick);

    let mut outcomes: Vec<CellOutcome> = Vec::new();
    for bw in [20.0, 40.0, 80.0] {
        let mut grid = SweepGrid::named(&format!("fig13_canvas_efficiency_bw{bw:.0}"));
        grid.policies = vec![PolicyKind::Tangram];
        grid.seeds = vec![opts.seed];
        grid.slos_s = paper_slos_s(bw).to_vec();
        grid.bandwidths_mbps = vec![bw];
        grid.workloads = WorkloadSpec::per_scene(&scenes, frames, kind);

        let grid_outcomes = run_grid_full(&grid, opts.workers());
        opts.maybe_write(&bench_report(&grid, &grid_outcomes));
        outcomes.extend(grid_outcomes);
    }

    let efficiency_cdf = |bw: f64, slo: f64| -> EmpiricalCdf {
        let mut cdf = EmpiricalCdf::new();
        for outcome in outcomes
            .iter()
            .filter(|o| (o.cell.bandwidth_mbps - bw).abs() < 1e-9)
            .filter(|o| (o.cell.slo_s - slo).abs() < 1e-9)
        {
            cdf.extend(outcome.report.canvas_efficiencies());
        }
        cdf
    };

    for bw in [20.0, 40.0, 80.0] {
        println!("== Fig. 13 @ {bw:.0} Mbps: canvas efficiency by SLO ==\n");
        let mut table = TextTable::new(["SLO (s)", "mean", "p25", "median", "p75", "frac > 0.6"]);
        for slo in paper_slos_s(bw) {
            let mut cdf = efficiency_cdf(bw, slo);
            if cdf.is_empty() {
                continue;
            }
            let above = 1.0 - cdf.fraction_at_or_below(0.6);
            table.row([
                format!("{slo:.1}"),
                format!("{:.3}", cdf.mean()),
                format!("{:.3}", cdf.quantile(0.25).unwrap_or(0.0)),
                format!("{:.3}", cdf.quantile(0.5).unwrap_or(0.0)),
                format!("{:.3}", cdf.quantile(0.75).unwrap_or(0.0)),
                format!("{above:.2}"),
            ]);
        }
        table.print();
        println!();
    }

    println!("== Fig. 13(d): bandwidths compared at SLO = 1 s ==\n");
    let mut table = TextTable::new(["bandwidth", "mean eff", "frac > 0.6 (paper)"]);
    let paper_frac = [0.50, 0.80, 0.86];
    for (i, bw) in [20.0, 40.0, 80.0].into_iter().enumerate() {
        let mut cdf = efficiency_cdf(bw, 1.0);
        let above = 1.0 - cdf.fraction_at_or_below(0.6);
        table.row([
            format!("{bw:.0}Mbps"),
            format!("{:.3}", cdf.mean()),
            format!("{above:.2} ({:.2})", paper_frac[i]),
        ]);
    }
    table.print();
    println!(
        "\nPaper: looser SLOs and higher bandwidth both push the efficiency CDF\nrightwards; at SLO 1 s, 50% / 80% / 86% of canvases exceed 0.6 efficiency\nat 20 / 40 / 80 Mbps."
    );
}
