//! Fig. 13 — canvas efficiency vs bandwidth and SLO.
//!
//! (a)–(c): the canvas-efficiency CDF of Tangram's batches for each SLO at
//! 20/40/80 Mbps; (d): the three bandwidths compared at SLO = 1 s.
//! Looser SLOs and faster links both raise efficiency — more patches are
//! available before the invoke-by deadline.

use tangram_bench::{ExpOpts, TextTable};
use tangram_core::engine::{EngineConfig, PolicyKind};
use tangram_core::workload::{CameraTrace, TraceConfig};
use tangram_sim::stats::EmpiricalCdf;
use tangram_types::ids::SceneId;
use tangram_types::time::SimDuration;

fn efficiency_cdf(traces: &[CameraTrace], bw: f64, slo: f64, seed: u64) -> EmpiricalCdf {
    let mut cdf = EmpiricalCdf::new();
    for trace in traces {
        let config = EngineConfig {
            policy: PolicyKind::Tangram,
            slo: SimDuration::from_secs_f64(slo),
            bandwidth_mbps: bw,
            seed,
            ..EngineConfig::default()
        };
        let report = config.run(std::slice::from_ref(trace));
        cdf.extend(report.canvas_efficiencies());
    }
    cdf
}

fn main() {
    let opts = ExpOpts::from_args();
    let frames = opts.frame_budget(40, 134);
    let scenes: Vec<SceneId> = SceneId::all()
        .take(if opts.quick { 2 } else { 5 })
        .collect();
    let traces: Vec<CameraTrace> = scenes
        .iter()
        .map(|&scene| {
            if opts.quick {
                TraceConfig::proxy_extractor(scene, frames, opts.seed).build()
            } else {
                TraceConfig::gmm_extractor(scene, frames, opts.seed).build()
            }
        })
        .collect();

    let sweeps: [(f64, [f64; 5]); 3] = [
        (20.0, [1.0, 1.1, 1.2, 1.3, 1.4]),
        (40.0, [0.8, 0.9, 1.0, 1.1, 1.2]),
        (80.0, [0.6, 0.7, 0.8, 0.9, 1.0]),
    ];
    for (bw, slos) in sweeps {
        println!("== Fig. 13 @ {bw:.0} Mbps: canvas efficiency by SLO ==\n");
        let mut table = TextTable::new(["SLO (s)", "mean", "p25", "median", "p75", "frac > 0.6"]);
        for slo in slos {
            let mut cdf = efficiency_cdf(&traces, bw, slo, opts.seed);
            if cdf.is_empty() {
                continue;
            }
            let above = 1.0 - cdf.fraction_at_or_below(0.6);
            table.row([
                format!("{slo:.1}"),
                format!("{:.3}", cdf.mean()),
                format!("{:.3}", cdf.quantile(0.25).unwrap_or(0.0)),
                format!("{:.3}", cdf.quantile(0.5).unwrap_or(0.0)),
                format!("{:.3}", cdf.quantile(0.75).unwrap_or(0.0)),
                format!("{above:.2}"),
            ]);
        }
        table.print();
        println!();
    }

    println!("== Fig. 13(d): bandwidths compared at SLO = 1 s ==\n");
    let mut table = TextTable::new(["bandwidth", "mean eff", "frac > 0.6 (paper)"]);
    let paper_frac = [0.50, 0.80, 0.86];
    for (i, bw) in [20.0, 40.0, 80.0].into_iter().enumerate() {
        let mut cdf = efficiency_cdf(&traces, bw, 1.0, opts.seed);
        let above = 1.0 - cdf.fraction_at_or_below(0.6);
        table.row([
            format!("{bw:.0}Mbps"),
            format!("{:.3}", cdf.mean()),
            format!("{above:.2} ({:.2})", paper_frac[i]),
        ]);
    }
    table.print();
    println!(
        "\nPaper: looser SLOs and higher bandwidth both push the efficiency CDF\nrightwards; at SLO 1 s, 50% / 80% / 86% of canvases exceed 0.6 efficiency\nat 20 / 40 / 80 Mbps."
    );
}
