//! Overload bench: SLO attainment vs offered load, with and without
//! admission control — the paper-style "what happens past capacity"
//! table the streaming runtime exists to answer.
//!
//! Four cameras with the gold (0.8 s) / best-effort (1.5 s) tenant mix
//! stream open-loop Poisson frames at a ramp of rates crossing backend
//! capacity (the scenario axis), and every point runs twice (the
//! admission axis): once with the open door (`always`, sheds nothing,
//! attainment collapses past the knee) and once with the SLO-aware
//! shedder (`slo-shedder`, sheds doomed and best-effort work first so
//! gold keeps its attainment). Drops are first-class metrics:
//! `dropped_arrivals` and the per-tenant breakdown land in
//! `BENCH_overload*.json` and are gated like any other correctness
//! metric.
//!
//! Standard flags apply: `--workers N` (output is byte-identical for any
//! worker count), `--seed`, `--frames N` (frame budget per camera),
//! `--out DIR`; `--smoke` keeps two ramp points for CI (grid name
//! `overload`, gated against `baselines/BENCH_overload.json`).

use tangram_bench::{ExpOpts, TextTable};
use tangram_harness::presets::{overload_grid, TENANT_MIX_SLOS_S};
use tangram_harness::run_grid;

fn main() {
    let opts = ExpOpts::from_args();
    let smoke = std::env::args().any(|a| a == "--smoke");
    // Smoke mode pins the CI-gated grid shape: only an explicit
    // `--frames` may move it (`--quick` must not silently desync the
    // written report from baselines/BENCH_overload.json).
    let frames = if smoke {
        opts.frames.unwrap_or(48)
    } else {
        opts.frame_budget(24, 48)
    };
    let grid = overload_grid(opts.seed, frames, smoke);
    let cameras = grid.workloads[0].scenes.len();
    let workers = opts.workers();
    println!(
        "== bench_overload: {} cells on {} workers — {} cameras, offered-load ramp {:?} fps/cam, admission {:?} ==\n",
        grid.cell_count(),
        workers,
        cameras,
        grid.scenarios
            .iter()
            .map(|s| match s.arrival {
                tangram_harness::ArrivalSpec::Poisson { fps } => fps,
                _ => f64::NAN,
            })
            .collect::<Vec<_>>(),
        grid.admission.iter().map(|a| a.kind()).collect::<Vec<_>>(),
    );

    let report = run_grid(&grid, workers);
    opts.maybe_write(&report);

    // The attainment-vs-offered-load table: one row per (ramp point,
    // admission policy), gold and best-effort accounted separately.
    let mut table = TextTable::new([
        "offered (fps)",
        "admission",
        "arrivals",
        "served",
        "dropped",
        "attain %",
        "gold attain %",
        "gold drop %",
        "be drop %",
        "p99 (s)",
    ]);
    for cell in &report.cells {
        let m = &cell.metrics;
        let scenario = &grid.scenarios[cell.scenario.unwrap_or(0) as usize];
        let offered = match scenario.arrival {
            tangram_harness::ArrivalSpec::Poisson { fps } => fps * cameras as f64,
            _ => f64::NAN,
        };
        let class_rate = |slo_s: f64, f: &dyn Fn(&tangram_core::TenantSummary) -> f64| {
            m.tenants
                .iter()
                .find(|t| (t.slo_s - slo_s).abs() < 1e-9)
                .map_or(0.0, f)
        };
        let [gold_slo, be_slo] = TENANT_MIX_SLOS_S;
        let gold_attain = class_rate(gold_slo, &|t| {
            if t.patches == 0 {
                1.0
            } else {
                1.0 - t.violations as f64 / t.patches as f64
            }
        });
        let drop_rate = |t: &tangram_core::TenantSummary| {
            let offered = t.patches + t.dropped;
            if offered == 0 {
                0.0
            } else {
                t.dropped as f64 / offered as f64
            }
        };
        table.row([
            format!("{offered:.0}"),
            cell.admission.clone().unwrap_or_else(|| "-".into()),
            (m.patches + m.dropped_arrivals).to_string(),
            m.patches.to_string(),
            m.dropped_arrivals.to_string(),
            format!("{:.1}", m.slo_attainment * 100.0),
            format!("{:.1}", gold_attain * 100.0),
            format!("{:.1}", class_rate(gold_slo, &drop_rate) * 100.0),
            format!("{:.1}", class_rate(be_slo, &drop_rate) * 100.0),
            format!("{:.3}", m.p99_latency_s),
        ]);
    }
    table.print();
    println!(
        "\nPast the capacity knee the open door serves everything late (attainment collapses), while the \
         SLO-aware shedder trades best-effort arrivals for gold attainment — the drops are in the BENCH \
         json, so the CI gate sees them as correctness, not throughput."
    );
}
