//! Golden-trace workbench: capture, inspect, and verify the runtime
//! event traces (`tangram_trace` JSONL) the CI gate replays.
//!
//! ```text
//! trace_tool capture <smoke|overload> [--out DIR] [--workers N] [--seed N]
//! trace_tool stats   <trace.jsonl>
//! trace_tool filter  <trace.jsonl> --kind KIND
//! trace_tool tail    <trace.jsonl> [-n N]
//! trace_tool verify  <trace.jsonl>
//! ```
//!
//! `capture` runs the named single-cell golden grid
//! ([`tangram_harness::presets::golden_trace_grid`]) with trace capture
//! on and writes `TRACE_<which>.jsonl` — byte-identical for any
//! `--workers` count, so the checked-in goldens under `baselines/` can
//! be compared with `cmp`. `stats` prints per-kind event counts and the
//! chain's final hash; `filter` prints records of one event kind;
//! `tail` the last N records; `verify` re-derives the hash chain and
//! sequence/time monotonicity. Exit status 0 on success, 1 when
//! verification fails, 2 on usage/IO errors.

use std::path::PathBuf;

use tangram_harness::presets::golden_trace_grid;
use tangram_harness::run_grid_full;
use tangram_trace::TraceLog;

fn load(path: &str) -> TraceLog {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("trace_tool: cannot read {path}: {e}");
            std::process::exit(2);
        }
    };
    match TraceLog::from_jsonl(&text) {
        Ok(log) => log,
        Err(e) => {
            eprintln!("trace_tool: {path}: {e}");
            std::process::exit(2);
        }
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: trace_tool capture <smoke|overload> [--out DIR] [--workers N] [--seed N]\n\
         \x20      trace_tool stats  <trace.jsonl>\n\
         \x20      trace_tool filter <trace.jsonl> --kind KIND\n\
         \x20      trace_tool tail   <trace.jsonl> [-n N]\n\
         \x20      trace_tool verify <trace.jsonl>"
    );
    std::process::exit(2);
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn capture(args: &[String]) {
    let Some(which) = args.first() else { usage() };
    let seed = flag_value(args, "--seed").map_or(42, |v| {
        v.parse().unwrap_or_else(|_| {
            eprintln!("trace_tool: --seed needs an integer");
            std::process::exit(2);
        })
    });
    let workers = flag_value(args, "--workers").map_or_else(
        || {
            std::thread::available_parallelism()
                .map(std::num::NonZero::get)
                .unwrap_or(1)
        },
        |v| {
            v.parse().unwrap_or_else(|_| {
                eprintln!("trace_tool: --workers needs an integer");
                std::process::exit(2);
            })
        },
    );
    let Some(grid) = golden_trace_grid(which, seed) else {
        eprintln!("trace_tool: unknown golden cell '{which}' (want smoke|overload)");
        std::process::exit(2);
    };
    let outcomes = run_grid_full(&grid, workers.max(1));
    let [outcome] = &outcomes[..] else {
        eprintln!(
            "trace_tool: golden grid '{}' ran {} cells, expected exactly 1",
            grid.name,
            outcomes.len()
        );
        std::process::exit(2);
    };
    let Some(trace) = &outcome.trace else {
        eprintln!("trace_tool: golden cell produced no trace (capture flag lost?)");
        std::process::exit(2);
    };
    let dir = flag_value(args, "--out").map_or_else(|| PathBuf::from("."), PathBuf::from);
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("trace_tool: cannot create {}: {e}", dir.display());
        std::process::exit(2);
    }
    let path = dir.join(format!("TRACE_{which}.jsonl"));
    if let Err(e) = std::fs::write(&path, trace.to_jsonl()) {
        eprintln!("trace_tool: cannot write {}: {e}", path.display());
        std::process::exit(2);
    }
    println!(
        "trace_tool: wrote {} — {} events, final hash {:016x}",
        path.display(),
        trace.records.len(),
        trace.final_hash()
    );
}

fn stats(path: &str) {
    let log = load(path);
    println!("{path}: {} events", log.records.len());
    for (kind, count) in log.stats() {
        if count > 0 {
            println!("  {kind:<20} {count}");
        }
    }
    let counts = log.replay_counts();
    println!(
        "  replay: {} batches / {} patches / {} completions / {} dropped",
        counts.batches, counts.patches, counts.completions, counts.dropped
    );
    println!("  final hash {:016x}", log.final_hash());
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else { usage() };
    match command.as_str() {
        "capture" => capture(&args[1..]),
        "stats" => match args.get(1) {
            Some(path) => stats(path),
            None => usage(),
        },
        "filter" => {
            let Some(path) = args.get(1) else { usage() };
            let Some(kind) = flag_value(&args[2..], "--kind") else {
                usage()
            };
            let log = load(path);
            for record in log.records.iter().filter(|r| r.event.kind() == kind) {
                println!("{}", record.to_line());
            }
        }
        "tail" => {
            let Some(path) = args.get(1) else { usage() };
            let n = flag_value(&args[2..], "-n").map_or(10, |v| {
                v.parse().unwrap_or_else(|_| {
                    eprintln!("trace_tool: -n needs an integer");
                    std::process::exit(2);
                })
            });
            let log = load(path);
            let skip = log.records.len().saturating_sub(n);
            for record in &log.records[skip..] {
                println!("{}", record.to_line());
            }
        }
        "verify" => {
            let Some(path) = args.get(1) else { usage() };
            let log = load(path);
            match log.verify() {
                Ok(()) => println!(
                    "trace_tool: OK — {} events, chain verified, final hash {:016x}",
                    log.records.len(),
                    log.final_hash()
                ),
                Err(e) => {
                    eprintln!("trace_tool: {path}: chain verification failed: {e}");
                    std::process::exit(1);
                }
            }
        }
        _ => usage(),
    }
}
