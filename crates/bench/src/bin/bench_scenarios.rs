//! `bench_scenarios` — the declarative hard-scenario library, end to end.
//!
//! Loads every scenario file under `config/scenarios/` (see
//! [`tangram_harness::scenario_file`]), runs each one at every shard
//! count, and emits `BENCH_scenarios.json`. The library is the repo's
//! fault-injection gauntlet: diurnal flash crowds, content-correlated
//! stitcher floods, brownout+partition compounds, flap storms and
//! cold-start squeezes — each declared in TOML, validated at load time,
//! and injected deterministically (see `docs/ARCHITECTURE.md`).
//!
//! Determinism is asserted, not assumed: every scenario must reproduce
//! the single-shard [`tangram_core::report::RunSummary`] (plus the raw
//! frame/mute/event counts) at every other shard count, or the bench
//! exits with code 2 before writing anything.
//!
//! The emitted JSON splits into two kinds of fields:
//!
//! * **counts** (per-scenario frames, muted frames, patches, batches,
//!   violations, dropped arrivals, events, makespan) — deterministic,
//!   byte stable, gated by CI against `baselines/BENCH_scenarios.json`;
//! * **timings** (per-scenario `wall_ms`) — machine-dependent, recorded
//!   for humans, **never** gated.
//!
//! Flags: the usual [`ExpOpts`] set plus `--smoke` (shard counts 1 and 2
//! instead of 1 and 8), `--dir PATH` (scenario directory override) and
//! `--gate PATH` (compare this run's counts against a baseline).

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use tangram_bench::{ExpOpts, TextTable};
use tangram_core::report::RunReport;
use tangram_harness::json::Json;
use tangram_harness::ScenarioFile;

/// One scenario's oracle run plus its wall time.
struct Row {
    name: String,
    report: RunReport,
    wall_s: f64,
}

fn main() -> ExitCode {
    let opts = ExpOpts::from_args();
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let gate_path = args
        .iter()
        .position(|a| a == "--gate")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let dir = args
        .iter()
        .position(|a| a == "--dir")
        .and_then(|i| args.get(i + 1))
        .map_or_else(|| PathBuf::from("config/scenarios"), PathBuf::from);

    let shard_counts: &[usize] = if smoke { &[1, 2] } else { &[1, 8] };
    let mode = if smoke { "smoke" } else { "full" };

    let library = match ScenarioFile::load_dir(&dir) {
        Ok(library) => library,
        Err(err) => {
            eprintln!("bench_scenarios: {err}");
            return ExitCode::FAILURE;
        }
    };

    println!(
        "bench_scenarios: {} scenario(s) from {}, {mode} mode",
        library.len(),
        dir.display()
    );
    println!("  shard counts {shard_counts:?} (byte-compared against the single-shard oracle)");

    let mut rows: Vec<Row> = Vec::new();
    for (path, file) in &library {
        let start = Instant::now();
        let (oracle, _) = file.run(false, shard_counts[0]);
        let wall_s = start.elapsed().as_secs_f64();
        // Re-run at every other shard count; any divergence is a
        // correctness bug in the sharded runtime, not a perf result.
        for &shards in &shard_counts[1..] {
            let (report, _) = file.run(false, shards);
            if report.summarize() != oracle.summarize()
                || report.events_processed != oracle.events_processed
                || report.frames != oracle.frames
                || report.frames_muted != oracle.frames_muted
            {
                eprintln!(
                    "DETERMINISM VIOLATION: {} ({}) diverged at {shards} shards",
                    file.name,
                    path.display()
                );
                return ExitCode::from(2);
            }
        }
        rows.push(Row {
            name: file.name.clone(),
            report: oracle,
            wall_s,
        });
    }

    let mut table = TextTable::new([
        "scenario",
        "frames",
        "muted",
        "patches",
        "dropped",
        "viol",
        "makespan_s",
        "wall_ms",
    ]);
    for row in &rows {
        let summary = row.report.summarize();
        table.row([
            row.name.clone(),
            summary.frames.to_string(),
            row.report.frames_muted.to_string(),
            summary.patches.to_string(),
            summary.dropped_arrivals.to_string(),
            summary.violations.to_string(),
            format!("{:.3}", summary.makespan_s),
            format!("{:.1}", row.wall_s * 1e3),
        ]);
    }
    table.print();
    println!("(counts identical at every shard count; timings informational, never gated)");

    let doc = render_report(mode, &rows);

    if let Some(out) = &opts.out {
        let path = out.join("BENCH_scenarios.json");
        match std::fs::create_dir_all(out).and_then(|()| std::fs::write(&path, doc.render() + "\n"))
        {
            Ok(()) => println!("(wrote {})", path.display()),
            Err(err) => {
                eprintln!("failed to write {}: {err}", path.display());
                return ExitCode::FAILURE;
            }
        }
    }

    if let Some(path) = gate_path {
        return gate_counts(&doc, &path);
    }
    ExitCode::SUCCESS
}

/// Builds `BENCH_scenarios.json`: a gated per-scenario `counts` array
/// plus ungated per-scenario timings. `mode` stays outside `counts` on
/// purpose — runs are deterministic in the scenario files alone, so
/// smoke and full produce the same gated bytes.
fn render_report(mode: &str, rows: &[Row]) -> Json {
    let counts = Json::object(vec![(
        "scenarios",
        Json::Array(
            rows.iter()
                .map(|row| {
                    let summary = row.report.summarize();
                    Json::object(vec![
                        ("name", Json::Str(row.name.clone())),
                        ("frames", Json::U64(summary.frames)),
                        ("frames_muted", Json::U64(row.report.frames_muted)),
                        ("patches", Json::U64(summary.patches)),
                        ("batches", Json::U64(summary.batches)),
                        ("violations", Json::U64(summary.violations)),
                        ("dropped_arrivals", Json::U64(summary.dropped_arrivals)),
                        ("events", Json::U64(row.report.events_processed)),
                        ("makespan_s", Json::F64(summary.makespan_s)),
                    ])
                })
                .collect(),
        ),
    )]);
    let timings = Json::Array(
        rows.iter()
            .map(|row| {
                Json::object(vec![
                    ("name", Json::Str(row.name.clone())),
                    ("wall_ms", Json::F64(row.wall_s * 1e3)),
                ])
            })
            .collect(),
    );
    Json::object(vec![
        ("schema_version", Json::U64(1)),
        ("name", Json::Str("scenarios".to_string())),
        ("mode", Json::Str(mode.to_string())),
        ("counts", counts),
        ("timings", timings),
    ])
}

/// Compares this run's `counts` object against a committed baseline.
/// Timing fields are ignored by construction — only `counts` is read.
fn gate_counts(candidate: &Json, baseline_path: &str) -> ExitCode {
    let text = match std::fs::read_to_string(baseline_path) {
        Ok(text) => text,
        Err(err) => {
            eprintln!("gate: cannot read baseline {baseline_path}: {err}");
            return ExitCode::FAILURE;
        }
    };
    let baseline = match Json::parse(&text) {
        Ok(doc) => doc,
        Err(err) => {
            eprintln!("gate: cannot parse baseline {baseline_path}: {err}");
            return ExitCode::FAILURE;
        }
    };
    let (Some(ours), Some(theirs)) = (candidate.get("counts"), baseline.get("counts")) else {
        eprintln!("gate: missing `counts` object (schema mismatch)");
        return ExitCode::FAILURE;
    };
    if ours == theirs {
        println!("gate: counts match {baseline_path}");
        ExitCode::SUCCESS
    } else {
        eprintln!("gate: counts DIVERGED from {baseline_path}");
        eprintln!("--- baseline\n{}", theirs.render());
        eprintln!("--- candidate\n{}", ours.render());
        eprintln!("If the change is intentional, refresh the baseline per docs/PERFORMANCE.md.");
        ExitCode::FAILURE
    }
}
