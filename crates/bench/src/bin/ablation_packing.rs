//! Ablation — why a guillotine packer?
//!
//! Packs the same patch workloads with the paper's guillotine
//! (best-short-side-fit, shorter-axis split), a first-fit shelf packer,
//! and a bottom-left skyline packer; reports canvases needed and mean
//! efficiency. Fewer canvases = fewer GPU-seconds per batch. Scenes fan
//! out over the harness pool.

use tangram_bench::{ExpOpts, TextTable};
use tangram_harness::parallel_map;
use tangram_harness::presets::build_trace;
use tangram_harness::TraceKind;
use tangram_stitch::packer::{GuillotinePacker, Packer, ShelfPacker, SkylinePacker};
use tangram_stitch::solver::split_to_fit;
use tangram_types::geometry::Size;
use tangram_types::ids::SceneId;

fn pack_all(make: &dyn Fn() -> Box<dyn Packer>, sizes: &[Size]) -> (usize, f64) {
    let mut packers: Vec<Box<dyn Packer>> = Vec::new();
    'outer: for &s in sizes {
        for p in &mut packers {
            if p.insert(s).is_some() {
                continue 'outer;
            }
        }
        let mut p = make();
        assert!(p.insert(s).is_some(), "patch fits an empty canvas");
        packers.push(p);
    }
    let canvases = packers.len();
    let eff = packers.iter().map(|p| p.efficiency()).sum::<f64>() / canvases.max(1) as f64;
    (canvases, eff)
}

fn main() {
    let opts = ExpOpts::from_args();
    let frames = opts.frame_budget(20, 80);
    println!("== Ablation: packing strategy (per-frame stitching, 4x4 partitions) ==\n");
    let mut table = TextTable::new([
        "scene",
        "guillotine canvases (eff)",
        "shelf canvases (eff)",
        "skyline canvases (eff)",
    ]);
    let per_scene = parallel_map(
        SceneId::all().collect::<Vec<_>>(),
        opts.workers(),
        |_, scene| {
            let trace = build_trace(scene, frames, opts.seed, TraceKind::Proxy);
            let mut per_packer = [(0usize, 0.0f64, 0usize); 3];
            for f in &trace.frames {
                let sizes: Vec<Size> = f
                    .patches
                    .iter()
                    .flat_map(|p| split_to_fit(p.info.rect, Size::CANVAS_1024))
                    .map(|r| r.size())
                    .collect();
                if sizes.is_empty() {
                    continue;
                }
                let strategies: [&dyn Fn() -> Box<dyn Packer>; 3] = [
                    &|| Box::new(GuillotinePacker::new(Size::CANVAS_1024)),
                    &|| Box::new(ShelfPacker::new(Size::CANVAS_1024)),
                    &|| Box::new(SkylinePacker::new(Size::CANVAS_1024)),
                ];
                for (i, make) in strategies.iter().enumerate() {
                    let (canvases, eff) = pack_all(make, &sizes);
                    per_packer[i].0 += canvases;
                    per_packer[i].1 += eff;
                    per_packer[i].2 += 1;
                }
            }
            (scene, per_packer)
        },
    );
    let mut totals = [0usize; 3];
    for (scene, per_packer) in per_scene {
        let mut cells = vec![scene.to_string()];
        for (i, (canvases, eff_sum, n)) in per_packer.iter().enumerate() {
            totals[i] += canvases;
            cells.push(format!("{} ({:.3})", canvases, eff_sum / *n as f64));
        }
        table.row(cells);
    }
    table.print();
    println!(
        "\nTotals: guillotine {} vs shelf {} vs skyline {} canvases — the guillotine\nnever needs more canvases than the shelf and tracks the skyline closely,\nwhile keeping O(free-rects) insertion (the paper's choice).",
        totals[0], totals[1], totals[2]
    );
}
