//! The CI perf gate: compares a candidate `BENCH_*.json` against a
//! checked-in baseline.
//!
//! ```text
//! bench_gate <baseline.json> <candidate.json> [--max-regression PCT]
//! bench_gate --trace <baseline.jsonl> <candidate.jsonl>
//! ```
//!
//! Exit status 0 when the candidate is acceptable, 1 with one line per
//! violation otherwise (2 on usage/IO errors). Correctness metrics
//! (patches, batches, violations, SLO attainment, cost, bytes) must
//! match the baseline exactly — the simulator is deterministic, so any
//! drift is a real behavioural change: refresh the baseline deliberately
//! if it is intended. Throughput may drop (and p99 rise) by at most
//! `--max-regression` percent, default 20.
//!
//! `--trace` switches to event-level diffing of two runtime traces
//! (`tangram_trace` JSONL, captured via `trace_tool capture`): both
//! hash chains are verified, then the first divergent event is named by
//! sequence number and event kind — a scalar BENCH drift tells you
//! *that* behaviour changed, the trace diff tells you *where*.

use tangram_harness::{gate, BenchReport, GateConfig};
use tangram_trace::TraceLog;

fn load(path: &str) -> Result<BenchReport, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    BenchReport::from_json(&text).map_err(|e| format!("{path}: {e}"))
}

fn load_trace(path: &str) -> TraceLog {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("bench_gate: cannot read {path}: {e}");
            std::process::exit(2);
        }
    };
    let log = match TraceLog::from_jsonl(&text) {
        Ok(log) => log,
        Err(e) => {
            eprintln!("bench_gate: {path}: {e}");
            std::process::exit(2);
        }
    };
    if let Err(e) = log.verify() {
        eprintln!("bench_gate: {path}: hash chain broken: {e}");
        std::process::exit(2);
    }
    log
}

/// Event-level trace diff: names the first divergent event, exit 1 on
/// any divergence.
fn gate_traces(baseline_path: &str, candidate_path: &str) -> ! {
    let baseline = load_trace(baseline_path);
    let candidate = load_trace(candidate_path);
    match baseline.first_divergence(&candidate) {
        None => {
            println!(
                "bench_gate: OK — traces match '{}' ({} events, final hash {:016x})",
                baseline_path,
                baseline.records.len(),
                baseline.final_hash()
            );
            std::process::exit(0);
        }
        Some(divergence) => {
            eprintln!("bench_gate: trace diverges from '{baseline_path}':");
            eprintln!("  {}", divergence.describe());
            eprintln!(
                "\nIf this change is intended, refresh the golden traces:\n  \
                 cargo run --release --bin trace_tool -- capture smoke --out baselines\n  \
                 cargo run --release --bin trace_tool -- capture overload --out baselines"
            );
            std::process::exit(1);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().is_some_and(|a| a == "--trace") {
        match &args[1..] {
            [baseline, candidate] => gate_traces(baseline, candidate),
            _ => {
                eprintln!("usage: bench_gate --trace <baseline.jsonl> <candidate.jsonl>");
                std::process::exit(2);
            }
        }
    }
    let mut config = GateConfig::default();
    let mut positional: Vec<&String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--max-regression" {
            match args.get(i + 1).and_then(|v| v.parse::<f64>().ok()) {
                Some(pct) if pct >= 0.0 => config.max_perf_regression = pct / 100.0,
                _ => {
                    eprintln!("--max-regression needs a non-negative percentage");
                    std::process::exit(2);
                }
            }
            i += 2;
        } else {
            positional.push(&args[i]);
            i += 1;
        }
    }
    let [baseline_path, candidate_path] = positional[..] else {
        eprintln!("usage: bench_gate <baseline.json> <candidate.json> [--max-regression PCT]");
        std::process::exit(2);
    };

    let (baseline, candidate) = match (load(baseline_path), load(candidate_path)) {
        (Ok(b), Ok(c)) => (b, c),
        (b, c) => {
            for err in [b.err(), c.err()].into_iter().flatten() {
                eprintln!("bench_gate: {err}");
            }
            std::process::exit(2);
        }
    };

    let violations = gate(&baseline, &candidate, &config);
    if violations.is_empty() {
        println!(
            "bench_gate: OK — {} cells match '{}' (correctness exact, perf within {:.0}%)",
            candidate.cells.len(),
            baseline_path,
            config.max_perf_regression * 100.0
        );
    } else {
        eprintln!(
            "bench_gate: {} violation(s) against '{baseline_path}':",
            violations.len()
        );
        for v in &violations {
            eprintln!("  - {v}");
        }
        eprintln!(
            "\nIf this change is intended, refresh the baseline:\n  cargo run --release --bin bench_all -- --smoke --out baselines"
        );
        std::process::exit(1);
    }
}
