//! The CI perf gate: compares a candidate `BENCH_*.json` against a
//! checked-in baseline.
//!
//! ```text
//! bench_gate <baseline.json> <candidate.json> [--max-regression PCT]
//! ```
//!
//! Exit status 0 when the candidate is acceptable, 1 with one line per
//! violation otherwise (2 on usage/IO errors). Correctness metrics
//! (patches, batches, violations, SLO attainment, cost, bytes) must
//! match the baseline exactly — the simulator is deterministic, so any
//! drift is a real behavioural change: refresh the baseline deliberately
//! if it is intended. Throughput may drop (and p99 rise) by at most
//! `--max-regression` percent, default 20.

use tangram_harness::{gate, BenchReport, GateConfig};

fn load(path: &str) -> Result<BenchReport, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    BenchReport::from_json(&text).map_err(|e| format!("{path}: {e}"))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut config = GateConfig::default();
    let mut positional: Vec<&String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--max-regression" {
            match args.get(i + 1).and_then(|v| v.parse::<f64>().ok()) {
                Some(pct) if pct >= 0.0 => config.max_perf_regression = pct / 100.0,
                _ => {
                    eprintln!("--max-regression needs a non-negative percentage");
                    std::process::exit(2);
                }
            }
            i += 2;
        } else {
            positional.push(&args[i]);
            i += 1;
        }
    }
    let [baseline_path, candidate_path] = positional[..] else {
        eprintln!("usage: bench_gate <baseline.json> <candidate.json> [--max-regression PCT]");
        std::process::exit(2);
    };

    let (baseline, candidate) = match (load(baseline_path), load(candidate_path)) {
        (Ok(b), Ok(c)) => (b, c),
        (b, c) => {
            for err in [b.err(), c.err()].into_iter().flatten() {
                eprintln!("bench_gate: {err}");
            }
            std::process::exit(2);
        }
    };

    let violations = gate(&baseline, &candidate, &config);
    if violations.is_empty() {
        println!(
            "bench_gate: OK — {} cells match '{}' (correctness exact, perf within {:.0}%)",
            candidate.cells.len(),
            baseline_path,
            config.max_perf_regression * 100.0
        );
    } else {
        eprintln!(
            "bench_gate: {} violation(s) against '{baseline_path}':",
            violations.len()
        );
        for v in &violations {
            eprintln!("  - {v}");
        }
        eprintln!(
            "\nIf this change is intended, refresh the baseline:\n  cargo run --release --bin bench_all -- --smoke --out baselines"
        );
        std::process::exit(1);
    }
}
