//! Ablation — the estimator's σ multiplier (Eqn. 9 uses k = 3).
//!
//! Sweeps k ∈ {0, 1, 2, 3, 4}: smaller k waits longer (cheaper, riskier);
//! larger k invokes earlier (safer, costlier). The paper notes
//! SLO-critical applications can "manually adjust the slack time to a
//! more conservative estimation" — this quantifies that dial.

use tangram_bench::{ExpOpts, TextTable};
use tangram_core::engine::{EngineConfig, PolicyKind};
use tangram_core::workload::{CameraTrace, TraceConfig};
use tangram_types::ids::SceneId;
use tangram_types::time::SimDuration;

fn main() {
    let opts = ExpOpts::from_args();
    let frames = opts.frame_budget(40, 134);
    let scenes: Vec<SceneId> = SceneId::all()
        .take(if opts.quick { 2 } else { 5 })
        .collect();
    let traces: Vec<CameraTrace> = scenes
        .iter()
        .map(|&scene| TraceConfig::proxy_extractor(scene, frames, opts.seed).build())
        .collect();

    println!("== Ablation: slack multiplier k (T_slack = µ + k·σ), SLO = 1 s, 40 Mbps ==\n");
    let mut table = TextTable::new([
        "k",
        "violation %",
        "cost $/scene",
        "mean patches/batch",
        "mean latency (s)",
    ]);
    for k in [0.0, 1.0, 2.0, 3.0, 4.0] {
        let mut violations = 0usize;
        let mut patches = 0usize;
        let mut cost = 0.0;
        let mut ppb = 0.0;
        let mut lat = 0.0;
        for trace in &traces {
            let config = EngineConfig {
                policy: PolicyKind::Tangram,
                slo: SimDuration::from_secs(1),
                bandwidth_mbps: 40.0,
                sigma_multiplier: k,
                seed: opts.seed,
                ..EngineConfig::default()
            };
            let report = config.run(std::slice::from_ref(trace));
            violations += report.patches.iter().filter(|p| p.violated()).count();
            patches += report.patches_completed();
            cost += report.total_cost().get();
            ppb += report.mean_patches_per_batch();
            lat += report.mean_latency().as_secs_f64();
        }
        let n = traces.len() as f64;
        table.row([
            format!("{k:.0}"),
            format!("{:.2}", violations as f64 / patches.max(1) as f64 * 100.0),
            format!("{:.4}", cost / n),
            format!("{:.1}", ppb / n),
            format!("{:.3}", lat / n),
        ]);
    }
    table.print();
    println!(
        "\nExpected: k = 0 batches most aggressively but risks tail violations; the\npaper's k = 3 keeps violations ≈ 0 at a small cost premium."
    );
}
