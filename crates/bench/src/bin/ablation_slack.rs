//! Ablation — the estimator's σ multiplier (Eqn. 9 uses k = 3).
//!
//! Sweeps k ∈ {0, 1, 2, 3, 4}: smaller k waits longer (cheaper, riskier);
//! larger k invokes earlier (safer, costlier). The paper notes
//! SLO-critical applications can "manually adjust the slack time to a
//! more conservative estimation" — this quantifies that dial. The sweep
//! is a one-axis `SweepGrid` over `sigma_multipliers`; `--out DIR`
//! writes `BENCH_ablation_slack.json`.

use tangram_bench::{ExpOpts, TextTable};
use tangram_core::engine::PolicyKind;
use tangram_harness::presets::motivation_scenes;
use tangram_harness::{run_grid, SweepGrid, TraceKind, WorkloadSpec};

fn main() {
    let opts = ExpOpts::from_args();
    let frames = opts.frame_budget(40, 134);
    let scenes = motivation_scenes(opts.quick);

    let mut grid = SweepGrid::named("ablation_slack");
    grid.policies = vec![PolicyKind::Tangram];
    grid.seeds = vec![opts.seed];
    grid.slos_s = vec![1.0];
    grid.bandwidths_mbps = vec![40.0];
    grid.sigma_multipliers = vec![0.0, 1.0, 2.0, 3.0, 4.0];
    grid.workloads = WorkloadSpec::per_scene(&scenes, frames, TraceKind::Proxy);

    let report = run_grid(&grid, opts.workers());
    opts.maybe_write(&report);

    println!("== Ablation: slack multiplier k (T_slack = µ + k·σ), SLO = 1 s, 40 Mbps ==\n");
    let mut table = TextTable::new([
        "k",
        "violation %",
        "cost $/scene",
        "mean patches/batch",
        "mean latency (s)",
    ]);
    for &k in &grid.sigma_multipliers {
        let cells: Vec<_> = report
            .cells
            .iter()
            .filter(|c| (c.sigma_multiplier - k).abs() < 1e-9)
            .collect();
        let n = cells.len().max(1) as f64;
        let violations: u64 = cells.iter().map(|c| c.metrics.violations).sum();
        let patches: u64 = cells.iter().map(|c| c.metrics.patches).sum();
        let cost: f64 = cells.iter().map(|c| c.metrics.cost_usd).sum();
        let ppb: f64 = cells.iter().map(|c| c.metrics.mean_patches_per_batch).sum();
        let lat: f64 = cells.iter().map(|c| c.metrics.mean_latency_s).sum();
        table.row([
            format!("{k:.0}"),
            format!("{:.2}", violations as f64 / patches.max(1) as f64 * 100.0),
            format!("{:.4}", cost / n),
            format!("{:.1}", ppb / n),
            format!("{:.3}", lat / n),
        ]);
    }
    table.print();
    println!(
        "\nExpected: k = 0 batches most aggressively but risks tail violations; the\npaper's k = 3 keeps violations ≈ 0 at a small cost premium."
    );
}
