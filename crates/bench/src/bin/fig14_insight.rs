//! Fig. 14 — a deep dive into Tangram's batching at SLO = 1 s.
//!
//! (a) the per-batch function-execution latency distribution at each
//! bandwidth; (b) the patches-per-batch distribution; (c) the latency
//! breakdown (total transmission vs total execution); (d) the joint
//! distribution of patches vs canvases per batch; plus the amortised
//! per-patch latency the paper derives (0.0252 / 0.0223 / 0.0213 s).
//! One Tangram-only `SweepGrid` over the bandwidth axis, run on the
//! harness pool; `--out DIR` writes `BENCH_fig14_insight.json`.

use tangram_bench::{ExpOpts, TextTable};
use tangram_core::engine::PolicyKind;
use tangram_harness::presets::{motivation_scenes, trace_kind};
use tangram_harness::{bench_report, run_grid_full, CellOutcome, SweepGrid, WorkloadSpec};
use tangram_sim::stats::EmpiricalCdf;
use tangram_types::time::SimDuration;

fn main() {
    let opts = ExpOpts::from_args();
    let frames = opts.frame_budget(40, 134);
    let scenes = motivation_scenes(opts.quick);
    let kind = trace_kind(opts.quick);

    let mut grid = SweepGrid::named("fig14_insight");
    grid.policies = vec![PolicyKind::Tangram];
    grid.seeds = vec![opts.seed];
    grid.slos_s = vec![1.0];
    grid.bandwidths_mbps = vec![20.0, 40.0, 80.0];
    grid.workloads = WorkloadSpec::per_scene(&scenes, frames, kind);

    let outcomes = run_grid_full(&grid, opts.workers());
    opts.maybe_write(&bench_report(&grid, &outcomes));

    let paper_amortized = [0.0252, 0.0223, 0.0213];
    let mut summary = TextTable::new([
        "bandwidth",
        "exec p25/p50/p75 (s)",
        "patches/batch p50 (max)",
        "transmission total (s)",
        "execution total (s)",
        "amortized s/patch (paper)",
    ]);

    for (bi, bw) in [20.0, 40.0, 80.0].into_iter().enumerate() {
        let at_bw: Vec<&CellOutcome> = outcomes
            .iter()
            .filter(|o| (o.cell.bandwidth_mbps - bw).abs() < 1e-9)
            .collect();
        let mut exec_cdf = EmpiricalCdf::new();
        let mut patch_cdf = EmpiricalCdf::new();
        let mut transmission = SimDuration::ZERO;
        let mut execution = SimDuration::ZERO;
        let mut joint = [[0u32; 10]; 10]; // canvases (1..=9) × patch bands
        let mut total_patches = 0usize;
        for outcome in &at_bw {
            let report = &outcome.report;
            for b in &report.batches {
                exec_cdf.push(b.execution.as_secs_f64());
                patch_cdf.push(b.patch_count as f64);
                let canvases = b.inputs.clamp(1, 9);
                let band = ((b.patch_count.saturating_sub(1)) / 5).min(8);
                joint[canvases][band] += 1;
            }
            transmission += report.transmission_busy;
            execution += report.total_execution();
            total_patches += report.patches_completed();
        }
        let amortized = execution.as_secs_f64() / total_patches.max(1) as f64;
        summary.row([
            format!("{bw:.0}Mbps"),
            format!(
                "{:.2}/{:.2}/{:.2}",
                exec_cdf.quantile(0.25).unwrap_or(0.0),
                exec_cdf.quantile(0.5).unwrap_or(0.0),
                exec_cdf.quantile(0.75).unwrap_or(0.0)
            ),
            format!(
                "{:.0} ({:.0})",
                patch_cdf.quantile(0.5).unwrap_or(0.0),
                patch_cdf.quantile(1.0).unwrap_or(0.0)
            ),
            format!("{:.1}", transmission.as_secs_f64()),
            format!("{:.1}", execution.as_secs_f64()),
            format!("{:.4} ({:.4})", amortized, paper_amortized[bi]),
        ]);

        if (bw - 80.0).abs() < f64::EPSILON {
            println!("== Fig. 14(d) @ 80 Mbps: batches by canvases (rows) x patches (cols) ==\n");
            let mut heat = TextTable::new([
                "canvases", "1-5", "6-10", "11-15", "16-20", "21-25", "26-30", "31-35", "36-40",
                ">40",
            ]);
            for (canvases, row) in joint.iter().enumerate().skip(1) {
                let row_total: u32 = row.iter().sum();
                if row_total == 0 {
                    continue;
                }
                let mut cells = vec![canvases.to_string()];
                for &count in row.iter().take(9) {
                    cells.push(format!("{:.2}", f64::from(count) / f64::from(row_total)));
                }
                heat.row(cells);
            }
            heat.print();
            println!();
        }
    }

    println!("== Fig. 14(a–c) summary (SLO = 1 s) ==\n");
    summary.print();
    println!(
        "\nPaper: per-batch execution grows with bandwidth (bigger batches) while the\namortised per-patch latency falls (0.0252 → 0.0223 → 0.0213 s); transmission\ndominates the end-to-end breakdown; patches and canvases correlate\npositively in (d)."
    );
}
