//! Fig. 8 — serverless function cost per scene on Alibaba Function
//! Compute.
//!
//! Each method processes every evaluation frame as (at least) one request
//! on the FC GPU-slice latency profile, and the Eqn. (1) bill is summed:
//!
//! * Tangram (4×4): the frame's patches stitched onto canvases → one
//!   request;
//! * Masked Frame: one full-resolution request minus the masked
//!   background's compute;
//! * Full Frame: one full-resolution request;
//! * ELF: one request per patch.
//!
//! Scenes are independent, so they fan out over the harness pool with a
//! per-scene rng fork (results identical for any worker count).

use tangram_bench::{ExpOpts, TextTable};
use tangram_harness::parallel_map;
use tangram_harness::presets::{build_trace, scene_eval_frames, trace_kind};
use tangram_infer::latency::InferenceLatencyModel;
use tangram_serverless::function::FunctionSpec;
use tangram_serverless::pricing::ResourcePrices;
use tangram_sim::rng::DetRng;
use tangram_stitch::solver::{split_to_fit, PatchStitchingSolver};
use tangram_types::geometry::Size;
use tangram_types::ids::SceneId;
use tangram_types::patch::PatchInfo;
use tangram_types::units::Dollars;
use tangram_video::scene::SceneProfile;

/// Paper's Fig. 8 values, $/scene: (tangram, masked, full, elf).
const PAPER: [(f64, f64, f64, f64); 10] = [
    (0.069, 0.141, 0.168, 0.179),
    (0.092, 0.146, 0.175, 0.202),
    (0.075, 0.131, 0.150, 0.191),
    (0.056, 0.050, 0.056, 0.153),
    (0.026, 0.031, 0.038, 0.075),
    (0.066, 0.119, 0.132, 0.164),
    (0.044, 0.077, 0.086, 0.123),
    (0.116, 0.141, 0.162, 0.230),
    (0.106, 0.132, 0.152, 0.238),
    (0.080, 0.131, 0.153, 0.220),
];

fn main() {
    let opts = ExpOpts::from_args();
    let kind = trace_kind(opts.quick);

    println!("== Fig. 8: function cost per scene, $ (ours vs paper) ==\n");
    let mut table = TextTable::new(["scene", "#frames", "Tangram 4x4", "Masked", "Full", "ELF"]);

    let per_scene = parallel_map(
        SceneId::all().collect::<Vec<_>>(),
        opts.workers(),
        |_, scene| {
            let model = InferenceLatencyModel::alibaba_gpu_slice();
            let prices = ResourcePrices::alibaba_fc();
            let spec = FunctionSpec::paper_default();
            let solver = PatchStitchingSolver::new(Size::CANVAS_1024);
            let profile = SceneProfile::panda(scene);
            let frames = scene_eval_frames(opts.frames, opts.quick, 25, profile.eval_frames);
            let trace = build_trace(scene, frames, opts.seed, kind);
            let mut rng = DetRng::new(opts.seed).fork_indexed("fig8", u64::from(scene.index()));

            let mut cost = [Dollars::ZERO; 4]; // tangram, masked, full, elf
            for f in &trace.frames {
                // Tangram: stitch this frame's patches, one request.
                let mut infos: Vec<PatchInfo> = Vec::new();
                for p in &f.patches {
                    for rect in split_to_fit(p.info.rect, Size::CANVAS_1024) {
                        infos.push(PatchInfo { rect, ..p.info });
                    }
                }
                if !infos.is_empty() {
                    let canvases = solver.stitch(&infos).expect("tiles fit");
                    let mpx = canvases.len() as f64 * Size::CANVAS_1024.megapixels();
                    let exec = model.sample(mpx, &mut rng);
                    cost[0] += prices.invocation_cost(exec, &spec);
                }
                // Masked frame: one request, background compute skipped.
                let exec = model.sample(f.masked_megapixels, &mut rng);
                cost[1] += prices.invocation_cost(exec, &spec);
                // Full frame: one request.
                let exec = model.sample(f.full_megapixels, &mut rng);
                cost[2] += prices.invocation_cost(exec, &spec);
                // ELF: one request per patch.
                for p in &f.patches {
                    let mpx = (p.info.rect.area() as f64 / 1.0e6).max(0.1024);
                    let exec = model.sample(mpx, &mut rng);
                    cost[3] += prices.invocation_cost(exec, &spec);
                }
            }
            (scene, frames, cost)
        },
    );

    let mut totals = [0.0f64; 4];
    let mut paper_totals = [0.0f64; 4];
    for (scene, frames, cost) in per_scene {
        let p = PAPER[scene.array_index()];
        let paper = [p.0, p.1, p.2, p.3];
        for i in 0..4 {
            totals[i] += cost[i].get();
            paper_totals[i] += paper[i];
        }
        table.row([
            scene.to_string(),
            format!("{frames}"),
            format!("{:.3} ({:.3})", cost[0].get(), paper[0]),
            format!("{:.3} ({:.3})", cost[1].get(), paper[1]),
            format!("{:.3} ({:.3})", cost[2].get(), paper[2]),
            format!("{:.3} ({:.3})", cost[3].get(), paper[3]),
        ]);
    }
    table.print();

    println!("\nAverage cost reduction of Tangram (ours / paper):");
    let mut reduction = TextTable::new(["vs", "ours %", "paper %"]);
    let names = ["Masked Frame", "Full Frame", "ELF"];
    let paper_red = [66.42, 57.39, 41.13];
    for (i, name) in names.iter().enumerate() {
        let ours = (1.0 - totals[0] / totals[i + 1]) * 100.0;
        reduction.row([
            (*name).to_string(),
            format!("{ours:.1}"),
            format!("{:.1}", paper_red[i]),
        ]);
    }
    reduction.print();
    let _ = paper_totals;
    println!("\n(Paper reports Tangram reducing cost by 66.42% / 57.39% / 41.13% vs\nMasked / Full / ELF — note the paper states these relative to Masked,\nFull and ELF averages in §V-B.)");
}
