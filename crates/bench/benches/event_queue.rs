//! Criterion bench for the arena-backed event queue — the hot path of
//! every engine run (one push/pop pair per simulated event).
//!
//! Two shapes matter: a churn loop that holds the queue at steady depth
//! (the streaming engine's regime, where the arena free list should make
//! payload slots allocation-free) and a drain that fills then empties
//! the queue (the trace-replay regime).

use criterion::{criterion_group, criterion_main, Criterion};
use tangram_sim::event::EventQueue;
use tangram_types::time::SimTime;

/// Payload sized like the engine's boxed event enum slot.
type Payload = [u64; 4];

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue_churn_depth64", |b| {
        b.iter(|| {
            let mut q: EventQueue<Payload> = EventQueue::new();
            for i in 0..64u64 {
                q.push(SimTime::from_micros(i), [i; 4]);
            }
            // 4k push/pop pairs at constant depth: every push after the
            // warm-up must come from the free list.
            for i in 64..4096u64 {
                let _ = q.pop();
                q.push(SimTime::from_micros(i), [i; 4]);
            }
            while q.pop().is_some() {}
            q
        });
    });
    c.bench_function("event_queue_fill_drain_4096", |b| {
        b.iter(|| {
            let mut q: EventQueue<Payload> = EventQueue::new();
            // Reversed insertion order stresses the heap, not just the
            // arena.
            for i in (0..4096u64).rev() {
                q.push(SimTime::from_micros(i), [i; 4]);
            }
            let mut sum = 0u64;
            while let Some((at, _)) = q.pop() {
                sum = sum.wrapping_add(at.as_micros());
            }
            sum
        });
    });
}

criterion_group!(benches, bench_event_queue);
criterion_main!(benches);
