//! Criterion bench for Algorithm 1 (adaptive frame partitioning).

use criterion::{criterion_group, criterion_main, Criterion};
use tangram_partition::algorithm::{partition, PartitionConfig};
use tangram_types::geometry::{Rect, Size};

fn rois(n: usize) -> Vec<Rect> {
    let mut x = 0xabcdef12345u64;
    (0..n)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            Rect::new(
                (x % 3600) as u32,
                ((x >> 20) % 2000) as u32,
                40 + (x % 200) as u32,
                60 + ((x >> 32) % 300) as u32,
            )
        })
        .collect()
}

fn bench_partition(c: &mut Criterion) {
    for (grid, n) in [(2u32, 50usize), (4, 50), (6, 50), (4, 250)] {
        let boxes = rois(n);
        let config = PartitionConfig::new(grid, grid);
        c.bench_function(format!("partition_{grid}x{grid}_{n}_rois"), |b| {
            b.iter(|| partition(Size::UHD_4K, config, &boxes));
        });
    }
}

criterion_group!(benches, bench_partition);
criterion_main!(benches);
