//! Criterion bench for a complete engine run (trace replay → scheduler →
//! serverless platform), Tangram vs ELF.

use criterion::{criterion_group, criterion_main, Criterion};
use tangram_core::engine::{EngineConfig, PolicyKind};
use tangram_core::workload::TraceConfig;
use tangram_types::ids::SceneId;

fn bench_engine(c: &mut Criterion) {
    let trace = TraceConfig::proxy_extractor(SceneId::new(1), 20, 7).build();
    let mut group = c.benchmark_group("engine_20_frames");
    group.sample_size(20);
    for policy in [PolicyKind::Tangram, PolicyKind::Elf, PolicyKind::Mark] {
        group.bench_function(policy.name(), |b| {
            b.iter(|| {
                let config = EngineConfig {
                    policy,
                    seed: 7,
                    ..EngineConfig::default()
                };
                config.run(std::slice::from_ref(&trace)).total_cost()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
