//! Criterion bench for the offline latency-estimator profiling (Eqn. 9).

use criterion::{criterion_group, criterion_main, Criterion};
use tangram_infer::estimator::LatencyEstimator;
use tangram_infer::latency::InferenceLatencyModel;
use tangram_types::geometry::Size;

fn bench_estimator(c: &mut Criterion) {
    let model = InferenceLatencyModel::rtx4090_yolov8x();
    c.bench_function("estimator_profile_9x1000", |b| {
        b.iter(|| LatencyEstimator::profile(&model, Size::CANVAS_1024, 9, 1000, 3.0, 7));
    });
    let est = LatencyEstimator::paper_default(&model, Size::CANVAS_1024, 9);
    c.bench_function("estimator_slack_lookup", |b| {
        b.iter(|| est.slack_for(5));
    });
}

criterion_group!(benches, bench_estimator);
criterion_main!(benches);
