//! Criterion benches for the patch-stitching solver (Algorithm 2's inner
//! loop) and the packer ablation.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use tangram_stitch::packer::{GuillotinePacker, Packer, ShelfPacker, SkylinePacker};
use tangram_stitch::solver::PatchStitchingSolver;
use tangram_types::geometry::Size;

fn workload(n: usize) -> Vec<Size> {
    let mut x = 0x9e3779b97f4a7c15u64;
    (0..n)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            Size::new(60 + (x % 400) as u32, 80 + ((x >> 16) % 500) as u32)
        })
        .collect()
}

fn bench_packers(c: &mut Criterion) {
    let sizes = workload(64);
    let mut group = c.benchmark_group("packer_insert_64");
    group.bench_function("guillotine", |b| {
        b.iter_batched(
            || GuillotinePacker::new(Size::CANVAS_1024),
            |mut p| {
                for &s in &sizes {
                    let _ = p.insert(s);
                }
                p.used_area()
            },
            BatchSize::SmallInput,
        );
    });
    group.bench_function("shelf", |b| {
        b.iter_batched(
            || ShelfPacker::new(Size::CANVAS_1024),
            |mut p| {
                for &s in &sizes {
                    let _ = p.insert(s);
                }
                p.used_area()
            },
            BatchSize::SmallInput,
        );
    });
    group.bench_function("skyline", |b| {
        b.iter_batched(
            || SkylinePacker::new(Size::CANVAS_1024),
            |mut p| {
                for &s in &sizes {
                    let _ = p.insert(s);
                }
                p.used_area()
            },
            BatchSize::SmallInput,
        );
    });
    group.finish();
}

fn bench_solver(c: &mut Criterion) {
    let solver = PatchStitchingSolver::new(Size::CANVAS_1024);
    for n in [8usize, 32, 64] {
        let sizes = workload(n);
        c.bench_function(format!("solver_stitch_{n}_patches"), |b| {
            b.iter(|| solver.stitch_sizes(&sizes).expect("fits"));
        });
    }
}

criterion_group!(benches, bench_packers, bench_solver);
criterion_main!(benches);
