//! Criterion bench for the Tangram scheduler's arrival path (stitch +
//! estimate + decide, per Algorithm 2).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use tangram_core::scheduler::{SchedulerConfig, TangramScheduler};
use tangram_infer::estimator::LatencyEstimator;
use tangram_infer::latency::InferenceLatencyModel;
use tangram_types::geometry::{Rect, Size};
use tangram_types::ids::{CameraId, FrameId, PatchId};
use tangram_types::patch::PatchInfo;
use tangram_types::time::{SimDuration, SimTime};

fn patches(n: usize) -> Vec<PatchInfo> {
    let mut x = 0x51ac5eedu64;
    (0..n)
        .map(|i| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            PatchInfo::new(
                PatchId::new(i as u64),
                CameraId::new(0),
                FrameId::new(i as u64 / 8),
                Rect::new(0, 0, 80 + (x % 500) as u32, 100 + ((x >> 16) % 600) as u32),
                SimTime::from_micros(i as u64 * 3_000),
                SimDuration::from_secs(60),
            )
        })
        .collect()
}

fn bench_scheduler(c: &mut Criterion) {
    let estimator = LatencyEstimator::paper_default(
        &InferenceLatencyModel::rtx4090_yolov8x(),
        Size::CANVAS_1024,
        9,
    );
    for n in [16usize, 64] {
        let work = patches(n);
        let est = estimator.clone();
        c.bench_function(format!("scheduler_on_patch_x{n}"), |b| {
            b.iter_batched(
                || TangramScheduler::new(SchedulerConfig::paper_default(), est.clone()),
                |mut s| {
                    let mut dispatched = 0usize;
                    for (i, p) in work.iter().enumerate() {
                        let out = s.on_patch(SimTime::from_micros(i as u64 * 3_000), *p);
                        dispatched += out.dispatches.len();
                    }
                    dispatched
                },
                BatchSize::SmallInput,
            );
        });
    }
}

criterion_group!(benches, bench_scheduler);
criterion_main!(benches);
