//! Criterion bench for the Stauffer–Grimson background subtractor — the
//! edge pipeline's hottest loop.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use tangram_types::geometry::{Rect, Size};
use tangram_video::object::GtObject;
use tangram_video::raster::FrameRenderer;
use tangram_vision::gmm::{GaussianMixtureModel, GmmParams};

fn bench_gmm(c: &mut Criterion) {
    let renderer = FrameRenderer::new(7, Size::new(960, 540), 1.0);
    let objects: Vec<GtObject> = (0..20)
        .map(|i| GtObject::new(i, Rect::new(40 + (i as u32) * 45, 200, 24, 48)))
        .collect();
    let frames: Vec<_> = (0..8).map(|i| renderer.render(i, &objects)).collect();
    let mut group = c.benchmark_group("gmm_apply");
    group.throughput(Throughput::Elements(960 * 540));
    group.sample_size(20);
    group.bench_function("960x540", |b| {
        let mut gmm = GaussianMixtureModel::new(960, 540, GmmParams::default());
        let mut i = 0usize;
        b.iter(|| {
            let mask = gmm.apply(&frames[i % frames.len()]);
            i += 1;
            mask.count_set()
        });
    });
    group.finish();
}

criterion_group!(benches, bench_gmm);
criterion_main!(benches);
