//! Edge-to-cloud network substrate.
//!
//! The paper's testbed connects Jetson edge devices to the cloud server
//! over a Wi-Fi router, throttled to 20/40/80 Mbps for the end-to-end
//! experiments (Fig. 12). [`Link`] models that uplink as a FIFO
//! store-and-forward queue: messages serialise onto the wire in arrival
//! order at the configured bandwidth, plus propagation delay and optional
//! jitter, and the link can be taken down for failure injection.
//!
//! # Example
//!
//! ```
//! use tangram_net::{Link, LinkConfig};
//! use tangram_types::time::SimTime;
//! use tangram_types::units::{Bandwidth, Bytes};
//!
//! let mut link = Link::new(LinkConfig::mbps(80.0));
//! // Two back-to-back 1 MB uploads serialise on the wire.
//! let first = link.enqueue(SimTime::ZERO, Bytes::new(1_000_000));
//! let second = link.enqueue(SimTime::ZERO, Bytes::new(1_000_000));
//! assert!(second > first);
//! ```

use serde::{Deserialize, Serialize};
use tangram_sim::rng::DetRng;
use tangram_types::time::{SimDuration, SimTime};
use tangram_types::units::{Bandwidth, Bytes};

/// Static configuration of a link.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LinkConfig {
    /// Wire rate.
    pub bandwidth: Bandwidth,
    /// One-way propagation delay added after serialisation.
    pub propagation: SimDuration,
    /// Mean of an exponential per-message jitter (zero disables it).
    pub jitter_mean: SimDuration,
}

impl LinkConfig {
    /// A link at the given Mbps with the testbed's ~2 ms Wi-Fi propagation
    /// delay and no jitter.
    #[must_use]
    pub fn mbps(mbps: f64) -> Self {
        Self {
            bandwidth: Bandwidth::from_mbps(mbps),
            propagation: SimDuration::from_millis(2),
            jitter_mean: SimDuration::ZERO,
        }
    }

    /// Adds exponential jitter with the given mean.
    #[must_use]
    pub fn with_jitter(mut self, mean: SimDuration) -> Self {
        self.jitter_mean = mean;
        self
    }
}

/// Counters describing everything a link has carried.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinkStats {
    /// Total payload bytes accepted.
    pub bytes: Bytes,
    /// Number of messages accepted.
    pub messages: u64,
}

/// A FIFO store-and-forward uplink shared by all cameras of one site.
#[derive(Debug, Clone)]
pub struct Link {
    config: LinkConfig,
    busy_until: SimTime,
    stats: LinkStats,
    jitter_rng: Option<DetRng>,
}

impl Link {
    /// Creates an idle link.
    #[must_use]
    pub fn new(config: LinkConfig) -> Self {
        Self {
            config,
            busy_until: SimTime::ZERO,
            stats: LinkStats::default(),
            jitter_rng: None,
        }
    }

    /// Enables jitter sampling with a dedicated random stream. Without
    /// this, `jitter_mean` is ignored.
    #[must_use]
    pub fn with_jitter_rng(mut self, rng: DetRng) -> Self {
        self.jitter_rng = Some(rng);
        self
    }

    /// The link configuration.
    #[must_use]
    pub fn config(&self) -> &LinkConfig {
        &self.config
    }

    /// Cumulative traffic counters.
    #[must_use]
    pub fn stats(&self) -> LinkStats {
        self.stats
    }

    /// When the wire becomes free.
    #[must_use]
    pub fn busy_until(&self) -> SimTime {
        self.busy_until
    }

    /// Accepts a message at `now`; returns its delivery time at the cloud.
    ///
    /// Messages serialise in FIFO order: transmission starts when both the
    /// sender is ready (`now`) and the wire is free.
    pub fn enqueue(&mut self, now: SimTime, size: Bytes) -> SimTime {
        let start = self.busy_until.max(now);
        let end = start + self.config.bandwidth.transmission_time(size);
        self.busy_until = end;
        self.stats.bytes += size;
        self.stats.messages += 1;
        let mut delivery = end + self.config.propagation;
        if !self.config.jitter_mean.is_zero() {
            if let Some(rng) = &mut self.jitter_rng {
                let mean = self.config.jitter_mean.as_secs_f64();
                delivery += SimDuration::from_secs_f64(rng.exponential(1.0 / mean));
            }
        }
        delivery
    }

    /// Failure injection: the wire carries nothing until `until` (an
    /// outage or a congestion event). Already-queued messages finish late.
    pub fn outage_until(&mut self, until: SimTime) {
        self.busy_until = self.busy_until.max(until);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    #[test]
    fn transmission_time_matches_bandwidth() {
        // 1 MB at 80 Mbps = 0.1 s + 2 ms propagation.
        let mut link = Link::new(LinkConfig::mbps(80.0));
        let delivery = link.enqueue(SimTime::ZERO, Bytes::new(1_000_000));
        assert_eq!(delivery, t(102_000));
    }

    #[test]
    fn fifo_serialisation() {
        let mut link = Link::new(LinkConfig::mbps(80.0));
        let a = link.enqueue(SimTime::ZERO, Bytes::new(1_000_000));
        let b = link.enqueue(SimTime::ZERO, Bytes::new(1_000_000));
        // Second message waits for the first: 0.2 s + propagation.
        assert_eq!(a, t(102_000));
        assert_eq!(b, t(202_000));
    }

    #[test]
    fn idle_gap_resets_queueing() {
        let mut link = Link::new(LinkConfig::mbps(80.0));
        let _ = link.enqueue(SimTime::ZERO, Bytes::new(100_000)); // done at 10 ms
        let late = link.enqueue(t(500_000), Bytes::new(100_000));
        assert_eq!(late, t(512_000), "wire was idle; no queueing");
    }

    #[test]
    fn slower_links_take_proportionally_longer() {
        let mut fast = Link::new(LinkConfig::mbps(80.0));
        let mut slow = Link::new(LinkConfig::mbps(20.0));
        let payload = Bytes::new(2_000_000);
        let f = fast.enqueue(SimTime::ZERO, payload);
        let s = slow.enqueue(SimTime::ZERO, payload);
        let ratio = (s.as_micros() - 2_000) as f64 / (f.as_micros() - 2_000) as f64;
        assert!((ratio - 4.0).abs() < 1e-9);
    }

    #[test]
    fn stats_accumulate() {
        let mut link = Link::new(LinkConfig::mbps(20.0));
        let _ = link.enqueue(SimTime::ZERO, Bytes::new(1000));
        let _ = link.enqueue(SimTime::ZERO, Bytes::new(2000));
        assert_eq!(
            link.stats(),
            LinkStats {
                bytes: Bytes::new(3000),
                messages: 2
            }
        );
    }

    #[test]
    fn outage_delays_following_traffic() {
        let mut link = Link::new(LinkConfig::mbps(80.0));
        link.outage_until(t(1_000_000));
        let delivery = link.enqueue(SimTime::ZERO, Bytes::new(100_000));
        assert_eq!(delivery, t(1_012_000));
    }

    #[test]
    fn jitter_adds_positive_delay() {
        let config = LinkConfig::mbps(80.0).with_jitter(SimDuration::from_millis(5));
        let base = Link::new(LinkConfig::mbps(80.0)).enqueue(SimTime::ZERO, Bytes::new(100_000));
        let mut jittered = Link::new(config).with_jitter_rng(DetRng::new(1).fork("jitter"));
        let d = jittered.enqueue(SimTime::ZERO, Bytes::new(100_000));
        assert!(d > base);
    }

    #[test]
    fn jitter_without_rng_is_ignored() {
        let config = LinkConfig::mbps(80.0).with_jitter(SimDuration::from_millis(5));
        let mut link = Link::new(config);
        let d = link.enqueue(SimTime::ZERO, Bytes::new(100_000));
        assert_eq!(d, t(10_000 + 2_000));
    }
}
