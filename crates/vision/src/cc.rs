//! Connected-component labelling.
//!
//! Classic two-pass algorithm with union–find over 4-connectivity,
//! producing the bounding box and pixel count of every foreground blob.
//! This is the step that turns a GMM foreground mask into RoI candidates.

use crate::mask::BitMask;
use tangram_types::geometry::Rect;

/// One connected foreground component.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Component {
    /// Tight bounding box of the component (mask coordinates).
    pub rect: Rect,
    /// Number of foreground pixels in the component.
    pub pixels: u32,
}

struct UnionFind {
    parent: Vec<u32>,
}

impl UnionFind {
    fn new() -> Self {
        Self { parent: Vec::new() }
    }

    fn make(&mut self) -> u32 {
        let id = self.parent.len() as u32;
        self.parent.push(id);
        id
    }

    fn find(&mut self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            // Path halving.
            let grand = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = grand;
            x = grand;
        }
        x
    }

    fn union(&mut self, a: u32, b: u32) {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra != rb {
            // Attach the larger id under the smaller, keeping labels stable.
            let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
            self.parent[hi as usize] = lo;
        }
    }
}

/// Finds all 4-connected components with at least `min_pixels` pixels,
/// ordered by (y, x) of their first-scanned pixel.
#[must_use]
pub fn connected_components(mask: &BitMask, min_pixels: u32) -> Vec<Component> {
    let (w, h) = (mask.width(), mask.height());
    let mut labels: Vec<u32> = vec![u32::MAX; w as usize * h as usize];
    let mut uf = UnionFind::new();
    let at = |x: u32, y: u32| -> usize { y as usize * w as usize + x as usize };

    // First pass: provisional labels + equivalences.
    for y in 0..h {
        for x in 0..w {
            if !mask.get(x, y) {
                continue;
            }
            let left = (x > 0 && mask.get(x - 1, y)).then(|| labels[at(x - 1, y)]);
            let up = (y > 0 && mask.get(x, y - 1)).then(|| labels[at(x, y - 1)]);
            let label = match (left, up) {
                (Some(l), Some(u)) => {
                    uf.union(l, u);
                    l.min(u)
                }
                (Some(l), None) => l,
                (None, Some(u)) => u,
                (None, None) => uf.make(),
            };
            labels[at(x, y)] = label;
        }
    }

    // Second pass: accumulate per-root extents.
    #[derive(Clone, Copy)]
    struct Acc {
        min_x: u32,
        min_y: u32,
        max_x: u32,
        max_y: u32,
        pixels: u32,
        order: u32,
    }
    let mut accs: Vec<Option<Acc>> = vec![None; uf.parent.len()];
    let mut order = 0u32;
    for y in 0..h {
        for x in 0..w {
            let l = labels[at(x, y)];
            if l == u32::MAX {
                continue;
            }
            let root = uf.find(l) as usize;
            let acc = accs[root].get_or_insert_with(|| {
                let o = order;
                order += 1;
                Acc {
                    min_x: x,
                    min_y: y,
                    max_x: x,
                    max_y: y,
                    pixels: 0,
                    order: o,
                }
            });
            acc.min_x = acc.min_x.min(x);
            acc.min_y = acc.min_y.min(y);
            acc.max_x = acc.max_x.max(x);
            acc.max_y = acc.max_y.max(y);
            acc.pixels += 1;
        }
    }

    let mut comps: Vec<(u32, Component)> = accs
        .into_iter()
        .flatten()
        .filter(|a| a.pixels >= min_pixels)
        .map(|a| {
            (
                a.order,
                Component {
                    rect: Rect::new(
                        a.min_x,
                        a.min_y,
                        a.max_x - a.min_x + 1,
                        a.max_y - a.min_y + 1,
                    ),
                    pixels: a.pixels,
                },
            )
        })
        .collect();
    comps.sort_by_key(|(o, _)| *o);
    comps.into_iter().map(|(_, c)| c).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mask_from_art(art: &[&str]) -> BitMask {
        let h = art.len() as u32;
        let w = art[0].len() as u32;
        let mut m = BitMask::new(w, h);
        for (y, row) in art.iter().enumerate() {
            for (x, ch) in row.chars().enumerate() {
                if ch == '#' {
                    m.set(x as u32, y as u32, true);
                }
            }
        }
        m
    }

    #[test]
    fn single_block() {
        let m = mask_from_art(&["..........", "..###.....", "..###.....", ".........."]);
        let comps = connected_components(&m, 1);
        assert_eq!(comps.len(), 1);
        assert_eq!(comps[0].rect, Rect::new(2, 1, 3, 2));
        assert_eq!(comps[0].pixels, 6);
    }

    #[test]
    fn two_separate_blobs() {
        let m = mask_from_art(&["##.....", "##.....", ".....##", ".....##"]);
        let comps = connected_components(&m, 1);
        assert_eq!(comps.len(), 2);
        assert_eq!(comps[0].rect, Rect::new(0, 0, 2, 2));
        assert_eq!(comps[1].rect, Rect::new(5, 2, 2, 2));
    }

    #[test]
    fn diagonal_pixels_are_separate_under_4_connectivity() {
        let m = mask_from_art(&["#.", ".#"]);
        assert_eq!(connected_components(&m, 1).len(), 2);
    }

    #[test]
    fn u_shape_merges_via_equivalence() {
        // The two arms of the U get different provisional labels that must
        // merge through the bottom row.
        let m = mask_from_art(&["#.#", "#.#", "###"]);
        let comps = connected_components(&m, 1);
        assert_eq!(comps.len(), 1);
        assert_eq!(comps[0].rect, Rect::new(0, 0, 3, 3));
        assert_eq!(comps[0].pixels, 7);
    }

    #[test]
    fn min_pixels_filters_specks() {
        let m = mask_from_art(&["#....", ".....", "..###", "..###"]);
        let comps = connected_components(&m, 3);
        assert_eq!(comps.len(), 1);
        assert_eq!(comps[0].pixels, 6);
    }

    #[test]
    fn empty_mask_no_components() {
        let m = BitMask::new(8, 8);
        assert!(connected_components(&m, 1).is_empty());
    }

    #[test]
    fn full_mask_single_component() {
        let mut m = BitMask::new(6, 4);
        for y in 0..4 {
            for x in 0..6 {
                m.set(x, y, true);
            }
        }
        let comps = connected_components(&m, 1);
        assert_eq!(comps.len(), 1);
        assert_eq!(comps[0].rect, Rect::new(0, 0, 6, 4));
        assert_eq!(comps[0].pixels, 24);
    }
}
