//! Stochastic proxies for learning-based RoI extractors.
//!
//! Table IV of the paper compares GMM and optical flow against two
//! lightweight detectors (SSDLite-MobileNetV2 and Yolov3-MobileNetV2) used
//! as RoI extractors on the edge. Pre-trained CNNs are not available in
//! this environment, so each detector is replaced by a *calibrated
//! stochastic proxy*: it sees the ground truth and detects each object
//! with a probability that follows a logistic curve in the object's pixel
//! area (small objects are missed, as lightweight models do), jitters the
//! box, and adds false positives at a per-megapixel rate. The curve
//! parameters are fitted so the end-to-end Table IV numbers land near the
//! paper's.

use serde::{Deserialize, Serialize};
use tangram_sim::rng::DetRng;
use tangram_types::geometry::Rect;
use tangram_video::generator::FrameTruth;

/// A calibrated stochastic stand-in for a lightweight detector.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DetectorProxy {
    /// Human-readable model name.
    pub name: &'static str,
    /// Recall ceiling on very large objects.
    pub max_recall: f64,
    /// Object area (px² at 4K) at which recall reaches half its ceiling.
    pub area_at_half_recall: f64,
    /// Logistic steepness (larger = sharper size cut-off).
    pub steepness: f64,
    /// False positives per megapixel of frame area.
    pub fp_per_mpx: f64,
    /// Relative box jitter (fraction of width/height).
    pub jitter: f64,
    /// Margin added around detected boxes (fraction of size); loose boxes
    /// inflate the bandwidth their crops consume.
    pub box_margin: f64,
}

impl DetectorProxy {
    /// SSDLite-MobileNetV2: modest recall, struggles on small objects,
    /// loose boxes (hence the high bandwidth share in Table IV).
    #[must_use]
    pub fn ssdlite_mobilenet_v2() -> Self {
        Self {
            name: "SSDLite-MobileNetV2",
            max_recall: 0.78,
            area_at_half_recall: 5200.0,
            steepness: 1.6,
            fp_per_mpx: 0.12,
            jitter: 0.10,
            box_margin: 0.35,
        }
    }

    /// Yolov3-MobileNetV2: lower recall overall but tight boxes (lowest
    /// bandwidth share in Table IV).
    #[must_use]
    pub fn yolov3_mobilenet_v2() -> Self {
        Self {
            name: "Yolov3-MobileNetV2",
            max_recall: 0.66,
            area_at_half_recall: 6500.0,
            steepness: 1.8,
            fp_per_mpx: 0.08,
            jitter: 0.06,
            box_margin: 0.08,
        }
    }

    /// Probability of detecting an object with the given pixel area.
    #[must_use]
    pub fn recall_at_area(&self, area: f64) -> f64 {
        if area <= 0.0 {
            return 0.0;
        }
        let x = (area.ln() - self.area_at_half_recall.ln()) * self.steepness;
        self.max_recall / (1.0 + (-x).exp())
    }

    /// Runs the proxy on one frame, producing RoI boxes in 4K coordinates.
    pub fn detect(&self, frame: &FrameTruth, rng: &mut DetRng) -> Vec<Rect> {
        let bounds = Rect::from_size(frame.frame_size);
        let mut rois = Vec::new();
        for obj in &frame.objects {
            let p = self.recall_at_area(obj.rect.area() as f64);
            if !rng.chance(p) {
                continue;
            }
            rois.push(self.perturb(obj.rect, &bounds, rng));
        }
        // False positives: background texture misread as a person.
        let expected_fp = self.fp_per_mpx * frame.frame_size.megapixels();
        for _ in 0..rng.poisson(expected_fp) {
            let w = rng.uniform_in(40.0, 140.0) as u32;
            let h = (f64::from(w) * rng.uniform_in(1.4, 2.4)) as u32;
            let x = rng.index((frame.frame_size.width - w) as usize) as u32;
            let y = rng.index((frame.frame_size.height - h) as usize) as u32;
            rois.push(Rect::new(x, y, w, h));
        }
        rois
    }

    fn perturb(&self, rect: Rect, bounds: &Rect, rng: &mut DetRng) -> Rect {
        let jw = f64::from(rect.width) * self.jitter;
        let jh = f64::from(rect.height) * self.jitter;
        let grown_w = f64::from(rect.width) * (1.0 + self.box_margin) + rng.normal(0.0, jw);
        let grown_h = f64::from(rect.height) * (1.0 + self.box_margin) + rng.normal(0.0, jh);
        let cx = f64::from(rect.x) + f64::from(rect.width) / 2.0 + rng.normal(0.0, jw / 2.0);
        let cy = f64::from(rect.y) + f64::from(rect.height) / 2.0 + rng.normal(0.0, jh / 2.0);
        let x0 = (cx - grown_w / 2.0).max(0.0) as u32;
        let y0 = (cy - grown_h / 2.0).max(0.0) as u32;
        let r = Rect::new(x0, y0, grown_w.max(4.0) as u32, grown_h.max(4.0) as u32);
        r.clamped(bounds).unwrap_or(rect)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tangram_types::ids::SceneId;
    use tangram_video::generator::{SceneSimulation, VideoConfig};

    fn frame() -> FrameTruth {
        let mut sim = SceneSimulation::new(SceneId::new(2), VideoConfig::default(), 99);
        sim.next_frame()
    }

    #[test]
    fn recall_curve_is_monotone_in_area() {
        let d = DetectorProxy::ssdlite_mobilenet_v2();
        let mut prev = 0.0;
        for area in [100.0, 1000.0, 5000.0, 20_000.0, 100_000.0] {
            let r = d.recall_at_area(area);
            assert!(r >= prev, "recall must grow with area");
            assert!(r <= d.max_recall + 1e-12);
            prev = r;
        }
        assert_eq!(d.recall_at_area(0.0), 0.0);
    }

    #[test]
    fn half_recall_at_calibrated_area() {
        let d = DetectorProxy::yolov3_mobilenet_v2();
        let r = d.recall_at_area(d.area_at_half_recall);
        assert!((r - d.max_recall / 2.0).abs() < 1e-9);
    }

    #[test]
    fn detects_a_reasonable_fraction() {
        let f = frame();
        let d = DetectorProxy::ssdlite_mobilenet_v2();
        let mut rng = DetRng::new(5);
        let mut total = 0usize;
        const ROUNDS: usize = 20;
        for _ in 0..ROUNDS {
            total += d.detect(&f, &mut rng).len();
        }
        let mean = total as f64 / ROUNDS as f64;
        let n = f.objects.len() as f64;
        assert!(
            mean > 0.3 * n && mean < 1.4 * n,
            "mean detections {mean:.1} vs {n} objects"
        );
    }

    #[test]
    fn boxes_stay_in_frame() {
        let f = frame();
        let d = DetectorProxy::ssdlite_mobilenet_v2();
        let mut rng = DetRng::new(6);
        let bounds = Rect::from_size(f.frame_size);
        for _ in 0..10 {
            for r in d.detect(&f, &mut rng) {
                assert!(bounds.contains_rect(&r), "box {r} outside frame");
            }
        }
    }

    #[test]
    fn yolo_boxes_tighter_than_ssd() {
        let f = frame();
        let mut rng_a = DetRng::new(7);
        let mut rng_b = DetRng::new(7);
        let ssd = DetectorProxy::ssdlite_mobilenet_v2();
        let yolo = DetectorProxy::yolov3_mobilenet_v2();
        let area = |rois: Vec<Rect>| -> f64 {
            if rois.is_empty() {
                return 0.0;
            }
            rois.iter().map(|r| r.area() as f64).sum::<f64>() / rois.len() as f64
        };
        let mut ssd_total = 0.0;
        let mut yolo_total = 0.0;
        for _ in 0..10 {
            ssd_total += area(ssd.detect(&f, &mut rng_a));
            yolo_total += area(yolo.detect(&f, &mut rng_b));
        }
        assert!(
            ssd_total > yolo_total,
            "SSD proxy must produce looser boxes ({ssd_total} vs {yolo_total})"
        );
    }

    #[test]
    fn deterministic_for_same_stream() {
        let f = frame();
        let d = DetectorProxy::ssdlite_mobilenet_v2();
        let a = d.detect(&f, &mut DetRng::new(11));
        let b = d.detect(&f, &mut DetRng::new(11));
        assert_eq!(a, b);
    }
}
