//! Binary foreground masks and 3×3 morphology.

use tangram_types::geometry::Size;

/// A width × height binary mask (row-major).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitMask {
    width: u32,
    height: u32,
    bits: Vec<bool>,
}

impl BitMask {
    /// Creates an all-clear mask.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    #[must_use]
    pub fn new(width: u32, height: u32) -> Self {
        assert!(width > 0 && height > 0, "mask must be non-empty");
        Self {
            width,
            height,
            bits: vec![false; width as usize * height as usize],
        }
    }

    /// Mask width.
    #[must_use]
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Mask height.
    #[must_use]
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Mask size.
    #[must_use]
    pub fn size(&self) -> Size {
        Size::new(self.width, self.height)
    }

    #[inline]
    fn idx(&self, x: u32, y: u32) -> usize {
        debug_assert!(x < self.width && y < self.height);
        y as usize * self.width as usize + x as usize
    }

    /// Bit at `(x, y)`.
    #[must_use]
    pub fn get(&self, x: u32, y: u32) -> bool {
        self.bits[self.idx(x, y)]
    }

    /// Sets the bit at `(x, y)`.
    pub fn set(&mut self, x: u32, y: u32, v: bool) {
        let i = self.idx(x, y);
        self.bits[i] = v;
    }

    /// Sets a bit by linear (row-major) index.
    pub fn set_index(&mut self, index: usize, v: bool) {
        self.bits[index] = v;
    }

    /// Number of set bits.
    #[must_use]
    pub fn count_set(&self) -> usize {
        self.bits.iter().filter(|&&b| b).count()
    }

    /// Fraction of set bits.
    #[must_use]
    pub fn fill_fraction(&self) -> f64 {
        self.count_set() as f64 / self.bits.len() as f64
    }

    /// Morphological erosion with a 3×3 box kernel: a bit survives only if
    /// its entire 3×3 neighbourhood (clamped at edges) is set.
    #[must_use]
    pub fn eroded(&self) -> BitMask {
        self.morph(|all, _any| all)
    }

    /// Morphological dilation with a 3×3 box kernel: a bit is set if any
    /// neighbour is set.
    #[must_use]
    pub fn dilated(&self) -> BitMask {
        self.morph(|_all, any| any)
    }

    /// Opening (erode → dilate): removes isolated specks.
    #[must_use]
    pub fn opened(&self) -> BitMask {
        self.eroded().dilated()
    }

    /// Closing (dilate → erode): fills small holes.
    #[must_use]
    pub fn closed(&self) -> BitMask {
        self.dilated().eroded()
    }

    fn morph(&self, keep: impl Fn(bool, bool) -> bool) -> BitMask {
        let mut out = BitMask::new(self.width, self.height);
        for y in 0..self.height {
            for x in 0..self.width {
                let mut all = true;
                let mut any = false;
                for dy in -1i64..=1 {
                    for dx in -1i64..=1 {
                        let nx = i64::from(x) + dx;
                        let ny = i64::from(y) + dy;
                        if nx < 0
                            || ny < 0
                            || nx >= i64::from(self.width)
                            || ny >= i64::from(self.height)
                        {
                            // Outside pixels count as clear.
                            all = false;
                            continue;
                        }
                        let b = self.get(nx as u32, ny as u32);
                        all &= b;
                        any |= b;
                    }
                }
                if keep(all, any) {
                    out.set(x, y, true);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mask_with_block(w: u32, h: u32, x0: u32, y0: u32, bw: u32, bh: u32) -> BitMask {
        let mut m = BitMask::new(w, h);
        for y in y0..y0 + bh {
            for x in x0..x0 + bw {
                m.set(x, y, true);
            }
        }
        m
    }

    #[test]
    fn count_and_fraction() {
        let m = mask_with_block(10, 10, 2, 2, 4, 4);
        assert_eq!(m.count_set(), 16);
        assert!((m.fill_fraction() - 0.16).abs() < 1e-12);
    }

    #[test]
    fn erosion_shrinks_block() {
        let m = mask_with_block(20, 20, 5, 5, 6, 6);
        let e = m.eroded();
        assert_eq!(e.count_set(), 16); // 6x6 -> 4x4
        assert!(e.get(6, 6));
        assert!(!e.get(5, 5));
    }

    #[test]
    fn dilation_grows_block() {
        let m = mask_with_block(20, 20, 5, 5, 2, 2);
        let d = m.dilated();
        assert_eq!(d.count_set(), 16); // 2x2 -> 4x4
        assert!(d.get(4, 4));
    }

    #[test]
    fn opening_removes_speck_keeps_block() {
        let mut m = mask_with_block(30, 30, 10, 10, 5, 5);
        m.set(2, 2, true); // isolated speck
        let o = m.opened();
        assert!(!o.get(2, 2), "speck must be removed");
        assert!(o.get(12, 12), "block interior must survive");
    }

    #[test]
    fn closing_fills_hole() {
        let mut m = mask_with_block(30, 30, 10, 10, 7, 7);
        m.set(13, 13, false); // small hole in the middle
        let c = m.closed();
        assert!(c.get(13, 13), "hole must be filled");
    }

    #[test]
    fn erosion_at_border_clears_edge_pixels() {
        let m = mask_with_block(10, 10, 0, 0, 3, 3);
        let e = m.eroded();
        // Edge-adjacent pixels see out-of-bounds neighbours and die.
        assert!(!e.get(0, 0));
        assert!(e.get(1, 1));
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn zero_size_rejected() {
        let _ = BitMask::new(0, 5);
    }
}
