//! Stauffer–Grimson adaptive mixture-of-Gaussians background subtraction.
//!
//! Each pixel maintains `K` Gaussian modes `(weight, mean, variance)`. On
//! every frame the pixel value is matched against its modes (within 2.5σ);
//! a matched mode is updated towards the observation, unmatched modes decay,
//! and if nothing matches, the weakest mode is replaced. Modes are ranked by
//! `weight / σ` and the top modes covering `background_ratio` of the weight
//! mass are considered background — a pixel is *foreground* when its
//! matching mode is not among them (or nothing matched).
//!
//! This is the algorithm of Stauffer & Grimson (CVPR 1999), the basis of
//! OpenCV's `BackgroundSubtractorMOG2` that the paper's prototype uses on
//! the Jetson edge device.

use crate::mask::BitMask;
use tangram_video::raster::Raster;

/// Per-mode state, stored struct-of-arrays-style per pixel.
#[derive(Debug, Clone, Copy)]
struct Mode {
    weight: f32,
    mean: f32,
    var: f32,
}

/// Tunable parameters of the subtractor.
#[derive(Debug, Clone)]
pub struct GmmParams {
    /// Number of Gaussian modes per pixel (OpenCV default 5; 3 is the
    /// classic Stauffer–Grimson choice and plenty for grayscale).
    pub modes: usize,
    /// Learning rate α: how fast the model adapts (OpenCV: 1/history).
    pub learning_rate: f32,
    /// Mahalanobis match threshold in standard deviations (classic 2.5).
    pub match_sigma: f32,
    /// Weight mass that counts as background (classic 0.7).
    pub background_ratio: f32,
    /// Variance assigned to a newly created mode.
    pub initial_variance: f32,
    /// Lower bound on mode variance (keeps matching numerically sane).
    pub min_variance: f32,
}

impl Default for GmmParams {
    fn default() -> Self {
        Self {
            modes: 3,
            learning_rate: 0.035,
            match_sigma: 2.5,
            background_ratio: 0.7,
            initial_variance: 90.0,
            min_variance: 4.0,
        }
    }
}

/// The per-pixel mixture model for one camera.
#[derive(Debug, Clone)]
pub struct GaussianMixtureModel {
    params: GmmParams,
    width: u32,
    height: u32,
    /// `width × height × modes` mode records, row-major by pixel.
    modes: Vec<Mode>,
    frames_seen: u64,
}

impl GaussianMixtureModel {
    /// Creates an untrained model for `width × height` rasters.
    ///
    /// # Panics
    ///
    /// Panics if the raster would be empty or `params.modes == 0`.
    #[must_use]
    pub fn new(width: u32, height: u32, params: GmmParams) -> Self {
        assert!(width > 0 && height > 0, "empty raster");
        assert!(params.modes > 0, "need at least one mode");
        let n = width as usize * height as usize * params.modes;
        Self {
            params,
            width,
            height,
            modes: vec![
                Mode {
                    weight: 0.0,
                    mean: 0.0,
                    var: 1.0,
                };
                n
            ],
            frames_seen: 0,
        }
    }

    /// Number of frames the model has absorbed.
    #[must_use]
    pub fn frames_seen(&self) -> u64 {
        self.frames_seen
    }

    /// Absorbs one frame and returns its foreground mask.
    ///
    /// # Panics
    ///
    /// Panics if the raster's dimensions differ from the model's.
    pub fn apply(&mut self, raster: &Raster) -> BitMask {
        assert_eq!(
            (raster.width(), raster.height()),
            (self.width, self.height),
            "raster size changed mid-stream"
        );
        let p = self.params.clone();
        let k = p.modes;
        // Boost the learning rate on early frames so the model converges
        // from a cold start (mirrors OpenCV's 1/frames behaviour).
        let alpha = if self.frames_seen < 50 {
            (1.0 / (self.frames_seen as f32 + 2.0)).max(p.learning_rate)
        } else {
            p.learning_rate
        };
        let mut mask = BitMask::new(self.width, self.height);
        let pixels = raster.pixels();
        for (idx, &px) in pixels.iter().enumerate() {
            let x = f32::from(px);
            let modes = &mut self.modes[idx * k..(idx + 1) * k];
            let mut matched: Option<usize> = None;
            for (m, mode) in modes.iter().enumerate() {
                if mode.weight <= 0.0 {
                    continue;
                }
                let d = x - mode.mean;
                if d * d <= p.match_sigma * p.match_sigma * mode.var {
                    matched = Some(m);
                    break;
                }
            }
            match matched {
                Some(m) => {
                    // Update matched mode towards the observation; decay the
                    // rest.
                    for (j, mode) in modes.iter_mut().enumerate() {
                        if j == m {
                            mode.weight += alpha * (1.0 - mode.weight);
                            let rho = alpha;
                            let d = x - mode.mean;
                            mode.mean += rho * d;
                            mode.var = (mode.var + rho * (d * d - mode.var)).max(p.min_variance);
                        } else {
                            mode.weight *= 1.0 - alpha;
                        }
                    }
                }
                None => {
                    // Replace the weakest mode with a new one centred here.
                    let weakest = (0..k)
                        .min_by(|&a, &b| {
                            modes[a]
                                .weight
                                .partial_cmp(&modes[b].weight)
                                .expect("weights are finite")
                        })
                        .expect("at least one mode");
                    modes[weakest] = Mode {
                        weight: alpha.max(0.05),
                        mean: x,
                        var: p.initial_variance,
                    };
                    for (j, mode) in modes.iter_mut().enumerate() {
                        if j != weakest {
                            mode.weight *= 1.0 - alpha;
                        }
                    }
                }
            }
            // Normalise weights.
            let total: f32 = modes.iter().map(|m| m.weight).sum();
            if total > 0.0 {
                for mode in modes.iter_mut() {
                    mode.weight /= total;
                }
            }
            // Rank by weight/σ and find which modes form the background.
            // K is tiny (≤5), insertion-sort indices on the stack.
            let mut order: [usize; 8] = [0; 8];
            for (i, o) in order.iter_mut().enumerate().take(k) {
                *o = i;
            }
            let fitness = |m: &Mode| -> f32 {
                if m.var > 0.0 {
                    m.weight / m.var.sqrt()
                } else {
                    0.0
                }
            };
            order[..k].sort_by(|&a, &b| {
                fitness(&modes[b])
                    .partial_cmp(&fitness(&modes[a]))
                    .expect("fitness is finite")
            });
            let mut cum = 0.0f32;
            let mut background_of = [false; 8];
            for &i in &order[..k] {
                if cum < p.background_ratio {
                    background_of[i] = true;
                    cum += modes[i].weight;
                }
            }
            let is_foreground = match matched {
                Some(m) => !background_of[m],
                None => true,
            };
            if is_foreground {
                mask.set_index(idx, true);
            }
        }
        self.frames_seen += 1;
        mask
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tangram_types::geometry::{Rect, Size};
    use tangram_video::object::GtObject;
    use tangram_video::raster::FrameRenderer;

    fn renderer() -> FrameRenderer {
        FrameRenderer::new(3, Size::new(640, 360), 1.0)
    }

    fn warmed_model(r: &FrameRenderer, frames: u64) -> GaussianMixtureModel {
        let mut gmm = GaussianMixtureModel::new(640, 360, GmmParams::default());
        for i in 0..frames {
            let _ = gmm.apply(&r.render(i, &[]));
        }
        gmm
    }

    #[test]
    fn static_background_goes_quiet() {
        let r = renderer();
        let mut gmm = warmed_model(&r, 40);
        let mask = gmm.apply(&r.render(40, &[]));
        let fg_fraction = mask.count_set() as f64 / (640.0 * 360.0);
        assert!(
            fg_fraction < 0.02,
            "background still noisy after warm-up: {fg_fraction}"
        );
    }

    #[test]
    fn moving_object_detected() {
        let r = renderer();
        let mut gmm = warmed_model(&r, 40);
        let obj = GtObject::new(900, Rect::new(200, 100, 60, 120));
        let mask = gmm.apply(&r.render(41, &[obj]));
        // Count foreground inside the object's box.
        let mut inside = 0u32;
        for y in 100..220 {
            for x in 200..260 {
                if mask.get(x, y) {
                    inside += 1;
                }
            }
        }
        let coverage = f64::from(inside) / (60.0 * 120.0);
        assert!(coverage > 0.6, "object coverage only {coverage}");
    }

    #[test]
    fn stationary_object_absorbs_into_background() {
        let r = renderer();
        let mut gmm = warmed_model(&r, 40);
        let obj = GtObject::new(900, Rect::new(300, 200, 40, 80));
        // Present the same object at the same spot for many frames.
        let mut last = BitMask::new(640, 360);
        for i in 0..120 {
            last = gmm.apply(&r.render(100 + i, &[obj]));
        }
        let mut inside = 0u32;
        for y in 200..280 {
            for x in 300..340 {
                if last.get(x, y) {
                    inside += 1;
                }
            }
        }
        let coverage = f64::from(inside) / (40.0 * 80.0);
        assert!(
            coverage < 0.3,
            "parked object should fade into background, coverage {coverage}"
        );
    }

    #[test]
    fn early_frames_learn_quickly() {
        let r = renderer();
        let mut gmm = GaussianMixtureModel::new(640, 360, GmmParams::default());
        // After only 10 frames the static scene should already be mostly
        // background thanks to the boosted early learning rate.
        let mut mask = gmm.apply(&r.render(0, &[]));
        for i in 1..10 {
            mask = gmm.apply(&r.render(i, &[]));
        }
        let fg = mask.count_set() as f64 / (640.0 * 360.0);
        assert!(fg < 0.1, "cold start too slow: {fg}");
        assert_eq!(gmm.frames_seen(), 10);
    }

    #[test]
    #[should_panic(expected = "raster size changed")]
    fn size_mismatch_panics() {
        let r = renderer();
        let mut gmm = GaussianMixtureModel::new(100, 100, GmmParams::default());
        let _ = gmm.apply(&r.render(0, &[]));
    }
}
