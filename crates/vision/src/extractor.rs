//! The unified RoI-extractor interface.
//!
//! Every extraction strategy (background subtraction, optical flow,
//! lightweight detectors) implements [`RoiExtractor`], producing RoI boxes
//! in *logical 4K coordinates* regardless of the raster resolution it
//! works at — exactly the contract the adaptive frame partitioning
//! algorithm consumes.

use crate::cc::connected_components;
use crate::detector::DetectorProxy;
use crate::flow::{BlockMatcher, FlowParams};
use crate::gmm::{GaussianMixtureModel, GmmParams};
use tangram_sim::rng::DetRng;
use tangram_types::geometry::Rect;
use tangram_video::generator::FrameTruth;
use tangram_video::raster::Raster;

/// Extracts candidate RoIs from a frame.
pub trait RoiExtractor {
    /// Human-readable name of the strategy (for experiment tables).
    fn name(&self) -> &'static str;

    /// Processes the next frame of the stream and returns the RoIs in
    /// logical frame coordinates. Extractors are stateful (background
    /// models, previous frames) and must be fed frames in order.
    fn extract(&mut self, frame: &FrameTruth) -> Vec<Rect>;
}

impl<E: RoiExtractor + ?Sized> RoiExtractor for Box<E> {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn extract(&mut self, frame: &FrameTruth) -> Vec<Rect> {
        (**self).extract(frame)
    }
}

/// Iteratively merges boxes that overlap (or nearly touch, within `gap`
/// pixels) until a fixed point — GMM blobs of one person often fragment,
/// and overlapping RoIs would otherwise be stitched twice.
#[must_use]
pub fn merge_overlapping(mut boxes: Vec<Rect>, gap: u32) -> Vec<Rect> {
    loop {
        let mut merged_any = false;
        let mut out: Vec<Rect> = Vec::with_capacity(boxes.len());
        'outer: for b in boxes.iter() {
            for o in out.iter_mut() {
                let inflated = Rect::new(
                    o.x.saturating_sub(gap),
                    o.y.saturating_sub(gap),
                    o.width + 2 * gap,
                    o.height + 2 * gap,
                );
                if inflated.intersects(b) {
                    *o = o.union(b);
                    merged_any = true;
                    continue 'outer;
                }
            }
            out.push(*b);
        }
        boxes = out;
        if !merged_any {
            return boxes;
        }
    }
}

/// Background-subtraction extractor: GMM → closing → opening → connected
/// components → upscale to 4K → merge.
pub struct GmmExtractor {
    params: GmmParams,
    /// Minimum component size as a fraction of the raster area (filters
    /// sensor-noise specks; small real objects survive via dilation).
    pub min_component_fraction: f64,
    /// Margin added around each RoI in logical pixels (GMM boxes hug the
    /// silhouette; detectors want some context).
    pub margin: u32,
    model: Option<GaussianMixtureModel>,
}

impl GmmExtractor {
    /// Creates an extractor with the given GMM parameters.
    #[must_use]
    pub fn new(params: GmmParams) -> Self {
        Self {
            params,
            min_component_fraction: 12.0e-6,
            margin: 12,
            model: None,
        }
    }

    fn raster_of(frame: &FrameTruth) -> &Raster {
        frame
            .raster
            .as_ref()
            .expect("GmmExtractor requires rendered frames (VideoConfig::render = true)")
    }
}

impl Default for GmmExtractor {
    fn default() -> Self {
        Self::new(GmmParams::default())
    }
}

impl RoiExtractor for GmmExtractor {
    fn name(&self) -> &'static str {
        "GMM"
    }

    /// # Panics
    ///
    /// Panics if the frame carries no raster.
    fn extract(&mut self, frame: &FrameTruth) -> Vec<Rect> {
        let raster = Self::raster_of(frame);
        let model = self.model.get_or_insert_with(|| {
            GaussianMixtureModel::new(raster.width(), raster.height(), self.params.clone())
        });
        let mask = model.apply(raster);
        // Closing bridges the torso/leg fragments of one person; opening
        // then removes isolated noise specks.
        let cleaned = mask.closed().opened();
        let min_pixels = (self.min_component_fraction * raster.size().area() as f64).ceil() as u32;
        let scale_up = 1.0 / raster.scale();
        let frame_bounds = Rect::from_size(frame.frame_size);
        let boxes: Vec<Rect> = connected_components(&cleaned, min_pixels.max(2))
            .into_iter()
            .map(|c| c.rect.scaled(scale_up).inflated(self.margin, &frame_bounds))
            .collect();
        merge_overlapping(boxes, 8)
    }
}

/// Optical-flow extractor: block matching → dilation → connected
/// components → upscale → merge.
pub struct FlowExtractor {
    matcher: BlockMatcher,
    /// Minimum component size as a fraction of the raster area.
    pub min_component_fraction: f64,
    /// Margin added around each RoI in logical pixels (motion boxes lag the
    /// silhouette, so flow uses a larger margin than GMM — this is why
    /// Table IV measures a higher bandwidth share for optical flow).
    pub margin: u32,
}

impl FlowExtractor {
    /// Creates an extractor with the given matcher parameters.
    #[must_use]
    pub fn new(params: FlowParams) -> Self {
        Self {
            matcher: BlockMatcher::new(params),
            min_component_fraction: 30.0e-6,
            margin: 28,
        }
    }
}

impl Default for FlowExtractor {
    fn default() -> Self {
        Self::new(FlowParams::default())
    }
}

impl RoiExtractor for FlowExtractor {
    fn name(&self) -> &'static str {
        "OpticalFlow"
    }

    /// # Panics
    ///
    /// Panics if the frame carries no raster.
    fn extract(&mut self, frame: &FrameTruth) -> Vec<Rect> {
        let raster = frame
            .raster
            .as_ref()
            .expect("FlowExtractor requires rendered frames (VideoConfig::render = true)");
        let mask = self.matcher.apply(raster).dilated();
        let min_pixels = (self.min_component_fraction * raster.size().area() as f64).ceil() as u32;
        let scale_up = 1.0 / raster.scale();
        let frame_bounds = Rect::from_size(frame.frame_size);
        let boxes: Vec<Rect> = connected_components(&mask, min_pixels.max(2))
            .into_iter()
            .map(|c| c.rect.scaled(scale_up).inflated(self.margin, &frame_bounds))
            .collect();
        merge_overlapping(boxes, 8)
    }
}

/// Wraps a [`DetectorProxy`] as an extractor.
pub struct ProxyExtractor {
    proxy: DetectorProxy,
    rng: DetRng,
}

impl ProxyExtractor {
    /// Creates an extractor from a proxy and a random stream.
    #[must_use]
    pub fn new(proxy: DetectorProxy, rng: DetRng) -> Self {
        Self { proxy, rng }
    }
}

impl RoiExtractor for ProxyExtractor {
    fn name(&self) -> &'static str {
        self.proxy.name
    }

    fn extract(&mut self, frame: &FrameTruth) -> Vec<Rect> {
        merge_overlapping(self.proxy.detect(frame, &mut self.rng), 4)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tangram_types::ids::SceneId;
    use tangram_video::generator::{SceneSimulation, VideoConfig};

    fn rendered_sim(scene: u8) -> SceneSimulation {
        let config = VideoConfig {
            render: true,
            raster_scale: 0.12,
            ..VideoConfig::default()
        };
        SceneSimulation::new(SceneId::new(scene), config, 2024)
    }

    #[test]
    fn merge_overlapping_unions_intersecting() {
        let boxes = vec![
            Rect::new(0, 0, 10, 10),
            Rect::new(5, 5, 10, 10),
            Rect::new(100, 100, 5, 5),
        ];
        let merged = merge_overlapping(boxes, 0);
        assert_eq!(merged.len(), 2);
        assert!(merged.contains(&Rect::new(0, 0, 15, 15)));
    }

    #[test]
    fn merge_overlapping_respects_gap() {
        let boxes = vec![Rect::new(0, 0, 10, 10), Rect::new(12, 0, 10, 10)];
        assert_eq!(merge_overlapping(boxes.clone(), 0).len(), 2);
        assert_eq!(merge_overlapping(boxes, 3).len(), 1);
    }

    #[test]
    fn merge_overlapping_chains_transitively() {
        // a∩b and b∩c but not a∩c — all three must merge.
        let boxes = vec![
            Rect::new(0, 0, 10, 10),
            Rect::new(8, 0, 10, 10),
            Rect::new(16, 0, 10, 10),
        ];
        let merged = merge_overlapping(boxes, 0);
        assert_eq!(merged.len(), 1);
        assert_eq!(merged[0], Rect::new(0, 0, 26, 10));
    }

    #[test]
    fn gmm_extractor_finds_movers_after_warmup() {
        let mut sim = rendered_sim(1);
        let mut ex = GmmExtractor::default();
        let mut rois = Vec::new();
        for _ in 0..30 {
            rois = ex.extract(&sim.next_frame());
        }
        assert!(!rois.is_empty(), "no RoIs after warm-up");
        // RoIs should be in 4K coordinates.
        let frame_bounds = Rect::from_size(tangram_types::geometry::Size::UHD_4K);
        for r in &rois {
            assert!(frame_bounds.contains_rect(r), "RoI {r} outside 4K frame");
        }
    }

    #[test]
    fn gmm_rois_cover_ground_truth() {
        let mut sim = rendered_sim(1);
        let mut ex = GmmExtractor::default();
        let mut frame = sim.next_frame();
        for _ in 0..35 {
            frame = sim.next_frame();
            let _ = ex.extract(&frame);
        }
        let rois = ex.extract(&frame);
        // Count ground-truth objects substantially covered by some RoI.
        let covered = frame
            .objects
            .iter()
            .filter(|o| {
                rois.iter()
                    .any(|r| r.overlap_area(&o.rect) as f64 >= 0.5 * o.rect.area() as f64)
            })
            .count();
        let recall = covered as f64 / frame.objects.len() as f64;
        assert!(recall > 0.5, "GMM recall only {recall:.2}");
    }

    #[test]
    fn flow_extractor_runs() {
        let mut sim = rendered_sim(5);
        let mut ex = FlowExtractor::default();
        let mut rois = Vec::new();
        for _ in 0..5 {
            rois = ex.extract(&sim.next_frame());
        }
        assert!(!rois.is_empty(), "moving scene should trigger flow RoIs");
    }

    #[test]
    fn proxy_extractor_names_match() {
        let ex = ProxyExtractor::new(DetectorProxy::ssdlite_mobilenet_v2(), DetRng::new(1));
        assert_eq!(ex.name(), "SSDLite-MobileNetV2");
    }

    #[test]
    #[should_panic(expected = "requires rendered frames")]
    fn gmm_without_raster_panics() {
        let mut sim = SceneSimulation::new(SceneId::new(1), VideoConfig::default(), 1);
        let mut ex = GmmExtractor::default();
        let _ = ex.extract(&sim.next_frame());
    }
}
