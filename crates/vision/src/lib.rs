//! RoI-extraction substrates.
//!
//! The paper builds its edge pipeline on OpenCV's CUDA
//! `BackgroundSubtractorMOG2` and compares against optical-flow and
//! lightweight-detector extractors (Table IV). This crate implements those
//! substrates from scratch:
//!
//! * [`gmm`] — a per-pixel Stauffer–Grimson adaptive mixture-of-Gaussians
//!   background subtractor (the same algorithm family as MOG2);
//! * [`mask`] — binary foreground masks with 3×3 morphology;
//! * [`cc`] — two-pass connected-component labelling with union–find,
//!   producing RoI bounding boxes;
//! * [`flow`] — a block-matching motion estimator standing in for
//!   Gunnar-Farnebäck optical flow;
//! * [`detector`] — calibrated stochastic proxies for the
//!   SSDLite-MobileNetV2 / Yolov3-MobileNetV2 extractors;
//! * [`extractor`] — the [`extractor::RoiExtractor`] trait unifying all of
//!   the above for the partitioning pipeline.
//!
//! # Example
//!
//! ```
//! use tangram_types::ids::SceneId;
//! use tangram_video::generator::{SceneSimulation, VideoConfig};
//! use tangram_vision::extractor::{GmmExtractor, RoiExtractor};
//!
//! let config = VideoConfig { render: true, raster_scale: 0.1, ..VideoConfig::default() };
//! let mut sim = SceneSimulation::new(SceneId::new(1), config, 7);
//! let mut extractor = GmmExtractor::default();
//! // Warm the background model up, then extract.
//! let mut rois = Vec::new();
//! for _ in 0..30 {
//!     rois = extractor.extract(&sim.next_frame());
//! }
//! // After warm-up the moving objects produce foreground boxes.
//! assert!(!rois.is_empty());
//! ```

pub mod cc;
pub mod detector;
pub mod extractor;
pub mod flow;
pub mod gmm;
pub mod mask;

pub use detector::DetectorProxy;
pub use extractor::{merge_overlapping, FlowExtractor, GmmExtractor, ProxyExtractor, RoiExtractor};
pub use gmm::GaussianMixtureModel;
pub use mask::BitMask;
