//! Block-matching motion estimation.
//!
//! Stands in for Gunnar-Farnebäck dense optical flow (Table IV): the frame
//! is tiled into blocks, each block is matched against the previous frame
//! within a small search window (sum of absolute differences), and blocks
//! whose best displacement is non-zero — or which match nowhere well —
//! are marked as moving. The resulting motion mask feeds the same
//! connected-components stage as the GMM extractor.

use crate::mask::BitMask;
use tangram_video::raster::Raster;

/// Parameters of the block matcher.
#[derive(Debug, Clone)]
pub struct FlowParams {
    /// Block side length in raster pixels.
    pub block: u32,
    /// Search radius in pixels (displacements in `[-radius, radius]`).
    pub radius: i32,
    /// Minimum displacement magnitude (pixels) to count as motion.
    pub min_magnitude: f64,
    /// Mean-absolute-difference above which a block counts as changed even
    /// with zero best displacement (appearance change).
    pub residual_threshold: f64,
}

impl Default for FlowParams {
    fn default() -> Self {
        Self {
            block: 8,
            radius: 4,
            min_magnitude: 1.0,
            residual_threshold: 12.0,
        }
    }
}

/// Block-matching motion estimator for one camera stream.
#[derive(Debug, Clone)]
pub struct BlockMatcher {
    params: FlowParams,
    previous: Option<Raster>,
}

impl BlockMatcher {
    /// Creates an estimator with the given parameters.
    #[must_use]
    pub fn new(params: FlowParams) -> Self {
        Self {
            params,
            previous: None,
        }
    }

    /// Absorbs a frame and returns the motion mask relative to the previous
    /// frame (all-clear for the first frame).
    pub fn apply(&mut self, raster: &Raster) -> BitMask {
        let mask = match &self.previous {
            Some(prev) if prev.size() == raster.size() => self.motion_mask(prev, raster),
            _ => BitMask::new(raster.width(), raster.height()),
        };
        self.previous = Some(raster.clone());
        mask
    }

    fn motion_mask(&self, prev: &Raster, cur: &Raster) -> BitMask {
        let p = &self.params;
        let (w, h) = (cur.width(), cur.height());
        let mut mask = BitMask::new(w, h);
        let mut by = 0;
        while by < h {
            let bh = p.block.min(h - by);
            let mut bx = 0;
            while bx < w {
                let bw = p.block.min(w - bx);
                let (dx, dy, best) = self.best_displacement(prev, cur, bx, by, bw, bh);
                let magnitude = f64::from(dx * dx + dy * dy).sqrt();
                let moving = magnitude >= p.min_magnitude
                    || best / f64::from(bw * bh) > p.residual_threshold;
                if moving {
                    for y in by..by + bh {
                        for x in bx..bx + bw {
                            mask.set(x, y, true);
                        }
                    }
                }
                bx += p.block;
            }
            by += p.block;
        }
        mask
    }

    /// Best (dx, dy) displacement of the block into the previous frame and
    /// the SAD at that displacement.
    fn best_displacement(
        &self,
        prev: &Raster,
        cur: &Raster,
        bx: u32,
        by: u32,
        bw: u32,
        bh: u32,
    ) -> (i32, i32, f64) {
        let r = self.params.radius;
        let mut best = f64::INFINITY;
        let mut best_d = (0i32, 0i32);
        for dy in -r..=r {
            for dx in -r..=r {
                let mut sad = 0.0f64;
                let mut valid = true;
                for y in 0..bh {
                    for x in 0..bw {
                        let cx = bx + x;
                        let cy = by + y;
                        let px = i64::from(cx) + i64::from(dx);
                        let py = i64::from(cy) + i64::from(dy);
                        if px < 0
                            || py < 0
                            || px >= i64::from(prev.width())
                            || py >= i64::from(prev.height())
                        {
                            valid = false;
                            break;
                        }
                        sad += f64::from(
                            i32::from(cur.get(cx, cy))
                                .abs_diff(i32::from(prev.get(px as u32, py as u32))),
                        );
                    }
                    if !valid {
                        break;
                    }
                }
                if !valid {
                    continue;
                }
                // Prefer the zero displacement on ties so static blocks
                // report no motion.
                let tie_break = f64::from(dx * dx + dy * dy) * 1e-6;
                if sad + tie_break < best {
                    best = sad + tie_break;
                    best_d = (dx, dy);
                }
            }
        }
        (best_d.0, best_d.1, best)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tangram_types::geometry::{Rect, Size};
    use tangram_video::object::GtObject;
    use tangram_video::raster::FrameRenderer;

    fn quiet_renderer() -> FrameRenderer {
        let mut r = FrameRenderer::new(5, Size::new(128, 96), 1.0);
        r.noise_sigma = 0.0;
        r
    }

    #[test]
    fn first_frame_reports_nothing() {
        let r = quiet_renderer();
        let mut bm = BlockMatcher::new(FlowParams::default());
        let mask = bm.apply(&r.render(0, &[]));
        assert_eq!(mask.count_set(), 0);
    }

    #[test]
    fn static_scene_stays_quiet() {
        let r = quiet_renderer();
        let mut bm = BlockMatcher::new(FlowParams::default());
        let _ = bm.apply(&r.render(0, &[]));
        let mask = bm.apply(&r.render(0, &[]));
        assert_eq!(
            mask.count_set(),
            0,
            "identical frames must report no motion"
        );
    }

    #[test]
    fn moving_object_detected() {
        let r = quiet_renderer();
        let mut bm = BlockMatcher::new(FlowParams::default());
        let a = GtObject::new(1, Rect::new(30, 30, 16, 24));
        let b = GtObject::new(1, Rect::new(33, 30, 16, 24)); // moved 3 px
        let _ = bm.apply(&r.render(0, &[a]));
        let mask = bm.apply(&r.render(0, &[b]));
        // Motion should appear around the object.
        let mut hits = 0;
        for y in 28..56 {
            for x in 28..52 {
                if mask.get(x, y) {
                    hits += 1;
                }
            }
        }
        assert!(hits > 100, "only {hits} motion pixels near the mover");
    }

    #[test]
    fn appearing_object_detected_via_residual() {
        let r = quiet_renderer();
        let mut bm = BlockMatcher::new(FlowParams::default());
        let _ = bm.apply(&r.render(0, &[]));
        let obj = GtObject::new(2, Rect::new(60, 40, 20, 30));
        let mask = bm.apply(&r.render(0, &[obj]));
        assert!(
            mask.count_set() > 0,
            "a newly appeared object must trigger the residual path"
        );
    }

    #[test]
    fn resolution_change_resets_cleanly() {
        let r1 = quiet_renderer();
        let r2 = FrameRenderer::new(5, Size::new(64, 48), 1.0);
        let mut bm = BlockMatcher::new(FlowParams::default());
        let _ = bm.apply(&r1.render(0, &[]));
        // Different size: must not panic, returns empty mask.
        let mask = bm.apply(&r2.render(0, &[]));
        assert_eq!(mask.count_set(), 0);
    }
}
