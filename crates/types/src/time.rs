//! Simulated time.
//!
//! The whole reproduction runs on a deterministic simulated clock:
//! [`SimTime`] is an instant (microseconds since simulation start) and
//! [`SimDuration`] a span. Microsecond resolution comfortably covers
//! everything the paper measures (network transfers, GPU inference in the
//! tens-to-hundreds of milliseconds, SLOs around one second).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A span of simulated time with microsecond resolution.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration {
    micros: u64,
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration { micros: 0 };

    /// Creates a duration from whole microseconds.
    #[must_use]
    pub const fn from_micros(micros: u64) -> Self {
        Self { micros }
    }

    /// Creates a duration from whole milliseconds.
    #[must_use]
    pub const fn from_millis(millis: u64) -> Self {
        Self {
            micros: millis * 1_000,
        }
    }

    /// Creates a duration from whole seconds.
    #[must_use]
    pub const fn from_secs(secs: u64) -> Self {
        Self {
            micros: secs * 1_000_000,
        }
    }

    /// Creates a duration from fractional seconds, rounding to the nearest
    /// microsecond. Negative inputs clamp to zero.
    ///
    /// ```
    /// # use tangram_types::time::SimDuration;
    /// assert_eq!(SimDuration::from_secs_f64(0.5), SimDuration::from_millis(500));
    /// assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
    /// ```
    #[must_use]
    pub fn from_secs_f64(secs: f64) -> Self {
        if !secs.is_finite() || secs <= 0.0 {
            return Self::ZERO;
        }
        Self {
            micros: (secs * 1.0e6).round() as u64,
        }
    }

    /// Creates a duration from fractional milliseconds (clamped at zero).
    #[must_use]
    pub fn from_millis_f64(millis: f64) -> Self {
        Self::from_secs_f64(millis / 1.0e3)
    }

    /// Whole microseconds.
    #[must_use]
    pub const fn as_micros(&self) -> u64 {
        self.micros
    }

    /// Whole milliseconds (truncated).
    #[must_use]
    pub const fn as_millis(&self) -> u64 {
        self.micros / 1_000
    }

    /// Fractional seconds.
    #[must_use]
    pub fn as_secs_f64(&self) -> f64 {
        self.micros as f64 / 1.0e6
    }

    /// Fractional milliseconds.
    #[must_use]
    pub fn as_millis_f64(&self) -> f64 {
        self.micros as f64 / 1.0e3
    }

    /// `true` when the duration is zero.
    #[must_use]
    pub const fn is_zero(&self) -> bool {
        self.micros == 0
    }

    /// Subtraction that stops at zero instead of underflowing.
    #[must_use]
    pub const fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration {
            micros: self.micros.saturating_sub(rhs.micros),
        }
    }

    /// Checked subtraction.
    #[must_use]
    pub const fn checked_sub(self, rhs: SimDuration) -> Option<SimDuration> {
        match self.micros.checked_sub(rhs.micros) {
            Some(micros) => Some(SimDuration { micros }),
            None => None,
        }
    }

    /// Multiplies by a non-negative float, rounding to microseconds.
    #[must_use]
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        SimDuration::from_secs_f64(self.as_secs_f64() * factor)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.micros >= 1_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.micros >= 1_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else {
            write!(f, "{}us", self.micros)
        }
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration {
            micros: self.micros + rhs.micros,
        }
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.micros += rhs.micros;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration {
            micros: self
                .micros
                .checked_sub(rhs.micros)
                .expect("SimDuration subtraction underflow"),
        }
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration {
            micros: self.micros * rhs,
        }
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration {
            micros: self.micros / rhs,
        }
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, Add::add)
    }
}

/// An instant on the simulated clock (microseconds since simulation start).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime {
    micros: u64,
}

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime { micros: 0 };
    /// The far future — useful as an "never fires" sentinel deadline.
    pub const MAX: SimTime = SimTime { micros: u64::MAX };

    /// Creates an instant from whole microseconds since the epoch.
    #[must_use]
    pub const fn from_micros(micros: u64) -> Self {
        Self { micros }
    }

    /// Creates an instant from fractional seconds since the epoch.
    #[must_use]
    pub fn from_secs_f64(secs: f64) -> Self {
        SimTime::ZERO + SimDuration::from_secs_f64(secs)
    }

    /// Microseconds since the epoch.
    #[must_use]
    pub const fn as_micros(&self) -> u64 {
        self.micros
    }

    /// Fractional seconds since the epoch.
    #[must_use]
    pub fn as_secs_f64(&self) -> f64 {
        self.micros as f64 / 1.0e6
    }

    /// Time elapsed since `earlier`, saturating at zero if `earlier` is in
    /// the future.
    ///
    /// ```
    /// # use tangram_types::time::{SimDuration, SimTime};
    /// let t0 = SimTime::from_micros(10);
    /// let t1 = SimTime::from_micros(25);
    /// assert_eq!(t1.since(t0), SimDuration::from_micros(15));
    /// assert_eq!(t0.since(t1), SimDuration::ZERO);
    /// ```
    #[must_use]
    pub const fn since(&self, earlier: SimTime) -> SimDuration {
        SimDuration::from_micros(self.micros.saturating_sub(earlier.micros))
    }

    /// Exact difference; `None` when `earlier` is after `self`.
    #[must_use]
    pub const fn checked_since(&self, earlier: SimTime) -> Option<SimDuration> {
        match self.micros.checked_sub(earlier.micros) {
            Some(m) => Some(SimDuration::from_micros(m)),
            None => None,
        }
    }

    /// The later of two instants.
    #[must_use]
    pub fn max(self, other: SimTime) -> SimTime {
        if self.micros >= other.micros {
            self
        } else {
            other
        }
    }

    /// The earlier of two instants.
    #[must_use]
    pub fn min(self, other: SimTime) -> SimTime {
        if self.micros <= other.micros {
            self
        } else {
            other
        }
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime {
            micros: self.micros.saturating_add(rhs.as_micros()),
        }
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime {
            micros: self
                .micros
                .checked_sub(rhs.as_micros())
                .expect("SimTime subtraction underflow"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(
            SimDuration::from_millis(1500),
            SimDuration::from_micros(1_500_000)
        );
        assert_eq!(SimDuration::from_secs(2), SimDuration::from_millis(2000));
        assert_eq!(
            SimDuration::from_secs_f64(1.5),
            SimDuration::from_millis(1500)
        );
    }

    #[test]
    fn duration_float_roundtrip() {
        let d = SimDuration::from_secs_f64(0.123456);
        assert!((d.as_secs_f64() - 0.123456).abs() < 1e-9);
        assert!((d.as_millis_f64() - 123.456).abs() < 1e-6);
    }

    #[test]
    fn duration_nan_clamps_to_zero() {
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(
            SimDuration::from_secs_f64(f64::NEG_INFINITY),
            SimDuration::ZERO
        );
    }

    #[test]
    fn duration_arithmetic() {
        let a = SimDuration::from_millis(100);
        let b = SimDuration::from_millis(30);
        assert_eq!(a + b, SimDuration::from_millis(130));
        assert_eq!(a - b, SimDuration::from_millis(70));
        assert_eq!(b.saturating_sub(a), SimDuration::ZERO);
        assert_eq!(a.checked_sub(b), Some(SimDuration::from_millis(70)));
        assert_eq!(b.checked_sub(a), None);
        assert_eq!(a * 3, SimDuration::from_millis(300));
        assert_eq!(a / 4, SimDuration::from_millis(25));
        assert_eq!(a.mul_f64(0.5), SimDuration::from_millis(50));
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn duration_sub_panics_on_underflow() {
        let _ = SimDuration::from_millis(1) - SimDuration::from_millis(2);
    }

    #[test]
    fn duration_sum() {
        let total: SimDuration = (1..=4).map(SimDuration::from_millis).sum();
        assert_eq!(total, SimDuration::from_millis(10));
    }

    #[test]
    fn duration_display_scales_units() {
        assert_eq!(SimDuration::from_micros(12).to_string(), "12us");
        assert_eq!(SimDuration::from_micros(1_500).to_string(), "1.500ms");
        assert_eq!(SimDuration::from_millis(2_250).to_string(), "2.250s");
    }

    #[test]
    fn time_advances_and_measures() {
        let mut t = SimTime::ZERO;
        t += SimDuration::from_millis(250);
        assert_eq!(t.as_micros(), 250_000);
        assert_eq!(t.since(SimTime::ZERO), SimDuration::from_millis(250));
        assert_eq!(t.checked_since(SimTime::from_micros(300_000)), None);
    }

    #[test]
    fn time_min_max() {
        let a = SimTime::from_micros(5);
        let b = SimTime::from_micros(9);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }

    #[test]
    fn time_add_saturates_at_max() {
        let t = SimTime::MAX + SimDuration::from_secs(1);
        assert_eq!(t, SimTime::MAX);
    }
}
