//! Core data model shared by every crate in the Tangram reproduction.
//!
//! This crate deliberately contains no behaviour beyond plain data types and
//! their arithmetic: pixel-space [`geometry`], id newtypes ([`ids`]),
//! simulated [`time`], measurement [`units`], the patch/canvas/batch
//! [`patch`] model that flows from edge cameras to the cloud scheduler,
//! and the shard [`credit`] protocol's shared constants (one vocabulary
//! for the runtime and its model checker).
//!
//! # Example
//!
//! ```
//! use tangram_types::geometry::Rect;
//! use tangram_types::time::{SimDuration, SimTime};
//!
//! let roi = Rect::new(100, 200, 64, 48);
//! let zone = Rect::new(0, 0, 1920, 1080);
//! assert_eq!(roi.overlap_area(&zone), 64 * 48);
//!
//! let generated = SimTime::ZERO + SimDuration::from_millis(33);
//! let deadline = generated + SimDuration::from_secs_f64(1.0);
//! assert!(deadline > generated);
//! ```

pub mod credit;
pub mod error;
pub mod geometry;
pub mod ids;
pub mod patch;
pub mod time;
pub mod units;

pub use error::ValidationError;
pub use geometry::{Point, Rect, Size};
pub use ids::{BatchId, CameraId, CanvasId, FrameId, InstanceId, InvocationId, PatchId, SceneId};
pub use patch::{Patch, PatchInfo};
pub use time::{SimDuration, SimTime};
pub use units::{Bandwidth, Bytes, Dollars, GigaBytes};
