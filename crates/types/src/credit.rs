//! The shard credit protocol's shared, model-readable surface.
//!
//! `crates/core/src/shard.rs` (the production sharded runtime) and
//! `crates/model` (the bounded schedule explorer) must agree on the
//! credit protocol's constants and parameter space: the runtime runs
//! one concrete configuration, the model checker proves the protocol's
//! safety properties — deadlock-freedom, lost-wakeup-freedom, bounded
//! queue occupancy and merge-order invariance — across *every* thread
//! interleaving of a family of small configurations. Keeping the shared
//! vocabulary here (layer 0, no behaviour) lets both sides depend on it
//! without `model` ever touching the runtime crates.
//!
//! # The protocol, in one paragraph
//!
//! Each shard thread pre-computes captures for its disjoint camera set
//! and sends them coordinator-ward over an MPMC channel; a credit
//! channel flows the other way. A shard takes one credit *before*
//! producing each capture, and the coordinator returns one credit per
//! message it pulls off the channel — even when the message is buffered
//! for a different camera — so a shard runs at most
//! [`CREDIT_WINDOW`] captures ahead and the data queue's occupancy
//! never exceeds the window. Shutdown closes the credit channel first,
//! so a shard blocked on a credit wakes with a disconnect and exits.

/// How many captures a shard may run ahead of the coordinator.
///
/// This is the production window ([`crate::credit`] is the single
/// source of truth; `crates/core/src/shard.rs` imports it). The model
/// checker proves the protocol safe for every window in
/// [`MODEL_WINDOWS`]; the protocol's state machines are
/// window-oblivious — the window only sizes the initial credit grant —
/// so the small-window proofs cover the production value's control
/// structure, and the `CREDIT_WINDOW=1` end-to-end regression pins the
/// tightest configuration byte-identically to the 1-shard oracle.
pub const CREDIT_WINDOW: usize = 1024;

/// The credit windows the model checker sweeps exhaustively.
pub const MODEL_WINDOWS: [usize; 3] = [1, 2, 3];

/// The shard counts the model checker sweeps exhaustively.
pub const MODEL_SHARDS: [usize; 3] = [1, 2, 3];

/// One shard-plane configuration: how many worker threads, and how far
/// each may run ahead of the coordinator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CreditConfig {
    /// Worker-thread count (1 = fully inline, the oracle).
    pub shards: usize,
    /// Per-shard credit window (≥ 1).
    pub window: usize,
}

impl CreditConfig {
    /// The production configuration for `shards` workers.
    #[must_use]
    pub fn production(shards: usize) -> CreditConfig {
        CreditConfig {
            shards: shards.max(1),
            window: CREDIT_WINDOW,
        }
    }

    /// The same shard count with the minimum legal window — the
    /// tightest flow control the protocol supports, exercised by the
    /// `CREDIT_WINDOW=1` regression suite.
    #[must_use]
    pub fn minimum_window(self) -> CreditConfig {
        CreditConfig {
            shards: self.shards,
            window: 1,
        }
    }
}

impl Default for CreditConfig {
    fn default() -> CreditConfig {
        CreditConfig::production(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn production_window_is_positive_and_covers_model_windows() {
        assert_ne!(CREDIT_WINDOW, 0);
        for w in MODEL_WINDOWS {
            assert!((1..=CREDIT_WINDOW).contains(&w));
        }
    }

    #[test]
    fn minimum_window_keeps_the_shard_count() {
        let cfg = CreditConfig::production(8).minimum_window();
        assert_eq!(cfg.shards, 8);
        assert_eq!(cfg.window, 1);
    }
}
