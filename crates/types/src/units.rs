//! Measurement units: data volume, link bandwidth, money, and memory.
//!
//! Newtypes keep the cost model honest — dollars can't be added to
//! gigabytes, and link bandwidth converts to transfer time in exactly one
//! place.

use crate::time::SimDuration;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Mul, Sub};

/// A number of bytes (payload size of a frame, patch or message).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Bytes(pub u64);

impl Bytes {
    /// Zero bytes.
    pub const ZERO: Bytes = Bytes(0);

    /// From a raw byte count.
    #[must_use]
    pub const fn new(bytes: u64) -> Self {
        Bytes(bytes)
    }

    /// From kibibytes.
    #[must_use]
    pub const fn from_kib(kib: u64) -> Self {
        Bytes(kib * 1024)
    }

    /// From mebibytes.
    #[must_use]
    pub const fn from_mib(mib: u64) -> Self {
        Bytes(mib * 1024 * 1024)
    }

    /// Raw byte count.
    #[must_use]
    pub const fn get(self) -> u64 {
        self.0
    }

    /// As fractional kibibytes.
    #[must_use]
    pub fn as_kib_f64(self) -> f64 {
        self.0 as f64 / 1024.0
    }

    /// As fractional mebibytes.
    #[must_use]
    pub fn as_mib_f64(self) -> f64 {
        self.0 as f64 / (1024.0 * 1024.0)
    }
}

impl fmt::Display for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1024 * 1024 {
            write!(f, "{:.2}MiB", self.as_mib_f64())
        } else if self.0 >= 1024 {
            write!(f, "{:.2}KiB", self.as_kib_f64())
        } else {
            write!(f, "{}B", self.0)
        }
    }
}

impl Add for Bytes {
    type Output = Bytes;
    fn add(self, rhs: Bytes) -> Bytes {
        Bytes(self.0 + rhs.0)
    }
}

impl AddAssign for Bytes {
    fn add_assign(&mut self, rhs: Bytes) {
        self.0 += rhs.0;
    }
}

impl Sub for Bytes {
    type Output = Bytes;
    fn sub(self, rhs: Bytes) -> Bytes {
        Bytes(self.0.saturating_sub(rhs.0))
    }
}

impl Sum for Bytes {
    fn sum<I: Iterator<Item = Bytes>>(iter: I) -> Bytes {
        iter.fold(Bytes::ZERO, Add::add)
    }
}

/// Link bandwidth. Stored in bits per second; the paper's experiments use
/// 20, 40 and 80 Mbps uplinks.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct Bandwidth {
    bits_per_sec: f64,
}

impl Bandwidth {
    /// From megabits per second (the unit used throughout the paper).
    ///
    /// # Panics
    ///
    /// Panics if `mbps` is not finite and positive.
    #[must_use]
    pub fn from_mbps(mbps: f64) -> Self {
        assert!(
            mbps.is_finite() && mbps > 0.0,
            "bandwidth must be positive, got {mbps}"
        );
        Self {
            bits_per_sec: mbps * 1.0e6,
        }
    }

    /// Megabits per second.
    #[must_use]
    pub fn as_mbps(&self) -> f64 {
        self.bits_per_sec / 1.0e6
    }

    /// Bytes transferable per second.
    #[must_use]
    pub fn bytes_per_sec(&self) -> f64 {
        self.bits_per_sec / 8.0
    }

    /// Time to serialise `payload` onto the wire at this rate.
    ///
    /// ```
    /// # use tangram_types::units::{Bandwidth, Bytes};
    /// let bw = Bandwidth::from_mbps(80.0);
    /// // 1 MB at 80 Mbps = 0.1 s.
    /// let t = bw.transmission_time(Bytes::new(1_000_000));
    /// assert!((t.as_secs_f64() - 0.1).abs() < 1e-9);
    /// ```
    #[must_use]
    pub fn transmission_time(&self, payload: Bytes) -> SimDuration {
        SimDuration::from_secs_f64(payload.get() as f64 / self.bytes_per_sec())
    }
}

impl fmt::Display for Bandwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.0}Mbps", self.as_mbps())
    }
}

/// US dollars, the unit of the Alibaba Function Compute cost model (Eqn. 1).
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Dollars(pub f64);

impl Dollars {
    /// Zero cost.
    pub const ZERO: Dollars = Dollars(0.0);

    /// Wraps a dollar amount.
    #[must_use]
    pub const fn new(amount: f64) -> Self {
        Dollars(amount)
    }

    /// The raw amount.
    #[must_use]
    pub const fn get(self) -> f64 {
        self.0
    }
}

impl fmt::Display for Dollars {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "${:.6}", self.0)
    }
}

impl Add for Dollars {
    type Output = Dollars;
    fn add(self, rhs: Dollars) -> Dollars {
        Dollars(self.0 + rhs.0)
    }
}

impl AddAssign for Dollars {
    fn add_assign(&mut self, rhs: Dollars) {
        self.0 += rhs.0;
    }
}

impl Sub for Dollars {
    type Output = Dollars;
    fn sub(self, rhs: Dollars) -> Dollars {
        Dollars(self.0 - rhs.0)
    }
}

impl Mul<f64> for Dollars {
    type Output = Dollars;
    fn mul(self, rhs: f64) -> Dollars {
        Dollars(self.0 * rhs)
    }
}

impl Sum for Dollars {
    fn sum<I: Iterator<Item = Dollars>>(iter: I) -> Dollars {
        iter.fold(Dollars::ZERO, Add::add)
    }
}

/// Memory measured in gigabytes (function RAM and GPU VRAM allocations).
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct GigaBytes(pub f64);

impl GigaBytes {
    /// Zero memory.
    pub const ZERO: GigaBytes = GigaBytes(0.0);

    /// Wraps a GB amount.
    #[must_use]
    pub const fn new(gb: f64) -> Self {
        GigaBytes(gb)
    }

    /// Raw GB value.
    #[must_use]
    pub const fn get(self) -> f64 {
        self.0
    }
}

impl fmt::Display for GigaBytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2}GB", self.0)
    }
}

impl Add for GigaBytes {
    type Output = GigaBytes;
    fn add(self, rhs: GigaBytes) -> GigaBytes {
        GigaBytes(self.0 + rhs.0)
    }
}

impl AddAssign for GigaBytes {
    fn add_assign(&mut self, rhs: GigaBytes) {
        self.0 += rhs.0;
    }
}

impl Sub for GigaBytes {
    type Output = GigaBytes;
    fn sub(self, rhs: GigaBytes) -> GigaBytes {
        GigaBytes(self.0 - rhs.0)
    }
}

impl Mul<f64> for GigaBytes {
    type Output = GigaBytes;
    fn mul(self, rhs: f64) -> GigaBytes {
        GigaBytes(self.0 * rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_constructors() {
        assert_eq!(Bytes::from_kib(2).get(), 2048);
        assert_eq!(Bytes::from_mib(1).get(), 1_048_576);
    }

    #[test]
    fn bytes_display_scales() {
        assert_eq!(Bytes::new(512).to_string(), "512B");
        assert_eq!(Bytes::from_kib(4).to_string(), "4.00KiB");
        assert_eq!(Bytes::from_mib(3).to_string(), "3.00MiB");
    }

    #[test]
    fn bytes_arithmetic_saturates() {
        assert_eq!(Bytes::new(10) - Bytes::new(20), Bytes::ZERO);
        let total: Bytes = [Bytes::new(1), Bytes::new(2)].into_iter().sum();
        assert_eq!(total, Bytes::new(3));
    }

    #[test]
    fn bandwidth_transfer_times() {
        // The paper's 20 Mbps uplink: a 2.5 MB 4K frame takes 1 s.
        let bw = Bandwidth::from_mbps(20.0);
        let t = bw.transmission_time(Bytes::new(2_500_000));
        assert!((t.as_secs_f64() - 1.0).abs() < 1e-9);
        assert!((bw.as_mbps() - 20.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn bandwidth_rejects_zero() {
        let _ = Bandwidth::from_mbps(0.0);
    }

    #[test]
    fn dollars_sum_and_scale() {
        let c = Dollars::new(0.5) + Dollars::new(0.25);
        assert!((c.get() - 0.75).abs() < 1e-12);
        assert!(((c * 2.0).get() - 1.5).abs() < 1e-12);
        let total: Dollars = vec![Dollars::new(0.1); 5].into_iter().sum();
        assert!((total.get() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn gigabytes_arithmetic() {
        let g = GigaBytes::new(6.0) - GigaBytes::new(1.5);
        assert!((g.get() - 4.5).abs() < 1e-12);
        assert_eq!(GigaBytes::new(2.0).to_string(), "2.00GB");
    }
}
