//! Validation errors for constructing domain values.

use std::error::Error;
use std::fmt;

/// Returned when a constructor receives arguments that violate a documented
/// invariant (empty canvas, zero zones, inconsistent configuration, …).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValidationError {
    what: String,
}

impl ValidationError {
    /// Creates an error describing the violated invariant.
    #[must_use]
    pub fn new(what: impl Into<String>) -> Self {
        Self { what: what.into() }
    }

    /// The invariant description.
    #[must_use]
    pub fn what(&self) -> &str {
        &self.what
    }
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid argument: {}", self.what)
    }
}

impl Error for ValidationError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_reason() {
        let e = ValidationError::new("canvas must be non-empty");
        assert_eq!(e.to_string(), "invalid argument: canvas must be non-empty");
        assert_eq!(e.what(), "canvas must be non-empty");
    }

    #[test]
    fn is_send_sync_error() {
        fn assert_traits<T: Error + Send + Sync + 'static>() {}
        assert_traits::<ValidationError>();
    }
}
