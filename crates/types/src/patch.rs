//! The patch data model: what the edge uploads to the cloud scheduler.
//!
//! Per §III of the paper, the edge transmits each patch together with its
//! *generation time*, *size*, and *SLO*; the scheduler derives the deadline
//! `t_ddl = generation time + SLO` and uses the patch dimensions for
//! stitching. The pixel payload itself never influences scheduling, so this
//! crate carries only its encoded size; rasters travel separately in the
//! accuracy pipeline.

use crate::geometry::{Rect, Size};
use crate::ids::{CameraId, FrameId, PatchId};
use crate::time::{SimDuration, SimTime};
use crate::units::Bytes;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Metadata describing one patch (the `P_i = {w_i, h_i, t_ddl_i}` record of
/// Algorithm 2, extended with provenance).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PatchInfo {
    /// Unique patch id.
    pub id: PatchId,
    /// Camera that produced the source frame.
    pub camera: CameraId,
    /// Source frame within that camera's stream.
    pub frame: FrameId,
    /// Position of the patch inside the source frame (logical 4K coords).
    pub rect: Rect,
    /// Moment the source frame was captured; the SLO countdown starts here.
    pub generated_at: SimTime,
    /// End-to-end latency budget for this patch.
    pub slo: SimDuration,
}

impl PatchInfo {
    /// Creates patch metadata.
    #[must_use]
    pub fn new(
        id: PatchId,
        camera: CameraId,
        frame: FrameId,
        rect: Rect,
        generated_at: SimTime,
        slo: SimDuration,
    ) -> Self {
        Self {
            id,
            camera,
            frame,
            rect,
            generated_at,
            slo,
        }
    }

    /// Width × height of the patch.
    #[must_use]
    pub fn size(&self) -> Size {
        self.rect.size()
    }

    /// The absolute deadline `t_ddl = generated_at + SLO`.
    ///
    /// ```
    /// # use tangram_types::{geometry::Rect, patch::PatchInfo};
    /// # use tangram_types::ids::{CameraId, FrameId, PatchId};
    /// # use tangram_types::time::{SimDuration, SimTime};
    /// let p = PatchInfo::new(
    ///     PatchId::new(0), CameraId::new(0), FrameId::new(0),
    ///     Rect::new(0, 0, 64, 64),
    ///     SimTime::from_micros(1_000_000),
    ///     SimDuration::from_secs(1),
    /// );
    /// assert_eq!(p.deadline(), SimTime::from_micros(2_000_000));
    /// ```
    #[must_use]
    pub fn deadline(&self) -> SimTime {
        self.generated_at + self.slo
    }

    /// How long the patch has been waiting at `now` (`T_{i,wait}` in
    /// constraint (6) of the batching problem).
    #[must_use]
    pub fn waiting_time(&self, now: SimTime) -> SimDuration {
        now.since(self.generated_at)
    }

    /// Remaining budget before the deadline; zero if already violated.
    #[must_use]
    pub fn remaining_budget(&self, now: SimTime) -> SimDuration {
        self.deadline().since(now)
    }

    /// Whether completing at `finish` would violate the SLO.
    #[must_use]
    pub fn violates_slo(&self, finish: SimTime) -> bool {
        finish > self.deadline()
    }
}

impl fmt::Display for PatchInfo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {}@{} rect={} slo={}",
            self.id, self.camera, self.frame, self.rect, self.slo
        )
    }
}

/// A patch as transmitted over the uplink: metadata plus the encoded
/// payload size (the raster content is modelled, not carried).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Patch {
    /// Scheduling metadata.
    pub info: PatchInfo,
    /// Encoded (compressed) size on the wire.
    pub encoded_size: Bytes,
}

impl Patch {
    /// Pairs metadata with an encoded payload size.
    #[must_use]
    pub fn new(info: PatchInfo, encoded_size: Bytes) -> Self {
        Self { info, encoded_size }
    }

    /// Shorthand for the patch id.
    #[must_use]
    pub fn id(&self) -> PatchId {
        self.info.id
    }

    /// Shorthand for the patch extent.
    #[must_use]
    pub fn size(&self) -> Size {
        self.info.size()
    }

    /// Raw pixel area of the patch.
    #[must_use]
    pub fn area(&self) -> u64 {
        self.info.rect.area()
    }
}

impl fmt::Display for Patch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.info, self.encoded_size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn patch_at(gen_us: u64, slo_ms: u64) -> PatchInfo {
        PatchInfo::new(
            PatchId::new(7),
            CameraId::new(1),
            FrameId::new(3),
            Rect::new(10, 20, 100, 50),
            SimTime::from_micros(gen_us),
            SimDuration::from_millis(slo_ms),
        )
    }

    #[test]
    fn deadline_is_generation_plus_slo() {
        let p = patch_at(500_000, 1000);
        assert_eq!(p.deadline(), SimTime::from_micros(1_500_000));
    }

    #[test]
    fn waiting_and_budget() {
        let p = patch_at(0, 1000);
        let now = SimTime::from_micros(400_000);
        assert_eq!(p.waiting_time(now), SimDuration::from_millis(400));
        assert_eq!(p.remaining_budget(now), SimDuration::from_millis(600));
    }

    #[test]
    fn budget_saturates_after_deadline() {
        let p = patch_at(0, 100);
        let late = SimTime::from_micros(500_000);
        assert_eq!(p.remaining_budget(late), SimDuration::ZERO);
        assert!(p.violates_slo(late));
        assert!(!p.violates_slo(SimTime::from_micros(100_000)));
    }

    #[test]
    fn patch_accessors() {
        let p = Patch::new(patch_at(0, 1000), Bytes::from_kib(12));
        assert_eq!(p.id(), PatchId::new(7));
        assert_eq!(p.size(), Size::new(100, 50));
        assert_eq!(p.area(), 5000);
        assert_eq!(p.encoded_size, Bytes::from_kib(12));
    }
}
