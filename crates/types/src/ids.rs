//! Strongly-typed identifiers for every entity in the system.
//!
//! Newtypes prevent, e.g., a `FrameId` from being used where a `PatchId` is
//! expected (C-NEWTYPE). All ids are cheap `Copy` integers with sequential
//! allocation helpers.

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! define_id {
    ($(#[$meta:meta])* $name:ident, $inner:ty, $prefix:literal) => {
        $(#[$meta])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default,
            Serialize, Deserialize,
        )]
        pub struct $name(pub $inner);

        impl $name {
            /// Wraps a raw integer id.
            #[must_use]
            pub const fn new(raw: $inner) -> Self {
                Self(raw)
            }

            /// The raw integer value.
            #[must_use]
            pub const fn raw(self) -> $inner {
                self.0
            }

            /// Returns the current id and advances `self` to the next one —
            /// a tiny allocator for sequential ids.
            pub fn bump(&mut self) -> Self {
                let current = *self;
                self.0 += 1;
                current
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<$inner> for $name {
            fn from(raw: $inner) -> Self {
                Self(raw)
            }
        }
    };
}

define_id!(
    /// An edge camera (one per video source).
    CameraId, u32, "cam-"
);
define_id!(
    /// A frame within a camera's stream.
    FrameId, u64, "frame-"
);
define_id!(
    /// A patch cut from a frame by the adaptive partitioning algorithm.
    PatchId, u64, "patch-"
);
define_id!(
    /// A canvas assembled by the patch-stitching solver.
    CanvasId, u64, "canvas-"
);
define_id!(
    /// A batch of canvases dispatched in one serverless invocation.
    BatchId, u64, "batch-"
);
define_id!(
    /// One serverless function invocation.
    InvocationId, u64, "invoke-"
);
define_id!(
    /// A serverless function instance (container).
    InstanceId, u32, "inst-"
);

/// One of the ten PANDA-style evaluation scenes (1-based, matching the
/// paper's `scene_01`..`scene_10`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SceneId(u8);

impl SceneId {
    /// Number of scenes in the PANDA4K evaluation set.
    pub const COUNT: u8 = 10;

    /// Creates a scene id; `index` must be in `1..=10`.
    ///
    /// # Panics
    ///
    /// Panics when `index` is outside `1..=10`.
    #[must_use]
    pub fn new(index: u8) -> Self {
        assert!(
            (1..=Self::COUNT).contains(&index),
            "scene index {index} outside 1..=10"
        );
        Self(index)
    }

    /// 1-based index as used by the paper's scene names.
    #[must_use]
    pub const fn index(self) -> u8 {
        self.0
    }

    /// 0-based index for array lookups.
    #[must_use]
    pub const fn array_index(self) -> usize {
        (self.0 - 1) as usize
    }

    /// Iterates over all ten scenes in order.
    pub fn all() -> impl Iterator<Item = SceneId> {
        (1..=Self::COUNT).map(SceneId)
    }
}

impl Default for SceneId {
    fn default() -> Self {
        SceneId(1)
    }
}

impl fmt::Display for SceneId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "scene_{:02}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bump_allocates_sequentially() {
        let mut next = PatchId::default();
        assert_eq!(next.bump(), PatchId::new(0));
        assert_eq!(next.bump(), PatchId::new(1));
        assert_eq!(next, PatchId::new(2));
    }

    #[test]
    fn display_uses_prefix() {
        assert_eq!(CameraId::new(3).to_string(), "cam-3");
        assert_eq!(BatchId::new(12).to_string(), "batch-12");
    }

    #[test]
    fn scene_id_formats_like_paper() {
        assert_eq!(SceneId::new(1).to_string(), "scene_01");
        assert_eq!(SceneId::new(10).to_string(), "scene_10");
    }

    #[test]
    fn scene_all_is_ten_scenes() {
        let all: Vec<_> = SceneId::all().collect();
        assert_eq!(all.len(), 10);
        assert_eq!(all[0].index(), 1);
        assert_eq!(all[9].array_index(), 9);
    }

    #[test]
    #[should_panic(expected = "outside 1..=10")]
    fn scene_id_rejects_zero() {
        let _ = SceneId::new(0);
    }

    #[test]
    fn ids_are_ordered() {
        assert!(FrameId::new(1) < FrameId::new(2));
    }
}
