//! Pixel-space geometry used throughout the pipeline.
//!
//! All coordinates live in the *logical* frame space of a camera (e.g.
//! 3840×2160 for 4K), with the origin at the top-left corner, `x` growing
//! right and `y` growing down. Rectangles are half-open: a rectangle with
//! `x = 0, width = 10` covers pixel columns `0..10`.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A pixel position in frame coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct Point {
    /// Horizontal coordinate (pixels from the left edge).
    pub x: u32,
    /// Vertical coordinate (pixels from the top edge).
    pub y: u32,
}

impl Point {
    /// Creates a new point.
    ///
    /// ```
    /// # use tangram_types::geometry::Point;
    /// let p = Point::new(3, 4);
    /// assert_eq!((p.x, p.y), (3, 4));
    /// ```
    #[must_use]
    pub const fn new(x: u32, y: u32) -> Self {
        Self { x, y }
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

/// A width × height extent in pixels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct Size {
    /// Width in pixels.
    pub width: u32,
    /// Height in pixels.
    pub height: u32,
}

impl Size {
    /// 4K UHD resolution (3840×2160), the resolution of the PANDA4K frames
    /// used throughout the paper's evaluation.
    pub const UHD_4K: Size = Size::new(3840, 2160);
    /// The default canvas size used by the paper (1024×1024).
    pub const CANVAS_1024: Size = Size::new(1024, 1024);

    /// Creates a new size.
    #[must_use]
    pub const fn new(width: u32, height: u32) -> Self {
        Self { width, height }
    }

    /// Total number of pixels.
    ///
    /// ```
    /// # use tangram_types::geometry::Size;
    /// assert_eq!(Size::new(1024, 1024).area(), 1 << 20);
    /// ```
    #[must_use]
    pub const fn area(&self) -> u64 {
        self.width as u64 * self.height as u64
    }

    /// Whether either dimension is zero.
    #[must_use]
    pub const fn is_empty(&self) -> bool {
        self.width == 0 || self.height == 0
    }

    /// Whether `other` fits inside `self` without rotation.
    ///
    /// ```
    /// # use tangram_types::geometry::Size;
    /// assert!(Size::new(100, 100).fits(Size::new(100, 40)));
    /// assert!(!Size::new(100, 100).fits(Size::new(101, 1)));
    /// ```
    #[must_use]
    pub const fn fits(&self, other: Size) -> bool {
        self.width >= other.width && self.height >= other.height
    }

    /// Scales both dimensions by `factor`, rounding to the nearest pixel
    /// (minimum 1 in each dimension if the input was non-empty).
    #[must_use]
    pub fn scaled(&self, factor: f64) -> Size {
        debug_assert!(factor >= 0.0, "negative scale factor");
        let scale = |v: u32| -> u32 {
            if v == 0 {
                0
            } else {
                ((f64::from(v) * factor).round() as u32).max(1)
            }
        };
        Size::new(scale(self.width), scale(self.height))
    }

    /// Megapixels (10^6 pixels) as a float, handy for latency models.
    #[must_use]
    pub fn megapixels(&self) -> f64 {
        self.area() as f64 / 1.0e6
    }
}

impl fmt::Display for Size {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}", self.width, self.height)
    }
}

impl From<(u32, u32)> for Size {
    fn from((width, height): (u32, u32)) -> Self {
        Size::new(width, height)
    }
}

/// An axis-aligned rectangle in frame coordinates (half-open intervals).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct Rect {
    /// Left edge.
    pub x: u32,
    /// Top edge.
    pub y: u32,
    /// Width in pixels.
    pub width: u32,
    /// Height in pixels.
    pub height: u32,
}

impl Rect {
    /// Creates a rectangle from its top-left corner and extent.
    ///
    /// ```
    /// # use tangram_types::geometry::Rect;
    /// let r = Rect::new(10, 20, 30, 40);
    /// assert_eq!(r.right(), 40);
    /// assert_eq!(r.bottom(), 60);
    /// ```
    #[must_use]
    pub const fn new(x: u32, y: u32, width: u32, height: u32) -> Self {
        Self {
            x,
            y,
            width,
            height,
        }
    }

    /// A rectangle anchored at the origin covering the whole `size`.
    #[must_use]
    pub const fn from_size(size: Size) -> Self {
        Self::new(0, 0, size.width, size.height)
    }

    /// Builds the rectangle spanning the two corner points
    /// `(x0, y0)`..`(x1, y1)`; the corners may be given in any order.
    #[must_use]
    pub fn from_corners(a: Point, b: Point) -> Self {
        let x0 = a.x.min(b.x);
        let y0 = a.y.min(b.y);
        let x1 = a.x.max(b.x);
        let y1 = a.y.max(b.y);
        Rect::new(x0, y0, x1 - x0, y1 - y0)
    }

    /// The exclusive right edge (`x + width`).
    #[must_use]
    pub const fn right(&self) -> u32 {
        self.x + self.width
    }

    /// The exclusive bottom edge (`y + height`).
    #[must_use]
    pub const fn bottom(&self) -> u32 {
        self.y + self.height
    }

    /// Top-left corner.
    #[must_use]
    pub const fn origin(&self) -> Point {
        Point::new(self.x, self.y)
    }

    /// Extent of the rectangle.
    #[must_use]
    pub const fn size(&self) -> Size {
        Size::new(self.width, self.height)
    }

    /// Pixel area.
    #[must_use]
    pub const fn area(&self) -> u64 {
        self.size().area()
    }

    /// Whether the rectangle covers no pixels.
    #[must_use]
    pub const fn is_empty(&self) -> bool {
        self.size().is_empty()
    }

    /// Centre of the rectangle (rounded down).
    #[must_use]
    pub const fn center(&self) -> Point {
        Point::new(self.x + self.width / 2, self.y + self.height / 2)
    }

    /// Whether `p` lies inside the rectangle.
    ///
    /// ```
    /// # use tangram_types::geometry::{Point, Rect};
    /// let r = Rect::new(0, 0, 10, 10);
    /// assert!(r.contains_point(Point::new(9, 9)));
    /// assert!(!r.contains_point(Point::new(10, 0)));
    /// ```
    #[must_use]
    pub const fn contains_point(&self, p: Point) -> bool {
        p.x >= self.x && p.x < self.right() && p.y >= self.y && p.y < self.bottom()
    }

    /// Whether `other` lies entirely inside `self`.
    #[must_use]
    pub const fn contains_rect(&self, other: &Rect) -> bool {
        other.x >= self.x
            && other.y >= self.y
            && other.right() <= self.right()
            && other.bottom() <= self.bottom()
    }

    /// The overlapping region of two rectangles, if any.
    ///
    /// ```
    /// # use tangram_types::geometry::Rect;
    /// let a = Rect::new(0, 0, 10, 10);
    /// let b = Rect::new(5, 5, 10, 10);
    /// assert_eq!(a.intersect(&b), Some(Rect::new(5, 5, 5, 5)));
    /// assert_eq!(a.intersect(&Rect::new(10, 0, 5, 5)), None);
    /// ```
    #[must_use]
    pub fn intersect(&self, other: &Rect) -> Option<Rect> {
        let x0 = self.x.max(other.x);
        let y0 = self.y.max(other.y);
        let x1 = self.right().min(other.right());
        let y1 = self.bottom().min(other.bottom());
        if x0 < x1 && y0 < y1 {
            Some(Rect::new(x0, y0, x1 - x0, y1 - y0))
        } else {
            None
        }
    }

    /// Area of the overlap between two rectangles (`S_{b,r}` in Algorithm 1
    /// of the paper: the quantity used to affiliate an RoI with a zone).
    #[must_use]
    pub fn overlap_area(&self, other: &Rect) -> u64 {
        self.intersect(other).map_or(0, |r| r.area())
    }

    /// Whether the two rectangles share at least one pixel.
    #[must_use]
    pub fn intersects(&self, other: &Rect) -> bool {
        self.overlap_area(other) > 0
    }

    /// The minimum rectangle enclosing both inputs.
    ///
    /// ```
    /// # use tangram_types::geometry::Rect;
    /// let a = Rect::new(0, 0, 2, 2);
    /// let b = Rect::new(8, 8, 2, 2);
    /// assert_eq!(a.union(&b), Rect::new(0, 0, 10, 10));
    /// ```
    #[must_use]
    pub fn union(&self, other: &Rect) -> Rect {
        if self.is_empty() {
            return *other;
        }
        if other.is_empty() {
            return *self;
        }
        let x0 = self.x.min(other.x);
        let y0 = self.y.min(other.y);
        let x1 = self.right().max(other.right());
        let y1 = self.bottom().max(other.bottom());
        Rect::new(x0, y0, x1 - x0, y1 - y0)
    }

    /// The minimum rectangle enclosing every rectangle in `rects`
    /// (used by Algorithm 1 step 3: "resize each zone to the minimum
    /// enclosing rectangle that covers all the RoIs").
    ///
    /// Returns `None` for an empty iterator.
    #[must_use]
    pub fn enclosing<'a, I: IntoIterator<Item = &'a Rect>>(rects: I) -> Option<Rect> {
        let mut it = rects.into_iter();
        let first = *it.next()?;
        Some(it.fold(first, |acc, r| acc.union(r)))
    }

    /// Intersection-over-union of two boxes, the standard detection
    /// matching criterion (AP@0.5 uses `iou >= 0.5`).
    ///
    /// ```
    /// # use tangram_types::geometry::Rect;
    /// let a = Rect::new(0, 0, 10, 10);
    /// assert!((a.iou(&a) - 1.0).abs() < 1e-12);
    /// assert_eq!(a.iou(&Rect::new(20, 20, 5, 5)), 0.0);
    /// ```
    #[must_use]
    pub fn iou(&self, other: &Rect) -> f64 {
        let inter = self.overlap_area(other);
        if inter == 0 {
            return 0.0;
        }
        let union = self.area() + other.area() - inter;
        inter as f64 / union as f64
    }

    /// Clamps the rectangle so it lies within `bounds`; returns `None` when
    /// nothing remains.
    #[must_use]
    pub fn clamped(&self, bounds: &Rect) -> Option<Rect> {
        self.intersect(bounds)
    }

    /// Translates the rectangle by `(dx, dy)` using saturating arithmetic on
    /// the negative side.
    #[must_use]
    pub fn translated(&self, dx: i64, dy: i64) -> Rect {
        let x = (i64::from(self.x) + dx).max(0) as u32;
        let y = (i64::from(self.y) + dy).max(0) as u32;
        Rect::new(x, y, self.width, self.height)
    }

    /// Scales position and extent by `factor` (used to map RoIs detected on
    /// a downscaled raster back to logical 4K coordinates).
    #[must_use]
    pub fn scaled(&self, factor: f64) -> Rect {
        debug_assert!(factor >= 0.0, "negative scale factor");
        let sz = self.size().scaled(factor);
        Rect::new(
            (f64::from(self.x) * factor).round() as u32,
            (f64::from(self.y) * factor).round() as u32,
            sz.width,
            sz.height,
        )
    }

    /// Grows the rectangle by `margin` pixels on every side, clamped to
    /// `bounds` (used to pad RoIs before partitioning).
    #[must_use]
    pub fn inflated(&self, margin: u32, bounds: &Rect) -> Rect {
        let x0 = self.x.saturating_sub(margin).max(bounds.x);
        let y0 = self.y.saturating_sub(margin).max(bounds.y);
        let x1 = (self.right() + margin).min(bounds.right());
        let y1 = (self.bottom() + margin).min(bounds.bottom());
        Rect::new(x0, y0, x1.saturating_sub(x0), y1.saturating_sub(y0))
    }
}

impl fmt::Display for Rect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{},{} {}x{}]", self.x, self.y, self.width, self.height)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_display() {
        assert_eq!(Point::new(1, 2).to_string(), "(1, 2)");
    }

    #[test]
    fn size_area_and_fits() {
        let s = Size::new(3840, 2160);
        assert_eq!(s.area(), 8_294_400);
        assert!(s.fits(Size::new(1024, 1024)));
        assert!(!Size::new(100, 100).fits(s));
        assert!((s.megapixels() - 8.2944).abs() < 1e-9);
    }

    #[test]
    fn size_scaled_rounds_and_keeps_nonzero() {
        assert_eq!(Size::new(10, 10).scaled(0.25), Size::new(3, 3));
        assert_eq!(Size::new(1, 1).scaled(0.01), Size::new(1, 1));
        assert_eq!(Size::new(0, 5).scaled(2.0), Size::new(0, 10));
    }

    #[test]
    fn rect_edges() {
        let r = Rect::new(5, 6, 7, 8);
        assert_eq!(r.right(), 12);
        assert_eq!(r.bottom(), 14);
        assert_eq!(r.center(), Point::new(8, 10));
        assert_eq!(r.area(), 56);
    }

    #[test]
    fn rect_from_corners_any_order() {
        let a = Point::new(10, 2);
        let b = Point::new(4, 9);
        let r = Rect::from_corners(a, b);
        assert_eq!(r, Rect::new(4, 2, 6, 7));
        assert_eq!(Rect::from_corners(b, a), r);
    }

    #[test]
    fn intersect_disjoint_and_touching() {
        let a = Rect::new(0, 0, 10, 10);
        // Touching edges share no pixels in half-open coordinates.
        assert_eq!(a.intersect(&Rect::new(10, 0, 10, 10)), None);
        assert_eq!(a.intersect(&Rect::new(0, 10, 10, 10)), None);
        assert!(a.intersects(&Rect::new(9, 9, 10, 10)));
    }

    #[test]
    fn overlap_area_matches_intersect() {
        let a = Rect::new(0, 0, 100, 100);
        let b = Rect::new(50, 80, 100, 100);
        assert_eq!(a.overlap_area(&b), 50 * 20);
    }

    #[test]
    fn union_with_empty() {
        let a = Rect::new(3, 3, 5, 5);
        let empty = Rect::new(100, 100, 0, 0);
        assert_eq!(a.union(&empty), a);
        assert_eq!(empty.union(&a), a);
    }

    #[test]
    fn enclosing_multiple() {
        let rs = [
            Rect::new(10, 10, 5, 5),
            Rect::new(0, 20, 2, 2),
            Rect::new(30, 0, 1, 1),
        ];
        assert_eq!(Rect::enclosing(rs.iter()), Some(Rect::new(0, 0, 31, 22)));
        assert_eq!(Rect::enclosing(std::iter::empty()), None);
    }

    #[test]
    fn iou_half_overlap() {
        let a = Rect::new(0, 0, 10, 10);
        let b = Rect::new(0, 5, 10, 10);
        // intersection 50, union 150.
        assert!((a.iou(&b) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn contains_rect_boundary() {
        let outer = Rect::new(0, 0, 10, 10);
        assert!(outer.contains_rect(&Rect::new(0, 0, 10, 10)));
        assert!(!outer.contains_rect(&Rect::new(1, 1, 10, 9)));
    }

    #[test]
    fn translated_saturates_at_zero() {
        let r = Rect::new(2, 2, 4, 4);
        assert_eq!(r.translated(-10, 3), Rect::new(0, 5, 4, 4));
    }

    #[test]
    fn scaled_up_and_down() {
        let r = Rect::new(100, 200, 50, 60);
        let up = r.scaled(2.0);
        assert_eq!(up, Rect::new(200, 400, 100, 120));
        let down = up.scaled(0.5);
        assert_eq!(down, r);
    }

    #[test]
    fn inflated_clamps_to_bounds() {
        let bounds = Rect::new(0, 0, 100, 100);
        let r = Rect::new(5, 5, 10, 10);
        assert_eq!(r.inflated(10, &bounds), Rect::new(0, 0, 25, 25));
        let edge = Rect::new(95, 95, 5, 5);
        assert_eq!(edge.inflated(10, &bounds), Rect::new(85, 85, 15, 15));
    }
}
