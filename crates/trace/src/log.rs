//! Records, the rolling hash chain, JSONL rendering/parsing and diffs.

use crate::event::{render_string, FieldValue, Fields, TraceEvent};
use std::fmt::Write as _;
use tangram_types::time::SimTime;

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over `bytes`, continuing from `state`.
fn fnv1a(mut state: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        state ^= u64::from(b);
        state = state.wrapping_mul(FNV_PRIME);
    }
    state
}

/// The chain anchor: the `prev` value of a stream's first record.
#[must_use]
pub fn chain_seed() -> u64 {
    fnv1a(FNV_OFFSET, b"tangram-trace-v1")
}

/// One emitted event plus its chain bookkeeping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRecord {
    /// Monotonic sequence number, starting at 1.
    pub seq: u64,
    /// Sim-time of the event, integer microseconds since the epoch.
    pub at_us: u64,
    /// The previous record's hash ([`chain_seed`] for the first).
    pub prev: u64,
    /// FNV-1a over the previous hash and this record's canonical body.
    pub hash: u64,
    /// The event itself.
    pub event: TraceEvent,
}

impl TraceRecord {
    /// The canonical body: everything the hash covers.
    fn body(seq: u64, at_us: u64, event: &TraceEvent) -> String {
        let mut body = String::new();
        let _ = write!(body, "\"seq\":{seq},\"at_us\":{at_us},\"kind\":");
        render_string(event.kind(), &mut body);
        event.render_fields(&mut body);
        body
    }

    /// The hash this record must carry given its `prev`.
    fn chain(seq: u64, at_us: u64, event: &TraceEvent, prev: u64) -> u64 {
        let mut state = fnv1a(FNV_OFFSET, format!("{prev:016x}|").as_bytes());
        state = fnv1a(state, Self::body(seq, at_us, event).as_bytes());
        state
    }

    /// Renders the record as one JSONL line (no trailing newline).
    #[must_use]
    pub fn to_line(&self) -> String {
        let mut line = String::from("{");
        line.push_str(&Self::body(self.seq, self.at_us, &self.event));
        let _ = write!(
            line,
            ",\"prev\":\"{:016x}\",\"hash\":\"{:016x}\"}}",
            self.prev, self.hash
        );
        line
    }

    /// Parses one JSONL line.
    pub fn from_line(line: &str) -> Result<TraceRecord, String> {
        let fields = parse_flat_object(line)?;
        let kind = fields.string("kind")?;
        let record = TraceRecord {
            seq: fields.integer("seq")?,
            at_us: fields.integer("at_us")?,
            prev: parse_hex(&fields.string("prev")?)?,
            hash: parse_hex(&fields.string("hash")?)?,
            event: TraceEvent::from_fields(&kind, &fields)?,
        };
        Ok(record)
    }

    /// A compact human label: `seq 12: batch.dispatch @ 118000us`.
    #[must_use]
    pub fn label(&self) -> String {
        format!("seq {}: {} @ {}us", self.seq, self.event.kind(), self.at_us)
    }
}

fn parse_hex(s: &str) -> Result<u64, String> {
    u64::from_str_radix(s, 16).map_err(|e| format!("bad hash {s:?}: {e}"))
}

/// Parses one flat JSON object (string / integer / bool values only) —
/// exactly the shape [`TraceRecord::to_line`] emits.
fn parse_flat_object(line: &str) -> Result<Fields, String> {
    let mut chars = line.trim().chars().peekable();
    let mut fields = Fields::default();
    if chars.next() != Some('{') {
        return Err("expected '{'".into());
    }
    if chars.peek() == Some(&'}') {
        chars.next();
        return Ok(fields);
    }
    loop {
        let key = parse_string(&mut chars)?;
        if chars.next() != Some(':') {
            return Err(format!("field {key:?}: expected ':'"));
        }
        let value = match chars.peek() {
            Some('"') => FieldValue::String(parse_string(&mut chars)?),
            Some('t') | Some('f') => {
                let word: String = chars
                    .clone()
                    .take_while(|c| c.is_ascii_alphabetic())
                    .collect();
                for _ in 0..word.len() {
                    chars.next();
                }
                match word.as_str() {
                    "true" => FieldValue::Boolean(true),
                    "false" => FieldValue::Boolean(false),
                    other => return Err(format!("field {key:?}: bad literal {other:?}")),
                }
            }
            Some(c) if c.is_ascii_digit() => {
                let mut digits = String::new();
                while chars.peek().is_some_and(char::is_ascii_digit) {
                    digits.push(chars.next().expect("peeked"));
                }
                FieldValue::Integer(digits.parse().map_err(|e| format!("field {key:?}: {e}"))?)
            }
            other => return Err(format!("field {key:?}: unexpected {other:?}")),
        };
        fields.pairs.push((key, value));
        match chars.next() {
            Some(',') => {}
            Some('}') => break,
            other => return Err(format!("expected ',' or '}}', got {other:?}")),
        }
    }
    if chars.next().is_some() {
        return Err("trailing bytes after '}'".into());
    }
    Ok(fields)
}

fn parse_string(chars: &mut std::iter::Peekable<std::str::Chars>) -> Result<String, String> {
    if chars.next() != Some('"') {
        return Err("expected '\"'".into());
    }
    let mut s = String::new();
    loop {
        match chars.next() {
            Some('"') => return Ok(s),
            Some('\\') => match chars.next() {
                Some('"') => s.push('"'),
                Some('\\') => s.push('\\'),
                Some('n') => s.push('\n'),
                other => return Err(format!("bad escape {other:?}")),
            },
            Some(c) => s.push(c),
            None => return Err("unterminated string".into()),
        }
    }
}

/// The recorder the engine writes into: appends records, maintaining the
/// sequence numbers and the hash chain.
#[derive(Debug, Default)]
pub struct TraceSink {
    records: Vec<TraceRecord>,
    prev: Option<u64>,
}

impl TraceSink {
    /// An empty sink, chain anchored at [`chain_seed`].
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends `event` observed at sim-time `at`.
    pub fn emit(&mut self, at: SimTime, event: TraceEvent) {
        let at_us = at.since(SimTime::ZERO).as_micros();
        debug_assert!(
            self.records.last().is_none_or(|r| r.at_us <= at_us),
            "trace time must be monotonic"
        );
        let seq = self.records.len() as u64 + 1;
        let prev = self.prev.unwrap_or_else(chain_seed);
        let hash = TraceRecord::chain(seq, at_us, &event, prev);
        self.prev = Some(hash);
        self.records.push(TraceRecord {
            seq,
            at_us,
            prev,
            hash,
            event,
        });
    }

    /// Number of records emitted so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether nothing was emitted yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Seals the stream.
    #[must_use]
    pub fn finish(self) -> TraceLog {
        TraceLog {
            records: self.records,
        }
    }
}

/// Where a candidate trace first leaves its baseline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceDivergence {
    /// Sequence number of the first differing record (one side may have
    /// ended before it).
    pub seq: u64,
    /// The baseline's record at `seq`, if it has one.
    pub baseline: Option<TraceRecord>,
    /// The candidate's record at `seq`, if it has one.
    pub candidate: Option<TraceRecord>,
}

impl TraceDivergence {
    /// A one-line human description naming the first divergent event.
    #[must_use]
    pub fn describe(&self) -> String {
        match (&self.baseline, &self.candidate) {
            (Some(b), Some(c)) if b.event.kind() == c.event.kind() => format!(
                "first divergence at seq {}: {} differs\n  baseline:  {}\n  candidate: {}",
                self.seq,
                b.event.kind(),
                b.to_line(),
                c.to_line()
            ),
            (Some(b), Some(c)) => format!(
                "first divergence at seq {}: baseline {} vs candidate {}\n  baseline:  {}\n  candidate: {}",
                self.seq,
                b.event.kind(),
                c.event.kind(),
                b.to_line(),
                c.to_line()
            ),
            (Some(b), None) => format!(
                "first divergence at seq {}: candidate ended early (baseline has {})",
                self.seq,
                b.label()
            ),
            (None, Some(c)) => format!(
                "first divergence at seq {}: baseline ended, candidate continues with {}",
                self.seq,
                c.label()
            ),
            (None, None) => "no divergence".into(),
        }
    }
}

/// Event-level counts folded out of a trace, for checking a stream
/// against the run report it narrates.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplayCounts {
    /// Batches dispatched (`batch.dispatch` records).
    pub batches: u64,
    /// Patches across all dispatched batches.
    pub patches: u64,
    /// Invocations completed (`function.complete` records).
    pub completions: u64,
    /// Arrivals shed by admission (`admission.verdict` with
    /// `admitted:false`; fair-ingress overflow sheds are not verdicts
    /// and do not appear here).
    pub dropped: u64,
}

/// A sealed, verifiable event stream.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceLog {
    /// Records in emission order.
    pub records: Vec<TraceRecord>,
}

impl TraceLog {
    /// Renders the whole log as JSONL (one record per line, trailing
    /// newline included when non-empty).
    #[must_use]
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for record in &self.records {
            out.push_str(&record.to_line());
            out.push('\n');
        }
        out
    }

    /// Parses a JSONL rendering. Blank lines are ignored; the chain is
    /// *not* checked — call [`TraceLog::verify`] for that.
    pub fn from_jsonl(text: &str) -> Result<TraceLog, String> {
        let mut records = Vec::new();
        for (i, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            records.push(TraceRecord::from_line(line).map_err(|e| format!("line {}: {e}", i + 1))?);
        }
        Ok(TraceLog { records })
    }

    /// Checks sequence monotonicity (1, 2, 3, …), time monotonicity and
    /// the hash chain, returning the first violation.
    pub fn verify(&self) -> Result<(), String> {
        let mut prev_hash = chain_seed();
        let mut prev_at = 0u64;
        for (i, record) in self.records.iter().enumerate() {
            let want_seq = i as u64 + 1;
            if record.seq != want_seq {
                return Err(format!(
                    "record {}: seq {} breaks the 1..n sequence (expected {want_seq})",
                    i + 1,
                    record.seq
                ));
            }
            if record.at_us < prev_at {
                return Err(format!(
                    "{}: time runs backwards ({} < {prev_at})",
                    record.label(),
                    record.at_us
                ));
            }
            if record.prev != prev_hash {
                return Err(format!(
                    "{}: chain broken (prev {:016x}, expected {prev_hash:016x})",
                    record.label(),
                    record.prev
                ));
            }
            let want = TraceRecord::chain(record.seq, record.at_us, &record.event, record.prev);
            if record.hash != want {
                return Err(format!(
                    "{}: hash mismatch ({:016x}, expected {want:016x})",
                    record.label(),
                    record.hash
                ));
            }
            prev_hash = record.hash;
            prev_at = record.at_us;
        }
        Ok(())
    }

    /// The last record's hash — a digest of the whole stream.
    #[must_use]
    pub fn final_hash(&self) -> u64 {
        self.records.last().map_or_else(chain_seed, |r| r.hash)
    }

    /// The first record where `self` (baseline) and `candidate` differ.
    #[must_use]
    pub fn first_divergence(&self, candidate: &TraceLog) -> Option<TraceDivergence> {
        let n = self.records.len().max(candidate.records.len());
        for i in 0..n {
            let b = self.records.get(i);
            let c = candidate.records.get(i);
            if b != c {
                return Some(TraceDivergence {
                    seq: i as u64 + 1,
                    baseline: b.cloned(),
                    candidate: c.cloned(),
                });
            }
        }
        None
    }

    /// Record counts per event kind, in [`TraceEvent::KINDS`] order.
    #[must_use]
    pub fn stats(&self) -> Vec<(&'static str, usize)> {
        TraceEvent::KINDS
            .iter()
            .map(|&kind| {
                (
                    kind,
                    self.records
                        .iter()
                        .filter(|r| r.event.kind() == kind)
                        .count(),
                )
            })
            .collect()
    }

    /// Folds the per-event records into totals (see [`ReplayCounts`]).
    #[must_use]
    pub fn replay_counts(&self) -> ReplayCounts {
        let mut counts = ReplayCounts::default();
        for record in &self.records {
            match &record.event {
                TraceEvent::BatchDispatch { patches, .. } => {
                    counts.batches += 1;
                    counts.patches += patches;
                }
                TraceEvent::FunctionComplete { .. } => counts.completions += 1,
                TraceEvent::AdmissionVerdict {
                    admitted: false, ..
                } => counts.dropped += 1,
                _ => {}
            }
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TraceLog {
        let mut sink = TraceSink::new();
        sink.emit(
            SimTime::ZERO,
            TraceEvent::SessionStart {
                policy: "Tangram".into(),
                seed: 7,
                cameras: 1,
            },
        );
        sink.emit(
            SimTime::from_micros(5),
            TraceEvent::CameraJoin { camera: 3 },
        );
        sink.emit(
            SimTime::from_micros(90),
            TraceEvent::AdmissionVerdict {
                patch: 11,
                slo_us: 1_000_000,
                admitted: false,
                queued: 6,
                in_flight: 2,
                earliest_start_us: 120,
            },
        );
        sink.emit(
            SimTime::from_micros(100),
            TraceEvent::BatchDispatch {
                batch: 0,
                patches: 4,
                inputs: 2,
                megapixels_e6: 2_097_152,
            },
        );
        sink.emit(
            SimTime::from_micros(400),
            TraceEvent::FunctionComplete {
                invocation: 0,
                inputs: 2,
                violations: 1,
            },
        );
        sink.finish()
    }

    #[test]
    fn sequence_and_chain_are_monotonic_and_verified() {
        let log = sample();
        assert_eq!(
            log.records.iter().map(|r| r.seq).collect::<Vec<_>>(),
            vec![1, 2, 3, 4, 5]
        );
        // Each record chains off its predecessor.
        for pair in log.records.windows(2) {
            assert_eq!(pair[1].prev, pair[0].hash);
            assert!(pair[1].at_us >= pair[0].at_us);
        }
        assert_eq!(log.records[0].prev, chain_seed());
        log.verify().expect("freshly emitted chain verifies");
        assert_eq!(log.final_hash(), log.records.last().unwrap().hash);
    }

    #[test]
    fn jsonl_round_trips_byte_exactly() {
        let log = sample();
        let text = log.to_jsonl();
        let parsed = TraceLog::from_jsonl(&text).expect("parses");
        assert_eq!(parsed, log);
        assert_eq!(parsed.to_jsonl(), text, "render(parse(x)) == x");
        parsed.verify().expect("chain survives the round trip");
    }

    #[test]
    fn tampering_breaks_the_chain() {
        let mut log = sample();
        // Flip one field of record 3; its own hash no longer matches.
        if let TraceEvent::AdmissionVerdict { queued, .. } = &mut log.records[2].event {
            *queued += 1;
        }
        let err = log.verify().expect_err("tamper detected");
        assert!(err.contains("seq 3"), "{err}");

        // Splicing record 3 out breaks the sequence numbering.
        let mut spliced = sample();
        spliced.records.remove(2);
        assert!(spliced.verify().is_err());
    }

    #[test]
    fn first_divergence_names_the_event() {
        let base = sample();
        let mut cand = sample();
        if let TraceEvent::BatchDispatch { patches, .. } = &mut cand.records[3].event {
            *patches = 9;
        }
        let div = base.first_divergence(&cand).expect("diverges");
        assert_eq!(div.seq, 4);
        assert!(
            div.describe().contains("batch.dispatch"),
            "{}",
            div.describe()
        );
        assert_eq!(base.first_divergence(&sample()), None);

        // A truncated candidate diverges at the missing record.
        let mut short = sample();
        short.records.pop();
        let div = base.first_divergence(&short).expect("diverges");
        assert_eq!(div.seq, 5);
        assert!(div.candidate.is_none());
    }

    #[test]
    fn replay_counts_fold_the_stream() {
        let counts = sample().replay_counts();
        assert_eq!(
            counts,
            ReplayCounts {
                batches: 1,
                patches: 4,
                completions: 1,
                dropped: 1,
            }
        );
    }

    #[test]
    fn stats_count_by_kind() {
        let stats = sample().stats();
        let get = |k: &str| stats.iter().find(|(kind, _)| *kind == k).unwrap().1;
        assert_eq!(get("session.start"), 1);
        assert_eq!(get("camera.join"), 1);
        assert_eq!(get("batch.dispatch"), 1);
        assert_eq!(get("session.end"), 0);
    }

    #[test]
    fn parser_rejects_malformed_lines() {
        assert!(TraceRecord::from_line("{\"seq\":1").is_err());
        assert!(TraceRecord::from_line("not json").is_err());
        assert!(TraceRecord::from_line(
            "{\"seq\":1,\"at_us\":0,\"kind\":\"bogus.kind\",\"prev\":\"0\",\"hash\":\"0\"}"
        )
        .is_err());
    }
}
