//! TRACE-style runtime telemetry: an append-only, deterministic event
//! stream emitted by the streaming engine.
//!
//! The reproduction's contract is "any worker count, byte-identical
//! output". A bare digest upholds the contract but cannot *explain* a
//! violation: when two runs diverge, the digest only says that they do.
//! This crate is the explanation layer — every externally visible step
//! of a run (session start/end, camera churn, admission verdicts with
//! the signals that justified them, DRR service rounds, batch
//! dispatches, function completions) is emitted as a [`TraceRecord`]
//! carrying
//!
//! * a monotonic **sequence number** (1, 2, 3, …),
//! * the **sim-time** of the event in integer microseconds, and
//! * a **rolling hash chain**: each record stores the previous record's
//!   FNV-1a hash and its own, computed over the canonical rendering of
//!   the record body. Tampering with (or diverging in) any record
//!   invalidates every later hash.
//!
//! Records render to JSONL — one flat JSON object per line, keys in a
//! fixed order, integers only (times in microseconds, megapixels in
//! micro-megapixels) — so byte equality of two trace files is exactly
//! record equality, with no float-formatting or locale hazards. Nothing
//! here reads a wall clock or ambient entropy: identical runs produce
//! identical bytes regardless of worker count, which is what lets CI
//! `cmp` golden traces.
//!
//! The crate sits below `sim` on the DAG and depends only on
//! `tangram-types`; it hand-rolls its own minimal JSONL rendering and
//! strict parser rather than pulling in a serializer.
//!
//! ```
//! use tangram_trace::{TraceEvent, TraceLog, TraceSink};
//! use tangram_types::time::SimTime;
//!
//! let mut sink = TraceSink::new();
//! sink.emit(
//!     SimTime::ZERO,
//!     TraceEvent::SessionStart { policy: "Tangram".into(), seed: 42, cameras: 1 },
//! );
//! sink.emit(SimTime::from_micros(7), TraceEvent::CameraJoin { camera: 0 });
//! let log = sink.finish();
//! log.verify().expect("chain is intact");
//! let round_trip = TraceLog::from_jsonl(&log.to_jsonl()).unwrap();
//! assert_eq!(round_trip, log);
//! ```

pub mod event;
pub mod log;

pub use event::TraceEvent;
pub use log::{ReplayCounts, TraceDivergence, TraceLog, TraceRecord, TraceSink};
