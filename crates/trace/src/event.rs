//! The trace event alphabet and its canonical field rendering.

use std::fmt::Write as _;

/// One runtime event, as the engine saw it.
///
/// All quantities are integers: instants and durations in microseconds,
/// megapixels in micro-megapixels (`_e6` suffix), identities as the raw
/// id values the `tangram-types` newtypes wrap. Integer-only bodies make
/// the canonical rendering (and therefore the hash chain and byte
/// comparisons) immune to float formatting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// The run began: the configuration a replay must reproduce.
    SessionStart {
        /// Batching policy under test.
        policy: String,
        /// Engine seed.
        seed: u64,
        /// Camera sources registered at start.
        cameras: u64,
    },
    /// Camera `camera` came online.
    CameraJoin {
        /// Raw camera id.
        camera: u64,
    },
    /// Camera `camera` went offline.
    CameraLeave {
        /// Raw camera id.
        camera: u64,
    },
    /// The admission policy ruled on an arrival, with the load signals
    /// that justified the verdict.
    AdmissionVerdict {
        /// Raw id of the arriving patch/frame.
        patch: u64,
        /// The arrival's tenant SLO, microseconds.
        slo_us: u64,
        /// `true` = admitted, `false` = shed.
        admitted: bool,
        /// Queue-depth signal: admitted-but-undispatched work items
        /// (fair-ingress residents included).
        queued: u64,
        /// Backend signal: in-flight invocations.
        in_flight: u64,
        /// Backend signal: when a batch submitted now would start, µs.
        earliest_start_us: u64,
    },
    /// A weighted-DRR service round ran.
    DrrRound {
        /// Work items released to the batching policy this round.
        released: u64,
        /// Items still queued at the ingress after the round.
        backlog: u64,
    },
    /// The policy dispatched a batch to the serverless platform.
    BatchDispatch {
        /// Zero-based dispatch index within the run.
        batch: u64,
        /// Patches whose results the invocation produces.
        patches: u64,
        /// Model inputs (canvases / padded patches / frames).
        inputs: u64,
        /// Work to execute, micro-megapixels.
        megapixels_e6: u64,
    },
    /// A previously submitted invocation finished.
    FunctionComplete {
        /// Raw invocation id.
        invocation: u64,
        /// Batch size (inputs) of the completed invocation.
        inputs: u64,
        /// SLO violations among the batch's patches.
        violations: u64,
    },
    /// A declarative fault window opened (fault injection is active
    /// until `until_us`). Fault-free runs never emit this kind, so
    /// legacy golden traces are unaffected.
    FaultWindow {
        /// The fault kind's stable name (`link_outage`, `latency_tail`,
        /// `cold_start_storm`, `camera_flap`, `brownout`).
        kind: String,
        /// When the window closes, microseconds since simulation start.
        until_us: u64,
    },
    /// The run drained: totals a consumer can check the stream against.
    SessionEnd {
        /// Frames injected by all cameras.
        frames: u64,
        /// Batches dispatched.
        batches: u64,
        /// Invocations completed.
        completions: u64,
        /// Arrivals shed at the ingress (admission + fair-ingress
        /// overflow).
        dropped: u64,
        /// Run makespan, microseconds.
        makespan_us: u64,
    },
}

impl TraceEvent {
    /// The record's `"kind"` tag.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::SessionStart { .. } => "session.start",
            TraceEvent::CameraJoin { .. } => "camera.join",
            TraceEvent::CameraLeave { .. } => "camera.leave",
            TraceEvent::AdmissionVerdict { .. } => "admission.verdict",
            TraceEvent::DrrRound { .. } => "drr.round",
            TraceEvent::BatchDispatch { .. } => "batch.dispatch",
            TraceEvent::FunctionComplete { .. } => "function.complete",
            TraceEvent::FaultWindow { .. } => "fault.window",
            TraceEvent::SessionEnd { .. } => "session.end",
        }
    }

    /// Every kind tag, in a fixed order (stats tables).
    pub const KINDS: [&'static str; 9] = [
        "session.start",
        "camera.join",
        "camera.leave",
        "admission.verdict",
        "drr.round",
        "batch.dispatch",
        "function.complete",
        "fault.window",
        "session.end",
    ];

    /// Appends the canonical `,"key":value` rendering of the event's
    /// fields (key order fixed per kind).
    pub(crate) fn render_fields(&self, out: &mut String) {
        match self {
            TraceEvent::SessionStart {
                policy,
                seed,
                cameras,
            } => {
                out.push_str(",\"policy\":");
                render_string(policy, out);
                let _ = write!(out, ",\"seed\":{seed},\"cameras\":{cameras}");
            }
            TraceEvent::CameraJoin { camera } | TraceEvent::CameraLeave { camera } => {
                let _ = write!(out, ",\"camera\":{camera}");
            }
            TraceEvent::AdmissionVerdict {
                patch,
                slo_us,
                admitted,
                queued,
                in_flight,
                earliest_start_us,
            } => {
                let _ = write!(
                    out,
                    ",\"patch\":{patch},\"slo_us\":{slo_us},\"admitted\":{admitted},\
                     \"queued\":{queued},\"in_flight\":{in_flight},\
                     \"earliest_start_us\":{earliest_start_us}"
                );
            }
            TraceEvent::DrrRound { released, backlog } => {
                let _ = write!(out, ",\"released\":{released},\"backlog\":{backlog}");
            }
            TraceEvent::BatchDispatch {
                batch,
                patches,
                inputs,
                megapixels_e6,
            } => {
                let _ = write!(
                    out,
                    ",\"batch\":{batch},\"patches\":{patches},\"inputs\":{inputs},\
                     \"megapixels_e6\":{megapixels_e6}"
                );
            }
            TraceEvent::FunctionComplete {
                invocation,
                inputs,
                violations,
            } => {
                let _ = write!(
                    out,
                    ",\"invocation\":{invocation},\"inputs\":{inputs},\"violations\":{violations}"
                );
            }
            TraceEvent::FaultWindow { kind, until_us } => {
                out.push_str(",\"fault\":");
                render_string(kind, out);
                let _ = write!(out, ",\"until_us\":{until_us}");
            }
            TraceEvent::SessionEnd {
                frames,
                batches,
                completions,
                dropped,
                makespan_us,
            } => {
                let _ = write!(
                    out,
                    ",\"frames\":{frames},\"batches\":{batches},\"completions\":{completions},\
                     \"dropped\":{dropped},\"makespan_us\":{makespan_us}"
                );
            }
        }
    }

    /// Rebuilds an event from its kind tag and parsed fields.
    pub(crate) fn from_fields(kind: &str, fields: &Fields) -> Result<TraceEvent, String> {
        Ok(match kind {
            "session.start" => TraceEvent::SessionStart {
                policy: fields.string("policy")?,
                seed: fields.integer("seed")?,
                cameras: fields.integer("cameras")?,
            },
            "camera.join" => TraceEvent::CameraJoin {
                camera: fields.integer("camera")?,
            },
            "camera.leave" => TraceEvent::CameraLeave {
                camera: fields.integer("camera")?,
            },
            "admission.verdict" => TraceEvent::AdmissionVerdict {
                patch: fields.integer("patch")?,
                slo_us: fields.integer("slo_us")?,
                admitted: fields.boolean("admitted")?,
                queued: fields.integer("queued")?,
                in_flight: fields.integer("in_flight")?,
                earliest_start_us: fields.integer("earliest_start_us")?,
            },
            "drr.round" => TraceEvent::DrrRound {
                released: fields.integer("released")?,
                backlog: fields.integer("backlog")?,
            },
            "batch.dispatch" => TraceEvent::BatchDispatch {
                batch: fields.integer("batch")?,
                patches: fields.integer("patches")?,
                inputs: fields.integer("inputs")?,
                megapixels_e6: fields.integer("megapixels_e6")?,
            },
            "function.complete" => TraceEvent::FunctionComplete {
                invocation: fields.integer("invocation")?,
                inputs: fields.integer("inputs")?,
                violations: fields.integer("violations")?,
            },
            "fault.window" => TraceEvent::FaultWindow {
                kind: fields.string("fault")?,
                until_us: fields.integer("until_us")?,
            },
            "session.end" => TraceEvent::SessionEnd {
                frames: fields.integer("frames")?,
                batches: fields.integer("batches")?,
                completions: fields.integer("completions")?,
                dropped: fields.integer("dropped")?,
                makespan_us: fields.integer("makespan_us")?,
            },
            other => return Err(format!("unknown event kind {other:?}")),
        })
    }
}

/// Renders a JSON string literal (the only escapes trace strings need).
pub(crate) fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parsed flat-JSON value (the trace alphabet needs no nesting).
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum FieldValue {
    String(String),
    Integer(u64),
    Boolean(bool),
}

/// The key/value pairs of one parsed record line.
#[derive(Debug, Default)]
pub(crate) struct Fields {
    pub(crate) pairs: Vec<(String, FieldValue)>,
}

impl Fields {
    fn get(&self, key: &str) -> Result<&FieldValue, String> {
        self.pairs
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
            .ok_or_else(|| format!("missing field {key:?}"))
    }

    pub(crate) fn string(&self, key: &str) -> Result<String, String> {
        match self.get(key)? {
            FieldValue::String(s) => Ok(s.clone()),
            other => Err(format!("field {key:?}: expected string, got {other:?}")),
        }
    }

    pub(crate) fn integer(&self, key: &str) -> Result<u64, String> {
        match self.get(key)? {
            FieldValue::Integer(n) => Ok(*n),
            other => Err(format!("field {key:?}: expected integer, got {other:?}")),
        }
    }

    pub(crate) fn boolean(&self, key: &str) -> Result<bool, String> {
        match self.get(key)? {
            FieldValue::Boolean(b) => Ok(*b),
            other => Err(format!("field {key:?}: expected bool, got {other:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_cover_every_variant() {
        let events = [
            TraceEvent::SessionStart {
                policy: "Tangram".into(),
                seed: 1,
                cameras: 2,
            },
            TraceEvent::CameraJoin { camera: 0 },
            TraceEvent::CameraLeave { camera: 0 },
            TraceEvent::AdmissionVerdict {
                patch: 9,
                slo_us: 1_000_000,
                admitted: true,
                queued: 3,
                in_flight: 1,
                earliest_start_us: 77,
            },
            TraceEvent::DrrRound {
                released: 4,
                backlog: 2,
            },
            TraceEvent::BatchDispatch {
                batch: 0,
                patches: 5,
                inputs: 2,
                megapixels_e6: 2_097_152,
            },
            TraceEvent::FunctionComplete {
                invocation: 3,
                inputs: 2,
                violations: 0,
            },
            TraceEvent::FaultWindow {
                kind: "brownout".into(),
                until_us: 5_000_000,
            },
            TraceEvent::SessionEnd {
                frames: 10,
                batches: 4,
                completions: 4,
                dropped: 1,
                makespan_us: 123,
            },
        ];
        let mut kinds: Vec<&str> = events.iter().map(TraceEvent::kind).collect();
        kinds.sort_unstable();
        let mut expected = TraceEvent::KINDS.to_vec();
        expected.sort_unstable();
        assert_eq!(kinds, expected);
    }

    #[test]
    fn string_rendering_escapes() {
        let mut out = String::new();
        render_string("a\"b\\c", &mut out);
        assert_eq!(out, r#""a\"b\\c""#);
    }
}
