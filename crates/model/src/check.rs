//! The check suite: the fixed roster of model instances `model_tool
//! check` explores, with smoke and full budgets.
//!
//! Three families:
//!
//! * **Healthy credit configs** — the window × shard grid from
//!   [`tangram_types::credit::MODEL_WINDOWS`] ×
//!   [`tangram_types::credit::MODEL_SHARDS`], plus two dead-camera
//!   configs that force the demux-buffer path. All four properties are
//!   checked on every schedule: no deadlock, no lost wakeup, data-queue
//!   occupancy ≤ window, merge order equal to the 1-shard oracle.
//! * **Channel regressions** — the vendored channel discipline in
//!   isolation (SPSC and a 3-receiver MPMC). These pin the analysis in
//!   `vendor/crossbeam/src/lib.rs`: `notify_one` after `send` is
//!   sufficient, `notify_all` at last-sender drop is load-bearing.
//! * **Seeded mutants** — one deliberately broken model per
//!   [`Mutant`]; the explorer must produce a counter-example of the
//!   expected [`ViolationKind`](crate::sched::ViolationKind) for
//!   each, via iterative deepening so
//!   the printed schedule uses as few preemptions as the fault allows.
//!
//! Budgets are per row and honest: a row that trips its schedule
//! budget reports `exhaustive = false`, the suite fails, and the CLI
//! prints the truncation. Smoke is sized to finish in seconds in debug
//! builds while still clearing the [`SMOKE_SCHEDULE_FLOOR`]; full
//! raises the preemption bounds and budgets for the `--ignored`
//! exhaustive test and local soak runs.

use tangram_types::credit::{MODEL_SHARDS, MODEL_WINDOWS};

use crate::explorer::{CounterExample, Explorer};
use crate::mutants::Mutant;
use crate::protocol::{channel_model, credit_model, ChanConfig, ProtoConfig};
use crate::sched::Model;

/// Smoke mode must explore at least this many distinct schedules in
/// total, or the suite fails — a shrinking model or an over-eager
/// budget cut cannot silently hollow the check out.
pub const SMOKE_SCHEDULE_FLOOR: u64 = 10_000;

/// Exploration depth.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// CI-sized: seconds in a debug build, still ≥ the schedule floor.
    Smoke,
    /// Deeper preemption bounds and budgets; run by the `--ignored`
    /// exhaustive test and local soaks.
    Full,
}

impl Mode {
    /// Display name.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Mode::Smoke => "smoke",
            Mode::Full => "full",
        }
    }
}

/// What one suite row concluded.
#[derive(Debug, Clone)]
pub enum RowOutcome {
    /// Healthy model: every explored schedule satisfied all four
    /// properties.
    Proved,
    /// Healthy model: a property failed — a real protocol bug (or a
    /// model regression); always a suite failure.
    Violated(CounterExample),
    /// Mutant caught with the expected violation class.
    MutantCaught(CounterExample),
    /// Mutant survived exploration, or failed with the wrong class —
    /// the checker has a blind spot; always a suite failure.
    MutantMissed(String),
}

/// One explored row.
#[derive(Debug, Clone)]
pub struct RowResult {
    /// Display name (config shape, plus the mutant label if seeded).
    pub name: String,
    /// Threads in the model.
    pub threads: usize,
    /// Preemption bound explored.
    pub bound: usize,
    /// Distinct schedules executed.
    pub schedules: u64,
    /// `true` when the bound was fully explored within budget.
    pub exhaustive: bool,
    /// Conclusion.
    pub outcome: RowOutcome,
}

impl RowResult {
    /// `true` when this row counts as passing.
    #[must_use]
    pub fn ok(&self) -> bool {
        match &self.outcome {
            RowOutcome::Proved => self.exhaustive,
            RowOutcome::MutantCaught(_) => true,
            RowOutcome::Violated(_) | RowOutcome::MutantMissed(_) => false,
        }
    }
}

/// The whole suite's result.
#[derive(Debug)]
pub struct SuiteResult {
    /// Mode the suite ran in.
    pub mode: Mode,
    /// Every row, in roster order.
    pub rows: Vec<RowResult>,
    /// Total schedules across all rows (the floor applies in smoke).
    pub total_schedules: u64,
}

impl SuiteResult {
    /// `true` when every row passed and (in smoke) the schedule floor
    /// was cleared.
    #[must_use]
    pub fn ok(&self) -> bool {
        self.rows.iter().all(RowResult::ok)
            && (self.mode == Mode::Full || self.total_schedules >= SMOKE_SCHEDULE_FLOOR)
    }
}

/// Builds and explores one healthy row.
fn healthy_row(
    name: String,
    threads: usize,
    bound: usize,
    budget: u64,
    build: &dyn Fn(bool) -> Model,
) -> RowResult {
    let result = Explorer::new(bound, budget).explore(build);
    let outcome = match result.violation {
        None => RowOutcome::Proved,
        Some(ce) => RowOutcome::Violated(ce),
    };
    RowResult {
        name,
        threads,
        bound,
        schedules: result.schedules,
        exhaustive: result.exhaustive,
        outcome,
    }
}

/// Builds and explores one mutant row via iterative deepening.
fn mutant_row(
    name: String,
    threads: usize,
    mutant: Mutant,
    bound: usize,
    budget: u64,
    build: &dyn Fn(bool) -> Model,
) -> RowResult {
    let expected = mutant
        .expected_violation()
        .expect("mutant rows carry a seeded fault");
    let result = Explorer::new(bound, budget).explore_deepening(build);
    let outcome = match result.violation {
        Some(ce) if ce.kind == expected => RowOutcome::MutantCaught(ce),
        Some(ce) => RowOutcome::MutantMissed(format!(
            "expected {}, got {}: {}",
            expected.label(),
            ce.kind.label(),
            ce.detail
        )),
        None => RowOutcome::MutantMissed(format!(
            "survived {} schedule(s) at bound {bound}",
            result.schedules
        )),
    };
    RowResult {
        name,
        threads,
        bound,
        schedules: result.schedules,
        exhaustive: result.exhaustive,
        outcome,
    }
}

/// Runs the full roster for `mode`.
#[must_use]
pub fn run_suite(mode: Mode) -> SuiteResult {
    // Bounds are sized per row so that every proof row is *exhaustive*
    // within its budget — a truncated proof fails the suite. Measured
    // exhaustive counts (release build): the 2-thread rows are a few
    // hundred to a few thousand schedules even at bound 3; 3 threads
    // at bound 2 is ~113k; 4 threads at bound 1 is ~40k–420k and at
    // bound 2 ~3.3M — except the window-1 three-shard row, whose extra
    // blocking points push bound 2 past 50M schedules, so that row
    // stays at bound 1 in both modes. Budgets are safety nets above
    // those counts: model growth that blows them up fails loudly
    // instead of silently sampling.
    let (bound_small, bound_large, bound_s3w1, budget): (usize, usize, usize, u64) = match mode {
        Mode::Smoke => (2, 1, 1, 500_000),
        Mode::Full => (3, 2, 1, 4_000_000),
    };

    let mut rows = Vec::new();

    // Healthy grid: windows x shards, one camera per shard, two
    // captures. Single-shard rows get the deeper bound (their state
    // space is small); multi-shard rows use the wider-but-shallower
    // bound to stay inside a CI-sized budget.
    for &shards in &MODEL_SHARDS {
        for &window in &MODEL_WINDOWS {
            let cfg = ProtoConfig::live(shards, window, 1, 2);
            let bound = match shards {
                1 => bound_small,
                3 if window == 1 => bound_s3w1,
                _ => bound_large,
            };
            rows.push(healthy_row(cfg.name(), shards + 1, bound, budget, &|rec| {
                credit_model(cfg, Mutant::None, rec)
            }));
        }
    }

    // Demux coverage: a dead camera forces buffered pulls and buffered
    // credit returns — the only workload where `next_for`'s buffer path
    // runs at all.
    for window in [1_usize, 2] {
        let cfg = ProtoConfig {
            shards: 1,
            window,
            cams_per_shard: 2,
            captures_per_cam: 2,
            dead_cams: 1,
        };
        rows.push(healthy_row(cfg.name(), 2, bound_small, budget, &|rec| {
            credit_model(cfg, Mutant::None, rec)
        }));
    }

    // Channel regressions: pin the vendored discipline (see
    // vendor/crossbeam/src/lib.rs). SPSC exercises notify_one-on-send
    // under re-parking; the 3-receiver MPMC exercises the last-sender
    // notify_all broadcast with multiple parked receivers.
    let spsc = ChanConfig {
        receivers: 1,
        items: 2,
    };
    rows.push(healthy_row(spsc.name(), 2, bound_small, budget, &|rec| {
        channel_model(spsc, Mutant::None, rec)
    }));
    let mpmc = ChanConfig {
        receivers: 3,
        items: 1,
    };
    rows.push(healthy_row(
        mpmc.name(),
        4,
        bound_large.max(1),
        budget,
        &|rec| channel_model(mpmc, Mutant::None, rec),
    ));

    // Seeded mutants: each must die with its documented violation.
    let leak_cfg = ProtoConfig {
        shards: 1,
        window: 1,
        cams_per_shard: 2,
        captures_per_cam: 2,
        dead_cams: 1,
    };
    rows.push(mutant_row(
        format!(
            "mutant {} ({})",
            Mutant::DropCreditReturn.label(),
            leak_cfg.name()
        ),
        2,
        Mutant::DropCreditReturn,
        bound_small,
        budget,
        &|rec| credit_model(leak_cfg, Mutant::DropCreditReturn, rec),
    ));

    let flood_cfg = ProtoConfig::live(1, 1, 1, 2);
    rows.push(mutant_row(
        format!(
            "mutant {} ({})",
            Mutant::UnboundedSend.label(),
            flood_cfg.name()
        ),
        2,
        Mutant::UnboundedSend,
        bound_small,
        budget,
        &|rec| credit_model(flood_cfg, Mutant::UnboundedSend, rec),
    ));

    let starve_cfg = ProtoConfig::live(1, 1, 1, 2);
    rows.push(mutant_row(
        format!(
            "mutant {} ({})",
            Mutant::SkipCreditNotify.label(),
            starve_cfg.name()
        ),
        2,
        Mutant::SkipCreditNotify,
        bound_small,
        budget,
        &|rec| credit_model(starve_cfg, Mutant::SkipCreditNotify, rec),
    ));

    rows.push(mutant_row(
        format!(
            "mutant {} ({})",
            Mutant::DisconnectNotifyOne.label(),
            mpmc.name()
        ),
        4,
        Mutant::DisconnectNotifyOne,
        bound_small,
        budget,
        &|rec| channel_model(mpmc, Mutant::DisconnectNotifyOne, rec),
    ));

    let total_schedules = rows.iter().map(|r| r.schedules).sum();
    SuiteResult {
        mode,
        rows,
        total_schedules,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explorer::CounterExample;
    use crate::sched::ViolationKind;

    // The suite itself runs once in tests/model_check.rs (it costs
    // ~20s in a debug build); unit tests here only cover the row
    // bookkeeping.

    #[test]
    fn row_ok_demands_exhaustive_proofs_but_not_exhaustive_mutants() {
        let ce = CounterExample {
            kind: ViolationKind::Deadlock,
            detail: String::new(),
            schedule: vec![0],
            preemptions: 0,
            log: Vec::new(),
        };
        let mut row = RowResult {
            name: "x".to_string(),
            threads: 2,
            bound: 1,
            schedules: 10,
            exhaustive: false,
            outcome: RowOutcome::Proved,
        };
        assert!(!row.ok(), "a truncated proof is no proof");
        row.exhaustive = true;
        assert!(row.ok());
        row.outcome = RowOutcome::MutantCaught(ce.clone());
        row.exhaustive = false;
        assert!(row.ok(), "a caught mutant needs no exhaustion");
        row.outcome = RowOutcome::Violated(ce);
        assert!(!row.ok());
        row.outcome = RowOutcome::MutantMissed("survived".to_string());
        assert!(!row.ok());
    }

    #[test]
    fn smoke_floor_gates_the_suite_verdict() {
        let suite = SuiteResult {
            mode: Mode::Smoke,
            rows: Vec::new(),
            total_schedules: SMOKE_SCHEDULE_FLOOR - 1,
        };
        assert!(!suite.ok(), "an empty smoke run must not pass the floor");
    }
}
