//! The modelled world: mock mutexes, condvars and channel state, plus
//! the per-thread run states the schedule explorer drives.
//!
//! Everything here is *modelled*, not real: threads are state machines
//! stepped cooperatively by [`crate::explorer::Explorer`], a mutex is an
//! owner plus a waiter queue, a condvar is a waiter set, and a channel
//! is the vendored crossbeam channel's state (`queue`/`senders`/
//! `receivers`) guarded by one mutex and one condvar — exactly the
//! shape of `vendor/crossbeam/src/lib.rs`. Each call into a [`World`]
//! operation is one *atomic step*; the explorer owns every ordering
//! decision between steps, so the full nondeterminism of the real
//! runtime (which thread runs, which waiter a `notify_one` wakes, which
//! contender gets a released lock) becomes an enumerable choice tree.
//!
//! Blocking is explicit: an acquire on a held mutex or a condvar wait
//! parks the thread in [`RunState::Blocked`], and the explorer simply
//! never schedules a blocked thread. A state where no thread is
//! runnable and not all are done is a deadlock — and if any parked
//! thread sits on a channel condvar whose wake-up predicate already
//! holds (queued data, or a disconnect it was never told about), the
//! deadlock is classified as the sharper *lost wakeup*.

use std::collections::BTreeMap;
use std::collections::VecDeque;

/// Index of a modelled thread.
pub type ThreadId = usize;
/// Index of a modelled mutex.
pub type MutexId = usize;
/// Index of a modelled condvar.
pub type CondvarId = usize;
/// Index of a modelled channel.
pub type ChanId = usize;

/// What a parked thread is waiting for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockReason {
    /// Parked in a mutex's waiter queue.
    Mutex(MutexId),
    /// Parked in a condvar's waiter set (mutex released).
    Condvar(CondvarId),
}

/// A modelled thread's scheduling state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunState {
    /// Eligible for the next scheduling decision.
    Runnable,
    /// Parked; never scheduled until woken.
    Blocked(BlockReason),
    /// Finished; never scheduled again.
    Done,
}

/// The safety properties the explorer checks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViolationKind {
    /// No runnable thread, at least one not done, and no parked thread's
    /// predicate holds — a genuine cyclic wait.
    Deadlock,
    /// A thread is parked on a condvar whose wake-up predicate already
    /// holds: a notification was dropped or mis-targeted.
    LostWakeup,
    /// A bounded channel's queue exceeded its occupancy bound
    /// (`CREDIT_WINDOW` for the shard data channels).
    Occupancy,
    /// The coordinator consumed captures out of the 1-shard oracle
    /// order.
    MergeOrder,
    /// A protocol-level assertion failed (a shard died early, a step
    /// budget blew, a final count came out wrong).
    Protocol,
}

impl ViolationKind {
    /// Stable display name.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            ViolationKind::Deadlock => "deadlock",
            ViolationKind::LostWakeup => "lost wakeup",
            ViolationKind::Occupancy => "occupancy bound exceeded",
            ViolationKind::MergeOrder => "merge order violated",
            ViolationKind::Protocol => "protocol assertion failed",
        }
    }
}

/// The source of every nondeterministic decision. The explorer hands an
/// implementation to each step; enumerating all return values
/// enumerates all schedules.
pub trait Chooser {
    /// Picks one of `options` alternatives (`options ≥ 1`; the return
    /// value is `< options`).
    fn choose(&mut self, options: usize) -> usize;
}

#[derive(Debug, Default)]
struct MutexState {
    owner: Option<ThreadId>,
    waiters: Vec<ThreadId>,
}

#[derive(Debug, Default)]
struct CondvarState {
    /// Parked threads with the mutex each must reacquire on wake.
    waiters: Vec<(ThreadId, MutexId)>,
}

/// The vendored channel's shared state: one mutex, one condvar, a FIFO
/// queue and the two endpoint counts — the exact fields of
/// `vendor/crossbeam`'s `State`/`Shared`.
#[derive(Debug)]
pub struct ChanState {
    /// Diagnostic name (`data[0]`, `credit[1]`, …).
    pub label: String,
    /// Guards `queue`, `senders` and `receivers`.
    pub mutex: MutexId,
    /// The single condvar senders notify and receivers wait on.
    pub ready: CondvarId,
    /// Queued messages (opaque payloads).
    pub queue: VecDeque<u64>,
    /// Live sender handles.
    pub senders: usize,
    /// Live receiver handles.
    pub receivers: usize,
    /// Occupancy invariant: `queue.len()` must never exceed this
    /// (`None` = unbounded, no check).
    pub bound: Option<usize>,
}

/// The modelled shared state: sync primitives, channels, run states and
/// (when recording) a human-readable step log.
#[derive(Debug, Default)]
pub struct World {
    mutexes: Vec<MutexState>,
    condvars: Vec<CondvarState>,
    channels: Vec<ChanState>,
    run: Vec<RunState>,
    names: Vec<String>,
    /// First safety violation observed (halts the schedule).
    pub violation: Option<(ViolationKind, String)>,
    /// Model-specific counters (`ok-recv`, `disconnected-recv`, …) for
    /// end-of-run assertions.
    pub counters: BTreeMap<&'static str, u64>,
    /// Step log, filled only when `recording`.
    pub log: Vec<String>,
    recording: bool,
}

impl World {
    /// A fresh world; `recording` turns on the step log (used to render
    /// a failing schedule).
    #[must_use]
    pub fn new(recording: bool) -> World {
        World {
            recording,
            ..World::default()
        }
    }

    /// Registers a thread; the returned id doubles as its scheduling
    /// slot.
    pub fn add_thread(&mut self, name: &str) -> ThreadId {
        self.run.push(RunState::Runnable);
        self.names.push(name.to_string());
        self.run.len() - 1
    }

    /// A thread's diagnostic name.
    #[must_use]
    pub fn name(&self, tid: ThreadId) -> &str {
        &self.names[tid]
    }

    /// A thread's current run state.
    #[must_use]
    pub fn state(&self, tid: ThreadId) -> RunState {
        self.run[tid]
    }

    /// Marks a thread finished.
    pub fn set_done(&mut self, tid: ThreadId) {
        self.record(tid, "done");
        self.run[tid] = RunState::Done;
    }

    /// Threads eligible for the next scheduling decision, in id order.
    #[must_use]
    pub fn runnable(&self) -> Vec<ThreadId> {
        (0..self.run.len())
            .filter(|&t| self.run[t] == RunState::Runnable)
            .collect()
    }

    /// Allocation-free variant of [`World::runnable`] for the
    /// explorer's hot loop: clears and refills `out`.
    pub fn runnable_into(&self, out: &mut Vec<ThreadId>) {
        out.clear();
        out.extend((0..self.run.len()).filter(|&t| self.run[t] == RunState::Runnable));
    }

    /// `true` once every thread is done.
    #[must_use]
    pub fn all_done(&self) -> bool {
        self.run.iter().all(|s| *s == RunState::Done)
    }

    /// Records a safety violation (first one wins; the schedule halts).
    pub fn fail(&mut self, kind: ViolationKind, detail: String) {
        if self.violation.is_none() {
            self.violation = Some((kind, detail));
        }
    }

    /// `true` when the step log is being captured. Callers building
    /// expensive log strings should guard on this — the explorer runs
    /// hundreds of thousands of silent schedules per recorded one.
    #[must_use]
    pub fn is_recording(&self) -> bool {
        self.recording
    }

    /// Appends to the step log when recording.
    pub fn record(&mut self, tid: ThreadId, what: &str) {
        if self.recording {
            let line = format!("{}: {what}", self.names[tid]);
            self.log.push(line);
        }
    }

    /// Allocates a mutex.
    pub fn add_mutex(&mut self) -> MutexId {
        self.mutexes.push(MutexState::default());
        self.mutexes.len() - 1
    }

    /// Allocates a condvar.
    pub fn add_condvar(&mut self) -> CondvarId {
        self.condvars.push(CondvarState::default());
        self.condvars.len() - 1
    }

    /// Allocates a channel with its own mutex and condvar.
    pub fn add_channel(
        &mut self,
        label: &str,
        senders: usize,
        receivers: usize,
        bound: Option<usize>,
    ) -> ChanId {
        let mutex = self.add_mutex();
        let ready = self.add_condvar();
        self.channels.push(ChanState {
            label: label.to_string(),
            mutex,
            ready,
            queue: VecDeque::new(),
            senders,
            receivers,
            bound,
        });
        self.channels.len() - 1
    }

    /// Read access to a channel's state.
    #[must_use]
    pub fn chan(&self, c: ChanId) -> &ChanState {
        &self.channels[c]
    }

    /// Write access to a channel's state. The caller must hold the
    /// channel's mutex (asserted by the channel ops).
    pub fn chan_mut(&mut self, c: ChanId) -> &mut ChanState {
        &mut self.channels[c]
    }

    /// All channels, for deadlock classification.
    #[must_use]
    pub fn channels(&self) -> &[ChanState] {
        &self.channels
    }

    /// `true` when `tid` currently owns `m`.
    #[must_use]
    pub fn owns(&self, m: MutexId, tid: ThreadId) -> bool {
        self.mutexes[m].owner == Some(tid)
    }

    /// One atomic acquire attempt: takes the mutex if free (or already
    /// owned by `tid` after a hand-off), otherwise parks the thread in
    /// the waiter queue and returns `false`.
    pub fn acquire(&mut self, m: MutexId, tid: ThreadId) -> bool {
        if self.mutexes[m].owner == Some(tid) {
            return true;
        }
        if self.mutexes[m].owner.is_none() {
            self.mutexes[m].owner = Some(tid);
            self.record(tid, "acquires the lock");
            return true;
        }
        self.mutexes[m].waiters.push(tid);
        self.run[tid] = RunState::Blocked(BlockReason::Mutex(m));
        self.record(tid, "blocks on the lock");
        false
    }

    /// Releases `m`, handing it directly to one waiter when any are
    /// parked — *which* waiter is a scheduling decision.
    pub fn release(&mut self, m: MutexId, tid: ThreadId, chooser: &mut dyn Chooser) {
        debug_assert!(self.owns(m, tid), "release without ownership");
        if self.mutexes[m].waiters.is_empty() {
            self.mutexes[m].owner = None;
            return;
        }
        let pick = chooser.choose(self.mutexes[m].waiters.len());
        let next = self.mutexes[m].waiters.remove(pick);
        self.mutexes[m].owner = Some(next);
        self.run[next] = RunState::Runnable;
        self.record(next, "is handed the lock");
    }

    /// Atomically releases `m` and parks `tid` on `cv` — the real
    /// condvar's wait contract, which is exactly what makes
    /// check-then-wait race-free when the check runs under the mutex.
    pub fn wait(&mut self, cv: CondvarId, m: MutexId, tid: ThreadId, chooser: &mut dyn Chooser) {
        debug_assert!(self.owns(m, tid), "wait without ownership");
        self.release(m, tid, chooser);
        self.condvars[cv].waiters.push((tid, m));
        self.run[tid] = RunState::Blocked(BlockReason::Condvar(cv));
        self.record(tid, "waits on the condvar");
    }

    /// Wakes one waiter — *which* one is a scheduling decision, the
    /// nondeterminism that makes `notify_one` disciplines checkable. A
    /// no-op with no waiters (a real notify is not queued).
    pub fn notify_one(&mut self, cv: CondvarId, chooser: &mut dyn Chooser) {
        if self.condvars[cv].waiters.is_empty() {
            return;
        }
        let pick = chooser.choose(self.condvars[cv].waiters.len());
        let (tid, m) = self.condvars[cv].waiters.remove(pick);
        self.wake(tid, m);
    }

    /// Wakes every waiter, in park order.
    pub fn notify_all(&mut self, cv: CondvarId) {
        let waiters = std::mem::take(&mut self.condvars[cv].waiters);
        for (tid, m) in waiters {
            self.wake(tid, m);
        }
    }

    /// Post-wake reacquisition: the woken thread re-contends for its
    /// mutex — it either takes a free lock and becomes runnable, or
    /// parks in the mutex's waiter queue.
    fn wake(&mut self, tid: ThreadId, m: MutexId) {
        if self.mutexes[m].owner.is_none() {
            self.mutexes[m].owner = Some(tid);
            self.run[tid] = RunState::Runnable;
            self.record(tid, "is woken and retakes the lock");
        } else {
            self.mutexes[m].waiters.push(tid);
            self.run[tid] = RunState::Blocked(BlockReason::Mutex(m));
            self.record(tid, "is woken and re-contends for the lock");
        }
    }

    /// Classifies a stuck state (no runnable thread, not all done).
    ///
    /// If any thread is parked on a channel's `ready` condvar while the
    /// wake-up predicate it is waiting for already holds — queued data,
    /// or a disconnect it was never told about — a notification was
    /// dropped and the failure is the sharper [`ViolationKind::LostWakeup`].
    /// Otherwise it is a plain [`ViolationKind::Deadlock`].
    #[must_use]
    pub fn classify_stuck(&self) -> (ViolationKind, String) {
        for chan in &self.channels {
            let parked = &self.condvars[chan.ready].waiters;
            if parked.is_empty() {
                continue;
            }
            let queued = chan.queue.len();
            if queued > 0 || chan.senders == 0 {
                let who: Vec<&str> = parked.iter().map(|&(t, _)| self.name(t)).collect();
                let why = if queued > 0 {
                    format!("{queued} message(s) queued")
                } else {
                    "all senders gone".to_string()
                };
                return (
                    ViolationKind::LostWakeup,
                    format!(
                        "{} parked on {} with {why} — a wakeup was dropped",
                        who.join(", "),
                        chan.label
                    ),
                );
            }
        }
        let mut stuck = Vec::new();
        for (tid, state) in self.run.iter().enumerate() {
            if let RunState::Blocked(reason) = state {
                let on = match reason {
                    BlockReason::Mutex(_) => "a lock",
                    BlockReason::Condvar(cv) => self
                        .channels
                        .iter()
                        .find(|c| c.ready == *cv)
                        .map_or("a condvar", |c| c.label.as_str()),
                };
                stuck.push(format!("{} on {on}", self.names[tid]));
            }
        }
        (
            ViolationKind::Deadlock,
            format!("no runnable thread; blocked: {}", stuck.join(", ")),
        )
    }

    /// Bumps a model counter.
    pub fn bump(&mut self, key: &'static str) {
        *self.counters.entry(key).or_insert(0) += 1;
    }

    /// A model counter's value (0 when never bumped).
    #[must_use]
    pub fn counter(&self, key: &str) -> u64 {
        self.counters.get(key).copied().unwrap_or(0)
    }
}

/// One modelled thread: a resumable state machine the explorer steps.
///
/// A call to [`ModelThread::step`] performs **exactly one atomic
/// action** (possibly after any number of pure control transitions that
/// touch no shared state). A step that blocks the thread counts as its
/// action; the explorer will not step the thread again until a wake
/// makes it runnable.
pub trait ModelThread {
    /// Performs the thread's next atomic action.
    fn step(&mut self, world: &mut World, chooser: &mut dyn Chooser, tid: ThreadId);
}

/// An end-of-run assertion over the completed world (counters, queues).
pub type FinalCheck = Box<dyn Fn(&World) -> Option<(ViolationKind, String)>>;

/// A complete model: the shared world, the threads, and an optional
/// end-of-run check evaluated once every thread is done.
pub struct Model {
    /// The shared state.
    pub world: World,
    /// Threads, indexed by [`ThreadId`].
    pub threads: Vec<Box<dyn ModelThread>>,
    /// Final assertion over the completed world (counters, queues).
    pub final_check: Option<FinalCheck>,
}

impl std::fmt::Debug for Model {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Model")
            .field("threads", &self.threads.len())
            .field("channels", &self.world.channels.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Fifo;
    impl Chooser for Fifo {
        fn choose(&mut self, _options: usize) -> usize {
            0
        }
    }

    #[test]
    fn acquire_release_and_handoff() {
        let mut w = World::new(false);
        let a = w.add_thread("a");
        let b = w.add_thread("b");
        let m = w.add_mutex();
        assert!(w.acquire(m, a));
        assert!(!w.acquire(m, b), "held lock parks the second thread");
        assert_eq!(w.state(b), RunState::Blocked(BlockReason::Mutex(m)));
        w.release(m, a, &mut Fifo);
        assert!(w.owns(m, b), "release hands the lock to the waiter");
        assert_eq!(w.state(b), RunState::Runnable);
    }

    #[test]
    fn wait_parks_and_notify_rewakes_with_the_lock() {
        let mut w = World::new(false);
        let a = w.add_thread("a");
        let m = w.add_mutex();
        let cv = w.add_condvar();
        assert!(w.acquire(m, a));
        w.wait(cv, m, a, &mut Fifo);
        assert_eq!(w.state(a), RunState::Blocked(BlockReason::Condvar(cv)));
        assert!(!w.owns(m, a), "wait released the mutex");
        w.notify_one(cv, &mut Fifo);
        assert!(w.owns(m, a), "wake retakes the free mutex");
        assert_eq!(w.state(a), RunState::Runnable);
    }

    #[test]
    fn notify_without_waiters_is_lost() {
        let mut w = World::new(false);
        let _ = w.add_thread("a");
        let cv = w.add_condvar();
        // Must not panic and must not queue anything for later.
        w.notify_one(cv, &mut Fifo);
        w.notify_all(cv);
    }
}
