//! The bounded schedule explorer: stateless DFS over every scheduling
//! decision a model can make.
//!
//! # How exploration works
//!
//! A *schedule* is the full vector of nondeterministic decisions one
//! execution makes — which runnable thread steps next, which waiter a
//! `notify_one` wakes, which contender a released lock is handed to.
//! The explorer is **stateless** (CHESS-style): it never snapshots the
//! model, it just re-executes it from scratch under a forced decision
//! prefix, taking the first alternative (index 0) at every decision
//! past the prefix and recording `(chosen, options)` pairs as it goes.
//! Afterwards, every recorded decision point beyond the prefix with
//! more than one option spawns new prefixes for the untried
//! alternatives. Driving that worklist to empty visits every
//! reachable schedule exactly once; models are deterministic given the
//! decision vector, so the enumeration is reproducible byte for byte.
//!
//! # Preemption bounding
//!
//! Full interleaving exploration is exponential in trace length, but
//! almost every real concurrency bug needs only a handful of
//! preemptions (CHESS's empirical result, which this explorer leans
//! on). A scheduling decision that switches away from a *still
//! runnable* previous thread costs one preemption; switching after the
//! previous thread blocked or finished is free. Once the budget is
//! spent and the previous thread can still run, it is forced to
//! continue — one option, so no branching. Exploration at bound *p* is
//! exhaustive over all schedules with at most *p* preemptions; the
//! suite in [`crate::check`] runs increasing bounds so a mutant's
//! counter-example is found at the smallest bound that exposes it.
//!
//! # Honest truncation
//!
//! [`Explorer::max_schedules`] is a safety net, not a tuning knob:
//! when the budget trips, [`Exploration::exhaustive`] is `false` and
//! every caller (the CLI, the tests) is expected to surface that. A
//! bounded proof that silently became a sample would be worse than no
//! proof at all.

use crate::sched::{Chooser, Model, ThreadId, ViolationKind};

/// Decision-vector chooser: replays a forced prefix, defaults to the
/// first alternative beyond it, and records every decision it makes.
struct ScriptChooser {
    prefix: Vec<usize>,
    /// Every decision taken this run, as `(chosen, options)`.
    taken: Vec<(usize, usize)>,
}

impl ScriptChooser {
    fn new(prefix: Vec<usize>) -> ScriptChooser {
        ScriptChooser {
            prefix,
            taken: Vec::new(),
        }
    }
}

impl Chooser for ScriptChooser {
    fn choose(&mut self, options: usize) -> usize {
        debug_assert!(options >= 1, "a decision needs at least one option");
        let pos = self.taken.len();
        let chosen = if pos < self.prefix.len() {
            debug_assert!(
                self.prefix[pos] < options,
                "prefix decision out of range (model not deterministic?)"
            );
            self.prefix[pos]
        } else {
            0
        };
        self.taken.push((chosen, options));
        chosen
    }
}

/// A failing schedule, replayable and human-readable.
#[derive(Debug, Clone)]
pub struct CounterExample {
    /// The violated property.
    pub kind: ViolationKind,
    /// What went wrong, concretely.
    pub detail: String,
    /// The full decision vector — feed it back as a prefix to replay.
    pub schedule: Vec<usize>,
    /// Preemptions the schedule used.
    pub preemptions: usize,
    /// The recorded step log of the failing execution.
    pub log: Vec<String>,
}

/// Outcome of exploring one model at one preemption bound.
#[derive(Debug, Clone)]
pub struct Exploration {
    /// Distinct schedules executed.
    pub schedules: u64,
    /// `true` when every schedule within the preemption bound was
    /// visited; `false` when [`Explorer::max_schedules`] tripped.
    pub exhaustive: bool,
    /// The first violation found, if any (exploration stops there).
    pub violation: Option<CounterExample>,
}

/// One execution's raw result.
struct RunOutcome {
    decisions: Vec<(usize, usize)>,
    violation: Option<(ViolationKind, String)>,
    preemptions: usize,
    log: Vec<String>,
}

/// The bounded explorer. Construct one per (model, bound) pair and
/// call [`Explorer::explore`].
#[derive(Debug, Clone, Copy)]
pub struct Explorer {
    /// Maximum preemptions per schedule (see module docs).
    pub preemption_bound: usize,
    /// Schedule budget; exceeding it flips `exhaustive` to `false`.
    pub max_schedules: u64,
    /// Per-schedule step budget — a runaway guard that fails the run
    /// with a protocol violation rather than hanging the checker.
    pub max_steps: usize,
}

impl Explorer {
    /// An explorer with the given preemption bound and a generous
    /// default step budget.
    #[must_use]
    pub fn new(preemption_bound: usize, max_schedules: u64) -> Explorer {
        Explorer {
            preemption_bound,
            max_schedules,
            max_steps: 10_000,
        }
    }

    /// Executes one schedule: forced `prefix`, first-alternative tail.
    fn run_once(
        &self,
        build: &dyn Fn(bool) -> Model,
        prefix: &[usize],
        recording: bool,
    ) -> RunOutcome {
        let mut model = build(recording);
        let mut chooser = ScriptChooser::new(prefix.to_vec());
        let mut last: Option<ThreadId> = None;
        let mut preemptions = 0;
        let mut steps = 0;
        let mut runnable: Vec<ThreadId> = Vec::new();
        loop {
            if model.world.violation.is_some() {
                break;
            }
            model.world.runnable_into(&mut runnable);
            if runnable.is_empty() {
                if model.world.all_done() {
                    if let Some(check) = &model.final_check {
                        if let Some((kind, detail)) = check(&model.world) {
                            model.world.fail(kind, detail);
                        }
                    }
                } else {
                    let (kind, detail) = model.world.classify_stuck();
                    model.world.fail(kind, detail);
                }
                break;
            }
            steps += 1;
            if steps > self.max_steps {
                model.world.fail(
                    ViolationKind::Protocol,
                    format!("schedule exceeded the {} step budget", self.max_steps),
                );
                break;
            }
            // Preemption forcing: with the budget spent and the previous
            // thread still runnable, it is the only option (1 option =
            // no branching, so bounded exploration stays exhaustive
            // *within the bound*).
            let last_runnable = last.is_some_and(|l| runnable.contains(&l));
            let tid = if last_runnable && preemptions >= self.preemption_bound {
                // One option: no branching, but still one recorded
                // decision so replay positions stay aligned.
                chooser.choose(1);
                last.expect("last_runnable implies last is set")
            } else {
                runnable[chooser.choose(runnable.len())]
            };
            if last_runnable && Some(tid) != last {
                preemptions += 1;
            }
            model.threads[tid].step(&mut model.world, &mut chooser, tid);
            last = Some(tid);
        }
        RunOutcome {
            decisions: chooser.taken,
            violation: model.world.violation.clone(),
            preemptions,
            log: model.world.log,
        }
    }

    /// Explores every schedule of `build`'s model within the
    /// preemption bound, stopping at the first violation.
    ///
    /// `build` is called once per schedule (plus once more, recording,
    /// to render a counter-example) and must produce the same model
    /// every time — the whole enumeration relies on replay determinism.
    pub fn explore(&self, build: &dyn Fn(bool) -> Model) -> Exploration {
        let mut stack: Vec<Vec<usize>> = vec![Vec::new()];
        let mut schedules: u64 = 0;
        while let Some(prefix) = stack.pop() {
            if schedules >= self.max_schedules {
                return Exploration {
                    schedules,
                    exhaustive: false,
                    violation: None,
                };
            }
            schedules += 1;
            let outcome = self.run_once(build, &prefix, false);
            if let Some((kind, detail)) = outcome.violation {
                // Re-run the exact failing schedule with recording on to
                // produce the human-readable log.
                let schedule: Vec<usize> = outcome.decisions.iter().map(|d| d.0).collect();
                let replay = self.run_once(build, &schedule, true);
                debug_assert!(replay.violation.is_some(), "failing schedule must replay");
                return Exploration {
                    schedules,
                    exhaustive: false,
                    violation: Some(CounterExample {
                        kind,
                        detail,
                        schedule,
                        preemptions: outcome.preemptions,
                        log: replay.log,
                    }),
                };
            }
            // Branch: every decision beyond the prefix with untried
            // alternatives becomes a new prefix. Pushed in order, so the
            // DFS visits alternatives deterministically.
            for pos in prefix.len()..outcome.decisions.len() {
                let (chosen, options) = outcome.decisions[pos];
                debug_assert_eq!(chosen, 0, "tail decisions default to the first option");
                for alt in 1..options {
                    let mut next: Vec<usize> =
                        outcome.decisions[..pos].iter().map(|d| d.0).collect();
                    next.push(alt);
                    stack.push(next);
                }
            }
        }
        Exploration {
            schedules,
            exhaustive: true,
            violation: None,
        }
    }

    /// Iterative deepening: explores at bounds `0..=preemption_bound`,
    /// returning at the first bound that surfaces a violation — so the
    /// counter-example uses as few preemptions as the fault allows,
    /// which keeps its log readable. Schedule counts accumulate across
    /// bounds; `exhaustive` reports the final (deepest) pass.
    pub fn explore_deepening(&self, build: &dyn Fn(bool) -> Model) -> Exploration {
        let mut total: u64 = 0;
        for bound in 0..=self.preemption_bound {
            let pass = Explorer {
                preemption_bound: bound,
                ..*self
            };
            let result = pass.explore(build);
            total += result.schedules;
            if result.violation.is_some() || bound == self.preemption_bound {
                return Exploration {
                    schedules: total,
                    ..result
                };
            }
        }
        unreachable!("the final bound always returns");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mutants::Mutant;
    use crate::protocol::{channel_model, ChanConfig};

    #[test]
    fn tiny_channel_model_is_clean_and_exhaustive() {
        let cfg = ChanConfig {
            receivers: 1,
            items: 1,
        };
        let explorer = Explorer::new(2, 1_000_000);
        let result = explorer.explore(&|rec| channel_model(cfg, Mutant::None, rec));
        assert!(result.exhaustive, "tiny model must fit the budget");
        assert!(result.violation.is_none(), "vendored discipline is clean");
        assert!(
            result.schedules >= 2,
            "sender/receiver orders both explored"
        );
    }

    #[test]
    fn schedule_budget_truncation_is_reported() {
        let cfg = ChanConfig {
            receivers: 2,
            items: 2,
        };
        let explorer = Explorer::new(2, 3);
        let result = explorer.explore(&|rec| channel_model(cfg, Mutant::None, rec));
        assert!(!result.exhaustive, "a 3-schedule budget must truncate");
        assert_eq!(result.schedules, 3);
    }

    #[test]
    fn counter_examples_carry_a_replayable_schedule_and_log() {
        let cfg = ChanConfig {
            receivers: 3,
            items: 1,
        };
        let explorer = Explorer::new(3, 1_000_000);
        let result =
            explorer.explore_deepening(&|rec| channel_model(cfg, Mutant::DisconnectNotifyOne, rec));
        let ce = result.violation.expect("mutant must be caught");
        assert_eq!(ce.kind, ViolationKind::LostWakeup);
        assert!(!ce.schedule.is_empty());
        assert!(!ce.log.is_empty(), "recording replay fills the log");
    }
}
