//! The extracted model of the shard credit protocol, plus a standalone
//! model of the vendored channel.
//!
//! # The credit protocol, as implemented
//!
//! `crates/core/src/shard.rs` runs one producer thread per shard and a
//! coordinator (the engine thread). Per shard there are two vendored
//! channels: a **data** channel (shard → coordinator, carrying
//! captures) and a **credit** channel (coordinator → shard, carrying
//! permission tokens). `ShardSet::spawn` primes each credit channel
//! with `CREDIT_WINDOW` tokens; `shard_main` takes one credit before
//! every capture it sends; `ShardSet::next_for` returns exactly one
//! credit per message it pulls — *including* messages it demux-buffers
//! for a camera other than the one demanded. Shutdown drops the credit
//! senders first (producers observe disconnect and exit), then the
//! data receivers.
//!
//! The model mirrors that structure one atomic action at a time:
//!
//! * `Producer` — per shard: `recv(credit) → send(data)` per capture
//!   in timestamp order, then handle drops. Credit disconnect is the
//!   shutdown signal, exactly as in `shard_main`.
//! * `Coordinator` — demands captures in the 1-shard oracle order,
//!   pulls from the owning shard's data channel, returns one credit
//!   per pulled message, demux-buffers mismatches, and verifies every
//!   consumed capture against the oracle order (the merge-order
//!   invariant, checked *inline* so the first divergent consume is the
//!   counter-example).
//!
//! Messages encode `(camera, sequence)` as `camera * SEQ_BASE + seq`,
//! so the merge-order check is a single equality.
//!
//! # Dead cameras
//!
//! In a healthy run the coordinator's per-shard demand order equals
//! the shard's production order, so the demux buffer is never touched.
//! [`ProtoConfig::dead_cams`] marks the trailing cameras as *dead*:
//! produced but never demanded (a deactivated source whose shard is
//! still capturing). Dead-camera captures are pulled while draining the
//! data channel and land in the demux buffer — the only path that
//! exercises buffered credit returns, and the workload that exposes the
//! [`Mutant::DropCreditReturn`] leak.
//!
//! # The standalone channel model
//!
//! [`channel_model`] checks the vendored channel discipline in
//! isolation: one sender pushing [`ChanConfig::items`] messages then
//! dropping, [`ChanConfig::receivers`] receivers looping `recv` until
//! disconnect. The final check demands every message delivered exactly
//! once and every receiver told about the disconnect — which is
//! precisely what `notify_one` after `send` plus `notify_all` at
//! last-sender drop guarantees, and what [`Mutant::DisconnectNotifyOne`]
//! breaks.

use std::collections::BTreeMap;
use std::collections::VecDeque;

use crate::channel::{
    DropReceiverOp, DropSenderOp, NotifyOnDisconnect, NotifyOnSend, Recv, RecvOp, SendOp,
};
use crate::mutants::Mutant;
use crate::sched::{ChanId, Chooser, Model, ModelThread, ThreadId, ViolationKind, World};

/// Message encoding base: `value = camera * SEQ_BASE + seq`.
pub const SEQ_BASE: u64 = 1_000;

/// Shape of one credit-protocol model instance. Intentionally tiny —
/// the explorer's state space is exponential in total steps, and the
/// protocol's interesting races already show up at two or three
/// captures per camera.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProtoConfig {
    /// Producer threads (each with its own data + credit channel).
    pub shards: usize,
    /// Credit window primed into each credit channel; also the
    /// occupancy bound asserted on each data channel.
    pub window: usize,
    /// Cameras per shard (camera ids are contiguous per shard).
    pub cams_per_shard: usize,
    /// Captures produced per camera.
    pub captures_per_cam: usize,
    /// Trailing cameras (global numbering) that are produced but never
    /// demanded — the demux-buffer workload. Must be < total cameras.
    pub dead_cams: usize,
}

impl ProtoConfig {
    /// A healthy config with every camera live.
    #[must_use]
    pub fn live(shards: usize, window: usize, cams_per_shard: usize, captures: usize) -> Self {
        ProtoConfig {
            shards,
            window,
            cams_per_shard,
            captures_per_cam: captures,
            dead_cams: 0,
        }
    }

    /// Total cameras across all shards.
    #[must_use]
    pub fn total_cams(&self) -> usize {
        self.shards * self.cams_per_shard
    }

    /// Captures the coordinator actually demands (live cameras only).
    #[must_use]
    pub fn live_captures(&self) -> usize {
        (self.total_cams() - self.dead_cams) * self.captures_per_cam
    }

    /// Short display name (`s2 w1 c1 k2` style, `+1 dead` if any).
    #[must_use]
    pub fn name(&self) -> String {
        let base = format!(
            "credit s{} w{} c{} k{}",
            self.shards, self.window, self.cams_per_shard, self.captures_per_cam
        );
        if self.dead_cams > 0 {
            format!("{base} +{} dead", self.dead_cams)
        } else {
            base
        }
    }
}

/// Shape of one standalone channel model instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChanConfig {
    /// Receiver threads looping `recv` until disconnect.
    pub receivers: usize,
    /// Messages the single sender pushes before dropping its handle.
    pub items: usize,
}

impl ChanConfig {
    /// Short display name.
    #[must_use]
    pub fn name(&self) -> String {
        format!("channel r{} n{}", self.receivers, self.items)
    }
}

/// Per-shard producer: `shard_main`'s loop as a resumable state
/// machine.
struct Producer {
    credit: ChanId,
    data: ChanId,
    /// Captures in production (timestamp) order, already encoded.
    items: Vec<u64>,
    next: usize,
    /// [`Mutant::UnboundedSend`]: skip the credit take entirely.
    skip_credit: bool,
    state: PState,
}

enum PState {
    Idle,
    RecvCredit(RecvOp),
    Send(SendOp),
    DropTx(DropSenderOp),
    DropCreditRx(DropReceiverOp),
    Finished,
}

impl ModelThread for Producer {
    fn step(&mut self, world: &mut World, chooser: &mut dyn Chooser, tid: ThreadId) {
        loop {
            match &mut self.state {
                PState::Idle => {
                    // Pure control transition — pick the next op, spend
                    // no step, loop to execute its first action.
                    if self.next == self.items.len() {
                        self.state =
                            PState::DropTx(DropSenderOp::new(self.data, NotifyOnDisconnect::All));
                    } else if self.skip_credit {
                        let value = self.items[self.next];
                        self.state = PState::Send(SendOp::new(self.data, value, NotifyOnSend::One));
                    } else {
                        self.state = PState::RecvCredit(RecvOp::new(self.credit));
                    }
                }
                PState::RecvCredit(op) => {
                    match op.step(world, chooser, tid) {
                        None => return,
                        Some(Recv::Msg(_)) => {
                            let value = self.items[self.next];
                            self.state =
                                PState::Send(SendOp::new(self.data, value, NotifyOnSend::One));
                        }
                        Some(Recv::Disconnected) => {
                            // Shutdown signal: the coordinator dropped
                            // the credit sender. Exit without sending
                            // the remaining captures — `shard_main`'s
                            // `Err(_) => break`.
                            world.bump("producer-shutdown");
                            self.state = PState::DropTx(DropSenderOp::new(
                                self.data,
                                NotifyOnDisconnect::All,
                            ));
                        }
                    }
                    return;
                }
                PState::Send(op) => {
                    if op.step(world, chooser, tid) {
                        self.next += 1;
                        world.bump("produced");
                        self.state = PState::Idle;
                    }
                    return;
                }
                PState::DropTx(op) => {
                    if op.step(world, chooser, tid) {
                        self.state = PState::DropCreditRx(DropReceiverOp::new(self.credit));
                    }
                    return;
                }
                PState::DropCreditRx(op) => {
                    if op.step(world, chooser, tid) {
                        self.state = PState::Finished;
                        world.set_done(tid);
                    }
                    return;
                }
                PState::Finished => return,
            }
        }
    }
}

/// The engine side: `ShardSet::next_for` demand loop plus `shutdown`.
struct Coordinator {
    /// Per-shard data channels, indexed by shard.
    data: Vec<ChanId>,
    /// Per-shard credit channels, indexed by shard.
    credit: Vec<ChanId>,
    cams_per_shard: usize,
    /// Demanded captures in 1-shard oracle order, already encoded.
    demand: Vec<u64>,
    next: usize,
    /// Demux buffers: camera → captures pulled for it while demanding
    /// another camera. Thread-local, so touching it costs no step.
    buffers: BTreeMap<u64, VecDeque<u64>>,
    /// [`Mutant::DropCreditReturn`]: keep the credit for buffered pulls.
    drop_buffered_credit: bool,
    /// [`Mutant::SkipCreditNotify`] selects [`NotifyOnSend::Skip`].
    credit_notify: NotifyOnSend,
    state: CState,
}

enum CState {
    NextDemand,
    Recv(RecvOp),
    /// Returning the credit for `pulled`, then demux it.
    ReturnCredit(SendOp, u64),
    DropCredit(usize, DropSenderOp),
    DropData(usize, DropReceiverOp),
    Finished,
}

impl Coordinator {
    fn shard_of(&self, cam: u64) -> usize {
        (cam as usize) / self.cams_per_shard
    }

    /// Demux one pulled capture: consume it if it matches the current
    /// demand, buffer it otherwise. Pure (thread-local) bookkeeping.
    fn demux(&mut self, world: &mut World, tid: ThreadId, pulled: u64) {
        let wanted = self.demand[self.next];
        if pulled == wanted {
            if world.is_recording() {
                world.record(tid, &format!("consumes {pulled} (in oracle order)"));
            }
            world.bump("consumed");
            self.next += 1;
        } else if pulled / SEQ_BASE == wanted / SEQ_BASE {
            // Same camera, wrong sequence: the shard's FIFO was
            // violated — a straight merge-order failure.
            world.fail(
                ViolationKind::MergeOrder,
                format!("demanded {wanted} but consumed {pulled} from the same camera"),
            );
        } else {
            if world.is_recording() {
                world.record(tid, &format!("buffers {pulled} (demanding {wanted})"));
            }
            world.bump("buffered");
            self.buffers
                .entry(pulled / SEQ_BASE)
                .or_default()
                .push_back(pulled);
        }
    }
}

impl ModelThread for Coordinator {
    fn step(&mut self, world: &mut World, chooser: &mut dyn Chooser, tid: ThreadId) {
        loop {
            match &mut self.state {
                CState::NextDemand => {
                    if self.next == self.demand.len() {
                        // `ShardSet::shutdown`: credit senders first.
                        self.state = CState::DropCredit(
                            0,
                            DropSenderOp::new(self.credit[0], NotifyOnDisconnect::All),
                        );
                        continue;
                    }
                    let wanted = self.demand[self.next];
                    let cam = wanted / SEQ_BASE;
                    if let Some(buf) = self.buffers.get_mut(&cam) {
                        if let Some(pulled) = buf.pop_front() {
                            // Buffered hit: consume without touching a
                            // channel (`next_for`'s fast path). The
                            // credit was returned (or mutant-leaked)
                            // when the message was pulled.
                            if pulled == wanted {
                                if world.is_recording() {
                                    world
                                        .record(tid, &format!("consumes {pulled} from the buffer"));
                                }
                                world.bump("consumed");
                                self.next += 1;
                            } else {
                                world.fail(
                                    ViolationKind::MergeOrder,
                                    format!("demanded {wanted} but buffered head is {pulled}"),
                                );
                                return;
                            }
                            continue;
                        }
                    }
                    let shard = self.shard_of(cam);
                    self.state = CState::Recv(RecvOp::new(self.data[shard]));
                }
                CState::Recv(op) => {
                    match op.step(world, chooser, tid) {
                        None => return,
                        Some(Recv::Msg(pulled)) => {
                            let shard = self.shard_of(pulled / SEQ_BASE);
                            let wanted = self.demand[self.next];
                            let buffered = pulled != wanted;
                            if self.drop_buffered_credit && buffered {
                                // Mutant: the demux-buffer path forgets
                                // the credit. The message itself is
                                // still processed.
                                if world.is_recording() {
                                    world.record(
                                        tid,
                                        &format!("LEAKS the credit for {pulled} (mutant)"),
                                    );
                                }
                                self.demux(world, tid, pulled);
                                self.state = CState::NextDemand;
                            } else {
                                self.state = CState::ReturnCredit(
                                    SendOp::new(self.credit[shard], 1, self.credit_notify),
                                    pulled,
                                );
                            }
                        }
                        Some(Recv::Disconnected) => {
                            world.fail(
                                ViolationKind::Protocol,
                                format!(
                                    "data channel disconnected with {} demand(s) unmet",
                                    self.demand.len() - self.next
                                ),
                            );
                            return;
                        }
                    }
                    return;
                }
                CState::ReturnCredit(op, pulled) => {
                    let pulled = *pulled;
                    if op.step(world, chooser, tid) {
                        self.demux(world, tid, pulled);
                        self.state = CState::NextDemand;
                    }
                    return;
                }
                CState::DropCredit(i, op) => {
                    let i = *i;
                    if op.step(world, chooser, tid) {
                        if i + 1 < self.credit.len() {
                            self.state = CState::DropCredit(
                                i + 1,
                                DropSenderOp::new(self.credit[i + 1], NotifyOnDisconnect::All),
                            );
                        } else {
                            self.state = CState::DropData(0, DropReceiverOp::new(self.data[0]));
                        }
                    }
                    return;
                }
                CState::DropData(i, op) => {
                    let i = *i;
                    if op.step(world, chooser, tid) {
                        if i + 1 < self.data.len() {
                            self.state =
                                CState::DropData(i + 1, DropReceiverOp::new(self.data[i + 1]));
                        } else {
                            self.state = CState::Finished;
                            world.set_done(tid);
                        }
                    }
                    return;
                }
                CState::Finished => return,
            }
        }
    }
}

/// Builds a credit-protocol model instance, optionally carrying a
/// seeded [`Mutant`].
///
/// # Panics
///
/// Panics on degenerate configs (zero shards/cameras/captures, window
/// of zero, or every camera dead).
#[must_use]
pub fn credit_model(cfg: ProtoConfig, mutant: Mutant, recording: bool) -> Model {
    assert!(cfg.shards > 0 && cfg.cams_per_shard > 0 && cfg.captures_per_cam > 0);
    assert!(cfg.window > 0, "a zero window can never move a capture");
    assert!(cfg.dead_cams < cfg.total_cams(), "at least one live camera");
    assert!(
        u64::try_from(cfg.captures_per_cam).is_ok_and(|k| k < SEQ_BASE),
        "sequence numbers must fit under SEQ_BASE"
    );

    let mut world = World::new(recording);
    let mut data = Vec::new();
    let mut credit = Vec::new();
    for shard in 0..cfg.shards {
        // Data: 1 producer sender, 1 coordinator receiver, occupancy
        // bounded by the window (the invariant under check).
        data.push(world.add_channel(&format!("data[{shard}]"), 1, 1, Some(cfg.window)));
        // Credit: 1 coordinator sender, 1 producer receiver, primed
        // with `window` tokens exactly as `ShardSet::spawn` does.
        let c = world.add_channel(&format!("credit[{shard}]"), 1, 1, None);
        for _ in 0..cfg.window {
            world.chan_mut(c).queue.push_back(1);
        }
        credit.push(c);
    }

    let dead_floor = (cfg.total_cams() - cfg.dead_cams) as u64;
    let mut threads: Vec<Box<dyn ModelThread>> = Vec::new();
    let coordinator = world.add_thread("coordinator");
    for shard in 0..cfg.shards {
        world.add_thread(&format!("shard[{shard}]"));
    }
    debug_assert_eq!(coordinator, 0, "coordinator owns thread slot 0");

    // Demand list: the 1-shard oracle order — sequence-major over live
    // cameras, mirroring the engine's timestamp-ordered event loop.
    let mut demand = Vec::new();
    for seq in 0..cfg.captures_per_cam as u64 {
        for cam in 0..dead_floor {
            demand.push(cam * SEQ_BASE + seq);
        }
    }
    threads.push(Box::new(Coordinator {
        data: data.clone(),
        credit: credit.clone(),
        cams_per_shard: cfg.cams_per_shard,
        demand,
        next: 0,
        buffers: BTreeMap::new(),
        drop_buffered_credit: mutant == Mutant::DropCreditReturn,
        credit_notify: if mutant == Mutant::SkipCreditNotify {
            NotifyOnSend::Skip
        } else {
            NotifyOnSend::One
        },
        state: CState::NextDemand,
    }));

    // Production order per shard: sequence-major over its own cameras —
    // the same relative order the demand list visits them in, so a
    // healthy run with no dead cameras never touches the demux buffer.
    for shard in 0..cfg.shards {
        let mut items = Vec::new();
        for seq in 0..cfg.captures_per_cam as u64 {
            for k in 0..cfg.cams_per_shard as u64 {
                let cam = (shard * cfg.cams_per_shard) as u64 + k;
                items.push(cam * SEQ_BASE + seq);
            }
        }
        threads.push(Box::new(Producer {
            credit: credit[shard],
            data: data[shard],
            items,
            next: 0,
            skip_credit: mutant == Mutant::UnboundedSend,
            state: PState::Idle,
        }));
    }

    let live = cfg.live_captures() as u64;
    Model {
        world,
        threads,
        final_check: Some(Box::new(move |world: &World| {
            let consumed = world.counter("consumed");
            if consumed != live {
                return Some((
                    ViolationKind::Protocol,
                    format!("consumed {consumed} captures, expected {live}"),
                ));
            }
            None
        })),
    }
}

/// Receiver half of the standalone channel model: loop `recv` until
/// disconnect, then drop the handle.
struct ChanReceiver {
    chan: ChanId,
    state: RState,
}

enum RState {
    Recv(RecvOp),
    DropRx(DropReceiverOp),
    Finished,
}

impl ModelThread for ChanReceiver {
    fn step(&mut self, world: &mut World, chooser: &mut dyn Chooser, tid: ThreadId) {
        match &mut self.state {
            RState::Recv(op) => match op.step(world, chooser, tid) {
                None => {}
                Some(Recv::Msg(_)) => {
                    world.bump("ok-recv");
                    self.state = RState::Recv(RecvOp::new(self.chan));
                }
                Some(Recv::Disconnected) => {
                    world.bump("disconnected-recv");
                    self.state = RState::DropRx(DropReceiverOp::new(self.chan));
                }
            },
            RState::DropRx(op) => {
                if op.step(world, chooser, tid) {
                    self.state = RState::Finished;
                    world.set_done(tid);
                }
            }
            RState::Finished => {}
        }
    }
}

/// Sender half: push every item, then drop the handle (the disconnect
/// broadcast under check).
struct ChanSender {
    chan: ChanId,
    remaining: usize,
    disconnect: NotifyOnDisconnect,
    state: SState,
}

enum SState {
    Idle,
    Send(SendOp),
    DropTx(DropSenderOp),
    Finished,
}

impl ModelThread for ChanSender {
    fn step(&mut self, world: &mut World, chooser: &mut dyn Chooser, tid: ThreadId) {
        loop {
            match &mut self.state {
                SState::Idle => {
                    if self.remaining == 0 {
                        self.state = SState::DropTx(DropSenderOp::new(self.chan, self.disconnect));
                    } else {
                        let value = self.remaining as u64;
                        self.state = SState::Send(SendOp::new(self.chan, value, NotifyOnSend::One));
                    }
                }
                SState::Send(op) => {
                    if op.step(world, chooser, tid) {
                        self.remaining -= 1;
                        self.state = SState::Idle;
                    }
                    return;
                }
                SState::DropTx(op) => {
                    if op.step(world, chooser, tid) {
                        self.state = SState::Finished;
                        world.set_done(tid);
                    }
                    return;
                }
                SState::Finished => return,
            }
        }
    }
}

/// Builds a standalone vendored-channel model: one sender, `receivers`
/// looping receivers, `items` messages. Only
/// [`Mutant::DisconnectNotifyOne`] applies; every other mutant leaves
/// the channel discipline faithful.
#[must_use]
pub fn channel_model(cfg: ChanConfig, mutant: Mutant, recording: bool) -> Model {
    assert!(cfg.receivers > 0);
    let mut world = World::new(recording);
    let chan = world.add_channel("chan", 1, cfg.receivers, None);
    let mut threads: Vec<Box<dyn ModelThread>> = Vec::new();
    let sender = world.add_thread("sender");
    debug_assert_eq!(sender, 0);
    threads.push(Box::new(ChanSender {
        chan,
        remaining: cfg.items,
        disconnect: if mutant == Mutant::DisconnectNotifyOne {
            NotifyOnDisconnect::One
        } else {
            NotifyOnDisconnect::All
        },
        state: SState::Idle,
    }));
    for i in 0..cfg.receivers {
        world.add_thread(&format!("recv[{i}]"));
        threads.push(Box::new(ChanReceiver {
            chan,
            state: RState::Recv(RecvOp::new(chan)),
        }));
    }

    let items = cfg.items as u64;
    let receivers = cfg.receivers as u64;
    Model {
        world,
        threads,
        final_check: Some(Box::new(move |world: &World| {
            let ok = world.counter("ok-recv");
            let disc = world.counter("disconnected-recv");
            if ok != items {
                return Some((
                    ViolationKind::Protocol,
                    format!("{ok} message(s) delivered, expected {items}"),
                ));
            }
            if disc != receivers {
                return Some((
                    ViolationKind::Protocol,
                    format!("{disc} receiver(s) observed disconnect, expected {receivers}"),
                ));
            }
            None
        })),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_names_and_counts() {
        let cfg = ProtoConfig {
            shards: 2,
            window: 1,
            cams_per_shard: 2,
            captures_per_cam: 2,
            dead_cams: 1,
        };
        assert_eq!(cfg.total_cams(), 4);
        assert_eq!(cfg.live_captures(), 6);
        assert_eq!(cfg.name(), "credit s2 w1 c2 k2 +1 dead");
        assert_eq!(
            ChanConfig {
                receivers: 3,
                items: 1
            }
            .name(),
            "channel r3 n1"
        );
    }

    #[test]
    fn credit_model_primes_the_window_and_names_threads() {
        let model = credit_model(ProtoConfig::live(2, 3, 1, 2), Mutant::None, false);
        assert_eq!(model.threads.len(), 3, "coordinator + 2 producers");
        assert_eq!(model.world.chan(1).queue.len(), 3, "credit[0] primed");
        assert_eq!(model.world.chan(3).queue.len(), 3, "credit[1] primed");
        assert_eq!(model.world.name(0), "coordinator");
        assert_eq!(model.world.name(2), "shard[1]");
    }
}
