//! `model_tool` — the bounded model checker's CLI.
//!
//! The CI lints job runs `model_tool check --smoke` beside `lint_tool
//! check`: a schedule in which the credit protocol deadlocks, loses a
//! wakeup, overfills a data queue or merges out of oracle order fails
//! the build with the offending schedule printed — and so does a
//! seeded mutant the explorer fails to catch, because a checker that
//! cannot kill its mutants proves nothing.
//!
//! Subcommands:
//!
//! * `check [--smoke|--full]` — run the [`tangram_model::check`]
//!   suite. Per row: threads, preemption bound, schedules explored,
//!   whether the bound was exhausted, and the verdict. Mutant rows
//!   print their minimal counter-example (decision vector plus step
//!   log). Exit 0 when the suite passes, 1 on any failure, 2 on usage
//!   errors. Truncation is never silent: a row that tripped its
//!   schedule budget says so and fails the suite.
//! * `mutants` — list the seeded mutants with their expected
//!   violation classes.

use std::process::ExitCode;

use tangram_model::check::{run_suite, Mode, RowOutcome, SMOKE_SCHEDULE_FLOOR};
use tangram_model::explorer::CounterExample;
use tangram_model::Mutant;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("check") => check(&args[1..]),
        Some("mutants") => {
            for mutant in [
                Mutant::DropCreditReturn,
                Mutant::UnboundedSend,
                Mutant::SkipCreditNotify,
                Mutant::DisconnectNotifyOne,
            ] {
                let expected = mutant.expected_violation().map_or("-", |kind| kind.label());
                println!(
                    "{:<24} {:<24} {}",
                    mutant.label(),
                    expected,
                    mutant.describe()
                );
            }
            ExitCode::SUCCESS
        }
        _ => {
            eprintln!("usage: model_tool check [--smoke|--full] | model_tool mutants");
            ExitCode::from(2)
        }
    }
}

fn check(args: &[String]) -> ExitCode {
    let mut mode = Mode::Smoke;
    for arg in args {
        match arg.as_str() {
            "--smoke" => mode = Mode::Smoke,
            "--full" => mode = Mode::Full,
            other => {
                eprintln!("model_tool: unknown argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }

    println!(
        "model_tool: exploring the credit protocol ({} mode)",
        mode.label()
    );
    let suite = run_suite(mode);

    println!(
        "{:<54} {:>7} {:>6} {:>10} {:>11}  verdict",
        "config", "threads", "bound", "schedules", "exhaustive"
    );
    for row in &suite.rows {
        // Exhaustion only means something for proofs; a row that
        // stopped because it found the counter-example it was hunting
        // is done, not truncated.
        let exhaustive = match &row.outcome {
            RowOutcome::MutantCaught(_) | RowOutcome::Violated(_) => "-",
            RowOutcome::Proved | RowOutcome::MutantMissed(_) => {
                if row.exhaustive {
                    "yes"
                } else {
                    "TRUNCATED"
                }
            }
        };
        let verdict = match &row.outcome {
            RowOutcome::Proved => "ok: all four properties hold".to_string(),
            RowOutcome::Violated(ce) => {
                format!("VIOLATED: {} — {}", ce.kind.label(), ce.detail)
            }
            RowOutcome::MutantCaught(ce) => format!(
                "caught: {} after {} preemption(s)",
                ce.kind.label(),
                ce.preemptions
            ),
            RowOutcome::MutantMissed(why) => format!("MISSED: {why}"),
        };
        println!(
            "{:<54} {:>7} {:>6} {:>10} {:>11}  {verdict}",
            row.name, row.threads, row.bound, row.schedules, exhaustive
        );
    }

    // Counter-examples in full, after the table: the failing schedule
    // for anything broken, the minimal witness for every caught mutant.
    for row in &suite.rows {
        match &row.outcome {
            RowOutcome::Violated(ce) => print_counter_example(&row.name, ce),
            RowOutcome::MutantCaught(ce) => print_counter_example(&row.name, ce),
            RowOutcome::Proved | RowOutcome::MutantMissed(_) => {}
        }
    }

    println!(
        "total: {} schedules across {} configs",
        suite.total_schedules,
        suite.rows.len()
    );
    if mode == Mode::Smoke {
        println!(
            "smoke floor: {} (explored {})",
            SMOKE_SCHEDULE_FLOOR, suite.total_schedules
        );
    }
    if suite.ok() {
        println!("model_tool: OK — protocol proved within bounds, all mutants caught");
        ExitCode::SUCCESS
    } else {
        eprintln!("model_tool: FAILED (see table above)");
        ExitCode::FAILURE
    }
}

/// Prints one counter-example: violation, decision vector, step log.
fn print_counter_example(name: &str, ce: &CounterExample) {
    println!();
    println!("--- {name}: {} ({})", ce.kind.label(), ce.detail);
    println!(
        "    schedule ({} decisions, {} preemption(s)): {:?}",
        ce.schedule.len(),
        ce.preemptions,
        ce.schedule
    );
    for line in &ce.log {
        println!("    {line}");
    }
}
