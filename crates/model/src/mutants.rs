//! The seeded protocol mutants: deliberately broken variants of the
//! credit protocol and the channel discipline that the explorer must
//! catch. Each mutant is one switch point in the extracted model — a
//! single dropped action, exactly the kind of one-line mistake a
//! refactor of `crates/core/src/shard.rs` or `vendor/crossbeam` could
//! introduce — with a documented expected violation. A mutant the
//! explorer misses is a hole in the checker, and the suite treats it as
//! a failure.

use crate::sched::ViolationKind;

/// Which (if any) seeded fault a model run carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mutant {
    /// The faithful model: the discipline actually implemented by
    /// `shard.rs` and the vendored channel.
    None,
    /// The coordinator skips the credit return for messages it demux-
    /// buffers for another camera (the easy-to-miss path in
    /// `ShardSet::next_for`). Each buffered message leaks one credit;
    /// with a dead camera and a small window the shard starves and the
    /// run deadlocks.
    DropCreditReturn,
    /// The producer sends without taking a credit first (the
    /// `credits.recv()` in `shard_main` deleted). The data queue grows
    /// past `CREDIT_WINDOW` and the occupancy bound trips.
    UnboundedSend,
    /// The coordinator pushes a returned credit but never notifies the
    /// channel's condvar. A producer parked waiting for that credit
    /// sleeps forever next to a non-empty queue — the textbook lost
    /// wakeup.
    SkipCreditNotify,
    /// The vendored channel's last-sender drop uses `notify_one`
    /// instead of `notify_all`. With two or more receivers parked at
    /// disconnect, all but one are never told the channel is dead.
    DisconnectNotifyOne,
}

impl Mutant {
    /// Stable kebab-case identifier (printed by `model_tool`).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Mutant::None => "none",
            Mutant::DropCreditReturn => "drop-credit-return",
            Mutant::UnboundedSend => "unbounded-send",
            Mutant::SkipCreditNotify => "skip-credit-notify",
            Mutant::DisconnectNotifyOne => "disconnect-notify-one",
        }
    }

    /// The violation class the explorer is expected to report for this
    /// mutant (`None` for the faithful model, which must be clean).
    #[must_use]
    pub fn expected_violation(self) -> Option<ViolationKind> {
        match self {
            Mutant::None => None,
            Mutant::DropCreditReturn => Some(ViolationKind::Deadlock),
            Mutant::UnboundedSend => Some(ViolationKind::Occupancy),
            Mutant::SkipCreditNotify | Mutant::DisconnectNotifyOne => {
                Some(ViolationKind::LostWakeup)
            }
        }
    }

    /// One-line description of the seeded fault.
    #[must_use]
    pub fn describe(self) -> &'static str {
        match self {
            Mutant::None => "faithful model, no seeded fault",
            Mutant::DropCreditReturn => "coordinator keeps the credit for demux-buffered messages",
            Mutant::UnboundedSend => "producer sends without taking a credit",
            Mutant::SkipCreditNotify => "credit return pushes without notifying the condvar",
            Mutant::DisconnectNotifyOne => "last-sender drop notifies one receiver, not all",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_unique_and_expectations_cover_all_mutants() {
        let all = [
            Mutant::None,
            Mutant::DropCreditReturn,
            Mutant::UnboundedSend,
            Mutant::SkipCreditNotify,
            Mutant::DisconnectNotifyOne,
        ];
        for (i, a) in all.iter().enumerate() {
            for b in &all[i + 1..] {
                assert_ne!(a.label(), b.label());
            }
        }
        assert!(Mutant::None.expected_violation().is_none());
        for m in &all[1..] {
            assert!(
                m.expected_violation().is_some(),
                "{} has no expectation",
                m.label()
            );
        }
    }
}
