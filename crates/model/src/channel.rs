//! Micro-op state machines for the vendored channel's operations.
//!
//! Each op mirrors one method of `vendor/crossbeam/src/lib.rs` at the
//! granularity that matters for schedule exploration: lock acquisition
//! is one (possibly blocking) step, the critical-section body plus the
//! unlock is one atomic step (the vendored code holds the lock for a
//! handful of straight-line instructions, so nothing can interleave
//! inside it), and the *notify after unlock* is its own step — that
//! separation is the whole point, because the unlock→notify window is
//! where a racing waiter can park between the state change and the
//! wakeup, and the checker must explore both orders.
//!
//! The op enums also carry the seeded-mutant switch points:
//! [`NotifyOnSend`] and [`NotifyOnDisconnect`] select between the
//! vendored discipline and a deliberately broken one, so the explorer
//! can demonstrate it distinguishes the two.

use crate::sched::{ChanId, Chooser, ThreadId, ViolationKind, World};

/// `send`'s post-push notification discipline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NotifyOnSend {
    /// The vendored behavior: `notify_one` after every push.
    One,
    /// Mutant: skip the notify entirely (models a dropped wakeup).
    Skip,
}

/// `Sender::drop`'s last-sender notification discipline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NotifyOnDisconnect {
    /// The vendored behavior: `notify_all` when `senders` hits 0, so
    /// every parked receiver observes the disconnect.
    All,
    /// Mutant: `notify_one` instead — with two or more parked
    /// receivers, all but one sleep forever.
    One,
}

/// What a completed receive produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Recv {
    /// A message.
    Msg(u64),
    /// Empty queue and no live senders.
    Disconnected,
}

/// `Sender::send`: lock → push + unlock → notify, as three explorer
/// steps (the first may block on the lock).
#[derive(Debug)]
pub struct SendOp {
    chan: ChanId,
    value: u64,
    notify: NotifyOnSend,
    stage: SendStage,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SendStage {
    Lock,
    Push,
    Notify,
    Done,
}

impl SendOp {
    /// A fresh send of `value` into `chan`.
    #[must_use]
    pub fn new(chan: ChanId, value: u64, notify: NotifyOnSend) -> SendOp {
        SendOp {
            chan,
            value,
            notify,
            stage: SendStage::Lock,
        }
    }

    /// One atomic step; returns `true` once the send is complete.
    pub fn step(&mut self, world: &mut World, chooser: &mut dyn Chooser, tid: ThreadId) -> bool {
        match self.stage {
            SendStage::Lock => {
                let mutex = world.chan(self.chan).mutex;
                if world.acquire(mutex, tid) {
                    self.stage = SendStage::Push;
                }
                // Whether it acquired or parked, that was the step.
                false
            }
            SendStage::Push => {
                let mutex = world.chan(self.chan).mutex;
                let state = world.chan_mut(self.chan);
                state.queue.push_back(self.value);
                let depth = state.queue.len();
                let bound = state.bound;
                if world.is_recording() {
                    let label = world.chan(self.chan).label.clone();
                    world.record(
                        tid,
                        &format!("pushes {} into {label} (depth {depth})", self.value),
                    );
                }
                if let Some(bound) = bound {
                    if depth > bound {
                        let label = world.chan(self.chan).label.clone();
                        world.fail(
                            ViolationKind::Occupancy,
                            format!("{label} holds {depth} messages, bound {bound}"),
                        );
                    }
                }
                world.release(mutex, tid, chooser);
                self.stage = SendStage::Notify;
                false
            }
            SendStage::Notify => {
                let ready = world.chan(self.chan).ready;
                match self.notify {
                    NotifyOnSend::One => {
                        world.record(tid, "notifies one receiver");
                        world.notify_one(ready, chooser);
                    }
                    NotifyOnSend::Skip => {
                        world.record(tid, "SKIPS the post-send notify (mutant)");
                    }
                }
                self.stage = SendStage::Done;
                true
            }
            SendStage::Done => true,
        }
    }
}

/// `Receiver::recv`: lock → loop { pop / disconnect-check / wait }, at
/// the vendored granularity. Waking from the condvar re-enters the
/// check holding the lock, exactly like the real `wait` loop.
#[derive(Debug)]
pub struct RecvOp {
    chan: ChanId,
    stage: RecvStage,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RecvStage {
    Lock,
    Check,
    Done,
}

impl RecvOp {
    /// A fresh receive from `chan`.
    #[must_use]
    pub fn new(chan: ChanId) -> RecvOp {
        RecvOp {
            chan,
            stage: RecvStage::Lock,
        }
    }

    /// One atomic step; `Some(result)` once the receive completes.
    pub fn step(
        &mut self,
        world: &mut World,
        chooser: &mut dyn Chooser,
        tid: ThreadId,
    ) -> Option<Recv> {
        match self.stage {
            RecvStage::Lock => {
                let mutex = world.chan(self.chan).mutex;
                if world.acquire(mutex, tid) {
                    self.stage = RecvStage::Check;
                }
                None
            }
            RecvStage::Check => {
                // A woken waiter re-enters here already holding the lock
                // (the wake hand-off in `World::wake` reacquired it).
                let mutex = world.chan(self.chan).mutex;
                let ready = world.chan(self.chan).ready;
                let state = world.chan_mut(self.chan);
                if let Some(value) = state.queue.pop_front() {
                    if world.is_recording() {
                        let label = world.chan(self.chan).label.clone();
                        world.record(tid, &format!("pops {value} from {label}"));
                    }
                    world.release(mutex, tid, chooser);
                    self.stage = RecvStage::Done;
                    return Some(Recv::Msg(value));
                }
                if state.senders == 0 {
                    if world.is_recording() {
                        let label = world.chan(self.chan).label.clone();
                        world.record(tid, &format!("sees {label} disconnected"));
                    }
                    world.release(mutex, tid, chooser);
                    self.stage = RecvStage::Done;
                    return Some(Recv::Disconnected);
                }
                // Empty and still connected: park. The wake path makes
                // the thread runnable holding the lock, and the next
                // step re-runs this check — the vendored wait loop.
                world.wait(ready, mutex, tid, chooser);
                None
            }
            RecvStage::Done => None,
        }
    }
}

/// `Sender::drop`: lock → decrement + unlock → (last sender only)
/// notify. The notify discipline is the [`NotifyOnDisconnect`] switch.
#[derive(Debug)]
pub struct DropSenderOp {
    chan: ChanId,
    notify: NotifyOnDisconnect,
    stage: DropStage,
    was_last: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DropStage {
    Lock,
    Update,
    Notify,
    Done,
}

impl DropSenderOp {
    /// A fresh sender-handle drop on `chan`.
    #[must_use]
    pub fn new(chan: ChanId, notify: NotifyOnDisconnect) -> DropSenderOp {
        DropSenderOp {
            chan,
            notify,
            stage: DropStage::Lock,
            was_last: false,
        }
    }

    /// One atomic step; returns `true` once the drop is complete.
    pub fn step(&mut self, world: &mut World, chooser: &mut dyn Chooser, tid: ThreadId) -> bool {
        match self.stage {
            DropStage::Lock => {
                let mutex = world.chan(self.chan).mutex;
                if world.acquire(mutex, tid) {
                    self.stage = DropStage::Update;
                }
                false
            }
            DropStage::Update => {
                let mutex = world.chan(self.chan).mutex;
                let state = world.chan_mut(self.chan);
                state.senders -= 1;
                self.was_last = state.senders == 0;
                if world.is_recording() {
                    let state = world.chan(self.chan);
                    let line = format!("drops a {} sender ({} left)", state.label, state.senders);
                    world.record(tid, &line);
                }
                world.release(mutex, tid, chooser);
                self.stage = if self.was_last {
                    DropStage::Notify
                } else {
                    DropStage::Done
                };
                !self.was_last
            }
            DropStage::Notify => {
                let ready = world.chan(self.chan).ready;
                match self.notify {
                    NotifyOnDisconnect::All => {
                        world.record(tid, "last sender notifies ALL receivers");
                        world.notify_all(ready);
                    }
                    NotifyOnDisconnect::One => {
                        world.record(tid, "last sender notifies only ONE receiver (mutant)");
                        world.notify_one(ready, chooser);
                    }
                }
                self.stage = DropStage::Done;
                true
            }
            DropStage::Done => true,
        }
    }
}

/// `Receiver::drop`: lock → decrement + unlock. No notify — senders
/// never block in the vendored channel, so there is nobody to wake.
#[derive(Debug)]
pub struct DropReceiverOp {
    chan: ChanId,
    stage: DropStage,
}

impl DropReceiverOp {
    /// A fresh receiver-handle drop on `chan`.
    #[must_use]
    pub fn new(chan: ChanId) -> DropReceiverOp {
        DropReceiverOp {
            chan,
            stage: DropStage::Lock,
        }
    }

    /// One atomic step; returns `true` once the drop is complete.
    pub fn step(&mut self, world: &mut World, chooser: &mut dyn Chooser, tid: ThreadId) -> bool {
        match self.stage {
            DropStage::Lock => {
                let mutex = world.chan(self.chan).mutex;
                if world.acquire(mutex, tid) {
                    self.stage = DropStage::Update;
                }
                false
            }
            DropStage::Update => {
                let mutex = world.chan(self.chan).mutex;
                let state = world.chan_mut(self.chan);
                state.receivers -= 1;
                if world.is_recording() {
                    let state = world.chan(self.chan);
                    let line = format!(
                        "drops a {} receiver ({} left)",
                        state.label, state.receivers
                    );
                    world.record(tid, &line);
                }
                world.release(mutex, tid, chooser);
                self.stage = DropStage::Done;
                true
            }
            DropStage::Notify | DropStage::Done => true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Fifo;
    impl Chooser for Fifo {
        fn choose(&mut self, _options: usize) -> usize {
            0
        }
    }

    /// Drives an op to completion with no contention.
    fn drain_send(world: &mut World, tid: ThreadId, mut op: SendOp) {
        let mut chooser = Fifo;
        for _ in 0..8 {
            if op.step(world, &mut chooser, tid) {
                return;
            }
        }
        panic!("send never completed");
    }

    #[test]
    fn uncontended_send_then_recv_round_trips() {
        let mut w = World::new(false);
        let t = w.add_thread("t");
        let c = w.add_channel("data", 1, 1, None);
        drain_send(&mut w, t, SendOp::new(c, 42, NotifyOnSend::One));
        assert_eq!(w.chan(c).queue.len(), 1);
        let mut recv = RecvOp::new(c);
        let mut chooser = Fifo;
        let mut got = None;
        for _ in 0..8 {
            if let Some(result) = recv.step(&mut w, &mut chooser, t) {
                got = Some(result);
                break;
            }
        }
        assert_eq!(got, Some(Recv::Msg(42)));
        assert!(w.chan(c).queue.is_empty());
    }

    #[test]
    fn occupancy_bound_trips_on_overfull_queue() {
        let mut w = World::new(false);
        let t = w.add_thread("t");
        let c = w.add_channel("data", 1, 1, Some(1));
        drain_send(&mut w, t, SendOp::new(c, 1, NotifyOnSend::One));
        assert!(w.violation.is_none());
        drain_send(&mut w, t, SendOp::new(c, 2, NotifyOnSend::One));
        let (kind, _) = w.violation.clone().expect("second push exceeds the bound");
        assert_eq!(kind, ViolationKind::Occupancy);
    }

    #[test]
    fn recv_on_disconnected_empty_channel_reports_disconnect() {
        let mut w = World::new(false);
        let t = w.add_thread("t");
        let c = w.add_channel("data", 0, 1, None);
        let mut recv = RecvOp::new(c);
        let mut chooser = Fifo;
        let mut got = None;
        for _ in 0..8 {
            if let Some(result) = recv.step(&mut w, &mut chooser, t) {
                got = Some(result);
                break;
            }
        }
        assert_eq!(got, Some(Recv::Disconnected));
    }
}
