//! `tangram-model` — a hand-rolled, loom-style bounded model checker
//! for the sharded runtime's credit protocol and the vendored channel
//! discipline.
//!
//! The sharded runtime (`crates/core/src/shard.rs`) claims four
//! properties that no unit test can establish, because they quantify
//! over *schedules*, not inputs: the credit protocol never deadlocks,
//! never loses a wakeup, never lets a data queue grow past
//! `CREDIT_WINDOW`, and always merges captures in the 1-shard oracle
//! order. This crate checks those claims the way loom or CHESS would —
//! but hand-rolled, because the workspace vendors every dependency:
//!
//! * [`sched`] — mock mutexes, condvars and channel state stepped one
//!   atomic action at a time, with every nondeterministic choice
//!   (thread to run, waiter to wake, contender to hand a lock to)
//!   routed through a single [`sched::Chooser`];
//! * [`channel`] — the vendored crossbeam channel's operations as
//!   micro-op state machines, preserving the unlock→notify race
//!   window that makes notification disciplines worth checking;
//! * [`protocol`] — the extracted model: per-shard producers and the
//!   demux/merge coordinator mirroring `ShardSet` line for line, plus
//!   a standalone channel model;
//! * [`explorer`] — stateless DFS over decision vectors with CHESS-
//!   style preemption bounding and honest truncation reporting;
//! * [`mutants`] — seeded one-line protocol breakages the explorer
//!   must catch, each with its documented violation class;
//! * [`check`] — the fixed suite (`model_tool check --smoke` in CI's
//!   lints job; `--full` from the ignored exhaustive test).
//!
//! The model shares its constants with the runtime through
//! [`tangram_types::credit`], so a window change in one place is a
//! window change in both. What the model does *not* share is code:
//! it is an extracted abstraction, and `docs/ARCHITECTURE.md`'s
//! "Concurrency model checking" section records the correspondence
//! argument and its limits.

pub mod channel;
pub mod check;
pub mod explorer;
pub mod mutants;
pub mod protocol;
pub mod sched;

pub use check::{run_suite, Mode, SuiteResult};
pub use explorer::{CounterExample, Explorer};
pub use mutants::Mutant;
pub use sched::ViolationKind;
