//! The ten PANDA4K-calibrated scene profiles.
//!
//! Each profile pins the synthetic workload to the statistics the paper
//! reports for the corresponding real scene:
//!
//! * Table I — scene name, frame count, number of distinct persons, mean
//!   RoI area proportion, non-RoI inference-time share ("redundancy");
//! * Table III — full-frame AP@0.5 of the 4K-trained Yolov8x, which we use
//!   as the scene's base detection difficulty;
//! * Fig. 2a — server-driven / content-aware APs for the five motivation
//!   scenes;
//! * Fig. 8 — the number of evaluation frames per scene.
//!
//! Parameters that the paper does not report directly (cluster counts,
//! spatial spread, walking speed) are chosen so that the derived
//! statistics — patches per frame (Fig. 10a), canvas coverage (Table II),
//! RoI-size scatter (Fig. 4a) — land in the paper's ranges.

use serde::{Deserialize, Serialize};
use tangram_types::geometry::Size;
use tangram_types::ids::SceneId;

/// Static description of one synthetic scene.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SceneProfile {
    /// Which of the ten scenes this is.
    pub id: u8,
    /// Human-readable scene name from Table I.
    pub name: &'static str,
    /// Logical frame resolution (PANDA4K: 3840×2160).
    pub frame_size: Size,
    /// Total frames in the scene's clip (Table I).
    pub total_frames: u32,
    /// Frames used by the paper's cost/bandwidth evaluation (Fig. 8).
    pub eval_frames: u32,
    /// Number of distinct person tracks over the whole clip (Table I).
    pub person_tracks: u32,
    /// Mean fraction of the frame area covered by RoIs (Table I, "Prop△").
    pub roi_proportion: f64,
    /// Non-RoI share of full-frame inference time (Table I, "Redundancy♢").
    pub redundancy: f64,
    /// Full-frame AP@0.5 of the 4K-trained detector (Table III, "Full").
    pub full_frame_ap: f64,
    /// Server-driven baseline AP (Fig. 2a; motivation scenes 1–5 only).
    pub server_driven_ap: Option<f64>,
    /// Content-aware baseline AP (Fig. 2a; motivation scenes 1–5 only).
    pub content_aware_ap: Option<f64>,

    // ---- dynamics parameters (chosen, see module docs) ----
    /// Mean number of simultaneously visible objects.
    pub concurrent_objects: u32,
    /// Number of spatial clusters objects congregate around.
    pub cluster_count: u32,
    /// Std-dev of object positions around their cluster centre (px at 4K).
    pub cluster_spread: f64,
    /// Mean pedestrian speed in px/frame at 4K.
    pub walk_speed: f64,
    /// Expected spawns (and despawns) per frame, producing track churn.
    pub churn_per_frame: f64,
    /// Relative amplitude of slow workload oscillation (Fig. 3a).
    pub fluctuation_amplitude: f64,
    /// Probability per frame of a burst of extra arrivals (Fig. 3a peaks).
    pub burst_probability: f64,
}

impl SceneProfile {
    /// The profile for `scene_01` … `scene_10`.
    #[must_use]
    pub fn panda(id: SceneId) -> &'static SceneProfile {
        &PANDA_SCENES[id.array_index()]
    }

    /// All ten profiles in scene order.
    #[must_use]
    pub fn all() -> &'static [SceneProfile; 10] {
        &PANDA_SCENES
    }

    /// Mean pixel area of a single object implied by the calibration
    /// (`roi_proportion × frame_area / concurrent_objects`).
    #[must_use]
    pub fn mean_object_area(&self) -> f64 {
        self.roi_proportion * self.frame_size.area() as f64 / f64::from(self.concurrent_objects)
    }

    /// Mean object width implied by [`Self::mean_object_area`] and the
    /// pedestrian aspect ratio (height ≈ 2 × width).
    ///
    /// The 0.8 factor compensates for the second moments of the size model
    /// (lognormal width², perspective², aspect) so that the *realised*
    /// mean RoI proportion matches [`Self::roi_proportion`]; it was fitted
    /// empirically against the generator.
    #[must_use]
    pub fn mean_object_width(&self) -> f64 {
        (self.mean_object_area() / 2.0).sqrt() * 0.8
    }

    /// Expected object lifetime in frames (`concurrent / churn`).
    #[must_use]
    pub fn mean_lifetime_frames(&self) -> f64 {
        if self.churn_per_frame <= 0.0 {
            f64::INFINITY
        } else {
            f64::from(self.concurrent_objects) / self.churn_per_frame
        }
    }

    /// The scene id as a [`SceneId`].
    #[must_use]
    pub fn scene_id(&self) -> SceneId {
        SceneId::new(self.id)
    }
}

/// 4K frame size shared by all profiles.
const FRAME_4K: Size = Size::UHD_4K;

/// Calibration table. Columns 2–7 are copied from the paper (Tables I,
/// III; Figs. 2a, 8); the dynamics columns are fitted as described in the
/// module docs.
// Some fitted churn rates happen to land near π/τ; they are workload
// calibration data, not trigonometry.
#[allow(clippy::approx_constant)]
static PANDA_SCENES: [SceneProfile; 10] = [
    SceneProfile {
        id: 1,
        name: "University Canteen",
        frame_size: FRAME_4K,
        total_frames: 234,
        eval_frames: 134,
        person_tracks: 123,
        roi_proportion: 0.054_510,
        redundancy: 0.123_9,
        full_frame_ap: 0.572,
        server_driven_ap: Some(0.50),
        content_aware_ap: Some(0.54),
        concurrent_objects: 40,
        cluster_count: 4,
        cluster_spread: 420.0,
        walk_speed: 9.0,
        churn_per_frame: 0.35,
        fluctuation_amplitude: 0.18,
        burst_probability: 0.015,
    },
    SceneProfile {
        id: 2,
        name: "OCT Habour",
        frame_size: FRAME_4K,
        total_frames: 234,
        eval_frames: 134,
        person_tracks: 191,
        roi_proportion: 0.083_141,
        redundancy: 0.112_8,
        full_frame_ap: 0.767,
        server_driven_ap: Some(0.61),
        content_aware_ap: Some(0.63),
        concurrent_objects: 60,
        cluster_count: 5,
        cluster_spread: 520.0,
        walk_speed: 10.0,
        churn_per_frame: 0.56,
        fluctuation_amplitude: 0.15,
        burst_probability: 0.012,
    },
    SceneProfile {
        id: 3,
        name: "Xili Crossroad",
        frame_size: FRAME_4K,
        total_frames: 234,
        eval_frames: 134,
        person_tracks: 393,
        roi_proportion: 0.059_132,
        redundancy: 0.092_4,
        full_frame_ap: 0.576,
        server_driven_ap: Some(0.39),
        content_aware_ap: Some(0.43),
        concurrent_objects: 90,
        cluster_count: 6,
        cluster_spread: 600.0,
        walk_speed: 12.0,
        churn_per_frame: 1.29,
        fluctuation_amplitude: 0.22,
        burst_probability: 0.02,
    },
    SceneProfile {
        id: 4,
        name: "Primary School",
        frame_size: FRAME_4K,
        total_frames: 148,
        eval_frames: 48,
        person_tracks: 119,
        roi_proportion: 0.141_561,
        redundancy: 0.154_3,
        full_frame_ap: 0.964,
        server_driven_ap: Some(0.53),
        content_aware_ap: Some(0.67),
        concurrent_objects: 35,
        cluster_count: 5,
        cluster_spread: 780.0,
        walk_speed: 8.0,
        churn_per_frame: 0.57,
        fluctuation_amplitude: 0.12,
        burst_probability: 0.01,
    },
    SceneProfile {
        id: 5,
        name: "Basketball Court",
        frame_size: FRAME_4K,
        total_frames: 133,
        eval_frames: 33,
        person_tracks: 54,
        roi_proportion: 0.050_354,
        redundancy: 0.154_3,
        full_frame_ap: 0.899,
        server_driven_ap: Some(0.53),
        content_aware_ap: Some(0.72),
        concurrent_objects: 18,
        cluster_count: 3,
        cluster_spread: 500.0,
        walk_speed: 14.0,
        churn_per_frame: 0.27,
        fluctuation_amplitude: 0.20,
        burst_probability: 0.015,
    },
    SceneProfile {
        id: 6,
        name: "Xinzhongguan",
        frame_size: FRAME_4K,
        total_frames: 222,
        eval_frames: 122,
        person_tracks: 857,
        roi_proportion: 0.052_316,
        redundancy: 0.109_3,
        full_frame_ap: 0.686,
        server_driven_ap: None,
        content_aware_ap: None,
        concurrent_objects: 160,
        cluster_count: 7,
        cluster_spread: 680.0,
        walk_speed: 10.0,
        churn_per_frame: 3.14,
        fluctuation_amplitude: 0.14,
        burst_probability: 0.02,
    },
    SceneProfile {
        id: 7,
        name: "University Campus",
        frame_size: FRAME_4K,
        total_frames: 180,
        eval_frames: 80,
        person_tracks: 123,
        roi_proportion: 0.025_860,
        redundancy: 0.103_1,
        full_frame_ap: 0.698,
        server_driven_ap: None,
        content_aware_ap: None,
        concurrent_objects: 30,
        cluster_count: 4,
        cluster_spread: 540.0,
        walk_speed: 9.0,
        churn_per_frame: 0.52,
        fluctuation_amplitude: 0.25,
        burst_probability: 0.02,
    },
    SceneProfile {
        id: 8,
        name: "Xili Street 1",
        frame_size: FRAME_4K,
        total_frames: 234,
        eval_frames: 134,
        person_tracks: 325,
        roi_proportion: 0.096_297,
        redundancy: 0.106_5,
        full_frame_ap: 0.638,
        server_driven_ap: None,
        content_aware_ap: None,
        concurrent_objects: 80,
        cluster_count: 6,
        cluster_spread: 640.0,
        walk_speed: 11.0,
        churn_per_frame: 1.05,
        fluctuation_amplitude: 0.16,
        burst_probability: 0.015,
    },
    SceneProfile {
        id: 9,
        name: "Xili Street 2",
        frame_size: FRAME_4K,
        total_frames: 234,
        eval_frames: 134,
        person_tracks: 152,
        roi_proportion: 0.087_498,
        redundancy: 0.092_5,
        full_frame_ap: 0.598,
        server_driven_ap: None,
        content_aware_ap: None,
        concurrent_objects: 50,
        cluster_count: 5,
        cluster_spread: 560.0,
        walk_speed: 10.0,
        churn_per_frame: 0.44,
        fluctuation_amplitude: 0.17,
        burst_probability: 0.015,
    },
    SceneProfile {
        id: 10,
        name: "Huaqiangbei",
        frame_size: FRAME_4K,
        total_frames: 234,
        eval_frames: 134,
        person_tracks: 1730,
        roi_proportion: 0.096_732,
        redundancy: 0.091_6,
        full_frame_ap: 0.634,
        server_driven_ap: None,
        content_aware_ap: None,
        concurrent_objects: 260,
        cluster_count: 8,
        cluster_spread: 720.0,
        walk_speed: 9.0,
        churn_per_frame: 6.28,
        fluctuation_amplitude: 0.13,
        burst_probability: 0.02,
    },
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ten_profiles_in_order() {
        let all = SceneProfile::all();
        for (i, p) in all.iter().enumerate() {
            assert_eq!(p.id as usize, i + 1);
            assert_eq!(p.frame_size, Size::UHD_4K);
        }
    }

    #[test]
    fn lookup_by_scene_id() {
        let p = SceneProfile::panda(SceneId::new(4));
        assert_eq!(p.name, "Primary School");
        assert_eq!(p.total_frames, 148);
        assert_eq!(p.scene_id(), SceneId::new(4));
    }

    #[test]
    fn table1_proportions_in_paper_range() {
        for p in SceneProfile::all() {
            assert!(
                (0.02..0.15).contains(&p.roi_proportion),
                "{}: proportion {}",
                p.name,
                p.roi_proportion
            );
            assert!((0.08..0.16).contains(&p.redundancy));
        }
    }

    #[test]
    fn motivation_scenes_have_baseline_aps() {
        for p in &SceneProfile::all()[..5] {
            assert!(p.server_driven_ap.is_some());
            assert!(p.content_aware_ap.is_some());
            // Fig. 2a: both baselines lose accuracy vs full frame.
            assert!(p.server_driven_ap.unwrap() < p.full_frame_ap + 1e-9);
        }
        for p in &SceneProfile::all()[5..] {
            assert!(p.server_driven_ap.is_none());
        }
    }

    #[test]
    fn derived_object_sizes_match_fig4a_scale() {
        // Fig. 4a: RoI widths up to ~250 px, heights up to ~400 px at 4K.
        for p in SceneProfile::all() {
            let w = p.mean_object_width();
            assert!((20.0..200.0).contains(&w), "{}: mean width {w}", p.name);
        }
    }

    #[test]
    fn churn_reproduces_track_counts() {
        // Spawns over the clip + initial population ≈ person_tracks.
        for p in SceneProfile::all() {
            let expected =
                f64::from(p.concurrent_objects) + p.churn_per_frame * f64::from(p.total_frames);
            let ratio = expected / f64::from(p.person_tracks);
            assert!(
                (0.7..1.4).contains(&ratio),
                "{}: expected {expected:.0} tracks vs paper {}",
                p.name,
                p.person_tracks
            );
        }
    }

    #[test]
    fn lifetime_is_finite_and_positive() {
        for p in SceneProfile::all() {
            let l = p.mean_lifetime_frames();
            assert!(l > 10.0 && l < 1000.0, "{}: lifetime {l}", p.name);
        }
    }
}
