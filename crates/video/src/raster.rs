//! Deterministic grayscale frame rendering.
//!
//! The renderer exists to feed the *real* background-subtraction pipeline
//! in `tangram-vision`: a static textured background plus moving textured
//! objects plus per-frame sensor noise is exactly the signal a
//! Stauffer–Grimson mixture model is designed for. Rendering happens at a
//! configurable downscale of the logical 4K frame (real deployments also
//! run background subtraction on downsampled video).
//!
//! All texture and noise comes from counter-based hashes, so a frame is a
//! pure function of `(scene seed, frame index)` — no RNG stream state.

use serde::{Deserialize, Serialize};
use tangram_types::geometry::{Rect, Size};

use crate::object::GtObject;

/// A grayscale image at the renderer's (downscaled) resolution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Raster {
    width: u32,
    height: u32,
    /// Scale of this raster relative to logical 4K coordinates.
    scale: f64,
    data: Vec<u8>,
}

impl Raster {
    /// Creates a raster filled with `fill`.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    #[must_use]
    pub fn filled(width: u32, height: u32, scale: f64, fill: u8) -> Self {
        assert!(width > 0 && height > 0, "raster must be non-empty");
        Self {
            width,
            height,
            scale,
            data: vec![fill; width as usize * height as usize],
        }
    }

    /// Image width in raster pixels.
    #[must_use]
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Image height in raster pixels.
    #[must_use]
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Raster size.
    #[must_use]
    pub fn size(&self) -> Size {
        Size::new(self.width, self.height)
    }

    /// Scale of raster pixels relative to logical frame pixels.
    #[must_use]
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Pixel value at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics when out of bounds.
    #[must_use]
    pub fn get(&self, x: u32, y: u32) -> u8 {
        assert!(
            x < self.width && y < self.height,
            "pixel ({x},{y}) out of bounds"
        );
        self.data[y as usize * self.width as usize + x as usize]
    }

    /// Sets the pixel value at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics when out of bounds.
    pub fn set(&mut self, x: u32, y: u32, v: u8) {
        assert!(
            x < self.width && y < self.height,
            "pixel ({x},{y}) out of bounds"
        );
        self.data[y as usize * self.width as usize + x as usize] = v;
    }

    /// Raw row-major pixel data.
    #[must_use]
    pub fn pixels(&self) -> &[u8] {
        &self.data
    }

    /// Mean pixel intensity.
    #[must_use]
    pub fn mean_intensity(&self) -> f64 {
        self.data.iter().map(|&p| f64::from(p)).sum::<f64>() / self.data.len() as f64
    }
}

/// Renders frames of one scene: a fixed background plus per-frame objects.
#[derive(Debug, Clone)]
pub struct FrameRenderer {
    seed: u64,
    frame_size: Size,
    raster_size: Size,
    scale: f64,
    background: Vec<u8>,
    /// Std-dev of the per-frame sensor noise (intensity levels).
    pub noise_sigma: f64,
}

impl FrameRenderer {
    /// Creates a renderer for a scene.
    ///
    /// `scale` maps logical frame coordinates to raster pixels (e.g. `0.25`
    /// renders a 4K scene at 960×540).
    ///
    /// # Panics
    ///
    /// Panics if `scale` would produce an empty raster.
    #[must_use]
    pub fn new(seed: u64, frame_size: Size, scale: f64) -> Self {
        let raster_size = frame_size.scaled(scale);
        assert!(!raster_size.is_empty(), "raster scale too small");
        let mut background = vec![0u8; raster_size.area() as usize];
        for y in 0..raster_size.height {
            for x in 0..raster_size.width {
                background[(y * raster_size.width + x) as usize] = background_texel(seed, x, y);
            }
        }
        Self {
            seed,
            frame_size,
            raster_size,
            scale,
            background,
            noise_sigma: 2.5,
        }
    }

    /// The raster resolution this renderer produces.
    #[must_use]
    pub fn raster_size(&self) -> Size {
        self.raster_size
    }

    /// Renders frame `frame_index` containing `objects` (in logical
    /// coordinates).
    #[must_use]
    pub fn render(&self, frame_index: u64, objects: &[GtObject]) -> Raster {
        let mut raster = Raster {
            width: self.raster_size.width,
            height: self.raster_size.height,
            scale: self.scale,
            data: self.background.clone(),
        };
        for obj in objects {
            self.draw_object(&mut raster, obj);
        }
        self.apply_sensor_noise(&mut raster, frame_index);
        raster
    }

    fn draw_object(&self, raster: &mut Raster, obj: &GtObject) {
        let scaled = obj.rect.scaled(self.scale);
        let bounds = Rect::from_size(self.raster_size);
        let Some(r) = scaled.clamped(&bounds) else {
            return;
        };
        // Per-object base shade chosen to contrast with the ~118 background.
        let shade = 42
            + (hash3(self.seed ^ obj.track, 1, 2) % 70) as i32
            + if obj.track.is_multiple_of(3) { 110 } else { 0 };
        for y in r.y..r.bottom() {
            for x in r.x..r.right() {
                // Clothing texture: low-amplitude per-pixel variation that
                // moves with the object (hash keyed by object-local coords).
                let lx = x - r.x;
                let ly = y - r.y;
                let tex =
                    (hash3(self.seed ^ obj.track, u64::from(lx), u64::from(ly)) % 25) as i32 - 12;
                raster.set(x, y, (shade + tex).clamp(0, 255) as u8);
            }
        }
    }

    fn apply_sensor_noise(&self, raster: &mut Raster, frame_index: u64) {
        if self.noise_sigma <= 0.0 {
            return;
        }
        // Approximate Gaussian noise as the sum of two uniform hashes
        // (triangular distribution, σ ≈ range/√6) — cheap and deterministic.
        let amp = (self.noise_sigma * 2.449).round().max(1.0) as i32; // √6 ≈ 2.449
        let key = self
            .seed
            .wrapping_mul(0x9e37_79b9)
            .wrapping_add(frame_index);
        for (i, px) in raster.data.iter_mut().enumerate() {
            let h = hash3(key, i as u64, 0);
            let n = ((h % (amp as u64 + 1)) as i32) + (((h >> 32) % (amp as u64 + 1)) as i32) - amp;
            *px = (i32::from(*px) + n).clamp(0, 255) as u8;
        }
    }

    /// Logical frame size this renderer was built for.
    #[must_use]
    pub fn frame_size(&self) -> Size {
        self.frame_size
    }
}

/// Static background texture: smooth large-scale structure (pavement,
/// shadows, buildings) plus fixed fine-grained texture.
fn background_texel(seed: u64, x: u32, y: u32) -> u8 {
    let fx = f64::from(x);
    let fy = f64::from(y);
    let phase = (seed % 628) as f64 / 100.0;
    let smooth = 24.0 * ((fx * 0.011 + phase).sin() * (fy * 0.007 + phase * 0.5).cos())
        + 10.0 * ((fx * 0.031).cos() + (fy * 0.023).sin());
    let grain = (hash3(seed, u64::from(x), u64::from(y)) % 17) as f64 - 8.0;
    (118.0 + smooth + grain).clamp(0.0, 255.0) as u8
}

/// A small counter-based mixing hash (xorshift-multiply), stable across
/// platforms.
fn hash3(a: u64, b: u64, c: u64) -> u64 {
    let mut x = a ^ b.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ c.wrapping_mul(0xc2b2_ae3d_27d4_eb4f);
    x ^= x >> 33;
    x = x.wrapping_mul(0xff51_afd7_ed55_8ccd);
    x ^= x >> 33;
    x = x.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    x ^ (x >> 33)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn renderer() -> FrameRenderer {
        FrameRenderer::new(9, Size::UHD_4K, 0.1)
    }

    #[test]
    fn raster_dimensions_follow_scale() {
        let r = renderer();
        assert_eq!(r.raster_size(), Size::new(384, 216));
        assert_eq!(r.frame_size(), Size::UHD_4K);
    }

    #[test]
    fn rendering_is_deterministic() {
        let r = renderer();
        let objs = vec![GtObject::new(3, Rect::new(400, 400, 300, 600))];
        assert_eq!(r.render(5, &objs), r.render(5, &objs));
    }

    #[test]
    fn different_frames_differ_only_by_noise() {
        let r = renderer();
        let a = r.render(1, &[]);
        let b = r.render(2, &[]);
        assert_ne!(a, b, "sensor noise must vary per frame");
        // But the mean intensity stays close to the background.
        assert!((a.mean_intensity() - b.mean_intensity()).abs() < 1.0);
    }

    #[test]
    fn objects_change_pixels_inside_their_box() {
        let mut quiet = renderer();
        quiet.noise_sigma = 0.0;
        let empty = quiet.render(0, &[]);
        let obj = GtObject::new(7, Rect::new(1000, 1000, 400, 800));
        let with_obj = quiet.render(0, &[obj]);
        let scaled = obj.rect.scaled(0.1);
        let mut changed = 0u32;
        for y in scaled.y..scaled.bottom().min(with_obj.height()) {
            for x in scaled.x..scaled.right().min(with_obj.width()) {
                if empty.get(x, y) != with_obj.get(x, y) {
                    changed += 1;
                }
            }
        }
        let total = scaled.area() as u32;
        assert!(
            changed > total * 7 / 10,
            "only {changed}/{total} pixels changed under the object"
        );
    }

    #[test]
    fn object_outside_frame_is_ignored() {
        let r = renderer();
        let far = GtObject::new(1, Rect::new(100_000, 100_000, 10, 10));
        // Must not panic.
        let _ = r.render(0, &[far]);
    }

    #[test]
    fn background_texture_has_structure() {
        let r = renderer();
        let img = r.render(0, &[]);
        let mean = img.mean_intensity();
        assert!((90.0..150.0).contains(&mean), "mean {mean}");
        // Not a flat image: some pixels deviate noticeably.
        let spread = img
            .pixels()
            .iter()
            .map(|&p| (f64::from(p) - mean).abs())
            .fold(0.0f64, f64::max);
        assert!(spread > 15.0, "background too flat (max dev {spread})");
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn get_out_of_bounds_panics() {
        let r = renderer().render(0, &[]);
        let _ = r.get(10_000, 0);
    }
}
