//! Transmission-size model (the "codec").
//!
//! The paper compares four transmission strategies whose byte costs differ
//! by *how* the pixels are encoded, not only how many pixels are sent:
//!
//! * **Full Frame** — each 4K frame sent as an individually-encoded
//!   detection-quality image ([`CodecModel::stream_bpp`] ≈ 2.4 bits/px,
//!   JPEG-quality-90 territory; the paper triggers "each frame as a
//!   single request", and its Fig. 14c transmission times imply megabytes
//!   per frame rather than a temporally-compressed stream).
//! * **Masked Frame** (AdaMask-style) — same resolution with non-RoIs
//!   masked. The flat masked background compresses nearly for free but
//!   mask boundaries add blocking artefacts, so Fig. 9 measures it at
//!   0.96–1.17× Full Frame. We model the overhead as a function of mask
//!   complexity.
//! * **Tangram patches** — crops JPEG-encoded on the edge at matched
//!   quality ([`CodecModel::crop_bpp`], slightly above the full-frame
//!   rate because small images amortise coding tables worse), covering
//!   only the partitioned regions — Table II's 19–95% of full-frame
//!   bytes.
//! * **ELF patches** — ELF ships *uncompressed* RGB crops
//!   ([`CodecModel::raw_crop_bpp`] = 24 bits/px) to avoid re-encoding
//!   latency on the mobile device; with per-patch container overhead this
//!   lands at the 1.1–3.9× of Fig. 9.
//!
//! The absolute constants are calibrations (the paper does not publish its
//! encoder settings); every comparison in the experiments is *relative* to
//! Full Frame, matching how the paper reports bandwidth.

use serde::{Deserialize, Serialize};
use tangram_types::geometry::{Rect, Size};
use tangram_types::units::Bytes;

/// Byte-cost model for every transmission strategy.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CodecModel {
    /// Bits per pixel of one individually-encoded full frame
    /// (detection-quality JPEG; a 4K frame ≈ 2.5 MB, which at 20 Mbps
    /// takes ≈ 1 s — the magnitude Fig. 14c reports).
    pub stream_bpp: f64,
    /// Bits per pixel of an edge-encoded patch crop at matched visual
    /// quality (small images amortise coding tables slightly worse).
    pub crop_bpp: f64,
    /// Bits per pixel of ELF's uncompressed RGB crops.
    pub raw_crop_bpp: f64,
    /// Fixed per-message container/metadata overhead for one patch upload
    /// (HTTP headers + patch info record).
    pub patch_header: Bytes,
    /// Base factor of the masked-frame stream relative to full frame.
    pub masked_base: f64,
    /// Additional masked-frame overhead per masked region (boundary
    /// blocking artefacts).
    pub masked_per_region: f64,
}

impl Default for CodecModel {
    fn default() -> Self {
        Self {
            stream_bpp: 2.4,
            crop_bpp: 2.6,
            raw_crop_bpp: 24.0,
            patch_header: Bytes::new(300),
            masked_base: 0.95,
            masked_per_region: 0.013,
        }
    }
}

impl CodecModel {
    /// Bytes for one full-resolution frame.
    ///
    /// ```
    /// # use tangram_types::geometry::Size;
    /// # use tangram_video::codec::CodecModel;
    /// let codec = CodecModel::default();
    /// let frame = codec.full_frame_bytes(Size::UHD_4K);
    /// // ≈ 8.29 Mpx × 2.4 bpp / 8 ≈ 2.5 MB.
    /// assert!((2_300_000..2_700_000).contains(&frame.get()));
    /// ```
    #[must_use]
    pub fn full_frame_bytes(&self, frame: Size) -> Bytes {
        Bytes::new((frame.area() as f64 * self.stream_bpp / 8.0).round() as u64)
    }

    /// Bytes for one masked frame (full resolution, non-RoIs masked),
    /// given the number of distinct masked regions.
    #[must_use]
    pub fn masked_frame_bytes(&self, frame: Size, regions: usize) -> Bytes {
        let factor = self.masked_base + self.masked_per_region * regions as f64;
        Bytes::new((self.full_frame_bytes(frame).get() as f64 * factor).round() as u64)
    }

    /// Bytes for one Tangram patch crop (edge re-encodes at stream-like
    /// quality).
    #[must_use]
    pub fn patch_bytes(&self, patch: Rect) -> Bytes {
        self.patch_header + Bytes::new((patch.area() as f64 * self.crop_bpp / 8.0).round() as u64)
    }

    /// Bytes for one ELF high-quality patch.
    #[must_use]
    pub fn elf_patch_bytes(&self, patch: Rect) -> Bytes {
        self.patch_header
            + Bytes::new((patch.area() as f64 * self.raw_crop_bpp / 8.0).round() as u64)
    }

    /// Total bytes for a set of Tangram patches.
    #[must_use]
    pub fn patches_bytes<'a, I: IntoIterator<Item = &'a Rect>>(&self, patches: I) -> Bytes {
        patches.into_iter().map(|p| self.patch_bytes(*p)).sum()
    }

    /// Total bytes for a set of ELF patches.
    #[must_use]
    pub fn elf_patches_bytes<'a, I: IntoIterator<Item = &'a Rect>>(&self, patches: I) -> Bytes {
        patches.into_iter().map(|p| self.elf_patch_bytes(*p)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn coverage_patches(frame: Size, coverage: f64, count: usize) -> Vec<Rect> {
        // `count` equal square patches totalling `coverage` of the frame.
        let per_patch = frame.area() as f64 * coverage / count as f64;
        let side = per_patch.sqrt() as u32;
        (0..count)
            .map(|i| Rect::new(i as u32 * side, 0, side, side))
            .collect()
    }

    #[test]
    fn tangram_patches_cheaper_than_full_frame() {
        // Table II: with ~20% coverage the patch bytes land well below the
        // full-frame stream.
        let codec = CodecModel::default();
        let frame = Size::UHD_4K;
        let patches = coverage_patches(frame, 0.20, 10);
        let ratio =
            codec.patches_bytes(&patches).get() as f64 / codec.full_frame_bytes(frame).get() as f64;
        assert!((0.2..0.5).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn elf_patches_exceed_full_frame() {
        // Fig. 9: ELF's high-quality crops cost 1.1–3.9× the stream.
        let codec = CodecModel::default();
        let frame = Size::UHD_4K;
        let patches = coverage_patches(frame, 0.20, 10);
        let ratio = codec.elf_patches_bytes(&patches).get() as f64
            / codec.full_frame_bytes(frame).get() as f64;
        assert!((1.1..4.5).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn masked_frame_close_to_full() {
        let codec = CodecModel::default();
        let frame = Size::UHD_4K;
        for regions in [4usize, 8, 12, 16] {
            let ratio = codec.masked_frame_bytes(frame, regions).get() as f64
                / codec.full_frame_bytes(frame).get() as f64;
            assert!(
                (0.9..1.25).contains(&ratio),
                "regions {regions}: ratio {ratio}"
            );
        }
    }

    #[test]
    fn finer_partitions_cost_less_per_byte_when_coverage_shrinks() {
        // Table II's trend is driven by coverage: 6×6 produces tighter
        // (smaller-area) patches than 2×2. More patches do add header
        // overhead, but coverage dominates.
        let codec = CodecModel::default();
        let frame = Size::UHD_4K;
        let coarse = codec.patches_bytes(&coverage_patches(frame, 0.33, 4));
        let fine = codec.patches_bytes(&coverage_patches(frame, 0.14, 24));
        assert!(fine < coarse);
    }

    #[test]
    fn header_dominates_tiny_patches() {
        let codec = CodecModel::default();
        let tiny = Rect::new(0, 0, 8, 8);
        let b = codec.patch_bytes(tiny);
        assert!(b.get() >= codec.patch_header.get());
        // 64 px at 2.6 bpp ≈ 21 bytes of payload vs 300 of header.
        assert!(b.get() < codec.patch_header.get() + 30);
    }
}
