//! The per-scene frame generator.
//!
//! [`SceneSimulation`] advances the walker population one frame at a time,
//! producing [`FrameTruth`] records: ground-truth boxes plus (optionally) a
//! rendered raster. The population size is modulated by a slow oscillation,
//! an AR(1) drift, and occasional bursts, reproducing the irregular
//! workload fluctuation of Fig. 3a; sizes and clustering reproduce the RoI
//! statistics of Table I and Fig. 4a.

use serde::{Deserialize, Serialize};
use tangram_sim::rng::DetRng;
use tangram_types::geometry::{Rect, Size};
use tangram_types::ids::{FrameId, SceneId};
use tangram_types::time::{SimDuration, SimTime};

use crate::object::{ClusterCenter, GtObject, Walker};
use crate::raster::{FrameRenderer, Raster};
use crate::scene::SceneProfile;

/// Configuration of the synthetic video stream.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct VideoConfig {
    /// Frames per second of the capture (PANDA clips are sampled sparsely;
    /// the paper's end-to-end runs pace arrivals by bandwidth, so a low
    /// rate keeps queues comparable).
    pub fps: f64,
    /// Raster resolution relative to the logical 4K frame.
    pub raster_scale: f64,
    /// Whether to render rasters (geometry-only runs are much faster).
    pub render: bool,
}

impl Default for VideoConfig {
    fn default() -> Self {
        Self {
            fps: 2.0,
            raster_scale: 0.25,
            render: false,
        }
    }
}

impl VideoConfig {
    /// Time between consecutive frames.
    #[must_use]
    pub fn frame_interval(&self) -> SimDuration {
        SimDuration::from_secs_f64(1.0 / self.fps)
    }
}

/// Ground truth for one captured frame.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FrameTruth {
    /// Scene this frame belongs to.
    pub scene: SceneId,
    /// Frame index within the stream.
    pub frame: FrameId,
    /// Capture timestamp.
    pub timestamp: SimTime,
    /// Logical frame resolution.
    pub frame_size: Size,
    /// Every visible object with its 4K-coordinate box.
    pub objects: Vec<GtObject>,
    /// Rendered raster, when the generator is configured to render.
    pub raster: Option<Raster>,
}

impl FrameTruth {
    /// Fraction of the frame area covered by object boxes (ignoring the
    /// rare overlaps) — the quantity plotted in Fig. 3.
    #[must_use]
    pub fn roi_proportion(&self) -> f64 {
        let total: u64 = self.objects.iter().map(|o| o.rect.area()).sum();
        (total as f64 / self.frame_size.area() as f64).min(1.0)
    }

    /// Just the bounding boxes.
    #[must_use]
    pub fn object_rects(&self) -> Vec<Rect> {
        self.objects.iter().map(|o| o.rect).collect()
    }
}

/// Generates the frames of one scene deterministically from a seed.
pub struct SceneSimulation {
    profile: &'static SceneProfile,
    config: VideoConfig,
    rng: DetRng,
    centers: Vec<ClusterCenter>,
    walkers: Vec<Walker>,
    renderer: Option<FrameRenderer>,
    next_track: u64,
    frame_index: u64,
    /// AR(1) component of the workload modulation.
    drift: f64,
    /// Extra modulation that decays after a burst event.
    burst: f64,
    spawned_tracks: u64,
    /// Diagnostics: (sum of stored spawn areas, count) since last reset.
    spawn_probe: (f64, u64),
    /// Multiplicative width correction: seeded by a one-shot fit after
    /// burn-in and then trimmed by a slow feedback controller so the
    /// *long-run* mean RoI proportion matches the Table I calibration.
    /// The controller's time constant is much longer than the workload
    /// oscillation, so the Fig. 3a fluctuations survive.
    size_correction: f64,
    /// Exponential moving average of the realised RoI proportion that the
    /// controller steers towards the profile target.
    proportion_ema: f64,
}

impl SceneSimulation {
    /// Creates a simulation of `scene` with the given config and seed.
    #[must_use]
    pub fn new(scene: SceneId, config: VideoConfig, seed: u64) -> Self {
        let profile = SceneProfile::panda(scene);
        let root = DetRng::new(seed).fork_indexed("scene", u64::from(scene.index()));
        let mut rng = root.fork("dynamics");
        let centers: Vec<ClusterCenter> = (0..profile.cluster_count)
            .map(|_| ClusterCenter::spawn(profile.frame_size, &mut rng))
            .collect();
        let renderer = config.render.then(|| {
            FrameRenderer::new(
                root.fork("render").seed(),
                profile.frame_size,
                config.raster_scale,
            )
        });
        let mut sim = Self {
            profile,
            config,
            rng,
            centers,
            walkers: Vec::new(),
            renderer,
            next_track: 0,
            frame_index: 0,
            drift: 0.0,
            burst: 0.0,
            spawned_tracks: 0,
            spawn_probe: (0.0, 0),
            size_correction: 1.0,
            proportion_ema: profile.roi_proportion,
        };
        // Initial population at the profile's mean concurrency.
        let initial = sim.profile.concurrent_objects;
        for _ in 0..initial {
            sim.spawn_walker();
        }
        // Burn in until the spatial distribution reaches steady state (the
        // cluster attraction slowly pulls border-clipped spawns inwards),
        // then calibrate sizes against the realised RoI proportion of the
        // settled population.
        let burn_in = 100u32;
        let calibration_window = 30u32;
        let mut measured = 0.0;
        for step in 0..burn_in {
            sim.step_dynamics();
            if step >= burn_in - calibration_window {
                let covered: u64 = sim
                    .walkers
                    .iter()
                    .map(|w| w.bounding_box(sim.profile.frame_size).area())
                    .sum();
                measured += covered as f64 / sim.profile.frame_size.area() as f64;
            }
        }
        measured /= f64::from(calibration_window);
        if measured > 0.0 {
            let correction = (sim.profile.roi_proportion / measured)
                .sqrt()
                .clamp(0.5, 2.0);
            sim.size_correction = correction;
            for w in &mut sim.walkers {
                w.scale_width(correction);
            }
        }
        sim.proportion_ema = sim.profile.roi_proportion;
        // Table I counts tracks over the evaluation clip: start counting
        // from the post-burn-in population.
        sim.spawned_tracks = u64::from(sim.profile.concurrent_objects);
        sim
    }

    /// The profile driving this simulation.
    #[must_use]
    pub fn profile(&self) -> &'static SceneProfile {
        self.profile
    }

    /// The stream configuration.
    #[must_use]
    pub fn config(&self) -> &VideoConfig {
        &self.config
    }

    /// The post-burn-in size correction (diagnostics).
    #[must_use]
    pub fn debug_size_correction(&self) -> f64 {
        self.size_correction
    }

    /// Mean stored (unclipped) box area of the current population
    /// (diagnostics).
    #[must_use]
    pub fn debug_mean_stored_area(&self) -> f64 {
        if self.walkers.is_empty() {
            return 0.0;
        }
        self.walkers.iter().map(Walker::stored_area).sum::<f64>() / self.walkers.len() as f64
    }

    /// Current cluster-centre y coordinates (diagnostics).
    #[must_use]
    pub fn debug_cluster_ys(&self) -> Vec<f64> {
        self.centers.iter().map(|c| c.y).collect()
    }

    /// Number of distinct tracks spawned so far (compare Table I).
    #[must_use]
    pub fn tracks_spawned(&self) -> u64 {
        self.spawned_tracks
    }

    fn spawn_walker(&mut self) {
        let cluster = self.rng.index(self.centers.len());
        let track = self.next_track;
        self.next_track += 1;
        self.spawned_tracks += 1;
        let w = Walker::spawn(
            track,
            cluster,
            &self.centers,
            self.profile.frame_size,
            self.profile.mean_object_width() * self.size_correction,
            self.profile.cluster_spread,
            self.profile.mean_lifetime_frames(),
            &mut self.rng,
        );
        self.spawn_probe.0 += w.stored_area();
        self.spawn_probe.1 += 1;
        self.walkers.push(w);
    }

    /// Diagnostics: mean stored area of spawns since the last call.
    pub fn debug_take_spawn_probe(&mut self) -> (f64, u64) {
        let (sum, n) = self.spawn_probe;
        self.spawn_probe = (0.0, 0);
        (if n > 0 { sum / n as f64 } else { 0.0 }, n)
    }

    /// Target population for the current frame, following the fluctuation
    /// model (slow oscillation + AR(1) drift + decaying bursts).
    fn target_population(&mut self) -> usize {
        let p = self.profile;
        let t = self.frame_index as f64;
        let slow = p.fluctuation_amplitude * (t * 0.035 + f64::from(p.id) * 1.7).sin();
        self.drift = 0.95 * self.drift + self.rng.normal(0.0, 0.018);
        if self.rng.chance(p.burst_probability) {
            self.burst += p.fluctuation_amplitude * self.rng.uniform_in(0.6, 1.4);
        }
        self.burst *= 0.93;
        let m = (1.0 + slow + self.drift + self.burst).clamp(0.45, 1.9);
        (f64::from(p.concurrent_objects) * m).round().max(1.0) as usize
    }

    /// Current RoI coverage of the walker population.
    fn realized_proportion(&self) -> f64 {
        let covered: u64 = self
            .walkers
            .iter()
            .map(|w| w.bounding_box(self.profile.frame_size).area())
            .sum();
        covered as f64 / self.profile.frame_size.area() as f64
    }

    /// Slow feedback trimming of the spawn-size correction (gain 1% per
    /// frame on the EMA error; see `size_correction` docs).
    fn trim_size_correction(&mut self) {
        let realized = self.realized_proportion();
        self.proportion_ema = 0.97 * self.proportion_ema + 0.03 * realized;
        if self.proportion_ema > 0.0 {
            let error = self.profile.roi_proportion / self.proportion_ema;
            self.size_correction = (self.size_correction * error.powf(0.01)).clamp(0.3, 3.0);
        }
    }

    fn step_dynamics(&mut self) {
        let frame = self.profile.frame_size;
        for c in &mut self.centers {
            c.step(frame, &mut self.rng);
        }
        let speed = self.profile.walk_speed;
        for w in &mut self.walkers {
            w.step(&self.centers, frame, speed, &mut self.rng);
        }
        self.walkers.retain(|w| w.ttl > 0);
        self.trim_size_correction();
        let target = self.target_population();
        while self.walkers.len() < target {
            self.spawn_walker();
        }
        while self.walkers.len() > target {
            // Overcrowded: the oldest walkers leave first.
            self.walkers.remove(0);
        }
    }

    /// Produces the next frame of the stream.
    pub fn next_frame(&mut self) -> FrameTruth {
        self.step_dynamics();
        let frame_size = self.profile.frame_size;
        let objects: Vec<GtObject> = self
            .walkers
            .iter()
            .map(|w| GtObject::new(w.track, w.bounding_box(frame_size)))
            .collect();
        let raster = self
            .renderer
            .as_ref()
            .map(|r| r.render(self.frame_index, &objects));
        let truth = FrameTruth {
            scene: self.profile.scene_id(),
            frame: FrameId::new(self.frame_index),
            timestamp: SimTime::from_secs_f64(self.frame_index as f64 / self.config.fps),
            frame_size,
            objects,
            raster,
        };
        self.frame_index += 1;
        truth
    }

    /// Convenience: the next `n` frames.
    pub fn frames(&mut self, n: usize) -> Vec<FrameTruth> {
        (0..n).map(|_| self.next_frame()).collect()
    }
}

impl std::fmt::Debug for SceneSimulation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SceneSimulation")
            .field("scene", &self.profile.name)
            .field("frame_index", &self.frame_index)
            .field("population", &self.walkers.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sim(scene: u8) -> SceneSimulation {
        SceneSimulation::new(SceneId::new(scene), VideoConfig::default(), 4242)
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = sim(1);
        let mut b = sim(1);
        for _ in 0..10 {
            let fa = a.next_frame();
            let fb = b.next_frame();
            assert_eq!(fa.objects, fb.objects);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SceneSimulation::new(SceneId::new(1), VideoConfig::default(), 1);
        let mut b = SceneSimulation::new(SceneId::new(1), VideoConfig::default(), 2);
        assert_ne!(a.next_frame().objects, b.next_frame().objects);
    }

    #[test]
    fn population_tracks_profile() {
        for scene in [1u8, 4, 10] {
            let mut s = sim(scene);
            let frames = s.frames(60);
            let mean_pop = frames.iter().map(|f| f.objects.len() as f64).sum::<f64>() / 60.0;
            let expected = f64::from(s.profile().concurrent_objects);
            assert!(
                (mean_pop / expected - 1.0).abs() < 0.35,
                "scene {scene}: mean population {mean_pop:.1} vs expected {expected}"
            );
        }
    }

    #[test]
    fn roi_proportion_matches_table1() {
        // The calibration target: per-scene mean RoI proportion within
        // ±40% of the Table I value (Fig. 3 shows wide natural variation).
        for scene in 1u8..=10 {
            let mut s = sim(scene);
            let frames = s.frames(150);
            let mean_prop =
                frames.iter().map(FrameTruth::roi_proportion).sum::<f64>() / frames.len() as f64;
            let target = s.profile().roi_proportion;
            assert!(
                (mean_prop / target - 1.0).abs() < 0.3,
                "scene {scene}: proportion {mean_prop:.4} vs target {target:.4}"
            );
        }
    }

    #[test]
    fn proportion_fluctuates_over_time() {
        let mut s = sim(3);
        let props: Vec<f64> = s
            .frames(150)
            .iter()
            .map(FrameTruth::roi_proportion)
            .collect();
        let mean = props.iter().sum::<f64>() / props.len() as f64;
        let max = props.iter().cloned().fold(0.0f64, f64::max);
        let min = props.iter().cloned().fold(1.0f64, f64::min);
        assert!(max > mean * 1.1, "no peaks: max {max} mean {mean}");
        assert!(min < mean * 0.9, "no troughs: min {min} mean {mean}");
    }

    #[test]
    fn boxes_stay_inside_frame() {
        let mut s = sim(6);
        for f in s.frames(30) {
            let bounds = Rect::from_size(f.frame_size);
            for o in &f.objects {
                assert!(bounds.contains_rect(&o.rect), "object {o:?} escapes frame");
            }
        }
    }

    #[test]
    fn timestamps_follow_fps() {
        let mut s = sim(1);
        let f0 = s.next_frame();
        let f1 = s.next_frame();
        assert_eq!(f0.timestamp, SimTime::ZERO);
        assert_eq!(
            f1.timestamp.since(f0.timestamp),
            VideoConfig::default().frame_interval()
        );
    }

    #[test]
    fn render_flag_produces_rasters() {
        let config = VideoConfig {
            render: true,
            raster_scale: 0.1,
            ..VideoConfig::default()
        };
        let mut s = SceneSimulation::new(SceneId::new(1), config, 7);
        let f = s.next_frame();
        let raster = f.raster.expect("raster requested");
        assert_eq!(raster.size(), Size::new(384, 216));
    }

    #[test]
    fn track_churn_accumulates() {
        let mut s = sim(3);
        let _ = s.frames(100);
        // Initial 90 + ~1.29/frame churn ⇒ well above the initial count.
        assert!(
            s.tracks_spawned() > 120,
            "only {} tracks spawned",
            s.tracks_spawned()
        );
    }
}
