//! Synthetic high-resolution video substrate.
//!
//! The paper evaluates on PANDA4K — ten 4K human-centric scenes captured by
//! a stationary gigapixel camera. That dataset (and a camera) is not
//! available here, so this crate synthesises an equivalent workload from
//! scratch:
//!
//! * [`scene`] — ten [`scene::SceneProfile`]s calibrated against Table I
//!   (object counts, RoI proportion, redundancy), Table III (full-frame
//!   AP), and Fig. 2a of the paper;
//! * [`object`] + [`generator`] — clustered random-waypoint pedestrian
//!   dynamics with spawn/despawn churn producing per-frame ground truth
//!   whose RoI-proportion statistics reproduce Fig. 3;
//! * [`raster`] — a deterministic grayscale renderer (static textured
//!   background + moving textured objects + sensor noise) that feeds the
//!   real background-subtraction pipeline in `tangram-vision`;
//! * [`codec`] — an H.264-flavoured transmission-size model distinguishing
//!   temporally-compressed streams from independently-coded crops,
//!   calibrated to Table II / Fig. 9.
//!
//! # Example
//!
//! ```
//! use tangram_types::ids::SceneId;
//! use tangram_video::generator::{SceneSimulation, VideoConfig};
//!
//! let mut sim = SceneSimulation::new(SceneId::new(1), VideoConfig::default(), 42);
//! let frame = sim.next_frame();
//! assert!(!frame.objects.is_empty());
//! assert!(frame.roi_proportion() > 0.0);
//! ```

pub mod codec;
pub mod generator;
pub mod object;
pub mod raster;
pub mod scene;

pub use codec::CodecModel;
pub use generator::{FrameTruth, SceneSimulation, VideoConfig};
pub use object::GtObject;
pub use raster::Raster;
pub use scene::SceneProfile;
