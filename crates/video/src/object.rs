//! Ground-truth objects and their pedestrian dynamics.
//!
//! Objects are "walkers": each is attracted to one of the scene's drifting
//! cluster centres, moves with per-frame velocity noise, and has a
//! perspective-scaled person-shaped bounding box (height ≈ 2 × width,
//! larger near the bottom of the frame). The population is modulated by the
//! scene's fluctuation model to reproduce the irregular workload peaks of
//! Fig. 3a.

use serde::{Deserialize, Serialize};
use tangram_sim::rng::DetRng;
use tangram_types::geometry::{Rect, Size};

/// A ground-truth object visible in one frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct GtObject {
    /// Stable track id (unique within a scene run).
    pub track: u64,
    /// Bounding box in logical 4K frame coordinates.
    pub rect: Rect,
}

impl GtObject {
    /// Creates a ground-truth record.
    #[must_use]
    pub fn new(track: u64, rect: Rect) -> Self {
        Self { track, rect }
    }
}

/// A drifting attraction point that walkers congregate around.
#[derive(Debug, Clone)]
pub(crate) struct ClusterCenter {
    pub x: f64,
    pub y: f64,
    vx: f64,
    vy: f64,
}

impl ClusterCenter {
    pub(crate) fn spawn(frame: Size, rng: &mut DetRng) -> Self {
        // Keep centres away from the extreme border so enclosing boxes stay
        // mostly inside the frame.
        let margin_x = f64::from(frame.width) * 0.12;
        let margin_y = f64::from(frame.height) * 0.12;
        Self {
            x: rng.uniform_in(margin_x, f64::from(frame.width) - margin_x),
            y: rng.uniform_in(margin_y, f64::from(frame.height) - margin_y),
            vx: rng.normal(0.0, 1.2),
            vy: rng.normal(0.0, 0.8),
        }
    }

    /// Slow random drift with reflection at the frame border.
    pub(crate) fn step(&mut self, frame: Size, rng: &mut DetRng) {
        self.vx = 0.96 * self.vx + rng.normal(0.0, 0.35);
        self.vy = 0.96 * self.vy + rng.normal(0.0, 0.25);
        self.x += self.vx;
        self.y += self.vy;
        let (w, h) = (f64::from(frame.width), f64::from(frame.height));
        if self.x < 0.05 * w || self.x > 0.95 * w {
            self.vx = -self.vx;
            self.x = self.x.clamp(0.05 * w, 0.95 * w);
        }
        if self.y < 0.05 * h || self.y > 0.95 * h {
            self.vy = -self.vy;
            self.y = self.y.clamp(0.05 * h, 0.95 * h);
        }
    }
}

/// Internal walker state (continuous coordinates; the public view is the
/// clamped [`GtObject`] box).
#[derive(Debug, Clone)]
pub(crate) struct Walker {
    pub track: u64,
    /// Centre position.
    pub x: f64,
    pub y: f64,
    vx: f64,
    vy: f64,
    /// Box width, fixed at spawn (perspective applied once at the spawn
    /// location so the population's mean area stays stationary).
    width: f64,
    /// Box height, fixed at spawn.
    height: f64,
    /// Cluster this walker is attracted to.
    pub cluster: usize,
    /// Remaining lifetime in frames.
    pub ttl: u32,
}

impl Walker {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn spawn(
        track: u64,
        cluster: usize,
        centers: &[ClusterCenter],
        frame: Size,
        mean_width: f64,
        spread: f64,
        mean_ttl: f64,
        rng: &mut DetRng,
    ) -> Self {
        let c = &centers[cluster];
        let x = (c.x + rng.normal(0.0, spread)).clamp(0.0, f64::from(frame.width) - 1.0);
        let y = (c.y + rng.normal(0.0, spread * 0.7)).clamp(0.0, f64::from(frame.height) - 1.0);
        // Lognormal size mix reproduces the heavy-tailed RoI scatter of
        // Fig. 4a: many small distant objects, a few large near ones.
        // Perspective is applied once, at the spawn location: objects near
        // the bottom of a surveillance view are closer, hence larger
        // (0.6–1.4× across the vertical span). It is normalised by the
        // current mean cluster perspective so the population's expected
        // area stays stationary while the clusters wander in depth.
        let persp_of = |py: f64| 0.6 + 0.8 * (py / f64::from(frame.height));
        let mean_persp = centers.iter().map(|c| persp_of(c.y)).sum::<f64>() / centers.len() as f64;
        let perspective = persp_of(y) / mean_persp;
        let width = (mean_width * rng.lognormal(-0.06, 0.35) * perspective).max(8.0);
        let height = (width * rng.uniform_in(1.6, 2.2)).max(12.0);
        let ttl = rng.exponential(1.0 / mean_ttl.max(1.0)).ceil().max(3.0) as u32;
        Self {
            track,
            x,
            y,
            vx: rng.normal(0.0, 2.0),
            vy: rng.normal(0.0, 1.4),
            width,
            height,
            cluster,
            ttl,
        }
    }

    /// Stored (unclipped) box area (diagnostics).
    pub(crate) fn stored_area(&self) -> f64 {
        self.width * self.height
    }

    /// Applies a multiplicative size correction (run-time calibration).
    pub(crate) fn scale_width(&mut self, factor: f64) {
        self.width *= factor;
        self.height *= factor;
    }

    /// One frame of motion: cluster attraction + velocity noise.
    pub(crate) fn step(
        &mut self,
        centers: &[ClusterCenter],
        frame: Size,
        walk_speed: f64,
        rng: &mut DetRng,
    ) {
        let c = &centers[self.cluster];
        let (dx, dy) = (c.x - self.x, c.y - self.y);
        let dist = (dx * dx + dy * dy).sqrt().max(1.0);
        // Attraction grows with distance so walkers orbit their cluster.
        let pull = (dist / 1200.0).min(1.0) * walk_speed * 0.4;
        self.vx = 0.88 * self.vx + pull * dx / dist + rng.normal(0.0, walk_speed * 0.25);
        self.vy = 0.88 * self.vy + pull * dy / dist + rng.normal(0.0, walk_speed * 0.18);
        let speed = (self.vx * self.vx + self.vy * self.vy).sqrt();
        let max_speed = walk_speed * 2.5;
        if speed > max_speed {
            self.vx *= max_speed / speed;
            self.vy *= max_speed / speed;
        }
        self.x = (self.x + self.vx).clamp(0.0, f64::from(frame.width) - 1.0);
        self.y = (self.y + self.vy).clamp(0.0, f64::from(frame.height) - 1.0);
        self.ttl = self.ttl.saturating_sub(1);
    }

    /// The walker's box, clamped into the frame.
    pub(crate) fn bounding_box(&self, frame: Size) -> Rect {
        let w = self.width;
        let h = self.height;
        let x0 = (self.x - w / 2.0).max(0.0) as u32;
        let y0 = (self.y - h / 2.0).max(0.0) as u32;
        let x1 = ((self.x + w / 2.0) as u32).min(frame.width.saturating_sub(1));
        let y1 = ((self.y + h / 2.0) as u32).min(frame.height.saturating_sub(1));
        Rect::new(
            x0,
            y0,
            (x1.saturating_sub(x0)).max(1),
            (y1.saturating_sub(y0)).max(1),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> DetRng {
        DetRng::new(77)
    }

    #[test]
    fn cluster_centers_stay_in_frame() {
        let frame = Size::UHD_4K;
        let mut r = rng();
        let mut c = ClusterCenter::spawn(frame, &mut r);
        for _ in 0..500 {
            c.step(frame, &mut r);
            assert!(c.x >= 0.0 && c.x <= f64::from(frame.width));
            assert!(c.y >= 0.0 && c.y <= f64::from(frame.height));
        }
    }

    #[test]
    fn walker_box_inside_frame() {
        let frame = Size::UHD_4K;
        let mut r = rng();
        let centers = vec![ClusterCenter::spawn(frame, &mut r)];
        let mut w = Walker::spawn(1, 0, &centers, frame, 80.0, 300.0, 100.0, &mut r);
        for _ in 0..200 {
            w.step(&centers, frame, 10.0, &mut r);
            let b = w.bounding_box(frame);
            assert!(Rect::from_size(frame).contains_rect(&b), "box {b} outside");
            assert!(b.width >= 1 && b.height >= 1);
        }
    }

    #[test]
    fn perspective_scales_with_spawn_depth() {
        // Within one scene, objects spawned at a lower (closer) cluster are
        // larger on average than those at a higher (farther) cluster — the
        // Fig. 4a depth–size correlation. Perspective is normalised by the
        // mean cluster depth, so the comparison must happen inside a single
        // multi-cluster scene.
        let frame = Size::UHD_4K;
        let mut r = rng();
        let mut high = ClusterCenter::spawn(frame, &mut r);
        high.y = f64::from(frame.height) * 0.15;
        let mut low = ClusterCenter::spawn(frame, &mut r);
        low.y = f64::from(frame.height) * 0.85;
        let centers = vec![high, low];
        let mean_area = |cluster: usize, r: &mut DetRng| {
            (0..200)
                .map(|t| {
                    Walker::spawn(t, cluster, &centers, frame, 80.0, 1.0, 100.0, r)
                        .bounding_box(frame)
                        .area() as f64
                })
                .sum::<f64>()
                / 200.0
        };
        let top_area = mean_area(0, &mut r);
        let bottom_area = mean_area(1, &mut r);
        assert!(
            bottom_area > top_area * 1.5,
            "closer objects must be larger: top {top_area:.0} bottom {bottom_area:.0}"
        );
    }

    #[test]
    fn ttl_decrements() {
        let frame = Size::UHD_4K;
        let mut r = rng();
        let centers = vec![ClusterCenter::spawn(frame, &mut r)];
        let mut w = Walker::spawn(1, 0, &centers, frame, 80.0, 300.0, 5.0, &mut r);
        let initial = w.ttl;
        w.step(&centers, frame, 10.0, &mut r);
        assert_eq!(w.ttl, initial - 1);
    }

    #[test]
    fn boxes_are_person_shaped() {
        let frame = Size::UHD_4K;
        let mut r = rng();
        let centers = vec![ClusterCenter::spawn(frame, &mut r)];
        let mut taller = 0;
        for t in 0..50 {
            let w = Walker::spawn(t, 0, &centers, frame, 80.0, 200.0, 100.0, &mut r);
            let b = w.bounding_box(frame);
            if b.height > b.width {
                taller += 1;
            }
        }
        assert!(taller >= 45, "only {taller}/50 boxes taller than wide");
    }
}
