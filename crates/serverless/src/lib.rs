//! Serverless platform simulator.
//!
//! Models an Alibaba Function Compute-style GPU serverless backend: warm
//! function instances with per-instance concurrency 1, cold starts in the
//! tens-of-milliseconds range (§I of the paper), keep-alive expiry,
//! scale-from-zero autoscaling, NGINX-style load balancing, and the exact
//! Eqn. (1) billing model with the paper's unit prices.
//!
//! * [`pricing`] — `C = T_f·(n_C·P_C + m_M·P_M + m_G·P_G) + P_req`;
//! * [`function`] — function specs (2 vCPU / 4 GB / 6 GB GPU in the
//!   paper's evaluation) and the GPU-memory batch bound of constraint (5);
//! * [`lb`] — round-robin (NGINX default) and least-used balancers;
//! * [`platform`] — the event-driven instance pool.
//!
//! # Example
//!
//! ```
//! use tangram_infer::latency::InferenceLatencyModel;
//! use tangram_serverless::function::FunctionSpec;
//! use tangram_serverless::platform::{InvocationRequest, ServerlessPlatform};
//! use tangram_types::time::SimTime;
//!
//! let mut platform = ServerlessPlatform::new(
//!     FunctionSpec::paper_default(),
//!     InferenceLatencyModel::rtx4090_yolov8x(),
//!     42,
//! );
//! let outcome = platform
//!     .invoke(InvocationRequest { canvases: 2, megapixels: 2.1, submitted: SimTime::ZERO })
//!     .expect("2 canvases fit the GPU");
//! assert!(outcome.cold, "first invocation cold-starts");
//! assert!(outcome.cost.get() > 0.0);
//! ```

pub mod function;
pub mod lb;
pub mod platform;
pub mod pricing;

pub use function::FunctionSpec;
pub use lb::{LeastUsed, LoadBalancer, RoundRobin};
pub use platform::{
    BackendSnapshot, InvocationOutcome, InvocationRequest, PlatformError, ServerlessPlatform,
};
pub use pricing::ResourcePrices;
