//! Load balancing across warm instances.
//!
//! The paper fronts its functions with NGINX in its default (round-robin)
//! mode; a least-used balancer is included for comparison.

use tangram_types::ids::InstanceId;

/// Chooses one instance from the currently idle warm set.
pub trait LoadBalancer: Send {
    /// Picks from `idle` (sorted by id, possibly empty). `loads[i]` is the
    /// lifetime invocation count of `idle[i]`.
    fn pick(&mut self, idle: &[InstanceId], loads: &[u64]) -> Option<InstanceId>;

    /// Balancer name for reports.
    fn name(&self) -> &'static str;
}

/// NGINX's default strategy: rotate through instances.
#[derive(Debug, Default)]
pub struct RoundRobin {
    cursor: usize,
}

impl LoadBalancer for RoundRobin {
    fn pick(&mut self, idle: &[InstanceId], _loads: &[u64]) -> Option<InstanceId> {
        if idle.is_empty() {
            return None;
        }
        let choice = idle[self.cursor % idle.len()];
        self.cursor = self.cursor.wrapping_add(1);
        Some(choice)
    }

    fn name(&self) -> &'static str {
        "round-robin"
    }
}

/// Picks the instance with the fewest lifetime invocations.
#[derive(Debug, Default)]
pub struct LeastUsed;

impl LoadBalancer for LeastUsed {
    fn pick(&mut self, idle: &[InstanceId], loads: &[u64]) -> Option<InstanceId> {
        idle.iter()
            .zip(loads)
            .min_by_key(|&(id, load)| (*load, *id))
            .map(|(id, _)| *id)
    }

    fn name(&self) -> &'static str {
        "least-used"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(raw: &[u32]) -> Vec<InstanceId> {
        raw.iter().map(|&r| InstanceId::new(r)).collect()
    }

    #[test]
    fn round_robin_rotates() {
        let mut rr = RoundRobin::default();
        let idle = ids(&[0, 1, 2]);
        let loads = [0, 0, 0];
        assert_eq!(rr.pick(&idle, &loads), Some(InstanceId::new(0)));
        assert_eq!(rr.pick(&idle, &loads), Some(InstanceId::new(1)));
        assert_eq!(rr.pick(&idle, &loads), Some(InstanceId::new(2)));
        assert_eq!(rr.pick(&idle, &loads), Some(InstanceId::new(0)));
    }

    #[test]
    fn round_robin_empty_is_none() {
        let mut rr = RoundRobin::default();
        assert_eq!(rr.pick(&[], &[]), None);
    }

    #[test]
    fn least_used_prefers_cold_spots() {
        let mut lu = LeastUsed;
        let idle = ids(&[0, 1, 2]);
        assert_eq!(lu.pick(&idle, &[5, 2, 9]), Some(InstanceId::new(1)));
        // Ties break to the lowest id.
        assert_eq!(lu.pick(&idle, &[3, 3, 9]), Some(InstanceId::new(0)));
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(RoundRobin::default().name(), "round-robin");
        assert_eq!(LeastUsed.name(), "least-used");
    }
}
