//! The event-driven instance pool.
//!
//! Invocations arrive with a submission time; the platform routes each to
//! an idle warm instance (load-balanced), or cold-starts a new instance
//! when none is free — serverless scale-out on demand. Instances expire
//! after a keep-alive window of idleness. Execution time is sampled from
//! the inference latency model, and every invocation is billed with
//! Eqn. (1).

use crate::function::FunctionSpec;
use crate::lb::{LoadBalancer, RoundRobin};
use crate::pricing::ResourcePrices;
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;
use tangram_infer::latency::InferenceLatencyModel;
use tangram_sim::rng::DetRng;
use tangram_types::ids::{InstanceId, InvocationId};
use tangram_types::time::{SimDuration, SimTime};
use tangram_types::units::Dollars;

/// A batch submitted for execution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InvocationRequest {
    /// Number of canvases in the batch (bounded by constraint (5)).
    pub canvases: usize,
    /// Total pixels of the batch in megapixels (drives execution time).
    pub megapixels: f64,
    /// When the scheduler dispatched the batch.
    pub submitted: SimTime,
}

/// The result of one invocation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InvocationOutcome {
    /// Invocation identity.
    pub id: InvocationId,
    /// Instance that served it.
    pub instance: InstanceId,
    /// Whether a cold start preceded execution.
    pub cold: bool,
    /// When execution began (submission + queueing + cold start).
    pub started: SimTime,
    /// When results were ready.
    pub finished: SimTime,
    /// Pure execution time (the billed duration's basis).
    pub execution: SimDuration,
    /// Eqn. (1) cost of this invocation.
    pub cost: Dollars,
}

/// Why an invocation was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlatformError {
    /// The batch needs more GPU memory than one instance has
    /// (constraint (5)); the scheduler must split it.
    BatchTooLarge {
        /// Canvases requested.
        requested: usize,
        /// Canvases an instance can hold.
        capacity: usize,
    },
}

impl fmt::Display for PlatformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlatformError::BatchTooLarge {
                requested,
                capacity,
            } => write!(
                f,
                "batch of {requested} canvases exceeds instance capacity {capacity}"
            ),
        }
    }
}

impl Error for PlatformError {}

#[derive(Debug, Clone)]
struct Instance {
    id: InstanceId,
    busy_until: SimTime,
    expires_at: SimTime,
    invocations: u64,
}

/// A point-in-time reading of backend pressure — the signals an
/// ingress admission policy consumes to decide whether an arriving work
/// item can still be served in time.
///
/// Pure read: taking a snapshot never mutates the platform (no instance
/// reaping, no RNG draws), so admission control cannot perturb the
/// simulation of the work it admits.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BackendSnapshot {
    /// Submitted invocations whose completion has not been acknowledged.
    pub in_flight: usize,
    /// Instances currently provisioned (warm or busy).
    pub live_instances: usize,
    /// The platform's instance cap (`None` = unlimited scale-out).
    pub max_instances: Option<usize>,
    /// When a batch submitted *now* would start executing: immediately on
    /// an idle warm instance, after the mean cold-start delay on
    /// scale-out, or queued behind the earliest-free instance at the cap.
    pub earliest_start: SimTime,
    /// Total remaining in-flight execution time (sum over invocations of
    /// `finished - now`).
    pub backlog: SimDuration,
}

/// Aggregate platform statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct PlatformStats {
    /// Invocations served.
    pub invocations: u64,
    /// Cold starts among them.
    pub cold_starts: u64,
    /// Total execution time across instances.
    pub busy_time: SimDuration,
    /// Total Eqn. (1) cost.
    pub total_cost: Dollars,
    /// Peak number of simultaneously live instances.
    pub peak_instances: usize,
}

/// The serverless backend.
pub struct ServerlessPlatform {
    spec: FunctionSpec,
    prices: ResourcePrices,
    model: InferenceLatencyModel,
    balancer: Box<dyn LoadBalancer>,
    /// Keep-alive window before an idle instance is reclaimed.
    pub keep_alive: SimDuration,
    /// Mean cold-start delay (lognormal-sampled; §I: "tens of
    /// milliseconds" for a pre-provisioned GPU runtime).
    pub cold_start_mean: SimDuration,
    /// Physical capacity cap: at most this many simultaneous instances
    /// (the paper's testbed hosts ~8 six-GB functions on two 24-GB
    /// RTX 4090s). `None` = unlimited scale-out. Requests beyond the cap
    /// queue on the earliest-free instance.
    pub max_instances: Option<usize>,
    instances: Vec<Instance>,
    next_instance: InstanceId,
    next_invocation: InvocationId,
    stats: PlatformStats,
    /// Execution-time multiplier for backend brownout injection: every
    /// sampled execution is scaled by this factor. Exactly 1.0 (the
    /// default) is a guaranteed no-op — the sampled duration is passed
    /// through untouched, keeping fault-free runs byte-identical.
    compute_factor: f64,
    rng: DetRng,
    /// Invocations submitted but not yet acknowledged by the driver:
    /// `(id, finishes_at)` in submission order.
    in_flight: Vec<(InvocationId, SimTime)>,
}

impl ServerlessPlatform {
    /// Creates a platform with the paper's defaults: Alibaba FC pricing,
    /// round-robin balancing, 60 s keep-alive, ~60 ms cold starts.
    #[must_use]
    pub fn new(spec: FunctionSpec, model: InferenceLatencyModel, seed: u64) -> Self {
        Self {
            spec,
            prices: ResourcePrices::alibaba_fc(),
            model,
            balancer: Box::new(RoundRobin::default()),
            keep_alive: SimDuration::from_secs(60),
            cold_start_mean: SimDuration::from_millis(60),
            max_instances: Some(8),
            instances: Vec::new(),
            next_instance: InstanceId::default(),
            next_invocation: InvocationId::default(),
            stats: PlatformStats::default(),
            compute_factor: 1.0,
            rng: DetRng::new(seed).fork("serverless"),
            in_flight: Vec::new(),
        }
    }

    /// Replaces the load balancer.
    #[must_use]
    pub fn with_balancer(mut self, balancer: Box<dyn LoadBalancer>) -> Self {
        self.balancer = balancer;
        self
    }

    /// Replaces the price table.
    #[must_use]
    pub fn with_prices(mut self, prices: ResourcePrices) -> Self {
        self.prices = prices;
        self
    }

    /// The function spec in force.
    #[must_use]
    pub fn spec(&self) -> &FunctionSpec {
        &self.spec
    }

    /// Aggregate statistics so far.
    #[must_use]
    pub fn stats(&self) -> PlatformStats {
        self.stats
    }

    /// Sets the brownout execution-time multiplier (see the
    /// `compute_factor` field). 1.0 restores exact no-fault timing: the
    /// latency model's draw sequence is never perturbed, only the
    /// already-sampled duration is scaled.
    pub fn set_compute_factor(&mut self, factor: f64) {
        self.compute_factor = factor;
    }

    /// The brownout execution-time multiplier in force.
    #[must_use]
    pub fn compute_factor(&self) -> f64 {
        self.compute_factor
    }

    /// Evicts idle warm instances (cold-start-storm injection): every
    /// instance not executing at `now` is reclaimed immediately, so the
    /// next submission pays a fresh cold start. Returns the number
    /// evicted. Busy instances finish their work — only warmth is lost.
    pub fn evict_idle(&mut self, now: SimTime) -> usize {
        let before = self.instances.len();
        self.instances.retain(|i| i.busy_until > now);
        before - self.instances.len()
    }

    /// Number of instances currently provisioned (warm or busy).
    #[must_use]
    pub fn live_instances(&self, now: SimTime) -> usize {
        self.instances
            .iter()
            .filter(|i| i.busy_until > now || i.expires_at > now)
            .count()
    }

    /// Executes a batch and immediately acknowledges its completion — the
    /// synchronous convenience wrapper around [`Self::submit`] /
    /// [`Self::complete`] for callers that do not run an event loop.
    ///
    /// # Errors
    ///
    /// [`PlatformError::BatchTooLarge`] when the batch violates the GPU
    /// memory bound (constraint (5)).
    pub fn invoke(
        &mut self,
        request: InvocationRequest,
    ) -> Result<InvocationOutcome, PlatformError> {
        let outcome = self.submit(request)?;
        self.complete(outcome.id);
        Ok(outcome)
    }

    /// Submits a batch for execution, leaving its completion *in flight*.
    ///
    /// The returned outcome carries the scheduled `finished` instant; an
    /// event-driven caller turns it into a `FunctionComplete` event and
    /// acknowledges delivery with [`Self::complete`] when that event
    /// fires. Until then the invocation counts toward
    /// [`Self::in_flight`].
    ///
    /// # Errors
    ///
    /// [`PlatformError::BatchTooLarge`] when the batch violates the GPU
    /// memory bound (constraint (5)).
    pub fn submit(
        &mut self,
        request: InvocationRequest,
    ) -> Result<InvocationOutcome, PlatformError> {
        let capacity = self.spec.max_canvases();
        if request.canvases > capacity {
            return Err(PlatformError::BatchTooLarge {
                requested: request.canvases,
                capacity,
            });
        }
        let now = request.submitted;
        // Reap expired idle instances.
        self.instances
            .retain(|i| i.busy_until > now || i.expires_at > now);

        // Idle warm instances, balanced.
        let idle: Vec<InstanceId> = self
            .instances
            .iter()
            .filter(|i| i.busy_until <= now && i.expires_at > now)
            .map(|i| i.id)
            .collect();
        let loads: Vec<u64> = idle
            .iter()
            .map(|id| {
                self.instances
                    .iter()
                    .find(|i| i.id == *id)
                    .map_or(0, |i| i.invocations)
            })
            .collect();

        let (instance_idx, cold, started) = match self.balancer.pick(&idle, &loads) {
            Some(chosen) => {
                let idx = self
                    .instances
                    .iter()
                    .position(|i| i.id == chosen)
                    .expect("balancer picked a live instance");
                (idx, false, now)
            }
            None if self
                .max_instances
                .is_none_or(|cap| self.instances.len() < cap) =>
            {
                // Scale out: cold-start a fresh instance.
                let delay = self.sample_cold_start();
                let id = self.next_instance.bump();
                self.instances.push(Instance {
                    id,
                    busy_until: now,
                    expires_at: now + self.keep_alive,
                    invocations: 0,
                });
                (self.instances.len() - 1, true, now + delay)
            }
            None => {
                // Capacity cap: queue on the earliest-free instance.
                let idx = self
                    .instances
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, i)| i.busy_until)
                    .map(|(i, _)| i)
                    .expect("cap > 0 implies at least one instance");
                let start = self.instances[idx].busy_until.max(now);
                (idx, false, start)
            }
        };

        let execution = self.model.sample(request.megapixels, &mut self.rng);
        // Brownout injection: scale the sampled duration without
        // touching the draw sequence. The exact-1.0 guard keeps
        // fault-free runs bit-identical (no float round-trip).
        let execution = if self.compute_factor == 1.0 {
            execution
        } else {
            execution.mul_f64(self.compute_factor)
        };
        let finished = started + execution;
        let cost = self.prices.invocation_cost(execution, &self.spec);

        let inst = &mut self.instances[instance_idx];
        inst.busy_until = finished;
        inst.expires_at = finished + self.keep_alive;
        inst.invocations += 1;

        self.stats.invocations += 1;
        if cold {
            self.stats.cold_starts += 1;
        }
        self.stats.busy_time += execution;
        self.stats.total_cost += cost;
        self.stats.peak_instances = self.stats.peak_instances.max(self.instances.len());

        let outcome = InvocationOutcome {
            id: self.next_invocation.bump(),
            instance: self.instances[instance_idx].id,
            cold,
            started,
            finished,
            execution,
            cost,
        };
        self.in_flight.push((outcome.id, outcome.finished));
        Ok(outcome)
    }

    /// Acknowledges the completion event of a previously [`Self::submit`]ted
    /// invocation, returning whether it was in flight.
    ///
    /// Ids are unique ([`InvocationId::bump`] never repeats), so the first
    /// match is the only one; `swap_remove` keeps the ack O(1) — order is
    /// irrelevant because [`Self::next_completion`] scans with `min`.
    pub fn complete(&mut self, id: InvocationId) -> bool {
        match self
            .in_flight
            .iter()
            .position(|&(pending, _)| pending == id)
        {
            Some(index) => {
                self.in_flight.swap_remove(index);
                true
            }
            None => false,
        }
    }

    /// Number of submitted invocations whose completion event has not yet
    /// been acknowledged.
    #[must_use]
    pub fn in_flight(&self) -> usize {
        self.in_flight.len()
    }

    /// Reads the backend-pressure signals at `now` (see
    /// [`BackendSnapshot`]). Pure: never reaps instances or draws from
    /// the RNG.
    #[must_use]
    pub fn snapshot(&self, now: SimTime) -> BackendSnapshot {
        let live = |i: &&Instance| i.busy_until > now || i.expires_at > now;
        let live_instances = self.instances.iter().filter(live).count();
        let idle_warm = self
            .instances
            .iter()
            .any(|i| i.busy_until <= now && i.expires_at > now);
        let earliest_start = if idle_warm {
            now
        } else if self.max_instances.is_none_or(|cap| live_instances < cap) {
            // Scale-out path: the expected cold-start delay stands in for
            // the lognormal draw `submit` would make.
            now + self.cold_start_mean
        } else {
            self.instances
                .iter()
                .filter(live)
                .map(|i| i.busy_until)
                .min()
                .unwrap_or(now)
                .max(now)
        };
        let backlog = self
            .in_flight
            .iter()
            .map(|&(_, finished)| finished.since(now))
            .sum();
        BackendSnapshot {
            in_flight: self.in_flight.len(),
            live_instances,
            max_instances: self.max_instances,
            earliest_start,
            backlog,
        }
    }

    /// The earliest scheduled completion among in-flight invocations.
    #[must_use]
    pub fn next_completion(&self) -> Option<SimTime> {
        self.in_flight.iter().map(|&(_, at)| at).min()
    }

    fn sample_cold_start(&mut self) -> SimDuration {
        let mean = self.cold_start_mean.as_secs_f64();
        // Lognormal with mean ≈ cold_start_mean and a fat-ish tail.
        let sigma = 0.35f64;
        SimDuration::from_secs_f64(self.rng.lognormal(mean.ln() - sigma * sigma / 2.0, sigma))
    }
}

impl fmt::Debug for ServerlessPlatform {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ServerlessPlatform")
            .field("spec", &self.spec)
            .field("instances", &self.instances.len())
            .field("stats", &self.stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn platform() -> ServerlessPlatform {
        ServerlessPlatform::new(
            FunctionSpec::paper_default(),
            InferenceLatencyModel::rtx4090_yolov8x(),
            7,
        )
    }

    fn req(canvases: usize, at_us: u64) -> InvocationRequest {
        InvocationRequest {
            canvases,
            megapixels: canvases as f64 * 1.05,
            submitted: SimTime::from_micros(at_us),
        }
    }

    #[test]
    fn first_invocation_cold_starts() {
        let mut p = platform();
        let o = p.invoke(req(1, 0)).unwrap();
        assert!(o.cold);
        assert!(o.started > SimTime::ZERO, "cold start delays execution");
        assert_eq!(p.stats().cold_starts, 1);
    }

    #[test]
    fn warm_instance_reused() {
        let mut p = platform();
        let first = p.invoke(req(1, 0)).unwrap();
        // Submit after the first finishes: instance is warm and idle.
        let second = p.invoke(req(1, first.finished.as_micros() + 1000)).unwrap();
        assert!(!second.cold);
        assert_eq!(second.instance, first.instance);
        assert_eq!(second.started, second.finished - second.execution);
    }

    #[test]
    fn concurrency_one_scales_out() {
        let mut p = platform();
        let a = p.invoke(req(1, 0)).unwrap();
        // Same submission time: first instance is busy → second cold start.
        let b = p.invoke(req(1, 0)).unwrap();
        assert!(b.cold);
        assert_ne!(a.instance, b.instance);
        assert_eq!(p.stats().peak_instances, 2);
    }

    #[test]
    fn keep_alive_expiry_forces_cold_start() {
        let mut p = platform();
        let first = p.invoke(req(1, 0)).unwrap();
        let after_expiry = first.finished + p.keep_alive + SimDuration::from_secs(1);
        let second = p.invoke(req(1, after_expiry.as_micros())).unwrap();
        assert!(second.cold, "keep-alive elapsed; must cold start");
    }

    #[test]
    fn batch_too_large_rejected() {
        let mut p = platform();
        let capacity = p.spec().max_canvases();
        let err = p.invoke(req(capacity + 1, 0)).unwrap_err();
        assert_eq!(
            err,
            PlatformError::BatchTooLarge {
                requested: capacity + 1,
                capacity
            }
        );
        assert!(err.to_string().contains("exceeds instance capacity"));
    }

    #[test]
    fn cost_accumulates_with_eqn1() {
        let mut p = platform();
        let o = p.invoke(req(2, 0)).unwrap();
        let expected = ResourcePrices::alibaba_fc()
            .invocation_cost(o.execution, &FunctionSpec::paper_default());
        assert!((o.cost.get() - expected.get()).abs() < 1e-12);
        assert!((p.stats().total_cost.get() - o.cost.get()).abs() < 1e-12);
    }

    #[test]
    fn bigger_batches_run_longer_but_amortize() {
        let mut p = platform();
        let small = p.invoke(req(1, 0)).unwrap();
        let big = p.invoke(req(8, 10_000_000)).unwrap();
        assert!(big.execution > small.execution);
        let per_canvas_small = small.execution.as_secs_f64();
        let per_canvas_big = big.execution.as_secs_f64() / 8.0;
        assert!(
            per_canvas_big < per_canvas_small,
            "batching must amortize the base cost"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = platform();
        let mut b = platform();
        let oa = a.invoke(req(3, 0)).unwrap();
        let ob = b.invoke(req(3, 0)).unwrap();
        assert_eq!(oa, ob);
    }

    #[test]
    fn submit_tracks_in_flight_until_completed() {
        let mut p = platform();
        let a = p.submit(req(1, 0)).unwrap();
        let b = p.submit(req(1, 0)).unwrap();
        assert_eq!(p.in_flight(), 2);
        assert_eq!(p.next_completion(), Some(a.finished.min(b.finished)));
        assert!(p.complete(a.id));
        assert_eq!(p.in_flight(), 1);
        assert!(!p.complete(a.id), "double-ack is a no-op");
        assert!(p.complete(b.id));
        assert_eq!(p.next_completion(), None);
    }

    #[test]
    fn completing_an_unknown_id_is_a_no_op() {
        let mut p = platform();
        let a = p.submit(req(1, 0)).unwrap();
        let b = p.submit(req(1, 0)).unwrap();
        let stats_before = p.stats();
        let next_before = p.next_completion();

        // An id that was never issued: `bump` starts after the defaults,
        // so a far-future raw id can never collide.
        let unknown = InvocationId::new(u64::MAX);
        assert!(!p.complete(unknown));

        // Nothing moved: both invocations still in flight, same earliest
        // completion, same counters.
        assert_eq!(p.in_flight(), 2);
        assert_eq!(p.next_completion(), next_before);
        assert_eq!(p.stats(), stats_before);
        assert!(p.complete(a.id));
        assert!(p.complete(b.id));
    }

    #[test]
    fn snapshot_reads_pressure_without_mutating() {
        let mut p = platform();
        assert_eq!(p.snapshot(SimTime::ZERO).in_flight, 0);
        assert_eq!(p.snapshot(SimTime::ZERO).live_instances, 0);
        // Empty platform: a submission would cold-start.
        assert_eq!(
            p.snapshot(SimTime::ZERO).earliest_start,
            SimTime::ZERO + p.cold_start_mean
        );

        let a = p.submit(req(1, 0)).unwrap();
        let snap = p.snapshot(SimTime::ZERO);
        assert_eq!(snap.in_flight, 1);
        assert_eq!(snap.live_instances, 1);
        assert_eq!(snap.backlog, a.finished.since(SimTime::ZERO));
        // Instance busy, but scale-out is open below the cap.
        assert_eq!(snap.earliest_start, SimTime::ZERO + p.cold_start_mean);

        // Saturate the cap: a new submission queues on the earliest-free
        // instance.
        p.max_instances = Some(1);
        let capped = p.snapshot(SimTime::ZERO);
        assert_eq!(capped.earliest_start, a.finished);

        // After completion the warm instance is idle: start is immediate.
        assert!(p.complete(a.id));
        let idle = p.snapshot(a.finished);
        assert_eq!(idle.in_flight, 0);
        assert_eq!(idle.backlog, SimDuration::ZERO);
        assert_eq!(idle.earliest_start, a.finished);

        // Snapshots are pure: sampling state (and thus the next outcome)
        // is untouched by any number of reads.
        let mut fresh = platform();
        let _ = fresh.snapshot(SimTime::ZERO);
        let via_snapshots = fresh.invoke(req(3, 0)).unwrap();
        let direct = platform().invoke(req(3, 0)).unwrap();
        assert_eq!(via_snapshots, direct);
    }

    #[test]
    fn invoke_is_submit_plus_ack() {
        let mut p = platform();
        let o = p.invoke(req(1, 0)).unwrap();
        assert_eq!(p.in_flight(), 0, "invoke self-acknowledges");
        assert!(!p.complete(o.id));
    }

    #[test]
    fn submit_samples_identically_to_invoke() {
        let mut via_invoke = platform();
        let mut via_submit = platform();
        let a = via_invoke.invoke(req(3, 0)).unwrap();
        let b = via_submit.submit(req(3, 0)).unwrap();
        assert_eq!(a, b, "the event-driven path must not perturb sampling");
    }

    #[test]
    fn compute_factor_scales_execution_without_perturbing_draws() {
        let mut plain = platform();
        let mut browned = platform();
        browned.set_compute_factor(3.0);
        let a = plain.invoke(req(2, 0)).unwrap();
        let b = browned.invoke(req(2, 0)).unwrap();
        assert!(
            (b.execution.as_secs_f64() - 3.0 * a.execution.as_secs_f64()).abs() < 2e-6,
            "brownout must scale the same sampled draw"
        );
        // Restoring 1.0 restores the exact no-fault sequence.
        browned.set_compute_factor(1.0);
        let a2 = plain.invoke(req(2, 10_000_000)).unwrap();
        let b2 = browned.invoke(req(2, 10_000_000)).unwrap();
        assert_eq!(a2.execution, b2.execution);
    }

    #[test]
    fn evict_idle_forces_cold_starts_but_spares_busy_instances() {
        let mut p = platform();
        let first = p.invoke(req(1, 0)).unwrap();
        // Warm and idle after completion: eviction reclaims it.
        let idle_at = first.finished + SimDuration::from_millis(1);
        assert_eq!(p.evict_idle(idle_at), 1);
        let second = p.invoke(req(1, idle_at.as_micros())).unwrap();
        assert!(second.cold, "the warm pool was evicted");
        // A busy instance survives eviction mid-execution.
        let third = p.submit(req(1, second.finished.as_micros() + 1)).unwrap();
        assert_eq!(p.evict_idle(third.started + SimDuration::from_micros(1)), 0);
        assert!(p.complete(third.id));
    }

    #[test]
    fn live_instance_count_reflects_expiry() {
        let mut p = platform();
        let o = p.invoke(req(1, 0)).unwrap();
        assert_eq!(p.live_instances(o.finished), 1);
        let far = o.finished + p.keep_alive + SimDuration::from_secs(5);
        assert_eq!(p.live_instances(far), 0);
    }
}
