//! The Alibaba Function Compute billing model (Eqn. 1).

use serde::{Deserialize, Serialize};
use tangram_types::time::SimDuration;
use tangram_types::units::Dollars;

use crate::function::FunctionSpec;

/// Unit prices of the serverless platform.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ResourcePrices {
    /// `P_C`: dollars per vCPU-second.
    pub per_vcpu_second: f64,
    /// `P_M`: dollars per GB-second of memory.
    pub per_mem_gb_second: f64,
    /// `P_G`: dollars per GB-second of GPU memory.
    pub per_gpu_gb_second: f64,
    /// `P_req`: base cost per invocation.
    pub per_request: f64,
    /// Billing granularity: execution time is rounded *up* to a multiple
    /// of this unit (`1 ms` matches FC's current billing; Eqn. 1 itself
    /// is granularity-free).
    pub billing_unit: SimDuration,
}

impl ResourcePrices {
    /// The paper's published Alibaba Cloud Function Compute prices:
    /// `P_C = 2.138e-5 $/vCPU·s`, `P_M = 2.138e-5 $/GB·s`,
    /// `P_G = 1.05e-4 $/GB·s`, `P_req = 2e-7 $`.
    #[must_use]
    pub fn alibaba_fc() -> Self {
        Self {
            per_vcpu_second: 2.138e-5,
            per_mem_gb_second: 2.138e-5,
            per_gpu_gb_second: 1.05e-4,
            per_request: 2.0e-7,
            billing_unit: SimDuration::from_millis(1),
        }
    }

    /// Dollars per second of execution for a given function spec
    /// (the parenthesised factor of Eqn. 1).
    #[must_use]
    pub fn rate_per_second(&self, spec: &FunctionSpec) -> f64 {
        spec.vcpus * self.per_vcpu_second
            + spec.memory_gb.get() * self.per_mem_gb_second
            + spec.gpu_gb.get() * self.per_gpu_gb_second
    }

    /// Billed duration: execution rounded up to the billing unit.
    #[must_use]
    pub fn billed_duration(&self, execution: SimDuration) -> SimDuration {
        let unit = self.billing_unit.as_micros();
        if unit == 0 {
            return execution;
        }
        let micros = execution.as_micros();
        SimDuration::from_micros(micros.div_ceil(unit) * unit)
    }

    /// Full cost of one invocation (Eqn. 1).
    #[must_use]
    pub fn invocation_cost(&self, execution: SimDuration, spec: &FunctionSpec) -> Dollars {
        let billed = self.billed_duration(execution).as_secs_f64();
        Dollars::new(billed * self.rate_per_second(spec) + self.per_request)
    }
}

impl Default for ResourcePrices {
    fn default() -> Self {
        Self::alibaba_fc()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_rate_for_default_spec() {
        // 2 vCPU, 4 GB memory, 6 GB GPU:
        // 2·2.138e-5 + 4·2.138e-5 + 6·1.05e-4 = 7.583e-4 $/s.
        let prices = ResourcePrices::alibaba_fc();
        let spec = FunctionSpec::paper_default();
        let rate = prices.rate_per_second(&spec);
        assert!((rate - 7.5828e-4).abs() < 1e-8, "rate {rate}");
    }

    #[test]
    fn one_second_invocation_cost() {
        let prices = ResourcePrices::alibaba_fc();
        let spec = FunctionSpec::paper_default();
        let cost = prices.invocation_cost(SimDuration::from_secs(1), &spec);
        assert!((cost.get() - (7.5828e-4 + 2e-7)).abs() < 1e-8);
    }

    #[test]
    fn billing_rounds_up() {
        let prices = ResourcePrices::alibaba_fc();
        assert_eq!(
            prices.billed_duration(SimDuration::from_micros(1_500)),
            SimDuration::from_millis(2)
        );
        assert_eq!(
            prices.billed_duration(SimDuration::from_millis(3)),
            SimDuration::from_millis(3)
        );
    }

    #[test]
    fn per_request_charged_even_for_instant_functions() {
        let prices = ResourcePrices::alibaba_fc();
        let spec = FunctionSpec::paper_default();
        let cost = prices.invocation_cost(SimDuration::ZERO, &spec);
        assert!((cost.get() - 2e-7).abs() < 1e-15);
    }

    #[test]
    fn coarser_billing_costs_more() {
        let spec = FunctionSpec::paper_default();
        let fine = ResourcePrices::alibaba_fc();
        let mut coarse = ResourcePrices::alibaba_fc();
        coarse.billing_unit = SimDuration::from_secs(1);
        let exec = SimDuration::from_millis(250);
        assert!(coarse.invocation_cost(exec, &spec) > fine.invocation_cost(exec, &spec));
    }
}
