//! Function specifications and the GPU-memory batch bound.

use serde::{Deserialize, Serialize};
use tangram_types::units::GigaBytes;

/// Resources allocated to one function instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FunctionSpec {
    /// vCPUs (`n_C` in Eqn. 1).
    pub vcpus: f64,
    /// Memory (`m_M`).
    pub memory_gb: GigaBytes,
    /// GPU memory (`m_G`).
    pub gpu_gb: GigaBytes,
    /// Resident model footprint `τ` (constraint (5)).
    pub model_footprint_gb: GigaBytes,
    /// GPU memory per 1024×1024 canvas in the batch, `w` (activations +
    /// input tensor).
    pub canvas_gb: GigaBytes,
    /// Concurrent requests per instance (the paper sets 1).
    pub concurrency: u32,
}

impl FunctionSpec {
    /// The paper's evaluation configuration: 2 vCPU, 4 GB memory, 6 GB GPU
    /// memory, concurrency 1. `τ` and `w` are calibrated so roughly ten
    /// canvases fit one instance — matching Fig. 14d, where batches top
    /// out around 9 canvases.
    #[must_use]
    pub fn paper_default() -> Self {
        Self {
            vcpus: 2.0,
            memory_gb: GigaBytes::new(4.0),
            gpu_gb: GigaBytes::new(6.0),
            model_footprint_gb: GigaBytes::new(2.6),
            canvas_gb: GigaBytes::new(0.36),
            concurrency: 1,
        }
    }

    /// Maximum canvases per batch under constraint (5):
    /// `w·Σy + τ ≤ m_G`.
    #[must_use]
    pub fn max_canvases(&self) -> usize {
        let free = self.gpu_gb.get() - self.model_footprint_gb.get();
        if free <= 0.0 || self.canvas_gb.get() <= 0.0 {
            return 0;
        }
        (free / self.canvas_gb.get()).floor() as usize
    }
}

impl Default for FunctionSpec {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_matches_evaluation_setup() {
        let s = FunctionSpec::paper_default();
        assert_eq!(s.vcpus, 2.0);
        assert_eq!(s.memory_gb, GigaBytes::new(4.0));
        assert_eq!(s.gpu_gb, GigaBytes::new(6.0));
        assert_eq!(s.concurrency, 1);
    }

    #[test]
    fn max_canvases_matches_fig14d() {
        // (6 − 2.6) / 0.36 = 9.44 → 9 canvases, the largest batch Fig. 14d
        // reports.
        assert_eq!(FunctionSpec::paper_default().max_canvases(), 9);
    }

    #[test]
    fn degenerate_specs_hold_nothing() {
        let mut s = FunctionSpec::paper_default();
        s.model_footprint_gb = GigaBytes::new(7.0); // bigger than the GPU
        assert_eq!(s.max_canvases(), 0);
    }
}
