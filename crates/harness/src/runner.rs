//! Grid execution: fan cells out over the pool, reassemble in order.

use crate::grid::{AdmissionSpec, FairnessSpec, ScenarioSpec, SweepCell, SweepGrid};
use crate::pool::parallel_map;
use crate::presets::build_workload;
use crate::report::{BenchReport, CellReport};
use std::collections::BTreeMap;
use std::sync::Arc;
use tangram_core::engine::EngineConfig;
use tangram_core::online::{GeneratedSource, OnlineEngine, TenantClass, TraceReplaySource};
use tangram_core::report::RunReport;
use tangram_core::workload::CameraTrace;
use tangram_sim::rng::DetRng;
use tangram_trace::{TraceLog, TraceSink};
use tangram_types::time::{SimDuration, SimTime};

/// One cell's full outcome: the resolved cell plus the engine's complete
/// [`RunReport`] (per-patch and per-batch records included), for
/// experiments that need distributions rather than the scalar digest.
pub struct CellOutcome {
    /// The cell that ran.
    pub cell: SweepCell,
    /// The engine's full report.
    pub report: RunReport,
    /// The cell's runtime event trace, when the grid opted in with
    /// [`SweepGrid::capture_traces`].
    pub trace: Option<TraceLog>,
}

/// Runs every cell of `grid` on `workers` threads, returning full
/// outcomes in grid enumeration order.
///
/// Two parallel phases: workload traces are built once per unique
/// `(workload, trace_seed)` pair (cells on the same pair share the exact
/// same traces — the paired comparison the paper's per-scene tables
/// need), then cells run against the shared traces. Both phases are
/// deterministic per item, so the outcome is bit-for-bit identical for
/// any worker count — including `--workers 1`.
///
/// # Panics
///
/// Panics if a cell's engine run panics (the engine asserts on invalid
/// configurations, e.g. an empty workload).
#[must_use]
pub fn run_grid_full(grid: &SweepGrid, workers: usize) -> Vec<CellOutcome> {
    let cells = grid.cells();

    let mut trace_keys: Vec<(usize, u64)> = cells
        .iter()
        .map(|c| (c.workload_index, c.trace_seed))
        .collect();
    trace_keys.sort_unstable();
    trace_keys.dedup();
    let built: Vec<Arc<Vec<CameraTrace>>> =
        parallel_map(trace_keys.clone(), workers, |_, (workload_index, seed)| {
            Arc::new(build_workload(&grid.workloads[workload_index], seed))
        });
    let traces: BTreeMap<(usize, u64), Arc<Vec<CameraTrace>>> =
        trace_keys.into_iter().zip(built).collect();

    let scenarios = grid.scenarios.clone();
    let admission = grid.admission.clone();
    let fairness = grid.fairness.clone();
    let capture = grid.capture_traces;
    let shards = grid.shards;
    let credit_window = grid.credit_window;
    parallel_map(cells, workers, move |_, cell| {
        let traces = Arc::clone(&traces[&(cell.workload_index, cell.trace_seed)]);
        let admission = cell.admission_index.map(|i| &admission[i]);
        let fairness = cell.fairness_index.map(|i| &fairness[i]);
        let mut config = cell.engine_config();
        if let Some(spec) = fairness {
            config.scheduler_admission_aware = spec.admission_aware;
        }
        let (report, trace) = match cell.scenario_index.map(|i| &scenarios[i]) {
            None => match (admission, fairness) {
                // No ingress stage at all: the legacy batch entry point.
                // Trace capture routes through the streaming engine,
                // whose replay mount is byte-identical to it.
                (None, None) if !capture => (config.run(&traces), None),
                // Trace replay under admission control and/or a fair
                // ingress: mount the same replay sources on the streaming
                // engine (byte-identical to the batch path when nothing
                // is shed or queued).
                _ => run_replay(&config, &traces, cell.slo_s, admission, fairness, capture),
            },
            Some(scenario) => run_scenario_sharded(
                &config,
                &traces,
                scenario,
                admission,
                fairness,
                capture,
                shards,
                credit_window,
            ),
        };
        CellOutcome {
            cell,
            report,
            trace,
        }
    })
}

/// Replays `traces` through the streaming engine exactly as
/// [`EngineConfig::run`] mounts them (1 ms join stagger per camera),
/// with the cell's ingress stages (admission policy and/or weighted-DRR
/// fair ingress) installed. Replay cells carry no tenant mix, so the
/// fair ingress runs a single class at the cell SLO.
fn run_replay(
    config: &EngineConfig,
    traces: &[CameraTrace],
    slo_s: f64,
    admission: Option<&AdmissionSpec>,
    fairness: Option<&FairnessSpec>,
    capture: bool,
) -> (RunReport, Option<TraceLog>) {
    let mut engine = OnlineEngine::new(config);
    for (cam, trace) in traces.iter().enumerate() {
        engine.add_camera_at(
            SimTime::from_micros(cam as u64 * 1_000),
            Box::new(TraceReplaySource::new(trace.clone())),
        );
    }
    if let Some(spec) = admission {
        engine.set_admission_policy(spec.build(&[]));
    }
    if let Some(spec) = fairness {
        engine.set_fair_ingress(spec.build(&[], slo_s));
    }
    if capture {
        engine.set_trace_sink(TraceSink::new());
    }
    engine.run_traced()
}

/// Runs one streaming-scenario cell: the cell's traces become per-camera
/// content pools on an [`OnlineEngine`], cameras join staggered (and
/// leave after their session, when churn is configured), arrival timing
/// comes from the scenario's seeded process, tenant SLO classes are
/// assigned round-robin, and the cell's ingress stages (if any) guard
/// the entrance — the SLO-aware shedder's class table and the weighted
/// DRR's class queues are primed from the scenario's tenant mix.
///
/// Everything is derived from `config.seed` (the cell's engine seed) via
/// labelled forks, so the outcome is independent of which worker thread
/// runs the cell — the same guarantee trace-replay cells have.
#[must_use]
pub fn run_scenario(
    config: &EngineConfig,
    traces: &[CameraTrace],
    scenario: &ScenarioSpec,
    admission: Option<&AdmissionSpec>,
    fairness: Option<&FairnessSpec>,
) -> RunReport {
    run_scenario_traced(config, traces, scenario, admission, fairness, false).0
}

/// [`run_scenario`], optionally recording the runtime event trace.
#[must_use]
pub fn run_scenario_traced(
    config: &EngineConfig,
    traces: &[CameraTrace],
    scenario: &ScenarioSpec,
    admission: Option<&AdmissionSpec>,
    fairness: Option<&FairnessSpec>,
    capture: bool,
) -> (RunReport, Option<TraceLog>) {
    run_scenario_sharded(
        config, traces, scenario, admission, fairness, capture, 1, None,
    )
}

/// [`run_scenario_traced`] on a sharded engine: link-independent camera
/// sources are partitioned across `shards` worker threads (see
/// [`OnlineEngine::set_shards`]). Sharding is a pure execution strategy
/// — the report and trace are byte-identical at any shard count, which
/// is exactly what `bench_throughput` exploits to measure wall-clock
/// scaling against an unchanged workload. `credit_window` narrows the
/// per-shard credit window (`None` = the production
/// [`tangram_types::credit::CREDIT_WINDOW`]); like the shard
/// count it is byte-invisible, pinned by the `CREDIT_WINDOW=1` case in
/// `tests/harness_determinism.rs`.
#[must_use]
#[allow(clippy::too_many_arguments)]
pub fn run_scenario_sharded(
    config: &EngineConfig,
    traces: &[CameraTrace],
    scenario: &ScenarioSpec,
    admission: Option<&AdmissionSpec>,
    fairness: Option<&FairnessSpec>,
    capture: bool,
    shards: usize,
    credit_window: Option<usize>,
) -> (RunReport, Option<TraceLog>) {
    let mut engine = OnlineEngine::new(config);
    engine.set_shards(shards);
    if let Some(window) = credit_window {
        engine.set_credit_window(window);
    }
    engine.set_faults(scenario.faults.clone());
    if let Some(spec) = admission {
        engine.set_admission_policy(spec.build(&scenario.tenant_slos_s));
    }
    if let Some(spec) = fairness {
        engine.set_fair_ingress(spec.build(&scenario.tenant_slos_s, config.slo.as_secs_f64()));
    }
    let root = DetRng::new(config.seed);
    for (cam, trace) in traces.iter().enumerate() {
        let rng = root.fork_indexed("scenario-arrival", cam as u64);
        let mut source = GeneratedSource::new(
            trace,
            scenario.frames_per_camera,
            scenario.arrival.process(),
            rng,
        );
        if !scenario.tenant_slos_s.is_empty() {
            let class = cam % scenario.tenant_slos_s.len();
            let tenant = TenantClass::new(
                &format!("tenant-{class}"),
                SimDuration::from_secs_f64(scenario.tenant_slos_s[class]),
            );
            source = source.with_tenant(&tenant);
        }
        let join = SimTime::from_secs_f64(scenario.join_stagger_s * cam as f64);
        let index = engine.add_camera_at(join, Box::new(source));
        if let Some(session_s) = scenario.session_s {
            engine.remove_camera_at(join + SimDuration::from_secs_f64(session_s), index);
        }
    }
    if capture {
        engine.set_trace_sink(TraceSink::new());
    }
    engine.run_traced()
}

/// Collapses full outcomes into the serialisable [`BenchReport`].
#[must_use]
pub fn bench_report(grid: &SweepGrid, outcomes: &[CellOutcome]) -> BenchReport {
    BenchReport {
        name: grid.name.clone(),
        grid: grid.clone(),
        cells: outcomes
            .iter()
            .map(|o| CellReport {
                index: o.cell.index as u64,
                seed: o.cell.seed,
                slo_s: o.cell.slo_s,
                bandwidth_mbps: o.cell.bandwidth_mbps,
                sigma_multiplier: o.cell.sigma_multiplier,
                workload: o.cell.workload_index as u64,
                // Recorded only when the axis genuinely sweeps, so
                // single/no-scenario grids keep their legacy cell bytes.
                scenario: if grid.scenarios.len() > 1 {
                    o.cell.scenario_index.map(|i| i as u64)
                } else {
                    None
                },
                admission: o
                    .cell
                    .admission_index
                    .map(|i| grid.admission[i].kind().to_string()),
                // All fairness specs share the "drr" kind, so a
                // multi-variant axis suffixes the axis index to keep
                // cells distinguishable.
                fairness: o.cell.fairness_index.map(|i| {
                    if grid.fairness.len() > 1 {
                        format!("{}@{i}", grid.fairness[i].kind())
                    } else {
                        grid.fairness[i].kind().to_string()
                    }
                }),
                metrics: o.report.summarize(),
            })
            .collect(),
    }
}

/// Runs every cell of `grid` and collects the [`BenchReport`] digest.
/// See [`run_grid_full`] for the execution model.
#[must_use]
pub fn run_grid(grid: &SweepGrid, workers: usize) -> BenchReport {
    bench_report(grid, &run_grid_full(grid, workers))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::{TraceKind, WorkloadSpec};
    use tangram_core::engine::PolicyKind;
    use tangram_types::ids::SceneId;

    fn micro_grid() -> SweepGrid {
        let mut grid = SweepGrid::named("micro");
        grid.policies = vec![PolicyKind::Tangram, PolicyKind::Elf];
        grid.seeds = vec![7];
        grid.slos_s = vec![1.0];
        grid.bandwidths_mbps = vec![40.0];
        grid.workloads = vec![WorkloadSpec::single(SceneId::new(1), 6, TraceKind::Proxy)];
        grid
    }

    #[test]
    fn runs_every_cell_in_order() {
        let grid = micro_grid();
        let report = run_grid(&grid, 2);
        assert_eq!(report.cells.len(), grid.cell_count());
        for (i, cell) in report.cells.iter().enumerate() {
            assert_eq!(cell.index, i as u64);
            assert!(cell.metrics.patches > 0, "cell {i} ran the engine");
        }
        let policies: Vec<&str> = report
            .cells
            .iter()
            .map(|c| c.metrics.policy.as_str())
            .collect();
        assert_eq!(policies, ["Tangram", "ELF"]);
    }

    #[test]
    fn parallel_report_matches_sequential_bytes() {
        let grid = micro_grid();
        let sequential = run_grid(&grid, 1);
        let parallel = run_grid(&grid, 4);
        assert_eq!(sequential.to_json(), parallel.to_json());
    }

    #[test]
    fn scenario_cells_run_the_streaming_engine() {
        use crate::grid::{ArrivalSpec, ScenarioSpec};
        let mut grid = micro_grid();
        grid.name = "micro_scenario".to_string();
        grid.workloads = vec![WorkloadSpec {
            scenes: vec![1, 2],
            frames: 4,
            trace: TraceKind::Proxy,
        }];
        grid.scenarios = vec![ScenarioSpec {
            arrival: ArrivalSpec::Poisson { fps: 8.0 },
            frames_per_camera: 10,
            join_stagger_s: 0.5,
            session_s: None,
            tenant_slos_s: vec![0.8, 1.5],
            faults: Vec::new(),
        }];
        let report = run_grid(&grid, 2);
        for cell in &report.cells {
            // Two cameras × 10 generated frames each.
            assert_eq!(cell.metrics.frames, 20, "cell {}", cell.index);
            assert!(cell.metrics.patches > 0);
            // Two tenant classes stream side by side.
            assert_eq!(cell.metrics.tenants.len(), 2, "cell {}", cell.index);
        }
        // The streaming path keeps the harness guarantee: parallel output
        // is byte-identical to sequential.
        assert_eq!(run_grid(&grid, 1).to_json(), report.to_json());
    }

    #[test]
    fn admission_axis_fans_out_and_always_admit_matches_the_batch_path() {
        use crate::grid::AdmissionSpec;
        let mut grid = micro_grid();
        grid.name = "micro_admission".to_string();
        grid.policies = vec![PolicyKind::Tangram];
        let bare = run_grid(&grid, 2);
        grid.admission = vec![
            AdmissionSpec::Always,
            AdmissionSpec::QueueDepth { max_queued: 0 },
        ];
        let report = run_grid(&grid, 2);
        assert_eq!(report.cells.len(), 2 * bare.cells.len());
        // AlwaysAdmit over replay sources reproduces the batch digest.
        let always = &report.cells[0];
        assert_eq!(always.admission.as_deref(), Some("always"));
        assert_eq!(always.metrics, bare.cells[0].metrics);
        // A zero-depth queue bound sheds everything.
        let starved = &report.cells[1];
        assert_eq!(starved.admission.as_deref(), Some("queue-depth"));
        assert_eq!(starved.metrics.patches, 0);
        assert!(starved.metrics.dropped_arrivals > 0);
        // The admission path keeps the worker-count guarantee.
        assert_eq!(run_grid(&grid, 1).to_json(), report.to_json());
    }
}
