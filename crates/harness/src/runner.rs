//! Grid execution: fan cells out over the pool, reassemble in order.

use crate::grid::{SweepCell, SweepGrid};
use crate::pool::parallel_map;
use crate::presets::build_workload;
use crate::report::{BenchReport, CellReport};
use std::collections::HashMap;
use std::sync::Arc;
use tangram_core::report::RunReport;
use tangram_core::workload::CameraTrace;

/// One cell's full outcome: the resolved cell plus the engine's complete
/// [`RunReport`] (per-patch and per-batch records included), for
/// experiments that need distributions rather than the scalar digest.
pub struct CellOutcome {
    /// The cell that ran.
    pub cell: SweepCell,
    /// The engine's full report.
    pub report: RunReport,
}

/// Runs every cell of `grid` on `workers` threads, returning full
/// outcomes in grid enumeration order.
///
/// Two parallel phases: workload traces are built once per unique
/// `(workload, trace_seed)` pair (cells on the same pair share the exact
/// same traces — the paired comparison the paper's per-scene tables
/// need), then cells run against the shared traces. Both phases are
/// deterministic per item, so the outcome is bit-for-bit identical for
/// any worker count — including `--workers 1`.
///
/// # Panics
///
/// Panics if a cell's engine run panics (the engine asserts on invalid
/// configurations, e.g. an empty workload).
#[must_use]
pub fn run_grid_full(grid: &SweepGrid, workers: usize) -> Vec<CellOutcome> {
    let cells = grid.cells();

    let mut trace_keys: Vec<(usize, u64)> = cells
        .iter()
        .map(|c| (c.workload_index, c.trace_seed))
        .collect();
    trace_keys.sort_unstable();
    trace_keys.dedup();
    let built: Vec<Arc<Vec<CameraTrace>>> =
        parallel_map(trace_keys.clone(), workers, |_, (workload_index, seed)| {
            Arc::new(build_workload(&grid.workloads[workload_index], seed))
        });
    let traces: HashMap<(usize, u64), Arc<Vec<CameraTrace>>> =
        trace_keys.into_iter().zip(built).collect();

    parallel_map(cells, workers, |_, cell| {
        let traces = Arc::clone(&traces[&(cell.workload_index, cell.trace_seed)]);
        let report = cell.engine_config().run(&traces);
        CellOutcome { cell, report }
    })
}

/// Collapses full outcomes into the serialisable [`BenchReport`].
#[must_use]
pub fn bench_report(grid: &SweepGrid, outcomes: &[CellOutcome]) -> BenchReport {
    BenchReport {
        name: grid.name.clone(),
        grid: grid.clone(),
        cells: outcomes
            .iter()
            .map(|o| CellReport {
                index: o.cell.index as u64,
                seed: o.cell.seed,
                slo_s: o.cell.slo_s,
                bandwidth_mbps: o.cell.bandwidth_mbps,
                sigma_multiplier: o.cell.sigma_multiplier,
                workload: o.cell.workload_index as u64,
                metrics: o.report.summarize(),
            })
            .collect(),
    }
}

/// Runs every cell of `grid` and collects the [`BenchReport`] digest.
/// See [`run_grid_full`] for the execution model.
#[must_use]
pub fn run_grid(grid: &SweepGrid, workers: usize) -> BenchReport {
    bench_report(grid, &run_grid_full(grid, workers))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::{TraceKind, WorkloadSpec};
    use tangram_core::engine::PolicyKind;
    use tangram_types::ids::SceneId;

    fn micro_grid() -> SweepGrid {
        let mut grid = SweepGrid::named("micro");
        grid.policies = vec![PolicyKind::Tangram, PolicyKind::Elf];
        grid.seeds = vec![7];
        grid.slos_s = vec![1.0];
        grid.bandwidths_mbps = vec![40.0];
        grid.workloads = vec![WorkloadSpec::single(SceneId::new(1), 6, TraceKind::Proxy)];
        grid
    }

    #[test]
    fn runs_every_cell_in_order() {
        let grid = micro_grid();
        let report = run_grid(&grid, 2);
        assert_eq!(report.cells.len(), grid.cell_count());
        for (i, cell) in report.cells.iter().enumerate() {
            assert_eq!(cell.index, i as u64);
            assert!(cell.metrics.patches > 0, "cell {i} ran the engine");
        }
        let policies: Vec<&str> = report
            .cells
            .iter()
            .map(|c| c.metrics.policy.as_str())
            .collect();
        assert_eq!(policies, ["Tangram", "ELF"]);
    }

    #[test]
    fn parallel_report_matches_sequential_bytes() {
        let grid = micro_grid();
        let sequential = run_grid(&grid, 1);
        let parallel = run_grid(&grid, 4);
        assert_eq!(sequential.to_json(), parallel.to_json());
    }
}
